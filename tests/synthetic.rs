//! Statistical-simulation integration tests: the model and simulator must
//! agree on synthetic workloads too (§7.2-style generated programs), and
//! the extended MiBench kernels validate like the core 19.

use mim::core::{MachineConfig, MechanisticModel};
use mim::prelude::*;
use mim::workloads::synth::{SyntheticRecipe, SyntheticWorkload};
use proptest::prelude::*;

#[test]
fn model_validates_on_synthetic_workloads() {
    let machine = MachineConfig::default_config();
    let model = MechanisticModel::new(&machine);
    let recipes = [
        ("codec", SyntheticWorkload::codec_like()),
        (
            "serial",
            SyntheticWorkload {
                dep_distances: vec![100], // everything back-to-back
                mix: (70, 10, 2, 12, 6),
                seed: 7,
                ..SyntheticWorkload::codec_like()
            },
        ),
        (
            "parallel",
            SyntheticWorkload {
                dep_distances: vec![0, 0, 0, 0, 0, 0, 0, 1, 1, 1],
                mix: (80, 2, 0, 12, 6),
                seed: 11,
                ..SyntheticWorkload::codec_like()
            },
        ),
    ];
    for (name, recipe) in recipes {
        let program = recipe.generate();
        let inputs = Profiler::new(&machine).profile(&program).unwrap();
        let stack = model.predict(&inputs);
        let sim = PipelineSim::new(&machine).simulate(&program).unwrap();
        let err = (stack.cpi() - sim.cpi()).abs() / sim.cpi();
        // Dense synthetic blocks run at very low CPI, which amplifies the
        // model's known first-order overlap bias (see EXPERIMENTS.md), so
        // the band here is wider than for the curated kernels.
        assert!(
            err < 0.25,
            "{name}: model {:.3} vs sim {:.3} ({:.1}%)",
            stack.cpi(),
            sim.cpi(),
            100.0 * err
        );
    }
}

#[test]
fn dependency_distance_controls_width_scaling() {
    // The statistical generator exposes the paper's core mechanism
    // directly: short dependency distances must suppress superscalar
    // benefit, long distances enable it.
    let speedup = |recipe: &SyntheticWorkload| {
        let program = recipe.generate();
        let mut cycles = Vec::new();
        for width in [1u32, 4] {
            let machine = MachineConfig {
                width,
                ..MachineConfig::default_config()
            };
            cycles.push(
                PipelineSim::new(&machine)
                    .simulate(&program)
                    .unwrap()
                    .cycles,
            );
        }
        cycles[0] as f64 / cycles[1] as f64
    };
    let serial = SyntheticWorkload {
        dep_distances: vec![100],
        mix: (90, 0, 0, 6, 4),
        iterations: 500,
        seed: 3,
        ..SyntheticWorkload::codec_like()
    };
    let parallel = SyntheticWorkload {
        dep_distances: vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1],
        mix: (90, 0, 0, 6, 4),
        iterations: 500,
        seed: 3,
        ..SyntheticWorkload::codec_like()
    };
    let s_serial = speedup(&serial);
    let s_parallel = speedup(&parallel);
    assert!(
        s_parallel > s_serial + 0.5,
        "parallel recipe speedup {s_parallel:.2} vs serial {s_serial:.2}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Generator invariant: every recipe — across all branch, addressing,
    /// mix, and dependency knobs — produces a program that halts within
    /// its declared [`SyntheticRecipe::max_dynamic_length`] bound.
    #[test]
    fn generated_programs_always_halt_within_the_length_bound(
        block in 1usize..64,
        iters in 1u64..400,
        alu in 1u32..100,
        mul in 0u32..10,
        div in 0u32..4,
        load in 0u32..40,
        store in 0u32..20,
        dep_weights in proptest::collection::vec(0u32..10, 0..12),
        footprint_bits in 3u32..18,
        branch in 0u32..40,
        random in 0u32..101,
        pattern in 0u8..3,
        seed in 0u64..1_000_000,
    ) {
        let recipe = SyntheticRecipe {
            block_size: block,
            iterations: iters,
            mix: (alu, mul, div, load, store),
            dep_distances: dep_weights,
            footprint_words: 1 << footprint_bits,
            branch_percent: branch,
            branch_random_percent: random,
            stride_words: if pattern == 1 { 1 + (seed % 64) as usize } else { 0 },
            random_addresses: pattern == 2,
            seed,
        };
        let program = recipe.generate();
        let bound = recipe.max_dynamic_length();
        let mut vm = mim::isa::Vm::new(&program);
        let outcome = vm.run(Some(bound + 1)).expect("generated program faulted");
        prop_assert!(
            outcome.halted(),
            "did not halt within {bound}: {}",
            recipe.describe()
        );
        prop_assert!(outcome.instructions() <= bound);
    }
}

#[test]
fn extended_mibench_kernels_validate() {
    let machine = MachineConfig::default_config();
    let model = MechanisticModel::new(&machine);
    for w in mim::workloads::mibench::extended() {
        let program = w.program(WorkloadSize::Tiny);
        let inputs = Profiler::new(&machine).profile(&program).unwrap();
        let stack = model.predict(&inputs);
        let sim = PipelineSim::new(&machine).simulate(&program).unwrap();
        let err = (stack.cpi() - sim.cpi()).abs() / sim.cpi();
        assert!(
            err < 0.20,
            "{}: model {:.3} vs sim {:.3} ({:.1}%)",
            w.name(),
            stack.cpi(),
            sim.cpi(),
            100.0 * err
        );
    }
}
