//! Golden snapshot tests: the `--quick` JSON outputs of the
//! `fig3_validation`, `fig9_edp`, and `table2` binaries are checked in
//! under `tests/golden/` and must regenerate **byte-identically**.
//!
//! Tolerance-band assertions catch gross regressions; these snapshots
//! catch *silent numeric drift* — a profiler counting one extra event, a
//! model term changing in the 6th decimal — the moment it happens. When a
//! change is intentional, regenerate the snapshots with
//! `UPDATE_GOLDEN=1 cargo test --test golden` and review the JSON diff
//! like any other code change.

use mim_bench::figures;

fn check(name: &str, golden: &str, actual: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = format!("{}/tests/golden/{name}.json", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&path, actual).expect("write golden");
        eprintln!("[updated {path}]");
        return;
    }
    assert!(
        golden == actual,
        "golden snapshot `{name}` drifted.\n\
         If the change is intentional, run `UPDATE_GOLDEN=1 cargo test --test golden`\n\
         and commit the refreshed snapshot.\n\
         --- golden (first 400 chars) ---\n{}\n\
         --- actual (first 400 chars) ---\n{}",
        &golden[..golden.len().min(400)],
        &actual[..actual.len().min(400)],
    );
}

#[test]
fn fig3_validation_quick_json_is_byte_stable() {
    let rows = figures::fig3_rows(true);
    let actual = serde_json::to_string_pretty(&rows).expect("serialize");
    check(
        "fig3_validation",
        include_str!("golden/fig3_validation.json"),
        &actual,
    );
}

#[test]
fn fig9_edp_quick_json_is_byte_stable() {
    let results = figures::fig9_results(true, false);
    let actual = serde_json::to_string_pretty(&results).expect("serialize");
    check("fig9_edp", include_str!("golden/fig9_edp.json"), &actual);
}

#[test]
fn table2_design_points_json_is_byte_stable() {
    let ids = figures::table2_design_point_ids();
    let actual = serde_json::to_string_pretty(&ids).expect("serialize");
    check(
        "table2_design_points",
        include_str!("golden/table2_design_points.json"),
        &actual,
    );
}
