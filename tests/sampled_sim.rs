//! Acceptance tests for statistically sampled simulation (SMARTS-style
//! systematic sampling with functional warming):
//!
//! * **CI calibration** — across a (workload × sampling-fraction) grid,
//!   the full simulation's CPI lands inside the sampled run's *own
//!   reported* 95% confidence interval for ≥90% of cells, with the CI
//!   computed honestly from per-unit variance (no post-hoc widening);
//! * **streaming equivalence** — replaying a trace incrementally from
//!   disk produces byte-identical events and an identical `SimResult`
//!   to replaying the materialized in-memory trace, while buffering
//!   O(sample unit) bytes instead of the whole encoding;
//! * **persistent-store integration** — a sampled experiment through a
//!   persistent `WorkloadStore` is byte-deterministic across runs, and a
//!   warm restart streams from disk without re-executing anything.

use std::path::PathBuf;

use mim::core::MachineConfig;
use mim::pipeline::PipelineSim;
use mim::runner::{DiskStore, EvalKind, Experiment, WorkloadStore};
use mim::trace::{Sampling, Trace, TraceSource};
use mim::workloads::{mibench, Workload, WorkloadSize};

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mim-sampled-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id(),
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn grid_workloads() -> Vec<Workload> {
    vec![
        mibench::sha(),
        mibench::qsort(),
        mibench::dijkstra(),
        mibench::stringsearch(),
        mibench::patricia(),
    ]
}

/// Sampling plans at three measured fractions (1/5, 1/10, 1/20), all
/// with warming covering the gap before each measurement window and an
/// offset so the first unit is not the cold start.
fn grid_plans() -> Vec<Sampling> {
    vec![
        Sampling::try_new(500, 100)
            .unwrap()
            .with_warmup(400)
            .with_offset(50),
        Sampling::default_plan(),
        Sampling::try_new(2000, 100)
            .unwrap()
            .with_warmup(1000)
            .with_offset(200),
    ]
}

/// Tentpole acceptance: the reported 95% interval is *calibrated* — the
/// full simulation's CPI falls inside it for at least 90% of grid
/// cells. The interval asserted here is exactly the one reported
/// (`ci_half_width`), not a widened variant.
#[test]
fn confidence_intervals_are_calibrated_across_the_grid() {
    let machine = MachineConfig::default_config();
    let sim = PipelineSim::new(&machine);
    let mut total = 0u32;
    let mut inside = 0u32;
    for workload in grid_workloads() {
        let program = workload.program(WorkloadSize::Tiny);
        let full = sim.simulate(&program).expect("full simulation");
        let trace = Trace::record(&program, None).expect("recording");
        for plan in grid_plans() {
            let mut replay = trace.replay(&program).expect("replay").with_sampling(plan);
            let sampled = sim.simulate_sampled(&mut replay).expect("sampled sim");
            let stats = sampled.sampling.expect("sampled stats present");
            assert!(
                stats.units > 1,
                "{}: plan p{} produced {} units — grid needs real sampling",
                workload.name(),
                plan.period(),
                stats.units
            );
            assert!(stats.ci_half_width >= 0.0);
            total += 1;
            if (stats.cpi - full.cpi()).abs() <= stats.ci_half_width {
                inside += 1;
            }
        }
    }
    assert!(
        f64::from(inside) >= 0.9 * f64::from(total),
        "full CPI inside the reported CI for only {inside}/{total} cells"
    );
}

/// The sampled estimate is deterministic: identical inputs give
/// bit-identical `SimResult`s (the statistics are closed-form over a
/// deterministic unit sequence — no RNG anywhere).
#[test]
fn sampled_simulation_is_deterministic() {
    let machine = MachineConfig::default_config();
    let sim = PipelineSim::new(&machine);
    let program = mibench::sha().program(WorkloadSize::Tiny);
    let trace = Trace::record(&program, None).expect("recording");
    let run = || {
        let mut replay = trace
            .replay(&program)
            .expect("replay")
            .with_sampling(Sampling::default_plan());
        sim.simulate_sampled(&mut replay).expect("sampled sim")
    };
    assert_eq!(run(), run());
}

/// Tentpole acceptance: streaming replay from a `DiskStore` entry is
/// equivalent to materialized replay — identical event stream, identical
/// `SimResult` — while holding only O(sample unit) bytes in memory.
#[test]
fn streaming_replay_matches_materialized_end_to_end() {
    let root = temp_root("stream");
    let store = DiskStore::open(&root).expect("disk store");
    let program = mibench::sha().program(WorkloadSize::Tiny);
    let trace = Trace::record(&program, None).expect("recording");
    store.put_trace(&program, None, &trace).expect("persist");

    // Event streams are byte-identical.
    let mut materialized = Vec::new();
    trace
        .replay(&program)
        .expect("replay")
        .drive(&mut |ev| materialized.push(*ev))
        .expect("drive");
    let mut streamed = Vec::new();
    let mut stream = store
        .stream_trace(&program, None)
        .expect("stream open")
        .expect("entry present");
    stream.drive(&mut |ev| streamed.push(*ev)).expect("drive");
    assert_eq!(streamed, materialized);

    // Sampled simulation over either source yields the same SimResult.
    let machine = MachineConfig::default_config();
    let sim = PipelineSim::new(&machine);
    let mut replay = trace
        .replay(&program)
        .expect("replay")
        .with_sampling(Sampling::default_plan());
    let from_memory = sim.simulate_sampled(&mut replay).expect("sampled sim");
    let mut stream = store
        .stream_trace(&program, None)
        .expect("stream open")
        .expect("entry present")
        .with_sampling(Sampling::default_plan());
    let from_disk = sim.simulate_sampled(&mut stream).expect("sampled sim");
    assert_eq!(from_memory, from_disk);

    // The stream's working set is a fixed small buffer, not the whole
    // encoding: memory stays O(sample unit) however long the trace is.
    assert!(
        stream.buffer_bytes() < trace.encoded_bytes(),
        "streaming buffer {} >= encoded trace {}",
        stream.buffer_bytes(),
        trace.encoded_bytes()
    );
    std::fs::remove_dir_all(&root).ok();
}

/// Integration: sampled evaluation through the persistent store is
/// byte-deterministic across processes, and the warm restart performs
/// zero functional executions (the evaluator streams the persisted
/// trace).
#[test]
fn sampled_experiments_are_deterministic_through_a_persistent_store() {
    let root = temp_root("persist");
    let run = || {
        let store = WorkloadStore::persistent(&root).expect("persistent store");
        let report = Experiment::new()
            .title("sampled persistence")
            .workloads([mibench::sha(), mibench::qsort()])
            .size(WorkloadSize::Tiny)
            .evaluators([EvalKind::Sim, EvalKind::Sampled])
            .with_cache(store.clone())
            .run()
            .expect("experiment");
        (report.to_json(), store.stats())
    };
    let (first, cold) = run();
    let (second, warm) = run();
    assert_eq!(first, second, "sampled reports must be byte-identical");
    assert_eq!(cold.functional_executions, 2, "one recording per workload");
    assert_eq!(
        warm.functional_executions, 0,
        "warm restart replays persisted traces only"
    );
    for row in mim::runner::ExperimentReport::from_json(&first)
        .expect("report parses")
        .rows
    {
        match row.kind {
            EvalKind::Sampled => {
                let summary = row.sampling.expect("sampled rows carry a summary");
                assert!(summary.units > 1 && summary.fraction < 0.5);
                assert!(summary.cpi_ci95.is_finite());
            }
            _ => assert!(row.sampling.is_none(), "non-sampled rows carry no summary"),
        }
    }
    std::fs::remove_dir_all(&root).ok();
}
