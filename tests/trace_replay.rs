//! Replay-equivalence guarantees of the trace layer: for every bundled
//! workload (the programs behind all fig* benches) and for random
//! programs, timing results computed from a recorded-trace replay are
//! byte-identical to results computed from direct functional execution.

use mim::core::{DesignSpace, MachineConfig};
use mim::isa::{Program, ProgramBuilder, Reg};
use mim::pipeline::PipelineSim;
use mim::profile::SweepProfiler;
use mim::trace::{Trace, TraceSource};
use mim::workloads::{mibench, spec, WorkloadSize};
use proptest::prelude::*;

/// All bundled kernels: the 19 MiBench-like programs every fig* bench
/// draws from, the 6 SPEC-like programs of fig6, and a compiler-pass
/// variant (fig8's subject).
fn bundled_programs() -> Vec<Program> {
    let mut programs: Vec<Program> = mibench::all()
        .into_iter()
        .chain(spec::all())
        .map(|w| w.program(WorkloadSize::Tiny))
        .collect();
    programs.push(mim::workloads::opt::schedule(
        &mibench::sha().program(WorkloadSize::Tiny),
    ));
    programs
}

fn sweep_profiler() -> SweepProfiler {
    SweepProfiler::for_design_space(&DesignSpace::paper_table2())
}

/// Replayed `SimResult` == direct-execution `SimResult`, field for field,
/// for every bundled workload.
#[test]
fn sim_replay_is_byte_identical_for_all_bundled_workloads() {
    let sim = PipelineSim::new(&MachineConfig::default_config());
    for p in bundled_programs() {
        let direct = sim.simulate(&p).expect("direct simulation");
        let trace = Trace::record(&p, None).expect("recording");
        let mut replay = trace.replay(&p).expect("trace matches program");
        let replayed = sim
            .simulate_source(&mut replay)
            .expect("replayed simulation");
        assert_eq!(direct, replayed, "{}", p.name());
    }
}

/// Replayed `WorkloadProfile` == direct-execution profile for the full
/// Table 2 sweep, compared on serialized bytes (the strictest equality
/// the type offers).
#[test]
fn profile_replay_is_byte_identical_for_all_bundled_workloads() {
    let profiler = sweep_profiler();
    for p in bundled_programs() {
        let direct = profiler.profile(&p, None).expect("direct profile");
        let trace = Trace::record(&p, None).expect("recording");
        let mut replay = trace.replay(&p).expect("trace matches program");
        let replayed = profiler
            .profile_source(&mut replay)
            .expect("replayed profile");
        assert_eq!(
            serde_json::to_string(&direct).unwrap(),
            serde_json::to_string(&replayed).unwrap(),
            "{}",
            p.name()
        );
    }
}

/// Serialization round-trips deterministically for every bundled
/// workload, and the decoded trace still replays identically.
#[test]
fn serialization_round_trips_for_all_bundled_workloads() {
    let sim = PipelineSim::new(&MachineConfig::default_config());
    for p in bundled_programs() {
        let trace = Trace::record(&p, None).expect("recording");
        let bytes = trace.to_bytes();
        assert_eq!(
            bytes,
            trace.to_bytes(),
            "{}: nondeterministic bytes",
            p.name()
        );
        let decoded = Trace::from_bytes(&bytes).expect("decode");
        assert_eq!(decoded, trace, "{}", p.name());
        let direct = sim.simulate(&p).unwrap();
        let mut replay = decoded.replay(&p).expect("decoded trace matches");
        assert_eq!(
            direct,
            sim.simulate_source(&mut replay).unwrap(),
            "{}",
            p.name()
        );
    }
}

/// The unified instruction-limit satellite: with the same limit, trace,
/// profile, and simulation all describe the same dynamic instruction
/// window — including truncated (non-halting) windows.
#[test]
fn sim_and_profile_agree_on_truncated_windows() {
    let machine = MachineConfig::default_config();
    let sim = PipelineSim::new(&machine);
    let profiler = SweepProfiler::new(
        machine.hierarchy.clone(),
        vec![machine.hierarchy.l2.clone()],
        vec![machine.predictor.clone()],
    );
    let p = mibench::dijkstra().program(WorkloadSize::Small);
    for limit in [1_000u64, 5_000, 50_000] {
        let trace = Trace::record(&p, Some(limit)).expect("recording");
        assert_eq!(trace.len(), limit);
        let s = sim
            .simulate_source(&mut trace.replay(&p).unwrap())
            .expect("sim");
        let prof = profiler
            .profile_source(&mut trace.replay(&p).unwrap())
            .expect("profile");
        assert_eq!(s.instructions, limit);
        assert_eq!(
            s.instructions, prof.num_insts,
            "sim and profile must see the same window at limit {limit}"
        );
        // And both match the pre-trace direct paths at the same limit.
        assert_eq!(s, sim.simulate_limit(&p, Some(limit)).unwrap());
        assert_eq!(
            prof.num_insts,
            profiler.profile(&p, Some(limit)).unwrap().num_insts
        );
    }
}

// ---- random programs ------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Alu(u8, u8, u8, u8),
    Imm(u8, u8, u8, i32),
    Li(u8, i32),
    Ld(u8, u8),
    St(u8, u8),
    SkipNext(u8, u8), // conditional branch over the following instruction
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..11, 1u8..28, 0u8..28, 0u8..28).prop_map(|(o, d, a, b)| Op::Alu(o, d, a, b)),
        (0u8..8, 1u8..28, 0u8..28, -1000i32..1000).prop_map(|(o, d, a, i)| Op::Imm(o, d, a, i)),
        (1u8..28, -100_000i32..100_000).prop_map(|(d, i)| Op::Li(d, i)),
        (1u8..28, 0u8..16).prop_map(|(d, s)| Op::Ld(d, s)),
        (0u8..28, 0u8..16).prop_map(|(v, s)| Op::St(v, s)),
        (0u8..28, 0u8..28).prop_map(|(a, b)| Op::SkipNext(a, b)),
    ]
}

/// Builds a safe random program: registers initialized, no divides, all
/// memory inside a 16-word arena, forward-only branches.
fn build(ops: &[Op]) -> Program {
    let mut b = ProgramBuilder::named("random");
    b.alloc_words(16);
    let base = Reg::R30;
    b.li(base, 0);
    for i in 0..28 {
        b.li(Reg::from_index(i).unwrap(), i as i64 + 1);
    }
    let reg = |i: u8| Reg::from_index(i as usize).unwrap();
    for op in ops {
        match *op {
            Op::Alu(o, d, a, c) => {
                let (d, a, c) = (reg(d), reg(a), reg(c));
                match o {
                    0 => b.add(d, a, c),
                    1 => b.sub(d, a, c),
                    2 => b.and(d, a, c),
                    3 => b.or(d, a, c),
                    4 => b.xor(d, a, c),
                    5 => b.sll(d, a, c),
                    6 => b.srl(d, a, c),
                    7 => b.sra(d, a, c),
                    8 => b.slt(d, a, c),
                    9 => b.sltu(d, a, c),
                    _ => b.mul(d, a, c),
                }
            }
            Op::Imm(o, d, a, i) => {
                let (d, a, i) = (reg(d), reg(a), i64::from(i));
                match o {
                    0 => b.addi(d, a, i),
                    1 => b.andi(d, a, i),
                    2 => b.ori(d, a, i),
                    3 => b.xori(d, a, i),
                    4 => b.slli(d, a, i & 63),
                    5 => b.srli(d, a, i & 63),
                    6 => b.srai(d, a, i & 63),
                    _ => b.slti(d, a, i),
                }
            }
            Op::Li(d, i) => b.li(reg(d), i64::from(i)),
            Op::Ld(d, s) => b.ld(reg(d), base, i64::from(s) * 8),
            Op::St(v, s) => b.st(reg(v), base, i64::from(s) * 8),
            Op::SkipNext(a, c) => {
                let skip = b.label();
                b.beq(reg(a), reg(c), skip);
                b.addi(Reg::R29, Reg::R29, 1);
                b.bind(skip);
            }
        }
    }
    b.halt();
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Replayed simulation and profile match direct execution on random
    /// programs (branches included), full and truncated.
    #[test]
    fn random_programs_replay_identically(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let p = build(&ops);
        let sim = PipelineSim::new(&MachineConfig::default_config());
        let profiler = sweep_profiler();

        let trace = Trace::record(&p, None).expect("random programs are safe");
        let direct_sim = sim.simulate(&p).unwrap();
        let replayed_sim = sim.simulate_source(&mut trace.replay(&p).unwrap()).unwrap();
        prop_assert_eq!(&direct_sim, &replayed_sim);

        let direct_prof = profiler.profile(&p, None).unwrap();
        let replayed_prof = profiler.profile_source(&mut trace.replay(&p).unwrap()).unwrap();
        prop_assert_eq!(
            serde_json::to_string(&direct_prof).unwrap(),
            serde_json::to_string(&replayed_prof).unwrap()
        );

        // Serialization round-trip preserves the trace exactly.
        let decoded = Trace::from_bytes(&trace.to_bytes()).unwrap();
        prop_assert_eq!(&decoded, &trace);

        // Truncated replay == truncated direct execution.
        let half = (trace.len() / 2).max(1);
        let direct_half = sim.simulate_limit(&p, Some(half)).unwrap();
        let mut replay_half = trace.replay(&p).unwrap().with_limit(Some(half));
        prop_assert_eq!(direct_half, sim.simulate_source(&mut replay_half).unwrap());
    }

    /// The raw event streams are identical, not just the aggregates.
    #[test]
    fn random_programs_produce_identical_event_streams(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let p = build(&ops);
        let trace = Trace::record(&p, None).unwrap();
        let mut live = Vec::new();
        mim::trace::LiveVm::new(&p).drive(&mut |ev| live.push(*ev)).unwrap();
        let mut replayed = Vec::new();
        trace.replay(&p).unwrap().drive(&mut |ev| replayed.push(*ev)).unwrap();
        prop_assert_eq!(live, replayed);
    }
}
