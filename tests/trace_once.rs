//! The record-once acceptance test: a full `table2`-style design-space
//! simulation sweep performs **exactly one** functional `Vm` execution per
//! `(workload, size)` — every one of the 192 design points' simulations,
//! profiles, and MLP estimates replays the single recording.
//!
//! Executions are counted with the per-[`WorkloadStore`] counter
//! ([`WorkloadStore::functional_executions`]), which only observes
//! executions the sweep's own store triggered — so this file is immune to
//! test ordering and to any other test's VM activity in the same process
//! (the process-global `mim_isa::functional_executions` counter remains
//! available for whole-process audits).

use mim::core::DesignSpace;
use mim::explore::{Exploration, Objective};
use mim::runner::{EvalKind, Experiment, WorkloadStore};
use mim::workloads::{mibench, WorkloadSize};

#[test]
fn table2_sim_sweep_executes_each_workload_exactly_once() {
    let workloads = [mibench::sha(), mibench::qsort(), mibench::dijkstra()];
    let n_workloads = workloads.len() as u64;
    let space = DesignSpace::paper_table2();
    assert_eq!(space.len(), 192, "paper's table 2 space");

    // Simulation-only sweep: the historical worst case (one functional
    // re-execution per design point per workload = 576 runs + 3 profiler
    // runs before the trace layer).
    let store = WorkloadStore::new();
    let report = Experiment::new()
        .title("record-once acceptance")
        .workloads(workloads.clone())
        .size(WorkloadSize::Tiny)
        .limit(20_000)
        .design_space(space.clone())
        .evaluators([EvalKind::Sim])
        .threads(2)
        .with_cache(store.clone())
        .run()
        .expect("sweep");
    assert_eq!(report.rows.len(), 3 * 192);
    assert_eq!(
        store.functional_executions(),
        n_workloads,
        "a sim sweep must functionally execute each (workload, size) exactly once"
    );

    // Adding the model and the out-of-order comparator (profiling + MLP
    // estimation) still replays the same recordings: zero additional
    // functional executions beyond the one per workload.
    let store = WorkloadStore::new();
    let report = Experiment::new()
        .title("record-once acceptance: all evaluator families")
        .workloads(workloads)
        .size(WorkloadSize::Tiny)
        .limit(20_000)
        .design_space(space)
        .stride(8) // 24 points × 3 evaluators: keep the grid quick
        .evaluators([EvalKind::Model, EvalKind::Sim, EvalKind::Ooo])
        .threads(2)
        .with_cache(store.clone())
        .run()
        .expect("sweep");
    assert_eq!(report.rows.len(), 3 * 24 * 3);
    assert_eq!(
        store.functional_executions(),
        n_workloads,
        "model + sim + ooo sweeps must share the single recording per workload"
    );

    // The headline hybrid workflow (model search, then sim-verification of
    // the survivors) records up front, so the whole exploration is also
    // one functional execution per workload.
    let store = WorkloadStore::new();
    let exploration = Exploration::new(DesignSpace::paper_table2())
        .workloads([mibench::sha(), mibench::qsort(), mibench::dijkstra()])
        .size(WorkloadSize::Tiny)
        .limit(20_000)
        .objectives([Objective::cpi()])
        .sim_verify(0.02)
        .threads(2)
        .with_cache(store.clone())
        .run()
        .expect("hybrid exploration");
    assert!(exploration.hybrid.is_some());
    assert_eq!(
        store.functional_executions(),
        n_workloads,
        "hybrid model→sim exploration must execute each workload exactly once"
    );
}
