//! Facade-level coverage of the unified evaluation API: the prelude must
//! expose everything a downstream experiment needs, and the old
//! hand-wired flow and the new `Experiment` flow must agree exactly.

use mim::prelude::*;

/// The prelude alone suffices for a model-vs-sim validation.
#[test]
fn prelude_supports_full_experiment_flow() {
    let report = Experiment::new()
        .title("facade")
        .workload(mim::workloads::mibench::sha())
        .size(WorkloadSize::Tiny)
        .evaluators([EvalKind::Model, EvalKind::Sim])
        .run()
        .expect("experiment");
    let diff = report.compare("model", "sim");
    assert_eq!(diff.len(), 1);
    assert!(diff[0].error_percent.abs() < 20.0);
}

/// The `Experiment` path must reproduce the legacy hand-wired flow
/// bit-for-bit: same profile, same model, same simulator.
#[test]
fn experiment_matches_hand_wired_flow() {
    let machine = MachineConfig::default_config();
    let program = mim::workloads::mibench::qsort().program(WorkloadSize::Tiny);

    // Legacy flow: wire Profiler -> MechanisticModel and PipelineSim.
    let inputs = Profiler::new(&machine).profile(&program).expect("profile");
    let stack = MechanisticModel::new(&machine).predict(&inputs);
    let sim = PipelineSim::new(&machine).simulate(&program).expect("sim");

    // New flow: declare the same study.
    let report = Experiment::new()
        .machine(machine)
        .workload(mim::workloads::mibench::qsort())
        .size(WorkloadSize::Tiny)
        .evaluators([EvalKind::Model, EvalKind::Sim])
        .run()
        .expect("experiment");
    let model_cell = report.get("qsort", 0, "model").expect("model cell");
    let sim_cell = report.get("qsort", 0, "sim").expect("sim cell");

    assert_eq!(model_cell.cpi, stack.cpi(), "model CPI is bit-identical");
    assert_eq!(model_cell.stack.as_ref(), Some(&stack));
    assert_eq!(sim_cell.cpi, sim.cpi(), "sim CPI is bit-identical");
    assert_eq!(sim_cell.cycles, sim.cycles as f64);
    assert_eq!(sim_cell.misses, Some(sim.misses));
}

/// Standalone trait objects work straight from the prelude.
#[test]
fn prelude_exposes_trait_object_evaluators() {
    let machine = MachineConfig::default_config();
    let evaluator: Box<dyn Evaluator> = Box::new(ModelEvaluator::new(&machine));
    let result: EvalResult = evaluator
        .evaluate(
            &WorkloadSpec::from(mim::workloads::mibench::crc32()),
            WorkloadSize::Tiny,
        )
        .expect("evaluate");
    assert_eq!(result.kind, EvalKind::Model);
    assert!(result.cpi >= 0.25);
}
