//! Property-based tests over randomly generated programs: structural
//! invariants that must hold for *any* workload, not just the curated
//! kernels.

use mim::core::{MachineConfig, MechanisticModel};
use mim::isa::{Program, ProgramBuilder, Reg, Vm};
use mim::prelude::*;
use proptest::prelude::*;

/// A recipe for one random straight-line instruction.
#[derive(Debug, Clone)]
enum OpKind {
    Alu,
    Mul,
    Div,
    Load,
    Store,
}

fn op_strategy() -> impl Strategy<Value = (OpKind, u8, u8, u8, u8)> {
    // (kind, dst, src1, src2, mem_slot)
    (
        prop_oneof![
            4 => Just(OpKind::Alu),
            1 => Just(OpKind::Mul),
            1 => Just(OpKind::Div),
            2 => Just(OpKind::Load),
            1 => Just(OpKind::Store),
        ],
        2u8..24,
        1u8..24,
        1u8..24,
        0u8..32,
    )
}

/// Builds a random but well-defined straight-line program: every register
/// is initialized first, divides use a guaranteed-nonzero register, and
/// memory operations stay inside a private 32-word arena.
fn random_program(ops: Vec<(OpKind, u8, u8, u8, u8)>) -> Program {
    let mut b = ProgramBuilder::named("random");
    let arena = b.alloc_words(32);
    let base = Reg::R30;
    let nonzero = Reg::R31;
    b.li(base, arena as i64);
    b.li(nonzero, 7);
    for i in 0..24 {
        b.li(Reg::from_index(i).unwrap(), (i as i64) * 3 + 1);
    }
    for (kind, dst, s1, s2, slot) in ops {
        let dst = Reg::from_index(dst as usize).unwrap();
        let s1 = Reg::from_index(s1 as usize).unwrap();
        let s2 = Reg::from_index(s2 as usize).unwrap();
        let off = (slot as i64) * 8;
        match kind {
            OpKind::Alu => b.add(dst, s1, s2),
            OpKind::Mul => b.mul(dst, s1, s2),
            OpKind::Div => b.div(dst, s1, nonzero),
            OpKind::Load => b.ld(dst, base, off),
            OpKind::Store => b.st(s1, base, off),
        }
    }
    b.halt();
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The simulator can never beat the model's base bound `N/W`, and the
    /// model never predicts fewer than `N/W` cycles either.
    #[test]
    fn nothing_beats_n_over_w(ops in proptest::collection::vec(op_strategy(), 10..300)) {
        let program = random_program(ops);
        let machine = MachineConfig::default_config();
        let n = program.len() as f64 - 1.0; // halt does not retire
        let floor = n / f64::from(machine.width);
        let sim = PipelineSim::new(&machine).simulate(&program).unwrap();
        prop_assert!(sim.cycles as f64 >= floor);
        let inputs = Profiler::new(&machine).profile(&program).unwrap();
        let stack = MechanisticModel::new(&machine).predict(&inputs);
        prop_assert!(stack.total_cycles() >= floor - 1e-9);
    }

    /// All model components are non-negative and sum to the total.
    #[test]
    fn stack_components_are_consistent(ops in proptest::collection::vec(op_strategy(), 10..200)) {
        let program = random_program(ops);
        let machine = MachineConfig::default_config();
        let inputs = Profiler::new(&machine).profile(&program).unwrap();
        let stack = MechanisticModel::new(&machine).predict(&inputs);
        let mut sum = 0.0;
        for (c, v) in stack.components() {
            prop_assert!(v >= 0.0, "{} negative", c.label());
            sum += v;
        }
        prop_assert!((sum - stack.total_cycles()).abs() < 1e-6);
    }

    /// Simulation and profiling observe identical event counts (they share
    /// the cache and predictor components by construction).
    #[test]
    fn sim_and_profile_counts_agree(ops in proptest::collection::vec(op_strategy(), 10..200)) {
        let program = random_program(ops);
        let machine = MachineConfig::default_config();
        let sim = PipelineSim::new(&machine).simulate(&program).unwrap();
        let prof = Profiler::new(&machine).profile(&program).unwrap();
        prop_assert_eq!(sim.instructions, prof.num_insts);
        prop_assert_eq!(sim.misses, prof.misses);
    }

    /// Simulation is deterministic.
    #[test]
    fn simulation_is_deterministic(ops in proptest::collection::vec(op_strategy(), 10..150)) {
        let program = random_program(ops);
        let machine = MachineConfig::default_config();
        let a = PipelineSim::new(&machine).simulate(&program).unwrap();
        let b = PipelineSim::new(&machine).simulate(&program).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Widening the machine never slows it down materially. (Exact
    /// monotonicity does not hold for arbitrary programs — fetch-group
    /// alignment shifts with width — so a small tolerance is allowed.)
    #[test]
    fn geometry_monotonicity(ops in proptest::collection::vec(op_strategy(), 20..200)) {
        let program = random_program(ops);
        let mut prev = u64::MAX;
        for width in 1..=4u32 {
            let machine = MachineConfig { width, ..MachineConfig::default_config() };
            let r = PipelineSim::new(&machine).simulate(&program).unwrap();
            let bound = (prev as f64 * 1.03 + 20.0).min(u64::MAX as f64);
            prop_assert!(
                (r.cycles as f64) <= bound,
                "width {width} slowed down: {} vs previous {prev}",
                r.cycles
            );
            prev = prev.min(r.cycles);
        }
    }

    /// The list scheduler preserves the architectural result of random
    /// straight-line programs (beyond the curated kernels).
    #[test]
    fn scheduler_preserves_random_program_semantics(
        ops in proptest::collection::vec(op_strategy(), 10..200)
    ) {
        let program = random_program(ops);
        let scheduled = mim::workloads::opt::schedule(&program);
        prop_assert_eq!(program.len(), scheduled.len());
        let mut v1 = Vm::new(&program);
        let mut v2 = Vm::new(&scheduled);
        v1.run(None).unwrap();
        v2.run(None).unwrap();
        prop_assert_eq!(v1.memory(), v2.memory());
    }
}
