//! Cross-crate design-space behaviour: single-pass sweep consistency,
//! model accuracy across machine shapes, and EDP sanity.

use mim::core::{DesignSpace, MachineConfig, MechanisticModel};
use mim::power::{Activity, EnergyModel};
use mim::prelude::*;
use mim::profile::SweepProfiler;

#[test]
fn sweep_profile_matches_per_point_profilers() {
    // The single-pass sweep must produce the same model inputs as a
    // dedicated single-configuration profiling run for every (L2,
    // predictor) pair.
    let space = DesignSpace::paper_table2();
    let sweep = SweepProfiler::for_design_space(&space);
    let program = mim::workloads::mibench::qsort().program(WorkloadSize::Tiny);
    let profile = sweep.profile(&program, None).unwrap();

    for point in space.points().step_by(37) {
        let direct = Profiler::new(&point.machine).profile(&program).unwrap();
        let from_sweep = profile.inputs_for(point.l2_index, point.predictor_index);
        assert_eq!(direct, from_sweep, "mismatch at {}", point.machine.id());
    }
}

#[test]
fn model_error_is_bounded_across_sampled_space() {
    let space = DesignSpace::paper_table2();
    let sweep = SweepProfiler::for_design_space(&space);
    let mut errors = Vec::new();
    for w in [
        mim::workloads::mibench::gsm_c(),
        mim::workloads::mibench::stringsearch(),
    ] {
        let program = w.program(WorkloadSize::Tiny);
        let profile = sweep.profile(&program, None).unwrap();
        for point in space.points().step_by(11) {
            let inputs = profile.inputs_for(point.l2_index, point.predictor_index);
            let model_cpi = MechanisticModel::new(&point.machine).predict(&inputs).cpi();
            let sim_cpi = PipelineSim::new(&point.machine)
                .simulate(&program)
                .unwrap()
                .cpi();
            errors.push((model_cpi - sim_cpi).abs() / sim_cpi);
        }
    }
    let avg = errors.iter().sum::<f64>() / errors.len() as f64;
    let max = errors.iter().cloned().fold(0.0, f64::max);
    assert!(avg < 0.08, "average design-space error {:.1}%", avg * 100.0);
    assert!(max < 0.25, "max design-space error {:.1}%", max * 100.0);
}

#[test]
fn bigger_l2_never_increases_model_memory_component() {
    let space = DesignSpace::paper_table2();
    let sweep = SweepProfiler::for_design_space(&space);
    let program = mim::workloads::spec::libquantum_like().program(WorkloadSize::Tiny);
    let profile = sweep.profile(&program, None).unwrap();
    // 8-way candidates are at even indices, ordered by size.
    let mut last = f64::INFINITY;
    for l2_index in (0..8).step_by(2) {
        let inputs = profile.inputs_for(l2_index, 0);
        let machine = MachineConfig::default_config();
        let stack = MechanisticModel::new(&machine).predict(&inputs);
        let mem_component = stack.l2_miss();
        assert!(
            mem_component <= last + 1e-9,
            "L2 candidate {l2_index} increased the memory component"
        );
        last = mem_component;
    }
}

#[test]
fn edp_rankings_from_model_and_simulation_broadly_agree() {
    // Figure 9's premise: the model's EDP landscape picks (nearly) the
    // same optimum as detailed simulation. Checked on a coarse subsample.
    let space = DesignSpace::paper_table2();
    let sweep = SweepProfiler::for_design_space(&space);
    let program = mim::workloads::mibench::gsm_c().program(WorkloadSize::Tiny);
    let profile = sweep.profile(&program, None).unwrap();

    let mut pairs = Vec::new();
    for point in space.points().step_by(13) {
        let inputs = profile.inputs_for(point.l2_index, point.predictor_index);
        let stack = MechanisticModel::new(&point.machine).predict(&inputs);
        let sim = PipelineSim::new(&point.machine).simulate(&program).unwrap();
        let energy = EnergyModel::new(&point.machine);
        let edp_model = energy
            .evaluate(&Activity::from_model(&inputs, stack.total_cycles()))
            .edp();
        let edp_sim = energy.evaluate(&Activity::from_sim(&sim, &inputs)).edp();
        pairs.push((edp_model, edp_sim));
    }
    // Spearman-ish check: the model-optimal point must rank in the top
    // three by simulated EDP.
    let best_model = pairs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).unwrap())
        .map(|(i, _)| i)
        .unwrap();
    let mut by_sim: Vec<usize> = (0..pairs.len()).collect();
    by_sim.sort_by(|&a, &b| pairs[a].1.partial_cmp(&pairs[b].1).unwrap());
    let rank = by_sim.iter().position(|&i| i == best_model).unwrap();
    assert!(
        rank < 3,
        "model-optimal design point ranks {rank} by simulated EDP"
    );
}

#[test]
fn cpi_is_frequency_sensitive_only_through_memory() {
    // A cache-resident kernel has (nearly) frequency-independent CPI; a
    // memory-bound kernel gets worse CPI at higher frequency (fixed ns
    // latencies cost more cycles).
    let program_cpu = mim::workloads::mibench::sha().program(WorkloadSize::Tiny);
    let program_mem = mim::workloads::spec::mcf_like().program(WorkloadSize::Tiny);
    let at_freq = |program: &mim::isa::Program, ghz: f64| {
        let machine = MachineConfig {
            frequency_ghz: ghz,
            ..MachineConfig::default_config()
        };
        PipelineSim::new(&machine).simulate(program).unwrap().cpi()
    };
    let cpu_ratio = at_freq(&program_cpu, 1.0) / at_freq(&program_cpu, 0.6);
    let mem_ratio = at_freq(&program_mem, 1.0) / at_freq(&program_mem, 0.6);
    assert!(
        cpu_ratio < 1.1,
        "compute kernel CPI moved {cpu_ratio:.3}x with frequency"
    );
    assert!(
        mem_ratio > 1.3,
        "memory kernel CPI should scale with frequency, got {mem_ratio:.3}x"
    );
}
