//! End-to-end validation: the mechanistic model against cycle-accurate
//! simulation across the full workload suite (the paper's Figures 3 and 6
//! in miniature — the `mim-bench` binaries run the full-size versions).

use mim::core::MechanisticModel;
use mim::prelude::*;

fn validate(workloads: Vec<mim::workloads::Workload>, per_bench_bound: f64, avg_bound: f64) {
    let machine = MachineConfig::default_config();
    let model = MechanisticModel::new(&machine);
    let profiler = Profiler::new(&machine);
    let sim = PipelineSim::new(&machine);

    let mut errors = Vec::new();
    for w in workloads {
        let program = w.program(WorkloadSize::Tiny);
        let inputs = profiler.profile(&program).expect("profiling failed");
        let predicted = model.predict(&inputs);
        let simulated = sim.simulate(&program).expect("simulation failed");
        let err = (predicted.cpi() - simulated.cpi()).abs() / simulated.cpi();
        assert!(
            err < per_bench_bound,
            "{}: model {:.4} vs sim {:.4} ({:.1}% error)",
            w.name(),
            predicted.cpi(),
            simulated.cpi(),
            100.0 * err
        );
        errors.push(err);
    }
    let avg = errors.iter().sum::<f64>() / errors.len() as f64;
    assert!(
        avg < avg_bound,
        "average error {:.2}% exceeds bound {:.2}%",
        100.0 * avg,
        100.0 * avg_bound
    );
}

#[test]
fn mibench_validation_default_machine() {
    // The paper reports 3.1% average and 8.4% max on MiBench; at Tiny
    // input sizes cold-cache effects are proportionally larger, so the
    // bounds here are looser than the full-size experiment.
    validate(mim::workloads::mibench::all(), 0.20, 0.06);
}

#[test]
fn spec_validation_default_machine() {
    // Paper: 4.1% average, 10.7% max on the memory-intensive suite.
    validate(mim::workloads::spec::all(), 0.20, 0.08);
}

#[test]
fn model_is_exact_for_straight_line_alu_code() {
    // For code with no misses, branches, dependencies, or long-latency
    // ops, both the model and the simulator must converge to N/W
    // (up to cold misses and pipeline fill).
    let machine = MachineConfig::default_config();
    let mut b = mim::isa::ProgramBuilder::named("straightline");
    for i in 0..2000usize {
        b.li(mim::isa::Reg::from_index(1 + (i % 24)).unwrap(), 1);
    }
    b.halt();
    let program = b.build();
    let inputs = Profiler::new(&machine).profile(&program).unwrap();
    let stack = MechanisticModel::new(&machine).predict(&inputs);
    // Everything except base and the I-side cold misses must be zero.
    assert_eq!(stack.dependencies(), 0.0);
    assert_eq!(stack.mul_div(), 0.0);
    assert_eq!(stack.cycles_of(mim::core::StackComponent::BranchMiss), 0.0);
    assert!((stack.cycles_of(mim::core::StackComponent::Base) - 500.0).abs() < 1e-9);
}

#[test]
fn model_tracks_width_scaling_like_the_simulator() {
    // Figure 4's insight: sha scales with width, dijkstra saturates.
    // Both the model and the simulator must agree on the *speedup* of
    // W=4 over W=1 within a modest tolerance.
    for w in [
        mim::workloads::mibench::sha(),
        mim::workloads::mibench::dijkstra(),
    ] {
        let program = w.program(WorkloadSize::Tiny);
        let mut cpis = Vec::new();
        for width in [1u32, 4] {
            let machine = MachineConfig {
                width,
                ..MachineConfig::default_config()
            };
            let inputs = Profiler::new(&machine).profile(&program).unwrap();
            let model_cpi = MechanisticModel::new(&machine).predict(&inputs).cpi();
            let sim_cpi = PipelineSim::new(&machine).simulate(&program).unwrap().cpi();
            cpis.push((model_cpi, sim_cpi));
        }
        let model_speedup = cpis[0].0 / cpis[1].0;
        let sim_speedup = cpis[0].1 / cpis[1].1;
        let rel = (model_speedup - sim_speedup).abs() / sim_speedup;
        assert!(
            rel < 0.15,
            "{}: model speedup {:.2} vs sim speedup {:.2}",
            w.name(),
            model_speedup,
            sim_speedup
        );
    }
}

#[test]
fn sha_benefits_more_from_width_than_dijkstra() {
    // The paper's Figure 4 headline.
    let machine_w = |width| MachineConfig {
        width,
        ..MachineConfig::default_config()
    };
    let speedup = |w: &mim::workloads::Workload| {
        let program = w.program(WorkloadSize::Tiny);
        let narrow = PipelineSim::new(&machine_w(1)).simulate(&program).unwrap();
        let wide = PipelineSim::new(&machine_w(4)).simulate(&program).unwrap();
        narrow.cycles as f64 / wide.cycles as f64
    };
    let sha = speedup(&mim::workloads::mibench::sha());
    let dijkstra = speedup(&mim::workloads::mibench::dijkstra());
    assert!(
        sha > dijkstra + 0.2,
        "sha speedup {sha:.2} should clearly exceed dijkstra {dijkstra:.2}"
    );
}
