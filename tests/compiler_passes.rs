//! The §6.2 pipeline end-to-end: compiler passes change performance in the
//! direction the paper reports, while preserving program semantics.

use mim::core::{MachineConfig, MechanisticModel, StackComponent};
use mim::prelude::*;
use mim::workloads::{mibench, opt};

/// All three variants of a kernel must compute identical memory state.
#[test]
fn all_variants_compute_identical_results() {
    for w in mibench::all() {
        let nosched = w.program(WorkloadSize::Tiny);
        let o3 = opt::schedule(&nosched);
        let unrolled = opt::schedule(&opt::unroll(&nosched, 4));
        let run = |p: &mim::isa::Program| {
            let mut vm = Vm::new(p);
            let outcome = vm.run(Some(30_000_000)).expect("fault");
            assert!(outcome.halted(), "{} variant did not halt", w.name());
            vm.memory().to_vec()
        };
        let m0 = run(&nosched);
        assert_eq!(m0, run(&o3), "{}: O3 changed results", w.name());
        assert_eq!(m0, run(&unrolled), "{}: unroll changed results", w.name());
    }
}

#[test]
fn unrolling_reduces_dynamic_instructions_and_taken_branches() {
    let machine = MachineConfig::default_config();
    let profiler = Profiler::new(&machine);
    let mut reduced_insts = 0;
    let mut reduced_taken = 0;
    let mut eligible = 0;
    for w in mibench::all() {
        let base = w.program(WorkloadSize::Tiny);
        let unrolled = opt::unroll(&base, 4);
        if unrolled.len() == base.len() {
            continue; // no eligible loops
        }
        eligible += 1;
        let pb = profiler.profile(&base).unwrap();
        let pu = profiler.profile(&unrolled).unwrap();
        if pu.num_insts < pb.num_insts {
            reduced_insts += 1;
        }
        let taken = |p: &mim::core::ModelInputs| p.branch.taken_correct + p.mix.jump;
        if taken(&pu) < taken(&pb) {
            reduced_taken += 1;
        }
    }
    assert!(
        eligible >= 8,
        "unroller found only {eligible} eligible kernels"
    );
    assert!(
        reduced_taken * 2 > eligible,
        "taken branches reduced on only {reduced_taken}/{eligible} kernels"
    );
    assert!(
        reduced_insts * 2 > eligible,
        "instruction count reduced on only {reduced_insts}/{eligible} kernels"
    );
}

#[test]
fn optimizations_speed_up_the_streaming_kernels_in_simulation() {
    // Figure 8's five benchmarks include gsm_c and tiff-family kernels; at
    // minimum the regular streaming kernels must not regress, and unroll
    // must beat nosched on balance.
    let machine = MachineConfig::default_config();
    let sim = PipelineSim::new(&machine);
    let mut improved = 0;
    let mut total = 0;
    for w in [
        mibench::gsm_c(),
        mibench::tiff2bw(),
        mibench::tiff2rgba(),
        mibench::lame(),
        mibench::jpeg_c(),
    ] {
        let base = w.program(WorkloadSize::Tiny);
        let unrolled = opt::schedule(&opt::unroll(&base, 4));
        let tb = sim.simulate(&base).unwrap().cycles;
        let tu = sim.simulate(&unrolled).unwrap().cycles;
        total += 1;
        if tu < tb {
            improved += 1;
        }
    }
    assert!(
        improved >= total - 1,
        "unroll+schedule improved only {improved}/{total} streaming kernels"
    );
}

#[test]
fn model_attributes_the_unrolling_win_to_the_right_components() {
    // On tiff2bw (paper's mul-heavy streaming benchmark), unrolling must
    // shrink base (fewer dynamic instructions), taken-branch, and
    // dependency components while leaving mul/div work unchanged.
    let machine = MachineConfig::default_config();
    let profiler = Profiler::new(&machine);
    let model = MechanisticModel::new(&machine);
    let base_p = mibench::tiff2bw().program(WorkloadSize::Tiny);
    let unrolled_p = opt::schedule(&opt::unroll(&base_p, 4));
    let sb = model.predict(&profiler.profile(&base_p).unwrap());
    let su = model.predict(&profiler.profile(&unrolled_p).unwrap());

    assert!(su.cycles_of(StackComponent::Base) < sb.cycles_of(StackComponent::Base));
    assert!(
        su.cycles_of(StackComponent::TakenBranch) < 0.5 * sb.cycles_of(StackComponent::TakenBranch)
    );
    assert!(su.dependencies() < sb.dependencies());
    // The same multiplies execute either way.
    assert!((su.mul_div() - sb.mul_div()).abs() < 1e-9);
}
