//! Acceptance tests for the persistent workload store and the bounded
//! in-memory caches behind long-running servers:
//!
//! * `StoreStats` counters account every trace/profile request of a
//!   repeated sweep (hits, misses, bytes persisted);
//! * a warm restart — a fresh process pointed at the same store
//!   directory — performs **zero** functional executions and reproduces
//!   byte-identical reports;
//! * the LRU capacity bound keeps memory bounded without changing a
//!   single output byte.

use std::path::PathBuf;

use mim::core::DesignSpace;
use mim::runner::{CellMemo, EvalKind, Experiment, ExperimentReport, WorkloadStore};
use mim::workloads::{mibench, WorkloadSize};

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mim-persistent-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id(),
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn sweep(store: &WorkloadStore, cells: Option<&CellMemo>) -> ExperimentReport {
    let mut experiment = Experiment::new()
        .title("persistent-store acceptance")
        .workloads([mibench::sha(), mibench::qsort()])
        .size(WorkloadSize::Tiny)
        .limit(20_000)
        .design_space(DesignSpace::paper_table2())
        .stride(24)
        .evaluators([EvalKind::Model, EvalKind::Sim])
        .threads(2)
        .with_cache(store.clone());
    if let Some(memo) = cells {
        experiment = experiment.with_cells(memo.clone());
    }
    experiment.run().expect("sweep runs")
}

/// Satellite: `StoreStats` accounts a repeated sweep — first run all
/// misses, second run all hits, no new functional executions.
#[test]
fn store_stats_count_a_repeated_sweep() {
    let store = WorkloadStore::new();
    let first = sweep(&store, None);
    let s1 = store.stats();
    // One recording + one replayed profile per workload, nothing cached
    // beforehand.
    assert_eq!(s1.trace_misses, 2, "one recording per workload");
    assert_eq!(s1.profile_misses, 2, "one profiling pass per workload");
    assert_eq!(s1.functional_executions, 2, "recordings are the only runs");
    assert_eq!(s1.bytes_persisted, 0, "memory-only store persists nothing");
    assert!(
        s1.trace_hits >= 2 && s1.profile_hits >= 2,
        "grid cells replay the warm-phase entries: {s1:?}"
    );

    let second = sweep(&store, None);
    let s2 = store.stats();
    assert_eq!(s2.trace_misses, 2, "second sweep records nothing");
    assert_eq!(s2.profile_misses, 2, "second sweep profiles nothing");
    assert_eq!(s2.functional_executions, 2);
    assert!(s2.trace_hits > s1.trace_hits);
    assert!(s2.profile_hits > s1.profile_hits);
    assert_eq!(first.to_json(), second.to_json(), "hits change nothing");
}

/// Tentpole: a fresh store pointed at the same directory — a process
/// restart — serves everything from disk: zero functional executions,
/// byte-identical report.
#[test]
fn warm_restart_executes_nothing() {
    let root = temp_root("restart");

    let cold_store = WorkloadStore::persistent(&root).expect("store opens");
    let cold = sweep(&cold_store, None);
    let cold_stats = cold_store.stats();
    assert_eq!(cold_stats.functional_executions, 2);
    assert!(cold_stats.bytes_persisted > 0, "artifacts were persisted");

    // "Restart": a brand-new handle with cold memory, warm disk.
    let warm_store = WorkloadStore::persistent(&root).expect("store reopens");
    let warm = sweep(&warm_store, None);
    let warm_stats = warm_store.stats();
    assert_eq!(
        warm_stats.functional_executions, 0,
        "every artifact loads from disk: {warm_stats:?}"
    );
    assert_eq!(warm_stats.trace_disk_hits, 2);
    assert_eq!(warm_stats.profile_disk_hits, 2);
    assert_eq!(warm_stats.trace_misses + warm_stats.profile_misses, 0);
    assert_eq!(cold.to_json(), warm.to_json(), "disk loads change nothing");

    std::fs::remove_dir_all(&root).ok();
}

/// Satellite: the LRU capacity bound evicts entries but never changes
/// results — a capacity-1 store reproduces the unbounded store's bytes.
#[test]
fn lru_eviction_keeps_determinism() {
    let unbounded = sweep(&WorkloadStore::new(), None);

    let bounded_store = WorkloadStore::with_capacity(1);
    let bounded = sweep(&bounded_store, None);
    let stats = bounded_store.stats();
    assert!(
        stats.evictions > 0,
        "two workloads through capacity 1 must evict: {stats:?}"
    );
    assert_eq!(bounded_store.cached_traces(), 1, "capacity holds");
    assert_eq!(bounded_store.cached_profiles(), 1, "capacity holds");
    assert_eq!(
        unbounded.to_json(),
        bounded.to_json(),
        "eviction trades time, never bytes"
    );
}

/// A shared `CellMemo` answers a repeated experiment's entire grid from
/// memory — the server-side dedup of overlapping sweep cells.
#[test]
fn cell_memo_answers_repeated_grids() {
    let store = WorkloadStore::new();
    let memo = CellMemo::new();
    let first = sweep(&store, Some(&memo));
    let after_first = memo.stats();
    assert_eq!(after_first.hits, 0, "cold memo");
    assert_eq!(after_first.misses as usize, first.rows.len());

    let second = sweep(&store, Some(&memo));
    let after_second = memo.stats();
    assert_eq!(
        after_second.misses, after_first.misses,
        "second grid computes nothing"
    );
    assert_eq!(after_second.hits as usize, second.rows.len());
    assert_eq!(first.to_json(), second.to_json());
}
