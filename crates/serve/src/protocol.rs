//! The line-delimited JSON protocol.
//!
//! Every message is one compact JSON object on one line. Requests carry a
//! `cmd` field; responses carry `ok` (a boolean) plus command-specific
//! fields, with failures shaped as `{"ok":false,"error":"..."}`.
//!
//! | request                                   | success response |
//! |-------------------------------------------|------------------|
//! | `{"cmd":"submit","job":{...}}`            | `{"ok":true,"id":N,"deduped":B}` |
//! | `{"cmd":"status","id":N}`                 | `{"ok":true,"id":N,"state":"queued"\|"running"\|"done"\|"failed"}` |
//! | `{"cmd":"result","id":N}`                 | `{"ok":true,"id":N,"result":{...report...}}` (blocks until done) |
//! | `{"cmd":"stats"}`                         | `{"ok":true,"stats":{"store":{...},"cells":{...},"jobs":{...},"latency":{...}}}` |
//! | `{"cmd":"metrics"}`                       | `{"ok":true,"metrics":{"counters":{...},"gauges":{...},"histograms":{...}}}` |
//! | `{"cmd":"metrics","format":"prometheus"}` | `{"ok":true,"metrics_text":"..."}` (Prometheus exposition text) |
//! | `{"cmd":"profile","id":N}`                | `{"ok":true,"id":N,"profile":{"total_ns":…,"spans":[...],"cells":{...}}}` (finished jobs) |
//! | `{"cmd":"watch","interval_ms":T,"count":K}` | `K` lines `{"ok":true,"seq":I,"metrics":{...delta...}}`, one per interval |
//! | `{"cmd":"shutdown"}`                      | `{"ok":true}` then the server drains and exits |
//!
//! The `result` payload is byte-deterministic: reports serialize wall
//! clock-free and field-order-stable, so the same job spec yields the
//! same bytes across runs, worker counts, and restarts.

pub use serde::Value;

use crate::spec::JobSpec;

/// Wire format of a `metrics` reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsFormat {
    /// The snapshot as a JSON object (`metrics` field).
    #[default]
    Json,
    /// Prometheus text exposition, embedded as one JSON string
    /// (`metrics_text` field).
    Prometheus,
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Enqueue a job.
    Submit(Box<JobSpec>),
    /// Query a job's lifecycle state.
    Status(u64),
    /// Fetch a job's report, blocking until it finishes.
    Result(u64),
    /// Fetch server counters.
    Stats,
    /// Fetch the merged metrics snapshot (counters, gauges, latency
    /// histograms) in the requested format.
    Metrics(MetricsFormat),
    /// Fetch a finished job's wall-clock span profile.
    Profile(u64),
    /// Stream metrics-snapshot deltas: one response line per interval,
    /// `count` lines total, each carrying the change since the previous
    /// line (counters/histograms as differences, gauges as current
    /// values).
    Watch {
        /// Milliseconds between consecutive delta lines.
        interval_ms: u64,
        /// Number of delta lines to stream before the connection returns
        /// to request/response mode.
        count: u64,
    },
    /// Drain and stop the server.
    Shutdown,
}

impl Request {
    /// Parses one protocol line.
    ///
    /// # Errors
    ///
    /// Returns the message for the `{"ok":false,...}` reply on malformed
    /// input.
    pub fn parse(line: &str) -> Result<Request, String> {
        let value: Value =
            serde_json::from_str(line.trim()).map_err(|e| format!("malformed JSON: {e}"))?;
        let cmd = match value.get("cmd") {
            Some(Value::Str(s)) => s.clone(),
            Some(v) => return Err(format!("`cmd` must be a string, got {}", v.kind())),
            None => return Err("request is missing the `cmd` field".into()),
        };
        match cmd.as_str() {
            "submit" => {
                let job = value
                    .get("job")
                    .ok_or_else(|| "submit is missing the `job` field".to_string())?;
                Ok(Request::Submit(Box::new(JobSpec::from_value(job)?)))
            }
            "status" => Ok(Request::Status(request_id(&value)?)),
            "result" => Ok(Request::Result(request_id(&value)?)),
            "stats" => Ok(Request::Stats),
            "metrics" => match value.get("format") {
                None => Ok(Request::Metrics(MetricsFormat::Json)),
                Some(Value::Str(s)) if s == "json" => Ok(Request::Metrics(MetricsFormat::Json)),
                Some(Value::Str(s)) if s == "prometheus" => {
                    Ok(Request::Metrics(MetricsFormat::Prometheus))
                }
                Some(Value::Str(s)) => Err(format!(
                    "unknown metrics format `{s}` (expected `json` or `prometheus`)"
                )),
                Some(v) => Err(format!("`format` must be a string, got {}", v.kind())),
            },
            "profile" => Ok(Request::Profile(request_id(&value)?)),
            "watch" => Ok(Request::Watch {
                interval_ms: request_u64(&value, "interval_ms", 1000)?,
                count: request_u64(&value, "count", 10)?.max(1),
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown command `{other}`")),
        }
    }

    /// Serializes the request as one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        let fields = match self {
            Request::Submit(job) => vec![
                ("cmd".to_string(), Value::Str("submit".into())),
                ("job".to_string(), job.to_value()),
            ],
            Request::Status(id) => vec![
                ("cmd".to_string(), Value::Str("status".into())),
                ("id".to_string(), Value::UInt(*id)),
            ],
            Request::Result(id) => vec![
                ("cmd".to_string(), Value::Str("result".into())),
                ("id".to_string(), Value::UInt(*id)),
            ],
            Request::Stats => vec![("cmd".to_string(), Value::Str("stats".into()))],
            Request::Metrics(format) => {
                let label = match format {
                    MetricsFormat::Json => "json",
                    MetricsFormat::Prometheus => "prometheus",
                };
                vec![
                    ("cmd".to_string(), Value::Str("metrics".into())),
                    ("format".to_string(), Value::Str(label.into())),
                ]
            }
            Request::Profile(id) => vec![
                ("cmd".to_string(), Value::Str("profile".into())),
                ("id".to_string(), Value::UInt(*id)),
            ],
            Request::Watch { interval_ms, count } => vec![
                ("cmd".to_string(), Value::Str("watch".into())),
                ("interval_ms".to_string(), Value::UInt(*interval_ms)),
                ("count".to_string(), Value::UInt(*count)),
            ],
            Request::Shutdown => vec![("cmd".to_string(), Value::Str("shutdown".into()))],
        };
        to_line(&Value::Object(fields))
    }
}

fn request_u64(value: &Value, key: &str, default: u64) -> Result<u64, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(Value::UInt(u)) => Ok(*u),
        Some(Value::Int(i)) if *i >= 0 => Ok(*i as u64),
        Some(v) => Err(format!("`{key}` must be an integer, got {}", v.kind())),
    }
}

fn request_id(value: &Value) -> Result<u64, String> {
    match value.get("id") {
        Some(Value::UInt(u)) => Ok(*u),
        Some(Value::Int(i)) if *i >= 0 => Ok(*i as u64),
        Some(v) => Err(format!("`id` must be an integer, got {}", v.kind())),
        None => Err("request is missing the `id` field".into()),
    }
}

/// Builds a success response with extra fields after `"ok":true`.
pub fn ok_response(fields: Vec<(String, Value)>) -> Value {
    let mut all = vec![("ok".to_string(), Value::Bool(true))];
    all.extend(fields);
    Value::Object(all)
}

/// Builds a failure response.
pub fn error_response(message: impl Into<String>) -> Value {
    Value::Object(vec![
        ("ok".to_string(), Value::Bool(false)),
        ("error".to_string(), Value::Str(message.into())),
    ])
}

/// Serializes a value as one compact protocol line (no trailing newline).
pub fn to_line(value: &Value) -> String {
    serde_json::to_string(value).expect("value serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let line = r#"{"cmd":"submit","job":{"kind":"experiment","workloads":["sha"],"evaluators":["model"]}}"#;
        let request = Request::parse(line).expect("parses");
        let reparsed = Request::parse(&request.to_line()).expect("round-trips");
        assert_eq!(request, reparsed);
        for (line, expected) in [
            (r#"{"cmd":"status","id":3}"#, Request::Status(3)),
            (r#"{"cmd":"result","id":9}"#, Request::Result(9)),
            (r#"{"cmd":"stats"}"#, Request::Stats),
            (
                r#"{"cmd":"metrics"}"#,
                Request::Metrics(MetricsFormat::Json),
            ),
            (
                r#"{"cmd":"metrics","format":"json"}"#,
                Request::Metrics(MetricsFormat::Json),
            ),
            (
                r#"{"cmd":"metrics","format":"prometheus"}"#,
                Request::Metrics(MetricsFormat::Prometheus),
            ),
            (r#"{"cmd":"profile","id":4}"#, Request::Profile(4)),
            (
                r#"{"cmd":"watch"}"#,
                Request::Watch {
                    interval_ms: 1000,
                    count: 10,
                },
            ),
            (
                r#"{"cmd":"watch","interval_ms":50,"count":3}"#,
                Request::Watch {
                    interval_ms: 50,
                    count: 3,
                },
            ),
            // `count` is clamped to at least one streamed line.
            (
                r#"{"cmd":"watch","count":0}"#,
                Request::Watch {
                    interval_ms: 1000,
                    count: 1,
                },
            ),
            (r#"{"cmd":"shutdown"}"#, Request::Shutdown),
        ] {
            let request = Request::parse(line).expect(line);
            assert_eq!(request, expected);
            assert_eq!(Request::parse(&request.to_line()).expect(line), expected);
        }
    }

    #[test]
    fn malformed_requests_are_protocol_errors() {
        for (line, needle) in [
            ("not json", "malformed JSON"),
            (r#"{"id":1}"#, "missing the `cmd`"),
            (r#"{"cmd":"frobnicate"}"#, "unknown command"),
            (r#"{"cmd":"status"}"#, "missing the `id`"),
            (r#"{"cmd":"profile"}"#, "missing the `id`"),
            (
                r#"{"cmd":"watch","count":"lots"}"#,
                "`count` must be an integer",
            ),
            (r#"{"cmd":"submit"}"#, "missing the `job`"),
            (
                r#"{"cmd":"metrics","format":"xml"}"#,
                "unknown metrics format",
            ),
            (
                r#"{"cmd":"submit","job":{"kind":"nope"}}"#,
                "unknown job kind",
            ),
        ] {
            let err = Request::parse(line).expect_err(line);
            assert!(err.contains(needle), "`{err}` should mention `{needle}`");
        }
    }

    #[test]
    fn responses_are_single_lines() {
        let ok = ok_response(vec![("id".into(), Value::UInt(7))]);
        assert_eq!(to_line(&ok), r#"{"ok":true,"id":7}"#);
        let err = error_response("boom");
        assert_eq!(to_line(&err), r#"{"ok":false,"error":"boom"}"#);
        assert!(!to_line(&ok).contains('\n'));
    }
}
