//! `mim-serve` — the evaluation server binary.
//!
//! ```text
//! mim-serve --addr tcp:127.0.0.1:7171 --store-dir /var/cache/mim --workers 4
//! mim-serve --addr unix:/tmp/mim.sock --workers 2 --capacity 64
//! mim-serve --smoke --quick        # self-contained end-to-end check (CI)
//! ```
//!
//! Flags:
//!
//! * `--addr <addr>` — `unix:<path>` or `tcp:<host>:<port>` (default
//!   `tcp:127.0.0.1:7171`; TCP port 0 picks a free port and prints it).
//! * `--store-dir <dir>` — attach the persistent content-addressed store
//!   (omit for a memory-only server).
//! * `--workers <n>` — worker threads (default 2).
//! * `--queue <n>` — bounded queue capacity (default 64).
//! * `--capacity <n>` — LRU bound on the in-memory trace/profile maps
//!   (omit for unbounded).
//! * `--log-format {text,json}` — structured log line shape (default
//!   `text`).
//! * `--log-level {error,warn,info,debug}` — maximum emitted level
//!   (default `info`).
//! * `--spans <spec>` — route span start/stop events to a sink:
//!   `stderr` (line-JSON events), `chrome:<path>` (Chrome trace-event
//!   JSON, load in `chrome://tracing` or Perfetto), or
//!   `collapsed:<path>` (collapsed stacks for `flamegraph.pl`).
//!   Equivalent to `MIM_SPANS=<spec>`; off by default.
//! * `--trace-out <path>` — aggregate every span into a wall-clock
//!   profile and write it to `<path>` on each completed top-level span;
//!   `.json` writes Chrome trace events, `.folded`/`.txt` collapsed
//!   stacks. Composable with `--spans`.
//! * `--smoke [--quick]` — run the self-test: serve on a private unix
//!   socket, submit the same experiment twice, assert the second
//!   submission coalesces and the report bytes match, scrape the
//!   `metrics` command, then shut down cleanly. Exits non-zero on any
//!   violation.
//! * `--metrics-out <path>` — (smoke only) write the scraped metrics
//!   snapshot to `<path>` as pretty JSON, for CI artifacts.
//!
//! Environment: `MIM_OBS=off` disables latency timestamping (counters
//! keep working), `MIM_SPANS=stderr` mirrors `--spans stderr`.

use std::process::ExitCode;
use std::sync::Arc;

use mim_obs::log::{error, info};
use mim_obs::{
    set_log_format, set_log_level, set_span_sink, sink_from_spec, Level, LogFormat, ProfileSink,
    SpanEvent, SpanSink, TraceFormat,
};
use mim_serve::{CellMemo, Client, Engine, JobSpec, Server, WorkloadStore};
use serde::Value;

/// Fans one span event stream out to several sinks (`--spans` plus
/// `--trace-out` on the same process).
struct FanOut(Vec<Arc<dyn SpanSink>>);

impl SpanSink for FanOut {
    fn event(&self, event: &SpanEvent) {
        for sink in &self.0 {
            sink.event(event);
        }
    }
}

fn value_flag(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .cloned()
            .map(Some)
            .ok_or_else(|| format!("{flag} needs a value")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            error("mim-serve", &message, &[]);
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    if let Some(format) = value_flag(args, "--log-format")? {
        set_log_format(
            LogFormat::parse(&format)
                .ok_or_else(|| format!("--log-format wants text or json, got `{format}`"))?,
        );
    }
    if let Some(level) = value_flag(args, "--log-level")? {
        set_log_level(Level::parse(&level).ok_or_else(|| {
            format!("--log-level wants error, warn, info, or debug, got `{level}`")
        })?);
    }
    let mut sinks: Vec<Arc<dyn SpanSink>> = Vec::new();
    if let Some(spec) = value_flag(args, "--spans")? {
        sinks.push(sink_from_spec(&spec).ok_or_else(|| {
            format!(
                "--spans supports `stderr`, `chrome:<path>`, or `collapsed:<path>`, got `{spec}`"
            )
        })?);
    }
    if let Some(path) = value_flag(args, "--trace-out")? {
        let path = std::path::PathBuf::from(path);
        let format = TraceFormat::from_path(&path);
        sinks.push(Arc::new(ProfileSink::new().with_export(format, path)));
    }
    match sinks.len() {
        0 => {}
        1 => set_span_sink(sinks.pop()),
        _ => set_span_sink(Some(Arc::new(FanOut(sinks)))),
    }
    let addr = value_flag(args, "--addr")?.unwrap_or_else(|| "tcp:127.0.0.1:7171".into());
    let store_dir = value_flag(args, "--store-dir")?;
    let workers: usize = value_flag(args, "--workers")?
        .map_or(Ok(2), |v| v.parse().map_err(|_| "--workers wants a number"))?;
    let queue: usize = value_flag(args, "--queue")?
        .map_or(Ok(64), |v| v.parse().map_err(|_| "--queue wants a number"))?;
    let capacity: Option<usize> = value_flag(args, "--capacity")?
        .map(|v| v.parse().map_err(|_| "--capacity wants a number"))
        .transpose()?;

    let store = build_store(store_dir.as_deref(), capacity)?;

    if args.iter().any(|a| a == "--smoke") {
        let quick = args.iter().any(|a| a == "--quick");
        let metrics_out = value_flag(args, "--metrics-out")?;
        return smoke(store, workers, quick, metrics_out.as_deref());
    }

    let engine = Engine::start(store, CellMemo::new(), workers, queue);
    let server = Server::bind(&addr, engine).map_err(|e| e.to_string())?;
    info(
        "mim-serve",
        "listening",
        &[
            ("addr", server.addr().to_connect_string()),
            ("workers", workers.to_string()),
            ("queue", queue.to_string()),
        ],
    );
    server.run().map_err(|e| e.to_string())
}

fn build_store(dir: Option<&str>, capacity: Option<usize>) -> Result<WorkloadStore, String> {
    let store = match (dir, capacity) {
        (Some(dir), Some(cap)) => {
            WorkloadStore::persistent_with_capacity(dir, cap).map_err(|e| e.to_string())?
        }
        (Some(dir), None) => WorkloadStore::persistent(dir).map_err(|e| e.to_string())?,
        (None, Some(cap)) => WorkloadStore::with_capacity(cap),
        (None, None) => WorkloadStore::new(),
    };
    Ok(store)
}

/// The CI end-to-end check: unix socket, two identical submissions, one
/// computation, byte-identical reports, a well-formed metrics scrape,
/// clean shutdown.
fn smoke(
    store: WorkloadStore,
    workers: usize,
    quick: bool,
    metrics_out: Option<&str>,
) -> Result<(), String> {
    let socket = std::env::temp_dir().join(format!("mim-serve-smoke-{}.sock", std::process::id()));
    std::fs::remove_file(&socket).ok();
    let addr = format!("unix:{}", socket.display());

    let engine = Engine::start(store, CellMemo::new(), workers.max(2), 16);
    let server = Server::bind(&addr, engine).map_err(|e| e.to_string())?;
    let handle = std::thread::spawn(move || server.run());

    let (size, limit) = if quick {
        ("tiny", 20_000u64)
    } else {
        ("small", 400_000u64)
    };
    let job_json = format!(
        r#"{{"kind":"experiment","title":"smoke","workloads":["sha","qsort"],
            "size":"{size}","limit":{limit},"evaluators":["model","sim"]}}"#
    );
    let value: Value = serde_json::from_str(&job_json).map_err(|e| e.to_string())?;
    let job = JobSpec::from_value(&value)?;

    let outcome = (|| -> Result<(), String> {
        let mut client = Client::connect(&addr).map_err(|e| e.to_string())?;
        let first = client.submit(&job).map_err(|e| e.to_string())?;
        if first.deduped {
            return Err("first submission reported deduped".into());
        }
        let first_text = client.result_text(first.id).map_err(|e| e.to_string())?;

        let second = client.submit(&job).map_err(|e| e.to_string())?;
        if !second.deduped {
            return Err("second identical submission was not coalesced".into());
        }
        if second.id != first.id {
            return Err("coalesced submission returned a different id".into());
        }
        let second_text = client.result_text(second.id).map_err(|e| e.to_string())?;
        if first_text != second_text {
            return Err("repeated submission returned different bytes".into());
        }

        let stats = client.stats().map_err(|e| e.to_string())?;
        let executions = stats
            .get("store")
            .and_then(|s| s.get("functional_executions"))
            .and_then(|v| match v {
                Value::UInt(u) => Some(*u),
                Value::Int(i) => Some(*i as u64),
                _ => None,
            })
            .ok_or("stats reply lacks store.functional_executions")?;
        if executions > 2 {
            return Err(format!(
                "expected one functional execution per workload, counted {executions}"
            ));
        }
        let metrics = client.metrics().map_err(|e| e.to_string())?;
        let completed = metrics
            .get("counters")
            .and_then(|c| c.get("jobs.completed"))
            .and_then(|v| match v {
                Value::UInt(u) => Some(*u),
                Value::Int(i) => Some(*i as u64),
                _ => None,
            })
            .ok_or("metrics reply lacks counters jobs.completed")?;
        if completed != 1 {
            return Err(format!(
                "expected 1 completed job in metrics, saw {completed}"
            ));
        }
        if let Some(path) = metrics_out {
            let path = std::path::Path::new(path);
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
            }
            let pretty = serde_json::to_string_pretty(&metrics).map_err(|e| e.to_string())?;
            std::fs::write(path, pretty).map_err(|e| e.to_string())?;
        }
        info(
            "smoke",
            "OK",
            &[
                ("id", first.id.to_string()),
                ("report_bytes", first_text.len().to_string()),
                ("executions", executions.to_string()),
            ],
        );
        // Keep the one-line stdout summary CI logs grep for.
        println!(
            "smoke OK: id={} deduped resubmit, {} report bytes, {executions} executions",
            first.id,
            first_text.len()
        );
        client.shutdown().map_err(|e| e.to_string())
    })();

    if outcome.is_err() {
        // Unblock the accept loop so the join below terminates.
        if let Ok(mut client) = Client::connect(&addr) {
            client.shutdown().ok();
        }
    }
    let served = handle
        .join()
        .map_err(|_| "server thread panicked".to_string())?;
    std::fs::remove_file(&socket).ok();
    outcome?;
    served.map_err(|e| format!("server error: {e}"))
}
