//! The socket front-end: TCP and unix-domain listeners speaking the
//! line-delimited protocol, one handler thread per connection.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use serde::Value;

use crate::engine::Engine;
use crate::error::ServeError;
use crate::protocol::{error_response, ok_response, to_line, MetricsFormat, Request};

/// A bound server address, normalized back to string form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundAddr {
    /// `tcp:<ip>:<port>` (port resolved when binding port 0).
    Tcp(String),
    /// `unix:<path>`.
    Unix(PathBuf),
}

impl BoundAddr {
    /// The `unix:...`/`tcp:...` string clients connect with.
    pub fn to_connect_string(&self) -> String {
        match self {
            BoundAddr::Tcp(addr) => format!("tcp:{addr}"),
            BoundAddr::Unix(path) => format!("unix:{}", path.display()),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

/// A bound evaluation server. [`run`](Server::run) accepts connections
/// until a client sends `shutdown`, then drains the engine and returns.
///
/// Addresses: `unix:<path>` binds a unix-domain socket; `tcp:<host>:<port>`
/// (or a bare `<host>:<port>`) binds TCP. Port 0 picks a free port —
/// read it back from [`addr`](Server::addr).
pub struct Server {
    listener: Listener,
    engine: Engine,
    addr: BoundAddr,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds a listener and attaches it to `engine`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Addr`] for unparseable addresses and
    /// [`ServeError::Io`] for bind failures (port in use, stale socket
    /// path, ...).
    pub fn bind(addr: &str, engine: Engine) -> Result<Server, ServeError> {
        if let Some(path) = addr.strip_prefix("unix:") {
            if path.is_empty() {
                return Err(ServeError::Addr("empty unix socket path".into()));
            }
            let path = PathBuf::from(path);
            let listener = UnixListener::bind(&path)
                .map_err(|e| ServeError::Io(format!("bind {}: {e}", path.display())))?;
            return Ok(Server {
                listener: Listener::Unix(listener),
                engine,
                addr: BoundAddr::Unix(path),
                stop: Arc::new(AtomicBool::new(false)),
            });
        }
        let hostport = addr.strip_prefix("tcp:").unwrap_or(addr);
        if !hostport.contains(':') {
            return Err(ServeError::Addr(format!(
                "`{addr}` is neither unix:<path> nor <host>:<port>"
            )));
        }
        let listener = TcpListener::bind(hostport)
            .map_err(|e| ServeError::Io(format!("bind {hostport}: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| ServeError::Io(e.to_string()))?;
        Ok(Server {
            listener: Listener::Tcp(listener),
            engine,
            addr: BoundAddr::Tcp(local.to_string()),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (with any ephemeral TCP port resolved).
    pub fn addr(&self) -> &BoundAddr {
        &self.addr
    }

    /// The engine this server fronts.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Accepts and serves connections until a `shutdown` request arrives,
    /// then joins the engine's workers (draining queued jobs) and cleans
    /// up the socket. Run this on a dedicated thread to serve in the
    /// background.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] if accepting fails outright.
    pub fn run(self) -> Result<(), ServeError> {
        let Server {
            listener,
            engine,
            addr,
            stop,
        } = self;
        let mut handlers = Vec::new();
        loop {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            match &listener {
                Listener::Tcp(l) => {
                    let (stream, _) = l.accept().map_err(|e| ServeError::Io(e.to_string()))?;
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    stream.set_nodelay(true).ok(); // request/response lines, not bulk
                    let engine = engine.clone();
                    let stop = Arc::clone(&stop);
                    let addr = addr.clone();
                    handlers.push(std::thread::spawn(move || {
                        handle_connection(stream, &engine, &stop, &addr);
                    }));
                }
                Listener::Unix(l) => {
                    let (stream, _) = l.accept().map_err(|e| ServeError::Io(e.to_string()))?;
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let engine = engine.clone();
                    let stop = Arc::clone(&stop);
                    let addr = addr.clone();
                    handlers.push(std::thread::spawn(move || {
                        handle_connection(stream, &engine, &stop, &addr);
                    }));
                }
            }
        }
        for handler in handlers {
            handler.join().ok();
        }
        engine.shutdown();
        if let BoundAddr::Unix(path) = &addr {
            std::fs::remove_file(path).ok();
        }
        Ok(())
    }
}

/// Serves one connection: read a line, answer a line, until EOF (or a
/// shutdown request, which also stops the accept loop).
fn handle_connection<S>(stream: S, engine: &Engine, stop: &AtomicBool, addr: &BoundAddr)
where
    for<'a> &'a S: std::io::Read + Write,
{
    let mut reader = BufReader::new(&stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        // `watch` is the protocol's one multi-line response: stream the
        // delta lines here, then fall back to request/response mode.
        if let Ok(Request::Watch { interval_ms, count }) = Request::parse(&line) {
            if stream_watch(&stream, engine, interval_ms, count).is_err() {
                return;
            }
            continue;
        }
        let (response, shutdown) = respond(engine, &line);
        let mut writer = &stream;
        if writer
            .write_all((to_line(&response) + "\n").as_bytes())
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
        if shutdown {
            stop.store(true, Ordering::SeqCst);
            wake_acceptor(addr);
            return;
        }
    }
}

/// Computes the response for one request line; the boolean asks the
/// caller to begin shutdown after writing it.
fn respond(engine: &Engine, line: &str) -> (Value, bool) {
    let request = match Request::parse(line) {
        Ok(request) => request,
        Err(message) => return (error_response(message), false),
    };
    match request {
        Request::Submit(spec) => match engine.submit(*spec) {
            Ok((id, deduped)) => (
                ok_response(vec![
                    ("id".into(), Value::UInt(id)),
                    ("deduped".into(), Value::Bool(deduped)),
                ]),
                false,
            ),
            Err(message) => (error_response(message), false),
        },
        Request::Status(id) => match engine.status(id) {
            Some(status) => (
                ok_response(vec![
                    ("id".into(), Value::UInt(id)),
                    ("state".into(), Value::Str(status.label().into())),
                ]),
                false,
            ),
            None => (error_response(format!("unknown job id {id}")), false),
        },
        Request::Result(id) => match engine.wait_result(id) {
            Ok(report) => (
                ok_response(vec![
                    ("id".into(), Value::UInt(id)),
                    ("result".into(), (*report).clone()),
                ]),
                false,
            ),
            Err(message) => (error_response(message), false),
        },
        Request::Stats => (ok_response(vec![("stats".into(), engine.stats())]), false),
        Request::Metrics(format) => {
            let snapshot = engine.metrics();
            let fields = match format {
                MetricsFormat::Json => vec![("metrics".into(), snapshot.to_value())],
                MetricsFormat::Prometheus => {
                    vec![("metrics_text".into(), Value::Str(snapshot.to_prometheus()))]
                }
            };
            (ok_response(fields), false)
        }
        Request::Profile(id) => match engine.profile(id) {
            Ok(profile) => (
                ok_response(vec![
                    ("id".into(), Value::UInt(id)),
                    ("profile".into(), (*profile).clone()),
                ]),
                false,
            ),
            Err(message) => (error_response(message), false),
        },
        // Streamed by `handle_connection` before `respond` is reached;
        // kept total so a direct call still answers sensibly.
        Request::Watch { .. } => (
            error_response("watch is a streaming command; connect over a socket"),
            false,
        ),
        Request::Shutdown => (ok_response(vec![]), true),
    }
}

/// Streams one `watch` reply: `count` lines of metrics deltas, each
/// covering one `interval_ms` tick ([`Snapshot::delta_since`] semantics —
/// counters and histograms as differences, gauges as current values).
/// Stops early, with an error line, if the server begins shutting down.
///
/// An `Err` return means the client went away: the caller drops the
/// connection.
fn stream_watch<S>(stream: &S, engine: &Engine, interval_ms: u64, count: u64) -> std::io::Result<()>
where
    for<'a> &'a S: std::io::Read + Write,
{
    let mut writer = stream;
    let mut write_line = move |value: &Value| {
        writer
            .write_all((to_line(value) + "\n").as_bytes())
            .and_then(|()| writer.flush())
    };
    let mut baseline = engine.metrics();
    for seq in 0..count.max(1) {
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
        if engine.stopping() {
            // Answer the remaining expectation with one terminal error
            // line so a blocked reader is released, then drop the
            // connection.
            write_line(&error_response("server is shutting down"))?;
            return Err(std::io::Error::other("watch interrupted by shutdown"));
        }
        let current = engine.metrics();
        let delta = current.delta_since(&baseline);
        baseline = current;
        write_line(&ok_response(vec![
            ("seq".into(), Value::UInt(seq)),
            ("metrics".into(), delta.to_value()),
        ]))?;
    }
    Ok(())
}

/// Unblocks the accept loop after `stop` is set by making one throwaway
/// connection to ourselves.
fn wake_acceptor(addr: &BoundAddr) {
    match addr {
        BoundAddr::Tcp(hostport) => {
            TcpStream::connect(hostport).ok();
        }
        BoundAddr::Unix(path) => {
            UnixStream::connect(path).ok();
        }
    }
}
