//! Job specifications: the JSON-described units of work a server accepts.
//!
//! A [`JobSpec`] names one of the repo's three request kinds — an
//! [`Experiment`] grid, an [`Exploration`] search, or a [`SubsetRun`]
//! study — entirely by *registry names* (workloads, evaluators,
//! objectives, space presets), so clients never serialize machine
//! configurations. Parsing is lenient (absent fields take the documented
//! defaults); the canonical re-serialization
//! ([`JobSpec::to_value`]) is what the job [`fingerprint`](JobSpec::fingerprint)
//! hashes, so two submissions that *mean* the same job coalesce no matter
//! which defaults they spelled out.

use mim_core::{DesignSpace, MachineConfig};
use mim_explore::{Anneal, Exhaustive, Exploration, GreedyAscent, Objective};
use mim_runner::{CellMemo, EvalKind, Experiment, WorkloadStore};
use mim_select::SubsetRun;
use mim_workloads::{mibench, spec as spec_suite, Workload, WorkloadSize};
use serde::{Serialize, Value};

/// Stable FNV-1a 64-bit hash (the fingerprint arithmetic used across the
/// repo's content-addressed layers).
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Design-space description by preset name plus optional axis overrides.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SpaceSpec {
    /// `"default"` (the paper's default machine as a one-point space) or
    /// `"table2"` (the paper's full 192-point space).
    pub preset: String,
    /// Optional replacement for the pipeline-width axis.
    pub widths: Option<Vec<u32>>,
}

impl SpaceSpec {
    fn parse(value: &Value) -> Result<SpaceSpec, String> {
        Ok(SpaceSpec {
            preset: str_or(value, "preset", "default")?,
            widths: opt_u32_list(value, "widths")?,
        })
    }

    fn resolve(&self) -> Result<DesignSpace, String> {
        let mut space = match self.preset.as_str() {
            "default" => DesignSpace::new(MachineConfig::default_config()),
            "table2" => DesignSpace::paper_table2(),
            other => return Err(format!("unknown space preset `{other}`")),
        };
        if let Some(widths) = &self.widths {
            space = space
                .with_widths(widths.clone())
                .map_err(|e| e.to_string())?;
        }
        Ok(space)
    }
}

/// Sampling-plan description for `sampled` evaluations: the geometry of
/// the periodic detailed windows and their functional warm-up.
///
/// Defaults to the library's default 1-in-10 plan
/// ([`Sampling::default_plan`](mim_trace::Sampling::default_plan)).
/// Geometry is validated at submit time through
/// [`Sampling::try_new`](mim_trace::Sampling::try_new), so a bad plan is
/// rejected synchronously instead of panicking inside a worker.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SamplingSpec {
    /// Sample-unit period in instructions.
    pub period: u64,
    /// Detailed-window length in instructions (must satisfy
    /// `0 < length <= period`).
    pub length: u64,
    /// Functional warm-up events walked before each window.
    pub warmup: u64,
    /// Stream position of the first window.
    pub offset: u64,
}

impl SamplingSpec {
    fn parse(value: &Value) -> Result<SamplingSpec, String> {
        let default = mim_trace::Sampling::default_plan();
        Ok(SamplingSpec {
            period: u64_or(value, "period", default.period())?,
            length: u64_or(value, "length", default.length())?,
            warmup: u64_or(value, "warmup", default.warmup())?,
            offset: u64_or(value, "offset", default.offset())?,
        })
    }

    fn resolve(&self) -> Result<mim_trace::Sampling, String> {
        let plan =
            mim_trace::Sampling::try_new(self.period, self.length).map_err(|e| e.to_string())?;
        Ok(plan.with_warmup(self.warmup).with_offset(self.offset))
    }
}

/// Search-strategy description for exploration jobs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StrategySpec {
    /// `"exhaustive"`, `"greedy"`, or `"anneal"`.
    pub name: String,
    /// RNG seed for stochastic strategies.
    pub seed: u64,
    /// Restart count for `"greedy"` (0 keeps the strategy default).
    pub restarts: usize,
    /// Evaluation budget for stochastic strategies (0 keeps the default).
    pub budget: usize,
}

impl StrategySpec {
    fn parse(value: &Value) -> Result<StrategySpec, String> {
        Ok(StrategySpec {
            name: str_or(value, "name", "exhaustive")?,
            seed: u64_or(value, "seed", 1)?,
            restarts: u64_or(value, "restarts", 0)? as usize,
            budget: u64_or(value, "budget", 0)? as usize,
        })
    }

    fn apply(&self, exploration: Exploration) -> Result<Exploration, String> {
        match self.name.as_str() {
            "exhaustive" => Ok(exploration.strategy(Exhaustive)),
            "greedy" => {
                let mut s = GreedyAscent::new().seed(self.seed);
                if self.restarts > 0 {
                    s = s.restarts(self.restarts);
                }
                if self.budget > 0 {
                    s = s.budget(self.budget);
                }
                Ok(exploration.strategy(s))
            }
            "anneal" => {
                let mut s = Anneal::new(self.seed);
                if self.budget > 0 {
                    s = s.budget(self.budget);
                }
                Ok(exploration.strategy(s))
            }
            other => Err(format!("unknown strategy `{other}`")),
        }
    }
}

/// An experiment job: a (workload × design-point × evaluator) grid.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ExperimentSpec {
    /// Report title.
    pub title: String,
    /// Workload registry names.
    pub workloads: Vec<String>,
    /// Size label (`tiny`/`small`/`large`).
    pub size: String,
    /// Instruction budget per evaluation, if truncated.
    pub limit: Option<u64>,
    /// Evaluator labels (`model`/`sim`/`ooo`/`sampled`).
    pub evaluators: Vec<String>,
    /// Whether to run the energy model.
    pub energy: bool,
    /// Sampling plan for `sampled` evaluators (absent = the default
    /// 1-in-10 plan with full warming).
    pub sampling: Option<SamplingSpec>,
    /// Design space to sweep (absent = the single default machine).
    pub space: Option<SpaceSpec>,
    /// Evaluate only every `stride`-th design point.
    pub stride: usize,
}

/// An exploration job: strategy-driven search over a design space.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ExplorationSpec {
    /// Report title.
    pub title: String,
    /// Workload registry names.
    pub workloads: Vec<String>,
    /// Size label (`tiny`/`small`/`large`).
    pub size: String,
    /// Instruction budget per evaluation, if truncated.
    pub limit: Option<u64>,
    /// Objective names (`cpi`/`delay`/`energy`/`edp`/`ed2p`/`area`).
    pub objectives: Vec<String>,
    /// Search strategy.
    pub strategy: StrategySpec,
    /// Evaluator label for the search phase.
    pub evaluator: String,
    /// Design space to search.
    pub space: SpaceSpec,
}

/// A subset job: representative-input selection plus a verified subset
/// sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SubsetSpec {
    /// Report title.
    pub title: String,
    /// Workload registry names.
    pub workloads: Vec<String>,
    /// Size label (`tiny`/`small`/`large`).
    pub size: String,
    /// Instruction budget per evaluation, if truncated.
    pub limit: Option<u64>,
    /// Evaluator label for the sweep phase.
    pub evaluator: String,
    /// Whether to verify the subset against the full suite.
    pub verify: bool,
    /// Design space to sweep.
    pub space: SpaceSpec,
}

/// One unit of server work: the three request kinds the repo's tools
/// submit, dispatched on the `"kind"` field of the submitted object.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// `{"kind":"experiment",...}` — an [`Experiment`] grid.
    Experiment(ExperimentSpec),
    /// `{"kind":"exploration",...}` — an [`Exploration`] search.
    Exploration(ExplorationSpec),
    /// `{"kind":"subset",...}` — a [`SubsetRun`] study.
    Subset(SubsetSpec),
}

impl JobSpec {
    /// The spec's kind label (`experiment`/`exploration`/`subset`).
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::Experiment(_) => "experiment",
            JobSpec::Exploration(_) => "exploration",
            JobSpec::Subset(_) => "subset",
        }
    }

    /// Parses a job object, validating every name against the registries
    /// up front — a submission either enqueues or is rejected
    /// synchronously; it never fails later on a typo.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending field.
    pub fn from_value(value: &Value) -> Result<JobSpec, String> {
        if value.as_object().is_none() {
            return Err(format!("job must be an object, got {}", value.kind()));
        }
        let kind = str_or(value, "kind", "")?;
        let job = match kind.as_str() {
            "experiment" => JobSpec::Experiment(ExperimentSpec {
                title: str_or(value, "title", "")?,
                workloads: str_list(value, "workloads")?,
                size: str_or(value, "size", "tiny")?,
                limit: opt_u64(value, "limit")?,
                evaluators: str_list(value, "evaluators")?,
                energy: bool_or(value, "energy", false)?,
                sampling: match value.get("sampling") {
                    None | Some(Value::Null) => None,
                    Some(v) => Some(SamplingSpec::parse(v)?),
                },
                space: match value.get("space") {
                    None | Some(Value::Null) => None,
                    Some(v) => Some(SpaceSpec::parse(v)?),
                },
                stride: u64_or(value, "stride", 1)?.max(1) as usize,
            }),
            "exploration" => JobSpec::Exploration(ExplorationSpec {
                title: str_or(value, "title", "")?,
                workloads: str_list(value, "workloads")?,
                size: str_or(value, "size", "tiny")?,
                limit: opt_u64(value, "limit")?,
                objectives: str_list(value, "objectives")?,
                strategy: match value.get("strategy") {
                    None | Some(Value::Null) => StrategySpec::parse(&Value::Object(vec![]))?,
                    Some(v) => StrategySpec::parse(v)?,
                },
                evaluator: str_or(value, "evaluator", "model")?,
                space: match value.get("space") {
                    None | Some(Value::Null) => SpaceSpec {
                        preset: "table2".into(),
                        widths: None,
                    },
                    Some(v) => SpaceSpec::parse(v)?,
                },
            }),
            "subset" => JobSpec::Subset(SubsetSpec {
                title: str_or(value, "title", "")?,
                workloads: str_list(value, "workloads")?,
                size: str_or(value, "size", "tiny")?,
                limit: opt_u64(value, "limit")?,
                evaluator: str_or(value, "evaluator", "model")?,
                verify: bool_or(value, "verify", false)?,
                space: match value.get("space") {
                    None | Some(Value::Null) => SpaceSpec {
                        preset: "table2".into(),
                        widths: None,
                    },
                    Some(v) => SpaceSpec::parse(v)?,
                },
            }),
            "" => return Err("job is missing the `kind` field".into()),
            other => return Err(format!("unknown job kind `{other}`")),
        };
        job.validate()?;
        Ok(job)
    }

    /// Validates every registry name so rejection happens at submit time.
    fn validate(&self) -> Result<(), String> {
        let (workloads, size) = match self {
            JobSpec::Experiment(s) => (&s.workloads, &s.size),
            JobSpec::Exploration(s) => (&s.workloads, &s.size),
            JobSpec::Subset(s) => (&s.workloads, &s.size),
        };
        if workloads.is_empty() {
            return Err("job names no workloads".into());
        }
        for name in workloads {
            find_workload(name)?;
        }
        parse_size(size)?;
        match self {
            JobSpec::Experiment(s) => {
                if s.evaluators.is_empty() {
                    return Err("experiment names no evaluators".into());
                }
                for label in &s.evaluators {
                    parse_eval(label)?;
                }
                if let Some(sampling) = &s.sampling {
                    sampling.resolve()?;
                }
                if let Some(space) = &s.space {
                    space.resolve()?;
                }
            }
            JobSpec::Exploration(s) => {
                if s.objectives.is_empty() {
                    return Err("exploration names no objectives".into());
                }
                for name in &s.objectives {
                    parse_objective(name)?;
                }
                parse_eval(&s.evaluator)?;
                s.space.resolve()?;
                s.strategy.apply(Exploration::new(s.space.resolve()?))?;
            }
            JobSpec::Subset(s) => {
                parse_eval(&s.evaluator)?;
                s.space.resolve()?;
            }
        }
        Ok(())
    }

    /// Canonical object form, including the `kind` discriminator — the
    /// bytes the job fingerprint hashes.
    pub fn to_value(&self) -> Value {
        let body = match self {
            JobSpec::Experiment(s) => s.to_value(),
            JobSpec::Exploration(s) => s.to_value(),
            JobSpec::Subset(s) => s.to_value(),
        };
        let mut fields = vec![("kind".to_string(), Value::Str(self.kind().to_string()))];
        if let Value::Object(body) = body {
            fields.extend(body);
        }
        Value::Object(fields)
    }

    /// Content fingerprint of the canonical form: submissions that mean
    /// the same job (regardless of which defaults they spelled out) hash
    /// identically, which is what the engine's job-level dedup keys on.
    pub fn fingerprint(&self) -> u64 {
        let canonical =
            serde_json::to_string(&self.to_value()).expect("spec serialization is infallible");
        fnv64(canonical.as_bytes())
    }

    /// Runs the job against the server's shared store and cell memo,
    /// returning the report as a JSON value (the deterministic bytes the
    /// protocol's `result` response carries).
    ///
    /// Jobs run single-threaded internally: the server's parallelism is
    /// its worker pool, and fixed-order evaluation keeps every report
    /// byte-identical across worker counts.
    ///
    /// # Errors
    ///
    /// Returns the underlying evaluation error's message.
    pub fn execute(&self, store: &WorkloadStore, cells: &CellMemo) -> Result<Value, String> {
        match self {
            JobSpec::Experiment(s) => s.execute(store, cells),
            JobSpec::Exploration(s) => s.execute(store),
            JobSpec::Subset(s) => s.execute(store),
        }
    }
}

impl ExperimentSpec {
    fn execute(&self, store: &WorkloadStore, cells: &CellMemo) -> Result<Value, String> {
        let mut experiment = Experiment::new()
            .title(&self.title)
            .size(parse_size(&self.size)?)
            .energy(self.energy)
            .threads(1)
            .with_cache(store.clone())
            .with_cells(cells.clone());
        for name in &self.workloads {
            experiment = experiment.workload(find_workload(name)?);
        }
        if let Some(limit) = self.limit {
            experiment = experiment.limit(limit);
        }
        if let Some(sampling) = &self.sampling {
            experiment = experiment.sampling(sampling.resolve()?);
        }
        if let Some(space) = &self.space {
            experiment = experiment
                .design_space(space.resolve()?)
                .stride(self.stride);
        }
        let kinds = self
            .evaluators
            .iter()
            .map(|label| parse_eval(label))
            .collect::<Result<Vec<_>, _>>()?;
        let report = experiment
            .evaluators(kinds)
            .run()
            .map_err(|e| e.to_string())?;
        Ok(report.to_value())
    }
}

impl ExplorationSpec {
    fn execute(&self, store: &WorkloadStore) -> Result<Value, String> {
        let mut exploration = Exploration::new(self.space.resolve()?)
            .title(&self.title)
            .size(parse_size(&self.size)?)
            .evaluator(parse_eval(&self.evaluator)?)
            .threads(1)
            .with_cache(store.clone());
        for name in &self.workloads {
            exploration = exploration.workload(find_workload(name)?);
        }
        if let Some(limit) = self.limit {
            exploration = exploration.limit(limit);
        }
        let objectives = self
            .objectives
            .iter()
            .map(|name| parse_objective(name))
            .collect::<Result<Vec<_>, _>>()?;
        let energy = objectives.iter().any(Objective::needs_energy);
        exploration = exploration.objectives(objectives).energy(energy);
        exploration = self.strategy.apply(exploration)?;
        let report = exploration.run().map_err(|e| e.to_string())?;
        Ok(report.to_value())
    }
}

impl SubsetSpec {
    fn execute(&self, store: &WorkloadStore) -> Result<Value, String> {
        let mut run = SubsetRun::new(self.space.resolve()?)
            .title(&self.title)
            .size(parse_size(&self.size)?)
            .evaluator(parse_eval(&self.evaluator)?)
            .verify(self.verify)
            .threads(1)
            .with_cache(store.clone());
        for name in &self.workloads {
            run = run.workload(find_workload(name)?);
        }
        if let Some(limit) = self.limit {
            run = run.limit(limit);
        }
        let report = run.run().map_err(|e| e.to_string())?;
        Ok(report.to_value())
    }
}

/// Finds a workload by name across the full registry (MiBench core +
/// extended + the SPEC-like suite).
pub fn find_workload(name: &str) -> Result<Workload, String> {
    mibench::all()
        .into_iter()
        .chain(mibench::extended())
        .chain(spec_suite::all())
        .find(|w| w.name() == name)
        .ok_or_else(|| format!("unknown workload `{name}`"))
}

/// Parses a size label.
pub fn parse_size(label: &str) -> Result<WorkloadSize, String> {
    match label {
        "tiny" => Ok(WorkloadSize::Tiny),
        "small" => Ok(WorkloadSize::Small),
        "large" => Ok(WorkloadSize::Large),
        other => Err(format!("unknown size `{other}` (tiny/small/large)")),
    }
}

/// Parses an evaluator label.
pub fn parse_eval(label: &str) -> Result<EvalKind, String> {
    match label {
        "model" => Ok(EvalKind::Model),
        "sim" => Ok(EvalKind::Sim),
        "ooo" => Ok(EvalKind::Ooo),
        "sampled" => Ok(EvalKind::Sampled),
        other => Err(format!(
            "unknown evaluator `{other}` (model/sim/ooo/sampled)"
        )),
    }
}

/// Parses an objective name.
pub fn parse_objective(name: &str) -> Result<Objective, String> {
    match name {
        "cpi" => Ok(Objective::cpi()),
        "delay" => Ok(Objective::delay()),
        "energy" => Ok(Objective::energy()),
        "edp" => Ok(Objective::edp()),
        "ed2p" => Ok(Objective::ed2p()),
        "area" => Ok(Objective::area()),
        other => Err(format!("unknown objective `{other}`")),
    }
}

// --- lenient field readers over the Value tree -----------------------------

fn str_or(value: &Value, key: &str, default: &str) -> Result<String, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(default.to_string()),
        Some(Value::Str(s)) => Ok(s.clone()),
        Some(v) => Err(format!("field `{key}` must be a string, got {}", v.kind())),
    }
}

fn bool_or(value: &Value, key: &str, default: bool) -> Result<bool, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(Value::Bool(b)) => Ok(*b),
        Some(v) => Err(format!("field `{key}` must be a bool, got {}", v.kind())),
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match *v {
        Value::UInt(u) => Some(u),
        Value::Int(i) if i >= 0 => Some(i as u64),
        _ => None,
    }
}

fn u64_or(value: &Value, key: &str, default: u64) -> Result<u64, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(v) => {
            as_u64(v).ok_or_else(|| format!("field `{key}` must be an integer, got {}", v.kind()))
        }
    }
}

fn opt_u64(value: &Value, key: &str) -> Result<Option<u64>, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => as_u64(v)
            .map(Some)
            .ok_or_else(|| format!("field `{key}` must be an integer, got {}", v.kind())),
    }
}

fn str_list(value: &Value, key: &str) -> Result<Vec<String>, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(Vec::new()),
        Some(Value::Array(items)) => items
            .iter()
            .map(|v| match v {
                Value::Str(s) => Ok(s.clone()),
                other => Err(format!(
                    "field `{key}` must hold strings, got {}",
                    other.kind()
                )),
            })
            .collect(),
        Some(v) => Err(format!("field `{key}` must be an array, got {}", v.kind())),
    }
}

fn opt_u32_list(value: &Value, key: &str) -> Result<Option<Vec<u32>>, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Array(items)) => items
            .iter()
            .map(|v| {
                as_u64(v)
                    .and_then(|u| u32::try_from(u).ok())
                    .ok_or_else(|| format!("field `{key}` must hold small integers"))
            })
            .collect::<Result<Vec<u32>, String>>()
            .map(Some),
        Some(v) => Err(format!("field `{key}` must be an array, got {}", v.kind())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(json: &str) -> Result<JobSpec, String> {
        let value: Value = serde_json::from_str(json).expect("test JSON parses");
        JobSpec::from_value(&value)
    }

    #[test]
    fn minimal_experiment_parses_with_defaults() {
        let job = parse(r#"{"kind":"experiment","workloads":["sha"],"evaluators":["model"]}"#)
            .expect("parses");
        match &job {
            JobSpec::Experiment(s) => {
                assert_eq!(s.size, "tiny");
                assert_eq!(s.limit, None);
                assert!(!s.energy);
                assert!(s.space.is_none());
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn defaults_do_not_change_the_fingerprint() {
        let terse = parse(r#"{"kind":"experiment","workloads":["sha"],"evaluators":["model"]}"#)
            .expect("parses");
        let spelled = parse(
            r#"{"kind":"experiment","title":"","workloads":["sha"],"size":"tiny",
                "evaluators":["model"],"energy":false,"stride":1}"#,
        )
        .expect("parses");
        assert_eq!(terse.fingerprint(), spelled.fingerprint());
        let different =
            parse(r#"{"kind":"experiment","workloads":["crc32"],"evaluators":["model"]}"#)
                .expect("parses");
        assert_ne!(terse.fingerprint(), different.fingerprint());
    }

    #[test]
    fn bad_names_are_rejected_at_parse_time() {
        for (json, needle) in [
            (r#"{"kind":"mystery"}"#, "unknown job kind"),
            (
                r#"{"kind":"experiment","evaluators":["model"]}"#,
                "no workloads",
            ),
            (
                r#"{"kind":"experiment","workloads":["nope"],"evaluators":["model"]}"#,
                "unknown workload",
            ),
            (
                r#"{"kind":"experiment","workloads":["sha"],"evaluators":["magic"]}"#,
                "unknown evaluator",
            ),
            (
                r#"{"kind":"experiment","workloads":["sha"],"evaluators":["model"],"size":"xl"}"#,
                "unknown size",
            ),
            (
                r#"{"kind":"exploration","workloads":["sha"],"objectives":["vibes"]}"#,
                "unknown objective",
            ),
            (
                r#"{"kind":"exploration","workloads":["sha"],"objectives":["cpi"],
                    "strategy":{"name":"lucky"}}"#,
                "unknown strategy",
            ),
            (
                r#"{"kind":"subset","workloads":["sha"],"space":{"preset":"huge"}}"#,
                "unknown space preset",
            ),
            // Bad sampling geometry is rejected synchronously at submit
            // time (through `Sampling::try_new`), never inside a worker.
            (
                r#"{"kind":"experiment","workloads":["sha"],"evaluators":["sampled"],
                    "sampling":{"period":10,"length":0}}"#,
                "invalid sampling plan",
            ),
            (
                r#"{"kind":"experiment","workloads":["sha"],"evaluators":["sampled"],
                    "sampling":{"period":10,"length":11}}"#,
                "invalid sampling plan",
            ),
        ] {
            let err = parse(json).expect_err(json);
            assert!(err.contains(needle), "`{err}` should mention `{needle}`");
        }
    }

    #[test]
    fn sampled_jobs_parse_and_execute_with_ci_stats() {
        let job = parse(
            r#"{"kind":"experiment","workloads":["sha"],"evaluators":["sim","sampled"],
                "sampling":{"period":500,"length":50,"warmup":450,"offset":50}}"#,
        )
        .expect("parses");
        let store = WorkloadStore::new();
        let cells = CellMemo::new();
        let report = job.execute(&store, &cells).expect("runs");
        let rows = report
            .get("rows")
            .and_then(Value::as_array)
            .expect("rows array");
        assert_eq!(rows.len(), 2);
        // The sampled row carries the sampling summary; the full-sim row
        // does not.
        let sampling_of = |row: &Value| row.get("sampling").cloned().expect("field present");
        assert_eq!(sampling_of(&rows[0]), Value::Null);
        let stats = sampling_of(&rows[1]);
        match stats.get("units").expect("units field") {
            Value::Int(n) => assert!(*n > 1, "{n} units"),
            Value::UInt(n) => assert!(*n > 1, "{n} units"),
            other => panic!("units should be an integer, got {}", other.kind()),
        }
        assert!(stats.get("cpi_ci95").is_some());
        assert_eq!(
            rows[1].get("evaluator"),
            Some(&Value::Str("sampled-p500-l50-w450-o50".into()))
        );
    }

    #[test]
    fn execute_runs_a_tiny_experiment() {
        let job = parse(
            r#"{"kind":"experiment","workloads":["sha"],"evaluators":["model"],
                "limit":20000}"#,
        )
        .expect("parses");
        let store = WorkloadStore::new();
        let cells = CellMemo::new();
        let report = job.execute(&store, &cells).expect("runs");
        assert!(report.get("rows").and_then(Value::as_array).is_some());
        assert_eq!(cells.stats().misses, 1);
    }
}
