//! A small blocking client for the line-delimited protocol — what the
//! e2e tests, the throughput bench, and the `--smoke` self-test drive the
//! server with.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

use mim_obs::Snapshot;
use serde::Value;

use crate::error::ServeError;
use crate::protocol::{to_line, MetricsFormat, Request};
use crate::spec::JobSpec;

enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

/// The `(id, deduped)` outcome of a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Submitted {
    /// Job id to poll/fetch with.
    pub id: u64,
    /// True when the server coalesced this submission onto an existing
    /// identical job.
    pub deduped: bool,
}

/// A blocking protocol client over one connection.
///
/// Addresses mirror [`Server::bind`](crate::Server::bind): `unix:<path>`,
/// `tcp:<host>:<port>`, or a bare `<host>:<port>`.
pub struct Client {
    stream: Stream,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Addr`] for unparseable addresses and
    /// [`ServeError::Io`] for connection failures.
    pub fn connect(addr: &str) -> Result<Client, ServeError> {
        if let Some(path) = addr.strip_prefix("unix:") {
            let stream = UnixStream::connect(path)
                .map_err(|e| ServeError::Io(format!("connect {path}: {e}")))?;
            return Ok(Client {
                stream: Stream::Unix(stream),
            });
        }
        let hostport = addr.strip_prefix("tcp:").unwrap_or(addr);
        if !hostport.contains(':') {
            return Err(ServeError::Addr(format!(
                "`{addr}` is neither unix:<path> nor <host>:<port>"
            )));
        }
        let stream = TcpStream::connect(hostport)
            .map_err(|e| ServeError::Io(format!("connect {hostport}: {e}")))?;
        stream.set_nodelay(true).ok(); // request/response lines, not bulk
        Ok(Client {
            stream: Stream::Tcp(stream),
        })
    }

    /// Sends one request line and reads one response line.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on transport failure, [`ServeError::Protocol`]
    /// on a non-JSON reply or closed connection, [`ServeError::Rejected`]
    /// when the server answers `{"ok":false,...}`.
    pub fn request(&mut self, request: &Request) -> Result<Value, ServeError> {
        let line = request.to_line() + "\n";
        let response = match &mut self.stream {
            Stream::Tcp(s) => exchange(s, &line)?,
            Stream::Unix(s) => exchange(s, &line)?,
        };
        let value: Value = serde_json::from_str(&response)
            .map_err(|e| ServeError::Protocol(format!("malformed response: {e}")))?;
        match value.get("ok") {
            Some(Value::Bool(true)) => Ok(value),
            Some(Value::Bool(false)) => {
                let message = match value.get("error") {
                    Some(Value::Str(s)) => s.clone(),
                    _ => "unspecified error".to_string(),
                };
                Err(ServeError::Rejected(message))
            }
            _ => Err(ServeError::Protocol("response has no `ok` field".into())),
        }
    }

    /// Submits a job.
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request).
    pub fn submit(&mut self, job: &JobSpec) -> Result<Submitted, ServeError> {
        let response = self.request(&Request::Submit(Box::new(job.clone())))?;
        let id = response_u64(&response, "id")?;
        let deduped = matches!(response.get("deduped"), Some(Value::Bool(true)));
        Ok(Submitted { id, deduped })
    }

    /// Queries a job's state label (`queued`/`running`/`done`/`failed`).
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request).
    pub fn status(&mut self, id: u64) -> Result<String, ServeError> {
        let response = self.request(&Request::Status(id))?;
        match response.get("state") {
            Some(Value::Str(s)) => Ok(s.clone()),
            _ => Err(ServeError::Protocol("status reply has no `state`".into())),
        }
    }

    /// Fetches a job's report, blocking until the job finishes.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] carries the job's own error message when
    /// the job failed.
    pub fn result(&mut self, id: u64) -> Result<Value, ServeError> {
        let response = self.request(&Request::Result(id))?;
        response
            .get("result")
            .cloned()
            .ok_or_else(|| ServeError::Protocol("result reply has no `result`".into()))
    }

    /// Like [`result`](Client::result), but returns the report's compact
    /// JSON bytes — the deterministic representation response-identity
    /// tests compare.
    ///
    /// # Errors
    ///
    /// See [`result`](Client::result).
    pub fn result_text(&mut self, id: u64) -> Result<String, ServeError> {
        Ok(to_line(&self.result(id)?))
    }

    /// Fetches the server's stats object.
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request).
    pub fn stats(&mut self) -> Result<Value, ServeError> {
        let response = self.request(&Request::Stats)?;
        response
            .get("stats")
            .cloned()
            .ok_or_else(|| ServeError::Protocol("stats reply has no `stats`".into()))
    }

    /// Fetches the server's merged metrics snapshot as a JSON value
    /// (counters, gauges, and latency histograms with derived quantiles).
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request).
    pub fn metrics(&mut self) -> Result<Value, ServeError> {
        let response = self.request(&Request::Metrics(MetricsFormat::Json))?;
        response
            .get("metrics")
            .cloned()
            .ok_or_else(|| ServeError::Protocol("metrics reply has no `metrics`".into()))
    }

    /// Fetches the server's metrics in Prometheus text exposition form.
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request).
    pub fn metrics_prometheus(&mut self) -> Result<String, ServeError> {
        let response = self.request(&Request::Metrics(MetricsFormat::Prometheus))?;
        match response.get("metrics_text") {
            Some(Value::Str(s)) => Ok(s.clone()),
            _ => Err(ServeError::Protocol(
                "metrics reply has no `metrics_text`".into(),
            )),
        }
    }

    /// Fetches a finished job's wall-clock span profile
    /// (`{"total_ns":…,"spans":[…],"cells":{…}}`).
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] for unknown ids, unfinished jobs, and
    /// jobs that ran with profile capture disabled.
    pub fn profile(&mut self, id: u64) -> Result<Value, ServeError> {
        let response = self.request(&Request::Profile(id))?;
        response
            .get("profile")
            .cloned()
            .ok_or_else(|| ServeError::Protocol("profile reply has no `profile`".into()))
    }

    /// Streams `count` metrics-delta snapshots, one per `interval_ms`
    /// tick: each returned [`Snapshot`] is the change since the previous
    /// tick (counters and histograms as differences, gauges as current
    /// values). Blocks for roughly `count * interval_ms` milliseconds.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] if the server begins shutting down
    /// mid-stream; [`ServeError::Io`]/[`ServeError::Protocol`] on
    /// transport trouble.
    pub fn watch(&mut self, interval_ms: u64, count: u64) -> Result<Vec<Snapshot>, ServeError> {
        let line = Request::Watch { interval_ms, count }.to_line() + "\n";
        match &mut self.stream {
            Stream::Tcp(s) => watch_stream(s, &line, count),
            Stream::Unix(s) => watch_stream(s, &line, count),
        }
    }

    /// Asks the server to drain and stop.
    ///
    /// # Errors
    ///
    /// See [`request`](Client::request).
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        self.request(&Request::Shutdown).map(|_| ())
    }
}

/// Reads one `u64` field out of a response object.
fn response_u64(value: &Value, key: &str) -> Result<u64, ServeError> {
    match value.get(key) {
        Some(Value::UInt(u)) => Ok(*u),
        Some(Value::Int(i)) if *i >= 0 => Ok(*i as u64),
        _ => Err(ServeError::Protocol(format!("reply has no `{key}`"))),
    }
}

/// Drives one `watch` stream: writes the request, then reads exactly
/// `count` delta lines through a single persistent reader (unlike
/// [`exchange`], which builds a fresh reader per request and must not be
/// used for multi-line replies).
fn watch_stream<S: std::io::Read + Write>(
    stream: &mut S,
    line: &str,
    count: u64,
) -> Result<Vec<Snapshot>, ServeError> {
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.flush())
        .map_err(|e| ServeError::Io(e.to_string()))?;
    let mut reader = BufReader::new(stream);
    let mut deltas = Vec::new();
    for _ in 0..count.max(1) {
        let mut response = String::new();
        let n = reader
            .read_line(&mut response)
            .map_err(|e| ServeError::Io(e.to_string()))?;
        if n == 0 {
            return Err(ServeError::Protocol("server closed the connection".into()));
        }
        let value: Value = serde_json::from_str(&response)
            .map_err(|e| ServeError::Protocol(format!("malformed response: {e}")))?;
        if let Some(Value::Bool(false)) = value.get("ok") {
            let message = match value.get("error") {
                Some(Value::Str(s)) => s.clone(),
                _ => "unspecified error".to_string(),
            };
            return Err(ServeError::Rejected(message));
        }
        let metrics = value
            .get("metrics")
            .ok_or_else(|| ServeError::Protocol("watch line has no `metrics`".into()))?;
        deltas.push(Snapshot::from_value(metrics).map_err(ServeError::Protocol)?);
    }
    Ok(deltas)
}

fn exchange<S: std::io::Read + Write>(stream: &mut S, line: &str) -> Result<String, ServeError> {
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.flush())
        .map_err(|e| ServeError::Io(e.to_string()))?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    let n = reader
        .read_line(&mut response)
        .map_err(|e| ServeError::Io(e.to_string()))?;
    if n == 0 {
        return Err(ServeError::Protocol("server closed the connection".into()));
    }
    Ok(response)
}
