//! # mim-serve — the long-running concurrent evaluation service
//!
//! The paper's methodology pays off when the same workloads and design
//! points are evaluated over and over — sweeps, validation grids, subset
//! studies. The repo's one-shot CLIs rebuild their caches every run;
//! `mim-serve` keeps them alive: a std-only server where repeated and
//! overlapping requests never re-execute anything.
//!
//! Three layers, composed:
//!
//! * **persistence** — the engine's [`WorkloadStore`] can be
//!   [`persistent`](WorkloadStore::persistent): recorded traces and sweep
//!   profiles live in a sharded, content-addressed, crash-safe on-disk
//!   store ([`DiskStore`]), so a restarted server performs **zero**
//!   functional executions for anything it has seen before;
//! * **the job [`Engine`]** — a bounded FIFO queue drained by a fixed
//!   worker pool, with job-level dedup (identical submissions coalesce to
//!   one id) and cell-level coalescing (overlapping sweeps share one
//!   [`CellMemo`], so each (workload, machine, evaluator) cell is
//!   evaluated once across all concurrent jobs);
//! * **the protocol** — line-delimited JSON over TCP or unix sockets
//!   (`submit`/`status`/`result`/`stats`/`metrics`/`shutdown`; see
//!   [`protocol`]), served by [`Server`] and driven by the blocking
//!   [`Client`]. Result payloads are byte-deterministic across runs,
//!   worker counts, and restarts — telemetry (the `mim-obs` registries
//!   behind `stats` and `metrics`) is strictly out-of-band.
//!
//! ## Example: in-process server + client round-trip
//!
//! ```
//! use mim_runner::{CellMemo, WorkloadStore};
//! use mim_serve::{Client, Engine, JobSpec, Server};
//!
//! let engine = Engine::start(WorkloadStore::new(), CellMemo::new(), 2, 16);
//! let server = Server::bind("tcp:127.0.0.1:0", engine).unwrap();
//! let addr = server.addr().to_connect_string();
//! let handle = std::thread::spawn(move || server.run().unwrap());
//!
//! let job: serde::Value = serde_json::from_str(
//!     r#"{"kind":"experiment","workloads":["sha"],"evaluators":["model"],"limit":20000}"#,
//! )
//! .unwrap();
//! let job = JobSpec::from_value(&job).unwrap();
//! let mut client = Client::connect(&addr).unwrap();
//! let submitted = client.submit(&job).unwrap();
//! let report = client.result(submitted.id).unwrap();
//! assert!(report.get("rows").is_some());
//! client.shutdown().unwrap();
//! drop(client);
//! handle.join().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod engine;
mod error;
pub mod protocol;
mod server;
mod spec;

pub use client::{Client, Submitted};
pub use engine::{Engine, JobStatus};
pub use error::ServeError;
pub use server::{BoundAddr, Server};
pub use spec::{
    find_workload, parse_eval, parse_objective, parse_size, ExperimentSpec, ExplorationSpec,
    JobSpec, SpaceSpec, StrategySpec, SubsetSpec,
};

// Re-exported so server embedders configure stores without naming
// mim-runner directly.
pub use mim_runner::{CellMemo, CellStats, DiskStore, StoreError, StoreStats, WorkloadStore};

// Re-exported so embedders and the bench inspect metrics snapshots
// without naming mim-obs directly.
pub use mim_obs::{Registry, Snapshot};
pub use protocol::MetricsFormat;
