//! The job engine: a bounded FIFO queue drained by a fixed worker pool,
//! with job-level dedup in front and cell-level coalescing underneath.
//!
//! Deduplication happens at three granularities, so "hundreds of
//! concurrent overlapping requests" collapse to the minimal computation:
//!
//! 1. **jobs** — submissions hash to a canonical fingerprint
//!    ([`JobSpec::fingerprint`]); a spec identical to one already
//!    queued, running, or completed returns the existing job id instead
//!    of enqueueing;
//! 2. **grid cells** — distinct-but-overlapping sweeps share one
//!    [`CellMemo`], so a (workload, size, machine, evaluator) cell is
//!    evaluated once no matter how many jobs touch it, with in-flight
//!    coalescing batching concurrent requests for the same cell;
//! 3. **workload artifacts** — recordings and profiles live in the shared
//!    (optionally persistent) [`WorkloadStore`], so even disjoint sweeps
//!    of the same workloads never re-execute anything.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use mim_obs::{
    clock, with_thread_sink, Counter, Gauge, Histogram, HistogramSnapshot, ProfileSink, Registry,
    Snapshot, Span,
};
use mim_runner::{CellMemo, WorkloadStore};
use serde::{Serialize, Value};

use crate::spec::JobSpec;

/// Lifecycle of one submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; the report is available.
    Done,
    /// Finished with an error.
    Failed,
}

impl JobStatus {
    /// Protocol label (`queued`/`running`/`done`/`failed`).
    pub fn label(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
        }
    }
}

struct JobRecord {
    status: JobStatus,
    /// Report value once `Done` (shared: results can be re-fetched).
    result: Option<Arc<Value>>,
    /// Error message once `Failed`.
    error: Option<String>,
    /// Wall-clock span profile of the job's execution, captured by the
    /// worker when profile capture is enabled (shared: re-fetchable).
    profile: Option<Arc<Value>>,
}

/// A queued job: id, spec, and (when timing is on) its admission
/// timestamp, so the worker that pops it can attribute the queue wait.
struct QueuedJob {
    id: u64,
    spec: JobSpec,
    submitted_at: Option<Instant>,
}

/// The engine's per-job lifecycle instruments, resolved once against the
/// engine's [`Registry`]. The counters back the `jobs` section of the
/// `stats` payload (one source of truth), and the histograms carve a
/// job's wall time into the submitted→queued→running→done stages.
struct EngineInstruments {
    submitted: Counter,
    deduped: Counter,
    completed: Counter,
    failed: Counter,
    /// Jobs currently executing on a worker (`jobs.running`).
    running: Gauge,
    /// Jobs admitted but not yet picked up (`jobs.queue_depth`).
    queue_depth: Gauge,
    /// Admission → worker pickup (`jobs.queue_wait_ns`).
    queue_wait_ns: Histogram,
    /// Worker pickup → completion (`jobs.run_ns`).
    run_ns: Histogram,
    /// Admission → completion (`jobs.total_ns`).
    total_ns: Histogram,
}

impl EngineInstruments {
    fn new(registry: &Registry) -> EngineInstruments {
        EngineInstruments {
            submitted: registry.counter("jobs.submitted"),
            deduped: registry.counter("jobs.deduped"),
            completed: registry.counter("jobs.completed"),
            failed: registry.counter("jobs.failed"),
            running: registry.gauge("jobs.running"),
            queue_depth: registry.gauge("jobs.queue_depth"),
            queue_wait_ns: registry.histogram("jobs.queue_wait_ns"),
            run_ns: registry.histogram("jobs.run_ns"),
            total_ns: registry.histogram("jobs.total_ns"),
        }
    }
}

struct EngineInner {
    store: WorkloadStore,
    cells: CellMemo,
    queue_capacity: usize,
    queue: Mutex<VecDeque<QueuedJob>>,
    queue_ready: Condvar,
    jobs: Mutex<HashMap<u64, JobRecord>>,
    job_changed: Condvar,
    /// spec fingerprint → job id, for job-level dedup.
    dedup: Mutex<HashMap<u64, u64>>,
    next_id: AtomicU64,
    stop: AtomicBool,
    /// Whether workers wrap job execution in a per-job [`ProfileSink`]
    /// (the protocol's `profile` command). On by default.
    profile_capture: AtomicBool,
    registry: Registry,
    m: EngineInstruments,
}

/// A running evaluation engine: `workers` threads draining a FIFO queue
/// of [`JobSpec`]s, sharing one [`WorkloadStore`] and one [`CellMemo`].
/// Cheaply cloneable; every connection handler holds a clone.
#[derive(Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Engine {
    /// Starts `workers` worker threads (minimum 1) over a queue holding
    /// at most `queue_capacity` waiting jobs (minimum 1).
    pub fn start(
        store: WorkloadStore,
        cells: CellMemo,
        workers: usize,
        queue_capacity: usize,
    ) -> Engine {
        let registry = Registry::new();
        let inner = Arc::new(EngineInner {
            store,
            cells,
            queue_capacity: queue_capacity.max(1),
            queue: Mutex::new(VecDeque::new()),
            queue_ready: Condvar::new(),
            jobs: Mutex::new(HashMap::new()),
            job_changed: Condvar::new(),
            dedup: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            stop: AtomicBool::new(false),
            profile_capture: AtomicBool::new(true),
            m: EngineInstruments::new(&registry),
            registry,
        });
        let handles = (0..workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Engine {
            inner,
            workers: Arc::new(Mutex::new(handles)),
        }
    }

    /// The engine's shared workload store.
    pub fn store(&self) -> &WorkloadStore {
        &self.inner.store
    }

    /// The engine's shared cell memo.
    pub fn cells(&self) -> &CellMemo {
        &self.inner.cells
    }

    /// The engine's own metrics registry — job lifecycle counters, queue
    /// gauges, and per-stage latency histograms. The store's and the cell
    /// memo's registries are separate; [`metrics`](Engine::metrics) merges
    /// all of them.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// One combined metrics snapshot across every registry the serving
    /// stack records into: the engine's job instruments, the
    /// [`WorkloadStore`]'s counters and latency histograms, the
    /// [`CellMemo`]'s, and the process-global registry (span and log
    /// counts) — the payload of the protocol's `metrics` command.
    pub fn metrics(&self) -> Snapshot {
        let mut snapshot = self.inner.registry.snapshot();
        snapshot.merge(self.inner.store.registry().snapshot());
        snapshot.merge(self.inner.cells.registry().snapshot());
        snapshot.merge(mim_obs::global().snapshot());
        snapshot
    }

    /// Submits a job. Returns `(id, deduped)` — `deduped` is true when an
    /// identical spec was already queued, running, or done, in which case
    /// `id` is that existing job's.
    ///
    /// # Errors
    ///
    /// Returns a message when the engine is shutting down or the queue is
    /// at capacity (the client should retry later).
    pub fn submit(&self, spec: JobSpec) -> Result<(u64, bool), String> {
        if self.inner.stop.load(Ordering::SeqCst) {
            return Err("server is shutting down".into());
        }
        let fingerprint = spec.fingerprint();
        // Hold the dedup map across admission so two racing identical
        // submissions cannot both enqueue.
        let mut dedup = self.inner.dedup.lock().expect("dedup map poisoned");
        if let Some(&existing) = dedup.get(&fingerprint) {
            let jobs = self.inner.jobs.lock().expect("job table poisoned");
            let alive = jobs
                .get(&existing)
                .is_some_and(|r| r.status != JobStatus::Failed);
            if alive {
                self.inner.m.deduped.inc();
                return Ok((existing, true));
            }
            // A failed attempt does not pin its fingerprint: retry fresh.
        }
        let mut queue = self.inner.queue.lock().expect("job queue poisoned");
        if queue.len() >= self.inner.queue_capacity {
            return Err(format!(
                "queue is full ({} jobs waiting)",
                self.inner.queue_capacity
            ));
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        self.inner.jobs.lock().expect("job table poisoned").insert(
            id,
            JobRecord {
                status: JobStatus::Queued,
                result: None,
                error: None,
                profile: None,
            },
        );
        dedup.insert(fingerprint, id);
        queue.push_back(QueuedJob {
            id,
            spec,
            submitted_at: clock(),
        });
        self.inner.m.submitted.inc();
        self.inner.m.queue_depth.set(queue.len() as i64);
        self.inner.queue_ready.notify_one();
        Ok((id, false))
    }

    /// The job's current status, if the id is known.
    pub fn status(&self, id: u64) -> Option<JobStatus> {
        self.inner
            .jobs
            .lock()
            .expect("job table poisoned")
            .get(&id)
            .map(|r| r.status)
    }

    /// Blocks until the job finishes, then returns its report value (or
    /// its error message).
    ///
    /// # Errors
    ///
    /// Returns `Err(message)` for unknown ids and failed jobs.
    pub fn wait_result(&self, id: u64) -> Result<Arc<Value>, String> {
        let mut jobs = self.inner.jobs.lock().expect("job table poisoned");
        loop {
            match jobs.get(&id) {
                None => return Err(format!("unknown job id {id}")),
                Some(record) => match record.status {
                    JobStatus::Done => {
                        return Ok(Arc::clone(record.result.as_ref().expect("done has result")));
                    }
                    JobStatus::Failed => {
                        return Err(record.error.clone().unwrap_or_else(|| "job failed".into()));
                    }
                    JobStatus::Queued | JobStatus::Running => {
                        jobs = self
                            .inner
                            .job_changed
                            .wait(jobs)
                            .expect("job table poisoned");
                    }
                },
            }
        }
    }

    /// Enables or disables per-job profile capture. When enabled (the
    /// default), each worker runs its job under a job-private
    /// [`ProfileSink`], and the resulting span tree plus cell-level cost
    /// breakdowns are kept on the job record for the protocol's `profile`
    /// command. Disabling removes the capture entirely from the execution
    /// path (no sink is installed), which is what the throughput bench
    /// compares against.
    pub fn set_profile_capture(&self, capture: bool) {
        self.inner.profile_capture.store(capture, Ordering::SeqCst);
    }

    /// The wall-clock profile of a finished job: a deterministic-shape
    /// object `{"total_ns":…,"spans":[…],"cells":{…}}` whose span tree
    /// aggregates the job's `job.run`/`experiment.*` spans and whose
    /// `cells` section breaks `experiment.cell` cost down by workload and
    /// by evaluator.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown ids, jobs that have not finished
    /// yet, and jobs that ran while capture was disabled.
    pub fn profile(&self, id: u64) -> Result<Arc<Value>, String> {
        let jobs = self.inner.jobs.lock().expect("job table poisoned");
        match jobs.get(&id) {
            None => Err(format!("unknown job id {id}")),
            Some(record) => match (&record.profile, record.status) {
                (Some(profile), _) => Ok(Arc::clone(profile)),
                (None, JobStatus::Queued | JobStatus::Running) => {
                    Err(format!("job {id} has not finished yet"))
                }
                (None, _) => Err(format!("job {id} has no profile (capture was disabled)")),
            },
        }
    }

    /// A point-in-time stats object: store counters, cell-memo counters,
    /// job accounting, and per-stage latency summaries — the payload of
    /// the protocol's `stats` reply. The counters are read from the same
    /// registries [`metrics`](Engine::metrics) snapshots.
    pub fn stats(&self) -> Value {
        let queue_depth = self.inner.queue.lock().expect("job queue poisoned").len();
        let m = &self.inner.m;
        let jobs = Value::Object(vec![
            ("submitted".into(), m.submitted.get().to_value()),
            ("deduped".into(), m.deduped.get().to_value()),
            ("completed".into(), m.completed.get().to_value()),
            ("failed".into(), m.failed.get().to_value()),
            ("running".into(), (m.running.get().max(0) as u64).to_value()),
            ("queued".into(), queue_depth.to_value()),
        ]);
        let latency = Value::Object(vec![
            (
                "queue_wait_ns".into(),
                latency_summary(&m.queue_wait_ns.snapshot()),
            ),
            ("run_ns".into(), latency_summary(&m.run_ns.snapshot())),
            ("total_ns".into(), latency_summary(&m.total_ns.snapshot())),
        ]);
        Value::Object(vec![
            ("store".into(), self.inner.store.stats().to_value()),
            ("cells".into(), self.inner.cells.stats().to_value()),
            ("jobs".into(), jobs),
            ("latency".into(), latency),
        ])
    }

    /// Whether shutdown has been requested.
    pub fn stopping(&self) -> bool {
        self.inner.stop.load(Ordering::SeqCst)
    }

    /// Requests shutdown and joins the worker pool. Queued jobs are
    /// drained (each finishes as `Done`/`Failed`) before workers exit, so
    /// clients blocked in `wait_result` are always answered. Idempotent.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.queue_ready.notify_all();
        let handles: Vec<JoinHandle<()>> = self
            .workers
            .lock()
            .expect("worker handles poisoned")
            .drain(..)
            .collect();
        for handle in handles {
            handle.join().expect("worker thread panicked");
        }
    }
}

/// Count/mean/p50/p99 summary of one latency histogram, as the `stats`
/// payload's `latency` section reports it.
fn latency_summary(h: &HistogramSnapshot) -> Value {
    Value::Object(vec![
        ("count".into(), h.count.to_value()),
        ("mean_ns".into(), h.mean().to_value()),
        ("p50_ns".into(), h.quantile(0.5).to_value()),
        ("p99_ns".into(), h.quantile(0.99).to_value()),
    ])
}

fn worker_loop(inner: &EngineInner) {
    loop {
        let job = {
            let mut queue = inner.queue.lock().expect("job queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    inner.m.queue_depth.set(queue.len() as i64);
                    break Some(job);
                }
                if inner.stop.load(Ordering::SeqCst) {
                    break None;
                }
                queue = inner.queue_ready.wait(queue).expect("job queue poisoned");
            }
        };
        let Some(QueuedJob {
            id,
            spec,
            submitted_at,
        }) = job
        else {
            return;
        };
        inner.m.queue_wait_ns.observe_since(submitted_at);
        set_status(inner, id, JobStatus::Running);
        inner.m.running.add(1);
        let run_started = clock();
        let run = || {
            let span = Span::enter("job.run").field_u64("id", id);
            // A panicking evaluator fails its job, never the worker pool.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                spec.execute(&inner.store, &inner.cells)
            }))
            .unwrap_or_else(|_| Err("job panicked".into()));
            drop(span);
            outcome
        };
        // Jobs execute single-threaded (see `JobSpec::execute`), so a
        // thread-local sink sees every span the job emits.
        let sink = inner
            .profile_capture
            .load(Ordering::SeqCst)
            .then(|| Arc::new(ProfileSink::new()));
        let outcome = match &sink {
            Some(sink) => with_thread_sink(Arc::clone(sink) as _, run),
            None => run(),
        };
        let profile = sink.map(|sink| Arc::new(job_profile(&sink)));
        inner.m.run_ns.observe_since(run_started);
        inner.m.total_ns.observe_since(submitted_at);
        inner.m.running.add(-1);
        let mut jobs = inner.jobs.lock().expect("job table poisoned");
        let record = jobs.get_mut(&id).expect("running job has a record");
        record.profile = profile;
        match outcome {
            Ok(report) => {
                record.status = JobStatus::Done;
                record.result = Some(Arc::new(report));
                inner.m.completed.inc();
            }
            Err(message) => {
                record.status = JobStatus::Failed;
                record.error = Some(message);
                inner.m.failed.inc();
            }
        }
        drop(jobs);
        inner.job_changed.notify_all();
    }
}

/// Builds a job's profile payload from its private sink: the aggregated
/// span tree (`total_ns`/`spans`, as [`ProfileSink::to_value`] shapes it)
/// plus cell-level cost breakdowns of the `experiment.cell` span grouped
/// by its `workload` and `evaluator` fields.
fn job_profile(sink: &ProfileSink) -> Value {
    let rows = |rows: Vec<mim_obs::BreakdownRow>| {
        Value::Array(
            rows.into_iter()
                .map(|row| {
                    Value::Object(vec![
                        ("value".into(), Value::Str(row.value)),
                        ("count".into(), row.count.to_value()),
                        ("total_ns".into(), row.total_ns.to_value()),
                    ])
                })
                .collect(),
        )
    };
    let mut fields = match sink.to_value() {
        Value::Object(fields) => fields,
        other => vec![("spans".into(), other)],
    };
    fields.push((
        "cells".into(),
        Value::Object(vec![
            (
                "by_workload".into(),
                rows(sink.breakdown("experiment.cell", "workload")),
            ),
            (
                "by_evaluator".into(),
                rows(sink.breakdown("experiment.cell", "evaluator")),
            ),
        ]),
    ));
    Value::Object(fields)
}

fn set_status(inner: &EngineInner, id: u64, status: JobStatus) {
    if let Some(record) = inner.jobs.lock().expect("job table poisoned").get_mut(&id) {
        record.status = status;
    }
    inner.job_changed.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_job(title: &str) -> JobSpec {
        let json = format!(
            r#"{{"kind":"experiment","title":"{title}","workloads":["sha"],
                "evaluators":["model"],"limit":20000}}"#
        );
        let value: Value = serde_json::from_str(&json).expect("job JSON parses");
        JobSpec::from_value(&value).expect("job parses")
    }

    #[test]
    fn runs_a_job_end_to_end() {
        let engine = Engine::start(WorkloadStore::new(), CellMemo::new(), 2, 8);
        let (id, deduped) = engine.submit(quick_job("e2e")).expect("submits");
        assert!(!deduped);
        let report = engine.wait_result(id).expect("job succeeds");
        assert!(report.get("rows").is_some());
        assert_eq!(engine.status(id), Some(JobStatus::Done));
        engine.shutdown();
    }

    #[test]
    fn identical_jobs_dedup_to_one_id() {
        let engine = Engine::start(WorkloadStore::new(), CellMemo::new(), 1, 8);
        let (a, _) = engine.submit(quick_job("same")).expect("submits");
        let (b, deduped) = engine.submit(quick_job("same")).expect("submits");
        assert_eq!(a, b);
        assert!(deduped);
        let (c, deduped) = engine.submit(quick_job("different")).expect("submits");
        assert_ne!(a, c);
        assert!(!deduped);
        engine.wait_result(a).expect("first job succeeds");
        engine.wait_result(c).expect("second job succeeds");
        // The two distinct jobs share every grid cell.
        assert_eq!(engine.cells().stats().misses, 1);
        assert_eq!(engine.cells().stats().hits, 1);
        engine.shutdown();
    }

    #[test]
    fn queue_capacity_rejects_overflow() {
        // No workers consume: occupy the queue and overflow it.
        let engine = Engine::start(WorkloadStore::new(), CellMemo::new(), 1, 1);
        // Park the single worker on a first job.
        engine.submit(quick_job("a")).expect("fits");
        // Distinct specs so dedup does not absorb them: with the worker
        // busy or the queue occupied, the second extra submission must
        // overflow the capacity-1 queue.
        let b = engine.submit(quick_job("b"));
        let c = engine.submit(quick_job("c"));
        assert!(
            b.is_err() || c.is_err(),
            "capacity-1 queue admitted three jobs"
        );
        engine.shutdown();
    }

    #[test]
    fn jobs_capture_profiles_unless_disabled() {
        let engine = Engine::start(WorkloadStore::new(), CellMemo::new(), 1, 8);
        let (id, _) = engine.submit(quick_job("profiled")).expect("submits");
        engine.wait_result(id).expect("job succeeds");
        let profile = engine.profile(id).expect("profile captured");
        let spans = profile
            .get("spans")
            .and_then(Value::as_array)
            .expect("spans array");
        assert_eq!(spans.len(), 1, "one top-level span");
        assert_eq!(spans[0].get("name"), Some(&Value::Str("job.run".into())));
        let cells = profile.get("cells").expect("cells section");
        let by_workload = cells
            .get("by_workload")
            .and_then(Value::as_array)
            .expect("workload rows");
        assert_eq!(by_workload.len(), 1);
        assert_eq!(by_workload[0].get("value"), Some(&Value::Str("sha".into())));
        let by_eval = cells
            .get("by_evaluator")
            .and_then(Value::as_array)
            .expect("evaluator rows");
        assert_eq!(by_eval[0].get("value"), Some(&Value::Str("model".into())));
        // With capture off, execution installs no sink and later jobs
        // have no profile; unknown ids stay errors.
        engine.set_profile_capture(false);
        let (id2, _) = engine.submit(quick_job("unprofiled")).expect("submits");
        engine.wait_result(id2).expect("job succeeds");
        assert!(engine.profile(id2).is_err());
        assert!(engine.profile(999).is_err());
        engine.shutdown();
    }

    #[test]
    fn unknown_ids_are_errors() {
        let engine = Engine::start(WorkloadStore::new(), CellMemo::new(), 1, 4);
        assert!(engine.status(999).is_none());
        assert!(engine.wait_result(999).is_err());
        engine.shutdown();
    }
}
