//! The serve crate's error type.

use std::error::Error;
use std::fmt;

/// Error produced by the server, the blocking client, or address parsing.
///
/// Protocol-level problems with a single request (bad JSON, unknown
/// command, unknown job id) are *not* `ServeError`s: the server answers
/// them with an `{"ok":false,"error":...}` response and keeps the
/// connection alive. `ServeError` is for failures of the transport
/// itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A socket/file-system operation failed.
    Io(String),
    /// An address string could not be understood (expected
    /// `unix:<path>`, `tcp:<host>:<port>`, or a bare `<host>:<port>`).
    Addr(String),
    /// The peer sent something that is not a protocol message (e.g. the
    /// server returned malformed JSON, or the connection closed
    /// mid-exchange).
    Protocol(String),
    /// The server answered a client call with `{"ok":false,...}`.
    Rejected(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(m) => write!(f, "I/O error: {m}"),
            ServeError::Addr(m) => write!(f, "bad address: {m}"),
            ServeError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServeError::Rejected(m) => write!(f, "request rejected: {m}"),
        }
    }
}

impl Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> ServeError {
        ServeError::Io(e.to_string())
    }
}
