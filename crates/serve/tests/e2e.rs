//! End-to-end protocol tests: a real server on a real socket, driven by
//! the blocking [`Client`], over both transports.

use std::thread;

use mim_serve::{CellMemo, Client, JobSpec, Server, WorkloadStore};
use serde::Value;

use mim_serve::Engine;

/// Parses a job spec from its JSON line.
fn job(json: &str) -> JobSpec {
    let value: Value = serde_json::from_str(json).expect("job JSON parses");
    JobSpec::from_value(&value).expect("job spec is valid")
}

/// A tiny experiment the tests submit over and over.
fn quick_experiment(title: &str) -> JobSpec {
    job(&format!(
        r#"{{"kind":"experiment","title":"{title}","workloads":["sha"],"size":"tiny","limit":20000,"evaluators":["model"]}}"#
    ))
}

/// Boots a server on `addr`, runs `drive` against it, shuts down, joins.
fn with_server(addr: &str, drive: impl FnOnce(&str, &Engine)) {
    let engine = Engine::start(WorkloadStore::new(), CellMemo::new(), 2, 32);
    let server = Server::bind(addr, engine.clone()).expect("bind");
    let connect = server.addr().to_connect_string();
    let handle = thread::spawn(move || server.run());
    drive(&connect, &engine);
    let mut closer = Client::connect(&connect).expect("connect for shutdown");
    closer.shutdown().expect("shutdown accepted");
    drop(closer);
    handle.join().expect("server thread").expect("server ran");
}

#[test]
fn tcp_round_trip_submits_and_fetches() {
    with_server("tcp:127.0.0.1:0", |addr, _| {
        let mut client = Client::connect(addr).expect("connect");
        let submitted = client.submit(&quick_experiment("tcp")).expect("submit");
        assert!(!submitted.deduped, "fresh job must not report deduped");
        let state = client.status(submitted.id).expect("status");
        assert!(
            ["queued", "running", "done"].contains(&state.as_str()),
            "unexpected state `{state}`"
        );
        let report = client.result(submitted.id).expect("result");
        let rows = report.get("rows").and_then(Value::as_array).expect("rows");
        assert!(!rows.is_empty(), "experiment report has rows");
        assert_eq!(client.status(submitted.id).expect("status"), "done");
    });
}

#[test]
fn unix_round_trip_submits_and_fetches() {
    let socket = std::env::temp_dir().join(format!("mim-serve-e2e-{}.sock", std::process::id()));
    std::fs::remove_file(&socket).ok();
    with_server(&format!("unix:{}", socket.display()), |addr, _| {
        let mut client = Client::connect(addr).expect("connect");
        let submitted = client.submit(&quick_experiment("unix")).expect("submit");
        let report = client.result(submitted.id).expect("result");
        assert!(report.get("rows").is_some());
    });
    assert!(!socket.exists(), "server removes its socket file on exit");
}

#[test]
fn identical_submissions_coalesce_across_connections() {
    with_server("tcp:127.0.0.1:0", |addr, _| {
        let spec = quick_experiment("dedup");
        let mut a = Client::connect(addr).expect("connect a");
        let mut b = Client::connect(addr).expect("connect b");
        let first = a.submit(&spec).expect("submit a");
        let second = b.submit(&spec).expect("submit b");
        assert_eq!(first.id, second.id, "identical jobs share one id");
        assert!(second.deduped, "second submission coalesces");
        let text_a = a.result_text(first.id).expect("result a");
        let text_b = b.result_text(second.id).expect("result b");
        assert_eq!(text_a, text_b, "both clients read identical bytes");
    });
}

#[test]
fn overlapping_sweeps_share_cells_and_executions() {
    with_server("tcp:127.0.0.1:0", |addr, engine| {
        // Two different titles → different job fingerprints, but identical
        // cells underneath: the second job should hit the memo everywhere.
        let mut client = Client::connect(addr).expect("connect");
        let first = client.submit(&quick_experiment("sweep-a")).expect("a");
        let second = client.submit(&quick_experiment("sweep-b")).expect("b");
        assert_ne!(first.id, second.id, "different titles are different jobs");
        let text_a = client.result_text(first.id).expect("result a");
        let text_b = client.result_text(second.id).expect("result b");
        // Titles differ inside the payload, so compare the rows only.
        let a: Value = serde_json::from_str(&text_a).expect("a parses");
        let b: Value = serde_json::from_str(&text_b).expect("b parses");
        assert_eq!(a.get("rows"), b.get("rows"), "identical rows");

        let stats = engine.stats();
        let cells = stats.get("cells").expect("cells stats");
        let hits = stat(cells, "hits");
        let misses = stat(cells, "misses");
        assert!(
            hits >= misses,
            "second sweep hits the memo ({hits} hits, {misses} misses)"
        );
        let store = stats.get("store").expect("store stats");
        assert_eq!(
            stat(store, "functional_executions"),
            1,
            "one workload recorded once, everything else replayed"
        );
    });
}

#[test]
fn exploration_and_subset_jobs_run_end_to_end() {
    with_server("tcp:127.0.0.1:0", |addr, _| {
        let mut client = Client::connect(addr).expect("connect");
        let explore = job(
            r#"{"kind":"exploration","title":"e2e explore","workloads":["sha"],"size":"tiny","limit":20000,"objectives":["cpi"],"strategy":{"name":"greedy","seed":7,"restarts":1,"budget":40}}"#,
        );
        let submitted = client.submit(&explore).expect("submit exploration");
        let report = client.result(submitted.id).expect("exploration result");
        assert!(report.get("best").is_some() || report.get("frontier").is_some());

        let subset = job(
            r#"{"kind":"subset","title":"e2e subset","workloads":["sha","qsort"],"size":"tiny","limit":20000,"selection":["sha"]}"#,
        );
        let submitted = client.submit(&subset).expect("submit subset");
        let report = client.result(submitted.id).expect("subset result");
        assert!(report.as_object().is_some());
    });
}

#[test]
fn bad_requests_get_typed_errors_not_disconnects() {
    with_server("tcp:127.0.0.1:0", |addr, _| {
        let mut client = Client::connect(addr).expect("connect");
        // Unknown id → rejected, connection stays usable.
        let err = client.result(99_999).expect_err("unknown id");
        assert!(err.to_string().contains("unknown"), "got `{err}`");
        // Bad job spec → rejected at submit time.
        let value: Value = serde_json::from_str(
            r#"{"kind":"experiment","workloads":["nope"],"evaluators":["model"]}"#,
        )
        .expect("parses as JSON");
        let err = JobSpec::from_value(&value).expect_err("unknown workload rejected");
        assert!(err.contains("unknown workload"));
        // The connection still answers after errors.
        let submitted = client
            .submit(&quick_experiment("after-error"))
            .expect("submit");
        assert!(client.result(submitted.id).is_ok());
    });
}

#[test]
fn metrics_command_scrapes_live_registries() {
    with_server("tcp:127.0.0.1:0", |addr, _| {
        let mut client = Client::connect(addr).expect("connect");
        let submitted = client.submit(&quick_experiment("metrics")).expect("submit");
        client.result(submitted.id).expect("result");

        let metrics = client.metrics().expect("metrics");
        let counters = metrics.get("counters").expect("counters section");
        assert_eq!(stat(counters, "jobs.submitted"), 1);
        assert_eq!(stat(counters, "jobs.completed"), 1);
        assert_eq!(
            stat(counters, "store.executions"),
            1,
            "the store's one functional execution shows in the merged snapshot"
        );
        // The block engine's compile/dispatch telemetry reaches the same
        // merged snapshot: the job's one recording compiled blocks and hit
        // the inline successor cache.
        assert!(
            stat(counters, "block.compiled") > 0,
            "recording should compile basic blocks"
        );
        assert!(
            stat(counters, "block.cache_hits") > 0,
            "steady-state dispatch should hit the block cache"
        );

        // The engine's job-stage histograms are named in the snapshot even
        // before quantiles matter.
        let histograms = metrics.get("histograms").expect("histograms section");
        for name in [
            "jobs.queue_wait_ns",
            "jobs.run_ns",
            "jobs.total_ns",
            "block.compile_ns",
        ] {
            assert!(histograms.get(name).is_some(), "missing histogram {name}");
        }

        // The same snapshot in Prometheus exposition form.
        let text = client.metrics_prometheus().expect("prometheus metrics");
        assert!(text.contains("# TYPE jobs_completed counter"), "{text}");
        assert!(text.contains("jobs_run_ns_bucket"), "{text}");

        // The stats payload gained a latency section fed by the same
        // registry.
        let stats = client.stats().expect("stats");
        let latency = stats.get("latency").expect("latency section");
        for stage in ["queue_wait_ns", "run_ns", "total_ns"] {
            let summary = latency.get(stage).expect(stage);
            assert!(summary.get("p50_ns").is_some());
            assert!(summary.get("p99_ns").is_some());
        }
    });
}

#[test]
fn profile_command_returns_the_job_span_tree() {
    with_server("tcp:127.0.0.1:0", |addr, _| {
        let mut client = Client::connect(addr).expect("connect");
        // Unknown ids are rejected without dropping the connection.
        let err = client.profile(4242).expect_err("unknown id");
        assert!(err.to_string().contains("unknown"), "got `{err}`");
        let submitted = client.submit(&quick_experiment("profile")).expect("submit");
        client.result(submitted.id).expect("result");
        let profile = client.profile(submitted.id).expect("profile");
        let spans = profile
            .get("spans")
            .and_then(Value::as_array)
            .expect("spans array");
        assert_eq!(spans.len(), 1, "one top-level span");
        assert_eq!(spans[0].get("name"), Some(&Value::Str("job.run".into())));
        // The job's experiment spans nest under job.run, and the cell
        // section attributes cost to the one (sha, model) cell.
        let children = spans[0]
            .get("children")
            .and_then(Value::as_array)
            .expect("children");
        assert!(
            children
                .iter()
                .any(|c| c.get("name") == Some(&Value::Str("experiment.run".into()))),
            "experiment.run nests under job.run: {children:?}"
        );
        let cells = profile.get("cells").expect("cells section");
        let by_workload = cells
            .get("by_workload")
            .and_then(Value::as_array)
            .expect("workload rows");
        assert_eq!(by_workload.len(), 1);
        assert_eq!(by_workload[0].get("value"), Some(&Value::Str("sha".into())));
        let by_evaluator = cells
            .get("by_evaluator")
            .and_then(Value::as_array)
            .expect("evaluator rows");
        assert_eq!(
            by_evaluator[0].get("value"),
            Some(&Value::Str("model".into()))
        );
    });
}

#[test]
fn watch_streams_metric_deltas() {
    with_server("tcp:127.0.0.1:0", |addr, _| {
        let mut watcher = Client::connect(addr).expect("connect watcher");
        let mut driver = Client::connect(addr).expect("connect driver");
        // Run a job concurrently with the stream so the deltas have
        // something to show.
        let handle = thread::spawn(move || {
            let submitted = driver.submit(&quick_experiment("watched")).expect("submit");
            driver.result(submitted.id).expect("result");
        });
        let deltas = watcher.watch(30, 8).expect("watch streams");
        handle.join().expect("driver thread");
        assert_eq!(deltas.len(), 8, "one delta per requested tick");
        // The job completed during (or before) the stream; summed deltas
        // cover it. Gauges carry current values, so queue depth is sane.
        let completed: u64 = deltas
            .iter()
            .map(|d| d.counter("jobs.completed").unwrap_or(0))
            .sum();
        assert!(completed <= 1, "one job ran, deltas never double-count");
        // The connection returns to request/response mode afterwards.
        let metrics = watcher.metrics().expect("metrics after watch");
        assert_eq!(
            stat(metrics.get("counters").expect("counters"), "jobs.completed"),
            1
        );
    });
}

#[test]
fn result_bytes_identical_with_timing_off() {
    // Same job, two fresh servers: one with latency timestamping on (the
    // default), one with it globally off. Telemetry is out-of-band, so
    // the result payloads must be byte-identical.
    let spec = quick_experiment("timing");
    let mut with_timing = String::new();
    with_server("tcp:127.0.0.1:0", |addr, _| {
        let mut client = Client::connect(addr).expect("connect");
        let submitted = client.submit(&spec).expect("submit");
        with_timing = client.result_text(submitted.id).expect("result");
    });

    mim_obs::set_timing(false);
    let mut without_timing = String::new();
    let mut executions = 0;
    with_server("tcp:127.0.0.1:0", |addr, engine| {
        let mut client = Client::connect(addr).expect("connect");
        let submitted = client.submit(&spec).expect("submit");
        without_timing = client.result_text(submitted.id).expect("result");
        executions = stat(
            engine.stats().get("store").expect("store stats"),
            "functional_executions",
        );
    });
    mim_obs::set_timing(true);

    assert_eq!(
        with_timing, without_timing,
        "telemetry must never leak into result payloads"
    );
    assert_eq!(executions, 1, "counters keep working with timing off");
}

/// Reads one numeric counter out of a stats sub-object.
fn stat(stats: &Value, key: &str) -> u64 {
    match stats.get(key) {
        Some(Value::UInt(u)) => *u,
        Some(Value::Int(i)) => *i as u64,
        other => panic!("stats `{key}` missing or non-numeric: {other:?}"),
    }
}
