//! Backend-parity sweep over every bundled workload: the block-compiled
//! engine and the per-step interpreter must produce byte-identical
//! recordings and identical `WorkloadProfile`s.
//!
//! One `#[test]` flips the process-global engine toggle sequentially, so
//! this stays in its own integration-test binary.

use mim_core::MachineConfig;
use mim_isa::set_block_engine;
use mim_profile::SweepProfiler;
use mim_trace::Trace;
use mim_workloads::{mibench, spec, WorkloadSize};

#[test]
fn every_bundled_workload_is_backend_invariant() {
    let machine = MachineConfig::default_config();
    let profiler = SweepProfiler::new(
        machine.hierarchy.clone(),
        vec![machine.hierarchy.l2.clone()],
        vec![machine.predictor.clone()],
    );
    let workloads: Vec<_> = mibench::all().into_iter().chain(spec::all()).collect();
    assert!(workloads.len() >= 20, "expected the full bundled set");

    for w in &workloads {
        let p = w.program(WorkloadSize::Tiny);

        // Recording parity: the two constructors must serialize the same.
        let block_trace = Trace::record(&p, None).unwrap();
        let interp_trace = Trace::record_interpreted(&p, None).unwrap();
        assert_eq!(
            block_trace.to_bytes(),
            interp_trace.to_bytes(),
            "trace bytes diverge on {}",
            w.name()
        );

        // Profile parity: block-hook collection vs interpreter observer.
        set_block_engine(true);
        let block_profile = profiler.profile(&p, None).unwrap();
        set_block_engine(false);
        let interp_profile = profiler.profile(&p, None).unwrap();
        set_block_engine(true);
        assert_eq!(
            serde_json::to_string(&block_profile).unwrap(),
            serde_json::to_string(&interp_profile).unwrap(),
            "workload profile diverges on {}",
            w.name()
        );
    }
}
