//! Memory-level-parallelism estimation for the out-of-order comparator.
//!
//! The out-of-order interval model (paper reference \[8\], our
//! [`OooModel`](mim_core::OooModel)) divides the long-miss penalty by the
//! achievable MLP: independent L2 misses that fit in the reorder buffer
//! overlap, dependent ones (pointer chasing) serialize. This module
//! estimates a workload's MLP from the dynamic instruction stream with the
//! classic burst-and-dependence analysis:
//!
//! * L2 load misses within one ROB window of each other *may* overlap;
//! * a miss whose address is (transitively) data-dependent on a pending
//!   miss cannot overlap it and starts a new serialization group;
//! * MLP = misses / serialization groups.

use mim_cache::{Hierarchy, HierarchyConfig, MemAccessKind, MemLevel};
use mim_isa::{InstClass, Program, VmError, NUM_REGS};
use mim_trace::{LiveVm, TraceError, TraceSource};

/// MLP estimate for one workload against one cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlpEstimate {
    /// L2 load misses observed.
    pub misses: u64,
    /// Serialization groups (bursts of potentially-overlapping misses).
    pub groups: u64,
    /// The estimate itself (1.0 if there were no misses).
    pub mlp: f64,
}

/// Estimates memory-level parallelism of `program` on `hierarchy` with a
/// `rob_size`-entry instruction window.
///
/// # Errors
///
/// Propagates [`VmError`] if the program faults.
///
/// # Example
///
/// ```
/// use mim_cache::HierarchyConfig;
/// use mim_profile::estimate_mlp;
/// use mim_workloads::{spec, WorkloadSize};
///
/// # fn main() -> Result<(), mim_isa::VmError> {
/// let h = HierarchyConfig::default_hierarchy();
/// // Pointer chasing: every miss depends on the previous one -> MLP ~ 1.
/// let chase = spec::mcf_like().program(WorkloadSize::Tiny);
/// let mcf = estimate_mlp(&chase, &h, 128, None)?;
/// // Streaming: misses are independent -> MLP well above 1.
/// let stream = spec::libquantum_like().program(WorkloadSize::Tiny);
/// let lib = estimate_mlp(&stream, &h, 128, None)?;
/// assert!(mcf.mlp < 1.2);
/// assert!(lib.mlp > 1.5);
/// # Ok(())
/// # }
/// ```
pub fn estimate_mlp(
    program: &Program,
    hierarchy: &HierarchyConfig,
    rob_size: u32,
    limit: Option<u64>,
) -> Result<MlpEstimate, VmError> {
    estimate_mlp_source(
        &mut LiveVm::new(program).with_limit(limit),
        hierarchy,
        rob_size,
    )
    .map_err(TraceError::into_vm)
}

/// Estimates MLP from any [`TraceSource`] — the replay-friendly core of
/// [`estimate_mlp`], so sweep drivers reuse one recorded execution instead
/// of re-running the program per estimate.
///
/// # Errors
///
/// Propagates the source's [`TraceError`].
pub fn estimate_mlp_source<S: TraceSource + ?Sized>(
    source: &mut S,
    hierarchy: &HierarchyConfig,
    rob_size: u32,
) -> Result<MlpEstimate, TraceError> {
    let rob = u64::from(rob_size);
    let mut caches = Hierarchy::new(hierarchy.clone());
    // Per-register taint: sequence number of the pending miss whose value
    // (transitively) feeds this register, if recent enough to matter.
    let mut taint: [Option<u64>; NUM_REGS] = [None; NUM_REGS];
    let mut seq: u64 = 0;
    let mut misses: u64 = 0;
    let mut groups: u64 = 0;
    let mut group_start: Option<u64> = None;

    source.drive(&mut |ev| {
        seq += 1;
        // Warm the caches exactly like the profiler does.
        caches.access(MemAccessKind::Fetch, Program::inst_addr(ev.pc));
        let mut l2_load_miss = false;
        if let Some(addr) = ev.eff_addr {
            let kind = if ev.class == InstClass::Load {
                MemAccessKind::Load
            } else {
                MemAccessKind::Store
            };
            let (level, _) = caches.access(kind, addr);
            l2_load_miss = level == MemLevel::Memory && kind == MemAccessKind::Load;
        }

        // Is this instruction's input tainted by a still-pending miss?
        let tainted_input = ev
            .sources
            .into_iter()
            .flatten()
            .filter_map(|r| taint[r.index()])
            .any(|t| seq - t < rob);

        if l2_load_miss {
            let dependent = tainted_input;
            let same_window = group_start.is_some_and(|s| seq - s < rob);
            if dependent || !same_window {
                groups += 1;
                group_start = Some(seq);
            }
            misses += 1;
        }

        // Propagate taint: a load miss taints its destination; any
        // instruction consuming a tainted value taints its destination.
        if let Some(dst) = ev.dst {
            taint[dst.index()] = if l2_load_miss {
                Some(seq)
            } else if tainted_input {
                ev.sources
                    .into_iter()
                    .flatten()
                    .filter_map(|r| taint[r.index()])
                    .filter(|t| seq - t < rob)
                    .max()
            } else {
                None
            };
        }
    })?;

    let mlp = if groups == 0 {
        1.0
    } else {
        (misses as f64 / groups as f64).max(1.0)
    };
    Ok(MlpEstimate {
        misses,
        groups,
        mlp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mim_workloads::{mibench, spec, WorkloadSize};

    fn hierarchy() -> HierarchyConfig {
        HierarchyConfig::default_hierarchy()
    }

    #[test]
    fn pointer_chase_has_unit_mlp() {
        let p = spec::mcf_like().program(WorkloadSize::Tiny);
        let e = estimate_mlp(&p, &hierarchy(), 128, None).unwrap();
        assert!(e.misses > 500, "chase should miss a lot: {}", e.misses);
        assert!(e.mlp < 1.2, "dependent chase must serialize, MLP {}", e.mlp);
    }

    #[test]
    fn streaming_has_high_mlp() {
        let p = spec::libquantum_like().program(WorkloadSize::Tiny);
        let e = estimate_mlp(&p, &hierarchy(), 128, None).unwrap();
        assert!(
            e.mlp > 1.5,
            "independent stream should overlap, MLP {}",
            e.mlp
        );
    }

    #[test]
    fn bigger_windows_expose_more_mlp() {
        let p = spec::milc_like().program(WorkloadSize::Tiny);
        let small = estimate_mlp(&p, &hierarchy(), 16, None).unwrap();
        let large = estimate_mlp(&p, &hierarchy(), 256, None).unwrap();
        assert!(large.mlp >= small.mlp);
    }

    #[test]
    fn cache_resident_kernel_yields_default() {
        let p = mibench::sha().program(WorkloadSize::Tiny);
        let e = estimate_mlp(&p, &hierarchy(), 128, None).unwrap();
        // Few or no L2 load misses: the estimate stays near 1 and is finite.
        assert!(e.mlp >= 1.0);
        assert!(e.mlp.is_finite());
    }
}
