//! Dependency-distance tracking (the `deps_*(d)` profiles of Table 1).

use mim_core::{DepHistogram, ModelInputs};
use mim_isa::{InstClass, TraceEvent, NUM_REGS};

/// Producer class for dependency classification (paper §3.5): unit-latency
/// ALU producers, long-latency producers (multiply/divide), and loads —
/// loads are separate because they deliver in the memory stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProducerKind {
    Unit,
    LongLatency,
    Load,
}

/// Streaming tracker of nearest-producer dependency distances.
///
/// For every retired instruction, the tracker finds the *closest* producer
/// among its source registers (the paper counts the shortest dependency
/// distance when there are two producers) and records the distance in the
/// histogram matching that producer's class.
///
/// # Example
///
/// ```
/// use mim_isa::{ProgramBuilder, Reg, Vm};
/// use mim_profile::DepTracker;
///
/// # fn main() -> Result<(), mim_isa::VmError> {
/// let mut b = ProgramBuilder::new();
/// b.li(Reg::R1, 5);
/// b.addi(Reg::R2, Reg::R1, 1); // depends on li at distance 1
/// b.halt();
/// let p = b.build();
/// let mut tracker = DepTracker::new();
/// Vm::new(&p).run_with(None, |ev| tracker.observe(ev))?;
/// let (unit, _ll, _load) = tracker.into_histograms();
/// assert_eq!(unit.at(1), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DepTracker {
    /// Per-register: sequence number and class of the last producer.
    last_writer: [Option<(u64, ProducerKind)>; NUM_REGS],
    seq: u64,
    unit: DepHistogram,
    ll: DepHistogram,
    load: DepHistogram,
}

impl Default for DepTracker {
    fn default() -> DepTracker {
        DepTracker::new()
    }
}

impl DepTracker {
    /// Creates an empty tracker.
    pub fn new() -> DepTracker {
        DepTracker {
            last_writer: [None; NUM_REGS],
            seq: 0,
            unit: DepHistogram::new(),
            ll: DepHistogram::new(),
            load: DepHistogram::new(),
        }
    }

    /// Observes one retired instruction.
    pub fn observe(&mut self, ev: &TraceEvent) {
        self.seq += 1;
        let t = self.seq;

        // Find the nearest producer among the sources. On a distance tie,
        // prefer the more constraining producer class (load, then
        // long-latency, then unit) — matching the pipeline, where the
        // later-delivering producer determines the stall.
        let mut nearest: Option<(u64, ProducerKind)> = None;
        for src in ev.sources.into_iter().flatten() {
            if let Some((wseq, kind)) = self.last_writer[src.index()] {
                let d = t - wseq;
                nearest = match nearest {
                    None => Some((d, kind)),
                    Some((best_d, best_kind)) => {
                        if d < best_d || (d == best_d && rank(kind) > rank(best_kind)) {
                            Some((d, kind))
                        } else {
                            Some((best_d, best_kind))
                        }
                    }
                };
            }
        }
        if let Some((d, kind)) = nearest {
            let d = d as usize;
            match kind {
                ProducerKind::Unit => self.unit.record(d),
                ProducerKind::LongLatency => self.ll.record(d),
                ProducerKind::Load => self.load.record(d),
            }
        }

        if let Some(dst) = ev.dst {
            let kind = match ev.class {
                InstClass::Load => ProducerKind::Load,
                InstClass::Mul | InstClass::Div => ProducerKind::LongLatency,
                _ => ProducerKind::Unit,
            };
            self.last_writer[dst.index()] = Some((t, kind));
        }
    }

    /// Consumes the tracker, returning `(deps_unit, deps_LL, deps_ld)`.
    pub fn into_histograms(self) -> (DepHistogram, DepHistogram, DepHistogram) {
        (self.unit, self.ll, self.load)
    }

    /// Writes the histograms into a [`ModelInputs`].
    pub fn fill(self, inputs: &mut ModelInputs) {
        let (unit, ll, load) = self.into_histograms();
        inputs.deps_unit = unit;
        inputs.deps_ll = ll;
        inputs.deps_load = load;
    }
}

fn rank(kind: ProducerKind) -> u8 {
    match kind {
        ProducerKind::Unit => 0,
        ProducerKind::LongLatency => 1,
        ProducerKind::Load => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mim_isa::{ProgramBuilder, Reg::*, Vm};

    fn histograms_of(
        build: impl FnOnce(&mut ProgramBuilder),
    ) -> (DepHistogram, DepHistogram, DepHistogram) {
        let mut b = ProgramBuilder::new();
        build(&mut b);
        b.halt();
        let p = b.build();
        let mut t = DepTracker::new();
        Vm::new(&p).run_with(None, |ev| t.observe(ev)).unwrap();
        t.into_histograms()
    }

    #[test]
    fn classifies_producers_by_class() {
        let (unit, ll, load) = histograms_of(|b| {
            let a = b.data_words(&[7]);
            b.li(R1, a as i64);
            b.ld(R2, R1, 0); // consumer of li (unit) at d=1
            b.addi(R3, R2, 1); // consumer of load at d=1
            b.mul(R4, R3, R3); // consumer of unit at d=1
            b.addi(R5, R4, 1); // consumer of mul (LL) at d=1
        });
        assert_eq!(unit.at(1), 2); // ld<-li and mul<-addi
        assert_eq!(load.at(1), 1);
        assert_eq!(ll.at(1), 1);
    }

    #[test]
    fn takes_nearest_producer() {
        let (unit, _, _) = histograms_of(|b| {
            b.li(R1, 1); // producer A (distance 2 from consumer)
            b.li(R2, 2); // producer B (distance 1 from consumer)
            b.add(R3, R1, R2); // nearest is R2 at d=1
        });
        assert_eq!(unit.at(1), 1); // only the shortest distance is recorded
        assert_eq!(unit.at(2), 0);
    }

    #[test]
    fn nearest_producer_class_wins() {
        let (unit, _, load) = histograms_of(|b| {
            let a = b.data_words(&[3]);
            b.li(R1, a as i64);
            b.li(R2, 5); // unit producer, d=2 from consumer
            b.ld(R3, R1, 0); // load producer, d=1 from consumer
            b.add(R4, R2, R3); // min distance 1 via the load
        });
        assert_eq!(load.at(1), 1);
        assert_eq!(unit.at(2), 1); // the ld itself consumed R1 at d=2
    }

    #[test]
    fn rewritten_register_hides_older_producer() {
        let (unit, _, load) = histograms_of(|b| {
            let a = b.data_words(&[3]);
            b.li(R1, a as i64);
            b.ld(R2, R1, 0); // load consumes R1 (unit producer, d=1)
            b.li(R2, 9); // overwrites the load's result
            b.addi(R3, R2, 1); // consumer sees the li, not the load
        });
        assert_eq!(load.total(), 0); // nothing ever consumed a load result
        assert_eq!(unit.at(1), 2); // ld<-li(R1) and addi<-li(R2)
    }

    #[test]
    fn distances_beyond_max_are_dropped() {
        let (unit, _, _) = histograms_of(|b| {
            b.li(R1, 1);
            for _ in 0..100 {
                b.li(R2, 0); // padding, no deps on R1
            }
            b.addi(R3, R1, 1); // d=101 > MAX_DEP_DISTANCE
        });
        assert_eq!(unit.total(), 0);
    }
}
