//! The one-pass profiler and its design-space sweep variant.

use mim_bpred::{MultiPredictor, PredictorConfig, PredictorStats};
use mim_cache::{CacheConfig, HierarchyConfig, MemAccessKind, MissCounts, MultiConfig};
use mim_core::{BranchStats, InstMix, MachineConfig, ModelInputs};
use mim_isa::{BlockEngine, BlockHooks, InstClass, Program, TraceEvent, VmError};
use mim_trace::{LiveVm, TraceError, TraceSource};
use serde::{Deserialize, Serialize};

use crate::deps::DepTracker;

/// Everything one profiling pass learns about a workload: the
/// machine-independent program statistics plus per-candidate miss and
/// misprediction counts for every L2 cache and branch predictor in the
/// sweep.
///
/// Extract the mechanistic-model inputs for a specific design point with
/// [`inputs_for`](WorkloadProfile::inputs_for).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Workload name.
    pub name: String,
    /// Dynamic instruction count.
    pub num_insts: u64,
    /// Dynamic instruction mix.
    pub mix: InstMix,
    /// Dependency histograms (unit / long-latency / load producers).
    pub deps_unit: mim_core::DepHistogram,
    /// Dependencies on multiply/divide producers.
    pub deps_ll: mim_core::DepHistogram,
    /// Dependencies on load producers.
    pub deps_load: mim_core::DepHistogram,
    /// Miss counts per L2 candidate (indexed like the sweep's L2 list).
    pub misses: Vec<MissCounts>,
    /// Prediction statistics per predictor candidate.
    pub branch: Vec<PredictorStats>,
}

impl WorkloadProfile {
    /// Builds [`ModelInputs`] for the design point using the
    /// `l2_index`-th cache candidate and `predictor_index`-th predictor.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range for the profiled sweep.
    pub fn inputs_for(&self, l2_index: usize, predictor_index: usize) -> ModelInputs {
        let b = &self.branch[predictor_index];
        ModelInputs {
            name: self.name.clone(),
            num_insts: self.num_insts,
            mix: self.mix,
            deps_unit: self.deps_unit.clone(),
            deps_ll: self.deps_ll.clone(),
            deps_load: self.deps_load.clone(),
            misses: self.misses[l2_index],
            branch: BranchStats {
                branches: b.branches,
                mispredicts: b.mispredicts,
                taken_correct: b.taken_correct,
            },
        }
    }
}

impl std::fmt::Display for WorkloadProfile {
    /// One human-readable summary line per profile — the form signature
    /// tables and validation reports embed, e.g.
    /// `sha: 21514 insts, mix alu 62.8% mul 4.7% div 0.0% ld 15.6% st 7.8%
    /// br 7.8% jmp 1.2%, deps 12843, 8 L2 x 2 predictor candidates`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let pct = |n: u64| 100.0 * n as f64 / self.num_insts.max(1) as f64;
        write!(
            f,
            "{}: {} insts, mix alu {:.1}% mul {:.1}% div {:.1}% ld {:.1}% st {:.1}% \
             br {:.1}% jmp {:.1}%, deps {}, {} L2 x {} predictor candidates",
            self.name,
            self.num_insts,
            pct(self.mix.alu),
            pct(self.mix.mul),
            pct(self.mix.div),
            pct(self.mix.load),
            pct(self.mix.store),
            pct(self.mix.cond_branch),
            pct(self.mix.jump),
            self.deps_unit.total() + self.deps_ll.total() + self.deps_load.total(),
            self.misses.len(),
            self.branch.len(),
        )
    }
}

/// Profiles a workload once for an entire design space: all L2 cache
/// candidates via single-pass multi-configuration simulation and all
/// branch predictors via multi-predictor profiling (paper §2.1).
///
/// # Example
///
/// ```
/// use mim_bpred::PredictorConfig;
/// use mim_cache::{CacheConfig, HierarchyConfig};
/// use mim_profile::SweepProfiler;
/// use mim_workloads::{mibench, WorkloadSize};
///
/// # fn main() -> Result<(), mim_isa::VmError> {
/// let profiler = SweepProfiler::new(
///     HierarchyConfig::default_hierarchy(),
///     vec![CacheConfig::new("L2-256K", 256 * 1024, 8, 64).unwrap()],
///     vec![PredictorConfig::gshare_1k()],
/// );
/// let program = mibench::dijkstra().program(WorkloadSize::Tiny);
/// let profile = profiler.profile(&program, None)?;
/// assert_eq!(profile.misses.len(), 1);
/// assert!(profile.num_insts > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SweepProfiler {
    base: HierarchyConfig,
    l2s: Vec<CacheConfig>,
    predictors: Vec<PredictorConfig>,
}

impl SweepProfiler {
    /// Creates a profiler for the given L1/TLB geometry and candidate
    /// lists.
    pub fn new(
        base: HierarchyConfig,
        l2s: Vec<CacheConfig>,
        predictors: Vec<PredictorConfig>,
    ) -> SweepProfiler {
        SweepProfiler {
            base,
            l2s,
            predictors,
        }
    }

    /// Convenience constructor covering one profiling pass for an entire
    /// design space: the space's base L1/TLB geometry plus every L2 and
    /// predictor candidate.
    pub fn for_design_space(space: &mim_core::DesignSpace) -> SweepProfiler {
        SweepProfiler::new(
            space.base().hierarchy.clone(),
            space.l2_configs().to_vec(),
            space.predictor_configs().to_vec(),
        )
    }

    /// Runs the workload functionally once, collecting all statistics.
    ///
    /// `limit` bounds the number of retired instructions (useful for
    /// sampling long workloads); `None` runs to completion. The pass runs
    /// on the block-compiled engine by default — the profiler's collector
    /// is a [`BlockHooks`] set, so no per-event
    /// [`TraceEvent`] reconstruction happens between execution and the
    /// cache/predictor models. With the block engine disabled
    /// ([`mim_isa::block_engine_enabled`]) it falls back to the per-step
    /// interpreter; the resulting profile is identical either way.
    ///
    /// Design-space sweeps should record the workload once
    /// (`mim_trace::Trace::record`) and call
    /// [`profile_source`](SweepProfiler::profile_source) with a replay
    /// instead, so profiling performs no functional execution of its own.
    ///
    /// # Errors
    ///
    /// Propagates [`VmError`] if the program faults.
    pub fn profile(
        &self,
        program: &Program,
        limit: Option<u64>,
    ) -> Result<WorkloadProfile, VmError> {
        if !mim_isa::block_engine_enabled() {
            return self
                .profile_source(&mut LiveVm::interpreted(program).with_limit(limit))
                .map_err(TraceError::into_vm);
        }
        let mut collector = self.collector();
        let mut engine = BlockEngine::new(program);
        engine.run_hooks(limit, &mut collector)?;
        Ok(collector.into_profile(program.name().to_string()))
    }

    /// Profiles the dynamic instruction stream produced by any
    /// [`TraceSource`], collecting all sweep statistics in one pass.
    ///
    /// # Errors
    ///
    /// Propagates the source's [`TraceError`] (a functional fault for live
    /// sources, a corrupt recording for replays).
    pub fn profile_source<S: TraceSource + ?Sized>(
        &self,
        source: &mut S,
    ) -> Result<WorkloadProfile, TraceError> {
        let name = source.name().to_string();
        let mut collector = self.collector();
        source.drive(&mut |ev| collector.observe(ev))?;
        Ok(collector.into_profile(name))
    }

    /// A fresh statistics collector for this sweep's candidate lists.
    fn collector(&self) -> Collector {
        Collector {
            caches: MultiConfig::new(&self.base, self.l2s.clone()),
            preds: MultiPredictor::new(&self.predictors),
            deps: DepTracker::new(),
            mix: InstMix::default(),
            l2_count: self.l2s.len(),
        }
    }
}

/// The profiling pass's mutable state: instruction mix, dependency
/// tracker, multi-configuration caches, and multi-predictor — everything
/// one retired instruction touches.
///
/// The collector is both the [`TraceSource`] observer (via
/// [`observe`](Collector::observe)) and a [`BlockHooks`] set, with the
/// identical per-instruction side-effect order either way: mix →
/// dependencies → instruction fetch → data access (loads/stores) →
/// predictor (conditional branches). All hook inputs are static template
/// fields plus the hook's own dynamic argument, so the block engine's
/// fast path feeds the models directly.
struct Collector {
    caches: MultiConfig,
    preds: MultiPredictor,
    deps: DepTracker,
    mix: InstMix,
    l2_count: usize,
}

impl Collector {
    /// Observes one retired instruction from a [`TraceSource`] stream.
    fn observe(&mut self, ev: &TraceEvent) {
        self.instruction(ev);
        if let Some(addr) = ev.eff_addr {
            self.mem_access(ev, addr);
        }
        if ev.class == InstClass::CondBranch {
            self.cond_branch(ev, ev.taken == Some(true));
        }
    }

    /// The per-instruction side effects that depend only on static fields:
    /// mix, dependency tracking, and the instruction-fetch cache access.
    #[inline(always)]
    fn instruction(&mut self, ev: &TraceEvent) {
        match ev.class {
            InstClass::Mul => self.mix.mul += 1,
            InstClass::Div => self.mix.div += 1,
            InstClass::Load => self.mix.load += 1,
            InstClass::Store => self.mix.store += 1,
            InstClass::CondBranch => self.mix.cond_branch += 1,
            InstClass::Jump => self.mix.jump += 1,
            _ => self.mix.alu += 1,
        }
        self.deps.observe(ev);
        self.caches
            .access(MemAccessKind::Fetch, Program::inst_addr(ev.pc));
    }

    fn into_profile(self, name: String) -> WorkloadProfile {
        let (deps_unit, deps_ll, deps_load) = self.deps.into_histograms();
        let misses = (0..self.l2_count).map(|i| self.caches.counts(i)).collect();
        WorkloadProfile {
            name,
            num_insts: self.mix.total(),
            mix: self.mix,
            deps_unit,
            deps_ll,
            deps_load,
            misses,
            branch: self.preds.into_stats(),
        }
    }
}

impl BlockHooks for Collector {
    #[inline(always)]
    fn before_instruction(&mut self, op: &TraceEvent) {
        self.instruction(op);
    }

    #[inline(always)]
    fn mem_access(&mut self, op: &TraceEvent, addr: u64) {
        let kind = if op.class == InstClass::Load {
            MemAccessKind::Load
        } else {
            MemAccessKind::Store
        };
        self.caches.access(kind, addr);
    }

    #[inline(always)]
    fn cond_branch(&mut self, op: &TraceEvent, taken: bool) {
        // Conditional branches only — jumps are always-taken and handled
        // analytically by the model.
        self.preds.observe(op.pc, taken);
    }
}

/// Single-configuration convenience profiler: profiles a program for one
/// [`MachineConfig`] and returns ready-to-use [`ModelInputs`].
#[derive(Debug, Clone)]
pub struct Profiler {
    sweep: SweepProfiler,
}

impl Profiler {
    /// Creates a profiler matching one machine configuration.
    pub fn new(machine: &MachineConfig) -> Profiler {
        Profiler {
            sweep: SweepProfiler::new(
                machine.hierarchy.clone(),
                vec![machine.hierarchy.l2.clone()],
                vec![machine.predictor.clone()],
            ),
        }
    }

    /// Profiles the program to completion.
    ///
    /// # Errors
    ///
    /// Propagates [`VmError`] if the program faults.
    pub fn profile(&self, program: &Program) -> Result<ModelInputs, VmError> {
        Ok(self.sweep.profile(program, None)?.inputs_for(0, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mim_core::DesignSpace;
    use mim_workloads::{mibench, WorkloadSize};

    #[test]
    fn mix_sums_to_instruction_count() {
        let machine = MachineConfig::default_config();
        let p = mibench::sha().program(WorkloadSize::Tiny);
        let inputs = Profiler::new(&machine).profile(&p).unwrap();
        assert_eq!(inputs.mix.total(), inputs.num_insts);
        assert!(inputs.mix.cond_branch > 0);
        assert!(inputs.mix.load > 0);
        assert!(inputs.num_insts > 10_000);
    }

    #[test]
    fn sweep_covers_all_candidates_consistently() {
        let space = DesignSpace::paper_table2();
        let profiler = SweepProfiler::for_design_space(&space);
        let p = mibench::qsort().program(WorkloadSize::Tiny);
        let profile = profiler.profile(&p, None).unwrap();
        assert_eq!(profile.misses.len(), 8);
        assert_eq!(profile.branch.len(), 2);
        // L1-side counts identical across L2 candidates.
        for m in &profile.misses {
            assert_eq!(m.l1d_misses, profile.misses[0].l1d_misses);
            assert_eq!(m.l1i_misses, profile.misses[0].l1i_misses);
            // L2 misses bounded by L1 misses.
            assert!(m.l2d_misses <= m.l1d_misses);
            assert!(m.l2i_misses <= m.l1i_misses);
        }
        // Larger same-associativity L2s never miss more (inclusion).
        // Candidates are ordered 128K-8w, 128K-16w, 256K-8w, ...
        let eight_way: Vec<&MissCounts> = profile.misses.iter().step_by(2).collect();
        for w in eight_way.windows(2) {
            assert!(w[1].l2d_misses + w[1].l2i_misses <= w[0].l2d_misses + w[0].l2i_misses);
        }
    }

    #[test]
    fn display_and_serde_round_trip() {
        let space = DesignSpace::paper_table2();
        let profiler = SweepProfiler::for_design_space(&space);
        let p = mibench::sha().program(WorkloadSize::Tiny);
        let profile = profiler.profile(&p, None).unwrap();
        let line = profile.to_string();
        assert!(line.starts_with("sha: "), "got `{line}`");
        assert!(
            line.contains("8 L2 x 2 predictor candidates"),
            "got `{line}`"
        );
        // Profiles embed into JSON reports and come back intact.
        let json = serde_json::to_string(&profile).unwrap();
        let back: WorkloadProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back.num_insts, profile.num_insts);
        assert_eq!(back.mix, profile.mix);
        assert_eq!(back.misses, profile.misses);
    }

    #[test]
    fn profile_is_deterministic() {
        let machine = MachineConfig::default_config();
        let p = mibench::patricia().program(WorkloadSize::Tiny);
        let a = Profiler::new(&machine).profile(&p).unwrap();
        let b = Profiler::new(&machine).profile(&p).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn memory_bound_kernel_has_more_misses_than_compute_kernel() {
        let machine = MachineConfig::default_config();
        let profiler = Profiler::new(&machine);
        let mcf = profiler
            .profile(&mim_workloads::spec::mcf_like().program(WorkloadSize::Tiny))
            .unwrap();
        let sha = profiler
            .profile(&mibench::sha().program(WorkloadSize::Tiny))
            .unwrap();
        let rate = |m: &ModelInputs| m.misses.l2d_misses as f64 / m.num_insts.max(1) as f64;
        assert!(
            rate(&mcf) > 10.0 * rate(&sha),
            "mcf {} vs sha {}",
            rate(&mcf),
            rate(&sha)
        );
    }

    #[test]
    fn limit_truncates_profiling() {
        let machine = MachineConfig::default_config();
        let p = mibench::dijkstra().program(WorkloadSize::Small);
        let profiler = SweepProfiler::new(
            machine.hierarchy.clone(),
            vec![machine.hierarchy.l2.clone()],
            vec![machine.predictor.clone()],
        );
        let profile = profiler.profile(&p, Some(5_000)).unwrap();
        assert_eq!(profile.num_insts, 5_000);
    }

    #[test]
    fn scheduling_reduces_short_distance_dependencies() {
        // The §6.2 premise: the list scheduler stretches dependency
        // distances, visible directly in the profile.
        let machine = MachineConfig::default_config();
        let profiler = Profiler::new(&machine);
        let p = mibench::tiff2bw().program(WorkloadSize::Tiny);
        let s = mim_workloads::opt::schedule(&p);
        let base = profiler.profile(&p).unwrap();
        let sched = profiler.profile(&s).unwrap();
        let short = |m: &ModelInputs| {
            (1..4)
                .map(|d| m.deps_unit.at(d) + m.deps_ll.at(d) + m.deps_load.at(d))
                .sum::<u64>()
        };
        assert!(
            short(&sched) < short(&base),
            "scheduling did not reduce short dependencies: {} -> {}",
            short(&base),
            short(&sched)
        );
    }
}
