//! # mim-profile — the single-pass workload profiler
//!
//! The mechanistic modeling framework (paper §2.1, Figure 2) requires one
//! profiling run per program binary that collects:
//!
//! * **program statistics** — dynamic instruction mix and dependency-
//!   distance profiles (machine-independent, collected once);
//! * **mixed program–machine statistics** — cache/TLB miss counts for
//!   *every* cache configuration of interest (via single-pass multi-
//!   configuration cache simulation) and misprediction counts for *every*
//!   branch predictor of interest (via multi-predictor profiling).
//!
//! [`SweepProfiler`] implements exactly that: one functional-simulation
//! pass produces a [`WorkloadProfile`] from which
//! [`ModelInputs`](mim_core::ModelInputs) for any design point of the
//! Table 2 space can be extracted instantly with
//! [`WorkloadProfile::inputs_for`]. [`Profiler`] is the single-machine
//! convenience wrapper.
//!
//! ## Example
//!
//! ```
//! use mim_core::{MachineConfig, MechanisticModel};
//! use mim_profile::Profiler;
//! use mim_workloads::{mibench, WorkloadSize};
//!
//! # fn main() -> Result<(), mim_isa::VmError> {
//! let machine = MachineConfig::default_config();
//! let program = mibench::sha().program(WorkloadSize::Tiny);
//! let inputs = Profiler::new(&machine).profile(&program)?;
//! let cpi = MechanisticModel::new(&machine).predict(&inputs).cpi();
//! assert!(cpi >= 0.25); // at least N/W on a 4-wide machine
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod deps;
mod mlp;
mod sweep;

pub use deps::DepTracker;
pub use mlp::{estimate_mlp, estimate_mlp_source, MlpEstimate};
pub use sweep::{Profiler, SweepProfiler, WorkloadProfile};
