//! # mim-obs — the observability layer
//!
//! The paper's methodology is cycle *attribution*: mechanistic models
//! explain where a processor's time goes. This crate applies the same
//! discipline to the stack's own wall-clock time — a long-running
//! `mim-serve` must be able to answer "where did this job's 40 ms go"
//! and "what is p99 queue wait under load" without a debugger. Like the
//! `crates/compat` stand-ins, it is hand-rolled and dependency-free (the
//! build environment is offline).
//!
//! Three pieces:
//!
//! * **metrics registry** — [`Registry`] holds named [`Counter`]s,
//!   [`Gauge`]s, and fixed-log-bucket [`Histogram`]s (deterministic
//!   power-of-two bounds, relaxed-atomic recording). A [`Snapshot`]
//!   serializes to line-JSON and Prometheus-style text, parses back, and
//!   merges across registries — components own a registry each (so test
//!   counters stay isolated) and a server exposes one combined payload.
//! * **span tracing** — [`Span`] RAII guards carrying name/parent/fields
//!   emit structured start/stop events to a pluggable [`SpanSink`]
//!   (stderr line-JSON, in-memory [`RingSink`] for tests). With no sink
//!   installed — the default — a span records nothing but a
//!   timestamps-off count in the [`global`] registry; `MIM_SPANS=stderr`
//!   or [`set_span_sink`] turns events on, and [`with_thread_sink`]
//!   scopes an extra sink to one thread for isolated capture.
//! * **wall-clock profiles** — [`ProfileSink`] aggregates spans into a
//!   deterministic call tree (per-name self/total nanoseconds, counts)
//!   and exports Chrome trace-event JSON (Perfetto-loadable) or
//!   flamegraph collapsed-stack text; `MIM_SPANS=chrome:<path>` /
//!   `collapsed:<path>` auto-rewrite a file as top-level spans close.
//! * **structured logging** — leveled, field-carrying lines in text or
//!   JSON form (see [`log`][mod@log]), replacing bare `eprintln!` in the
//!   binaries.
//!
//! All telemetry is out-of-band: nothing here touches result payloads,
//! which stay byte-deterministic with metrics on or off. The [`clock`] /
//! [`Histogram::observe_since`] pair respects the global [`set_timing`]
//! switch (env: `MIM_OBS=off`), so the overhead of timestamping can be
//! measured — and turned off — without recompiling.
//!
//! ## Example
//!
//! ```
//! use mim_obs::{clock, Registry};
//!
//! let registry = Registry::new();
//! let hits = registry.counter("cache.hit");
//! let latency = registry.histogram("lookup_ns");
//!
//! let started = clock();
//! hits.inc();
//! latency.observe_since(started);
//!
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counter("cache.hit"), Some(1));
//! assert!(snapshot.to_prometheus().contains("# TYPE cache_hit counter"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod log;
mod profile;
mod registry;
mod span;

pub use log::{set_log_format, set_log_level, Level, LogFormat};
pub use profile::{BreakdownRow, ProfileNode, ProfileSink, TraceFormat};
pub use registry::{
    bucket_bounds, bucket_index, clock, global, set_timing, timing_enabled, Counter, Gauge,
    Histogram, HistogramSnapshot, Registry, Snapshot, NUM_BUCKETS,
};
pub use span::{
    set_span_sink, sink_from_spec, with_thread_sink, FieldValue, RingSink, Span, SpanEvent,
    SpanPhase, SpanSink, StderrSink,
};
