//! Structured logging: leveled, field-carrying log lines in text or JSON
//! form on stderr, with per-level counters in the global registry.
//!
//! This replaces bare `eprintln!` logging in the binaries: every line
//! carries a level, a target, and key/value fields, and the format is a
//! runtime switch (`--log-format {text,json}` in `mim-serve`) instead of
//! an ad-hoc string.

use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};

use serde::Value;

use crate::registry::global;

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or user-visible failures.
    Error = 0,
    /// Degraded but continuing.
    Warn = 1,
    /// Lifecycle events (the default level).
    Info = 2,
    /// Per-request noise.
    Debug = 3,
}

impl Level {
    /// Lower-case label (`error`/`warn`/`info`/`debug`).
    pub fn label(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parses a label (case-insensitive).
    pub fn parse(text: &str) -> Option<Level> {
        match text.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// Output shape of a log line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFormat {
    /// `[LEVEL] target: message key=value ...`
    Text,
    /// One compact JSON object per line.
    Json,
}

impl LogFormat {
    /// Lower-case label (`text`/`json`).
    pub fn label(self) -> &'static str {
        match self {
            LogFormat::Text => "text",
            LogFormat::Json => "json",
        }
    }

    /// Parses a label (case-insensitive).
    pub fn parse(text: &str) -> Option<LogFormat> {
        match text.to_ascii_lowercase().as_str() {
            "text" => Some(LogFormat::Text),
            "json" => Some(LogFormat::Json),
            _ => None,
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);
static FORMAT: AtomicU8 = AtomicU8::new(0); // 0 = text, 1 = json

/// Sets the maximum level that gets emitted (default [`Level::Info`]).
pub fn set_log_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current maximum emitted level.
pub fn log_level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// Sets the output format (default [`LogFormat::Text`]).
pub fn set_log_format(format: LogFormat) {
    FORMAT.store(matches!(format, LogFormat::Json) as u8, Ordering::Relaxed);
}

/// The current output format.
pub fn log_format() -> LogFormat {
    if FORMAT.load(Ordering::Relaxed) == 0 {
        LogFormat::Text
    } else {
        LogFormat::Json
    }
}

/// Emits one structured log line on stderr (when `level` passes the
/// filter) and bumps the `log.<level>` counter in the global registry
/// either way.
pub fn log(level: Level, target: &str, message: &str, fields: &[(&str, String)]) {
    global().counter(&format!("log.{}", level.label())).inc();
    if level > log_level() {
        return;
    }
    let line = match log_format() {
        LogFormat::Text => {
            let mut line = format!(
                "[{}] {target}: {message}",
                level.label().to_ascii_uppercase()
            );
            for (key, value) in fields {
                line.push_str(&format!(" {key}={value}"));
            }
            line
        }
        LogFormat::Json => {
            let mut object = vec![
                ("level".to_string(), Value::Str(level.label().to_string())),
                ("target".to_string(), Value::Str(target.to_string())),
                ("message".to_string(), Value::Str(message.to_string())),
            ];
            for (key, value) in fields {
                object.push(((*key).to_string(), Value::Str(value.clone())));
            }
            serde_json::to_string(&Value::Object(object))
                .expect("log line serialization is infallible")
        }
    };
    let mut stderr = std::io::stderr().lock();
    let _ = writeln!(stderr, "{line}");
}

/// [`log`] at [`Level::Error`].
pub fn error(target: &str, message: &str, fields: &[(&str, String)]) {
    log(Level::Error, target, message, fields);
}

/// [`log`] at [`Level::Warn`].
pub fn warn(target: &str, message: &str, fields: &[(&str, String)]) {
    log(Level::Warn, target, message, fields);
}

/// [`log`] at [`Level::Info`].
pub fn info(target: &str, message: &str, fields: &[(&str, String)]) {
    log(Level::Info, target, message, fields);
}

/// [`log`] at [`Level::Debug`].
pub fn debug(target: &str, message: &str, fields: &[(&str, String)]) {
    log(Level::Debug, target, message, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Debug);
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
        assert_eq!(LogFormat::parse("JSON"), Some(LogFormat::Json));
        assert_eq!(LogFormat::parse("yaml"), None);
    }

    #[test]
    fn suppressed_lines_still_count() {
        let before = crate::global().counter("log.debug").get();
        // Default level is info, so this line is filtered but counted.
        debug("test", "invisible", &[]);
        assert_eq!(crate::global().counter("log.debug").get(), before + 1);
    }
}
