//! Span tracing: RAII guards carrying name/parent/fields that emit
//! structured start/stop events to a pluggable sink.
//!
//! By default no sink is installed and a span records nothing but a
//! timestamps-off count (`span.<name>` in the [global](crate::global)
//! registry) — no clock reads, no allocation beyond the counter lookup.
//! Installing a sink ([`set_span_sink`], or the `MIM_SPANS=stderr`
//! environment switch) turns on start/stop events with elapsed
//! nanoseconds; the [`RingSink`] keeps them in memory for tests, the
//! [`StderrSink`] emits line-JSON.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

use serde::Value;

use crate::registry::global;

/// Start or stop of a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPhase {
    /// The span was entered.
    Start,
    /// The span was dropped; `elapsed_ns` is populated.
    End,
}

impl SpanPhase {
    /// Lower-case label (`start`/`end`).
    pub fn label(self) -> &'static str {
        match self {
            SpanPhase::Start => "start",
            SpanPhase::End => "end",
        }
    }
}

/// One structured span event.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Process-unique span sequence number.
    pub seq: u64,
    /// Sequence number of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Span name.
    pub name: String,
    /// Start or end.
    pub phase: SpanPhase,
    /// Wall nanoseconds between start and end (end events only).
    pub elapsed_ns: Option<u64>,
    /// Key/value fields attached via [`Span::field`] (end events only).
    pub fields: Vec<(String, String)>,
}

impl SpanEvent {
    /// The event as a JSON value (the [`StderrSink`] line shape).
    pub fn to_value(&self) -> Value {
        let mut fields = vec![
            ("span".to_string(), Value::Str(self.name.clone())),
            ("seq".to_string(), Value::UInt(self.seq)),
            (
                "parent".to_string(),
                match self.parent {
                    Some(p) => Value::UInt(p),
                    None => Value::Null,
                },
            ),
            (
                "phase".to_string(),
                Value::Str(self.phase.label().to_string()),
            ),
        ];
        if let Some(ns) = self.elapsed_ns {
            fields.push(("elapsed_ns".to_string(), Value::UInt(ns)));
        }
        for (k, v) in &self.fields {
            fields.push((k.clone(), Value::Str(v.clone())));
        }
        Value::Object(fields)
    }
}

/// A destination for span events.
pub trait SpanSink: Send + Sync {
    /// Receives one start or end event.
    fn event(&self, event: &SpanEvent);
}

/// A sink that writes each event as one JSON line to stderr.
#[derive(Debug, Default)]
pub struct StderrSink;

impl SpanSink for StderrSink {
    fn event(&self, event: &SpanEvent) {
        let line = serde_json::to_string(&event.to_value())
            .expect("span event serialization is infallible");
        let mut stderr = std::io::stderr().lock();
        let _ = writeln!(stderr, "{line}");
    }
}

/// An in-memory ring buffer of the most recent events — the test sink.
#[derive(Debug)]
pub struct RingSink {
    events: Mutex<VecDeque<SpanEvent>>,
    capacity: usize,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            events: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// A copy of the buffered events, oldest first.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.events
            .lock()
            .expect("ring sink poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Drops all buffered events.
    pub fn clear(&self) {
        self.events.lock().expect("ring sink poisoned").clear();
    }
}

impl SpanSink for RingSink {
    fn event(&self, event: &SpanEvent) {
        let mut events = self.events.lock().expect("ring sink poisoned");
        if events.len() == self.capacity {
            events.pop_front();
        }
        events.push_back(event.clone());
    }
}

fn sink_slot() -> &'static RwLock<Option<Arc<dyn SpanSink>>> {
    static SINK: OnceLock<RwLock<Option<Arc<dyn SpanSink>>>> = OnceLock::new();
    SINK.get_or_init(|| {
        let initial: Option<Arc<dyn SpanSink>> = match std::env::var("MIM_SPANS").as_deref() {
            Ok("stderr") => Some(Arc::new(StderrSink)),
            _ => None,
        };
        RwLock::new(initial)
    })
}

/// Installs (or, with `None`, removes) the global span sink, overriding
/// the `MIM_SPANS` environment switch.
pub fn set_span_sink(sink: Option<Arc<dyn SpanSink>>) {
    *sink_slot().write().expect("span sink poisoned") = sink;
}

fn current_sink() -> Option<Arc<dyn SpanSink>> {
    sink_slot().read().expect("span sink poisoned").clone()
}

static NEXT_SEQ: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// An RAII span guard: entering counts the span (and, when a sink is
/// installed, emits a start event); dropping emits the end event with
/// elapsed nanoseconds and the attached fields.
///
/// Spans nest per thread: a span entered while another is live records it
/// as its parent.
///
/// # Example
///
/// ```
/// let _guard = mim_obs::Span::enter("request").field("id", "7");
/// // ... work ...
/// // drop emits the end event (if a sink is installed)
/// ```
#[derive(Debug)]
pub struct Span {
    seq: u64,
    parent: Option<u64>,
    name: String,
    started: Option<Instant>,
    sink: Option<Arc<dyn SpanSink>>,
    fields: Vec<(String, String)>,
}

impl std::fmt::Debug for dyn SpanSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SpanSink")
    }
}

impl Span {
    /// Enters a span. Always bumps the `span.<name>` counter in the
    /// global registry; reads the clock and emits a start event only when
    /// a sink is installed.
    pub fn enter(name: impl Into<String>) -> Span {
        let name = name.into();
        global().counter(&format!("span.{name}")).inc();
        let seq = NEXT_SEQ.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.last().copied();
            stack.push(seq);
            parent
        });
        let sink = current_sink();
        let started = sink.as_ref().map(|_| Instant::now());
        if let Some(sink) = &sink {
            sink.event(&SpanEvent {
                seq,
                parent,
                name: name.clone(),
                phase: SpanPhase::Start,
                elapsed_ns: None,
                fields: Vec::new(),
            });
        }
        Span {
            seq,
            parent,
            name,
            started,
            sink,
            fields: Vec::new(),
        }
    }

    /// Attaches a key/value field, reported on the end event.
    #[must_use]
    pub fn field(mut self, key: impl Into<String>, value: impl Into<String>) -> Span {
        self.fields.push((key.into(), value.into()));
        self
    }

    /// This span's process-unique sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(i) = stack.iter().rposition(|&s| s == self.seq) {
                stack.remove(i);
            }
        });
        if let Some(sink) = &self.sink {
            sink.event(&SpanEvent {
                seq: self.seq,
                parent: self.parent,
                name: std::mem::take(&mut self.name),
                phase: SpanPhase::End,
                elapsed_ns: self
                    .started
                    .map(|s| s.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64),
                fields: std::mem::take(&mut self.fields),
            });
        }
    }
}
