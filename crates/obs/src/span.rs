//! Span tracing: RAII guards carrying name/parent/fields that emit
//! structured start/stop events to a pluggable sink.
//!
//! By default no sink is installed and a span records nothing but a
//! timestamps-off count (`span.<name>` in the [global](crate::global)
//! registry) — no clock reads, no allocation beyond the counter lookup.
//! Installing a sink ([`set_span_sink`], or the `MIM_SPANS` environment
//! switch: `stderr`, `chrome:<path>`, `collapsed:<path>`) turns on
//! start/stop events with elapsed nanoseconds; the [`RingSink`] keeps
//! them in memory for tests, the [`StderrSink`] emits line-JSON, and the
//! [`ProfileSink`](crate::ProfileSink) aggregates a call tree with
//! Chrome-trace and flamegraph exporters.
//!
//! Sinks come in two scopes: the process-global sink ([`set_span_sink`])
//! and a per-thread override ([`with_thread_sink`]) used for isolated
//! capture (e.g. one profile per server job). A span emits to both when
//! both are installed.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

use serde::Value;

use crate::registry::{global, timing_enabled};

/// Start or stop of a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPhase {
    /// The span was entered.
    Start,
    /// The span was dropped; `elapsed_ns` is populated.
    End,
}

impl SpanPhase {
    /// Lower-case label (`start`/`end`).
    pub fn label(self) -> &'static str {
        match self {
            SpanPhase::Start => "start",
            SpanPhase::End => "end",
        }
    }
}

/// A span field value: text, or an integer attached without any
/// formatting allocation ([`Span::field_u64`]) — hot paths tag spans with
/// ids and sizes, and formatting them per span would cost more than the
/// span itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    /// Text value.
    Str(String),
    /// Unsigned integer value, kept numeric end-to-end.
    U64(u64),
}

impl FieldValue {
    /// The value as JSON (`Str` → string, `U64` → unsigned number).
    pub fn to_value(&self) -> Value {
        match self {
            FieldValue::Str(s) => Value::Str(s.clone()),
            FieldValue::U64(u) => Value::UInt(*u),
        }
    }

    /// The value rendered as plain text (for breakdown keys and text
    /// exports).
    pub fn render(&self) -> String {
        match self {
            FieldValue::Str(s) => s.clone(),
            FieldValue::U64(u) => u.to_string(),
        }
    }
}

impl From<&str> for FieldValue {
    fn from(s: &str) -> FieldValue {
        FieldValue::Str(s.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(s: String) -> FieldValue {
        FieldValue::Str(s)
    }
}

impl From<u64> for FieldValue {
    fn from(u: u64) -> FieldValue {
        FieldValue::U64(u)
    }
}

/// One structured span event.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Process-unique span sequence number.
    pub seq: u64,
    /// Sequence number of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Span name.
    pub name: String,
    /// Start or end.
    pub phase: SpanPhase,
    /// Wall nanoseconds between start and end (end events only, and only
    /// when [timing](crate::timing_enabled) is on — with `MIM_OBS=off`
    /// spans carry structure but no clock readings, keeping exports
    /// byte-deterministic).
    pub elapsed_ns: Option<u64>,
    /// Key/value fields attached via [`Span::field`] /
    /// [`Span::field_u64`] (end events only).
    pub fields: Vec<(String, FieldValue)>,
}

impl SpanEvent {
    /// The event as a JSON value (the [`StderrSink`] line shape).
    pub fn to_value(&self) -> Value {
        let mut fields = vec![
            ("span".to_string(), Value::Str(self.name.clone())),
            ("seq".to_string(), Value::UInt(self.seq)),
            (
                "parent".to_string(),
                match self.parent {
                    Some(p) => Value::UInt(p),
                    None => Value::Null,
                },
            ),
            (
                "phase".to_string(),
                Value::Str(self.phase.label().to_string()),
            ),
        ];
        if let Some(ns) = self.elapsed_ns {
            fields.push(("elapsed_ns".to_string(), Value::UInt(ns)));
        }
        for (k, v) in &self.fields {
            fields.push((k.clone(), v.to_value()));
        }
        Value::Object(fields)
    }
}

/// A destination for span events.
pub trait SpanSink: Send + Sync {
    /// Receives one start or end event.
    fn event(&self, event: &SpanEvent);
}

/// A sink that writes each event as one JSON line to stderr.
#[derive(Debug, Default)]
pub struct StderrSink;

impl SpanSink for StderrSink {
    fn event(&self, event: &SpanEvent) {
        let line = serde_json::to_string(&event.to_value())
            .expect("span event serialization is infallible");
        let mut stderr = std::io::stderr().lock();
        let _ = writeln!(stderr, "{line}");
    }
}

/// An in-memory ring buffer of the most recent events — the test sink.
///
/// When the ring is full the oldest event is evicted; evictions are
/// counted on [`dropped`](RingSink::dropped) and on the global
/// `spans.dropped` counter so lossy capture is visible in scrapes rather
/// than silent.
#[derive(Debug)]
pub struct RingSink {
    events: Mutex<VecDeque<SpanEvent>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            events: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// A copy of the buffered events, oldest first.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.events
            .lock()
            .expect("ring sink poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Events evicted to make room since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Drops all buffered events (does not count as eviction).
    pub fn clear(&self) {
        self.events.lock().expect("ring sink poisoned").clear();
    }
}

impl SpanSink for RingSink {
    fn event(&self, event: &SpanEvent) {
        let mut events = self.events.lock().expect("ring sink poisoned");
        if events.len() == self.capacity {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
            global().counter("spans.dropped").inc();
        }
        events.push_back(event.clone());
    }
}

/// Builds a sink from a `MIM_SPANS`-style spec: `stderr` (line-JSON),
/// `chrome:<path>` (a [`ProfileSink`](crate::ProfileSink) that rewrites
/// `<path>` as Chrome trace-event JSON whenever the last open span
/// closes), or `collapsed:<path>` (same, flamegraph collapsed-stack
/// text). Returns `None` for anything else.
pub fn sink_from_spec(spec: &str) -> Option<Arc<dyn SpanSink>> {
    if spec == "stderr" {
        return Some(Arc::new(StderrSink));
    }
    let (format, path) = spec.split_once(':')?;
    if path.is_empty() {
        return None;
    }
    let format = match format {
        "chrome" => crate::profile::TraceFormat::Chrome,
        "collapsed" => crate::profile::TraceFormat::Collapsed,
        _ => return None,
    };
    Some(Arc::new(
        crate::profile::ProfileSink::new().with_export(format, path),
    ))
}

fn sink_slot() -> &'static RwLock<Option<Arc<dyn SpanSink>>> {
    static SINK: OnceLock<RwLock<Option<Arc<dyn SpanSink>>>> = OnceLock::new();
    SINK.get_or_init(|| {
        let initial = match std::env::var("MIM_SPANS").as_deref() {
            Ok(spec) => sink_from_spec(spec),
            _ => None,
        };
        RwLock::new(initial)
    })
}

/// Installs (or, with `None`, removes) the global span sink, overriding
/// the `MIM_SPANS` environment switch.
pub fn set_span_sink(sink: Option<Arc<dyn SpanSink>>) {
    *sink_slot().write().expect("span sink poisoned") = sink;
}

fn current_sink() -> Option<Arc<dyn SpanSink>> {
    sink_slot().read().expect("span sink poisoned").clone()
}

static NEXT_SEQ: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static THREAD_SINK: RefCell<Option<Arc<dyn SpanSink>>> = const { RefCell::new(None) };
}

/// Runs `f` with `sink` installed as this thread's span sink, restoring
/// the previous thread sink afterwards (including on unwind).
///
/// Spans entered inside `f` emit to **both** the thread sink and the
/// global sink (when one is installed), so isolated capture — e.g. one
/// [`ProfileSink`](crate::ProfileSink) per server job — composes with a
/// process-wide trace. The override is per-thread: work `f` spawns onto
/// other threads is not captured.
pub fn with_thread_sink<R>(sink: Arc<dyn SpanSink>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<dyn SpanSink>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_SINK.with(|slot| *slot.borrow_mut() = self.0.take());
        }
    }
    let previous = THREAD_SINK.with(|slot| slot.borrow_mut().replace(sink));
    let _restore = Restore(previous);
    f()
}

/// An RAII span guard: entering counts the span (and, when a sink is
/// installed, emits a start event); dropping emits the end event with
/// elapsed nanoseconds and the attached fields.
///
/// Spans nest per thread: a span entered while another is live records it
/// as its parent.
///
/// # Example
///
/// ```
/// let _guard = mim_obs::Span::enter("request").field("id", "7");
/// // ... work ...
/// // drop emits the end event (if a sink is installed)
/// ```
#[derive(Debug)]
pub struct Span {
    seq: u64,
    parent: Option<u64>,
    name: String,
    started: Option<Instant>,
    sinks: Vec<Arc<dyn SpanSink>>,
    fields: Vec<(String, FieldValue)>,
}

impl std::fmt::Debug for dyn SpanSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SpanSink")
    }
}

impl Span {
    /// Enters a span. Always bumps the `span.<name>` counter in the
    /// global registry; emits a start event only when a sink (thread or
    /// global) is installed, and reads the clock only when, additionally,
    /// [timing](crate::timing_enabled) is on.
    pub fn enter(name: impl Into<String>) -> Span {
        let name = name.into();
        global().counter(&format!("span.{name}")).inc();
        let seq = NEXT_SEQ.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.last().copied();
            stack.push(seq);
            parent
        });
        let mut sinks: Vec<Arc<dyn SpanSink>> = Vec::new();
        THREAD_SINK.with(|slot| {
            if let Some(sink) = slot.borrow().as_ref() {
                sinks.push(sink.clone());
            }
        });
        if let Some(sink) = current_sink() {
            sinks.push(sink);
        }
        let started = if sinks.is_empty() || !timing_enabled() {
            None
        } else {
            Some(Instant::now())
        };
        if !sinks.is_empty() {
            let event = SpanEvent {
                seq,
                parent,
                name: name.clone(),
                phase: SpanPhase::Start,
                elapsed_ns: None,
                fields: Vec::new(),
            };
            for sink in &sinks {
                sink.event(&event);
            }
        }
        Span {
            seq,
            parent,
            name,
            started,
            sinks,
            fields: Vec::new(),
        }
    }

    /// Attaches a key/value field, reported on the end event.
    #[must_use]
    pub fn field(mut self, key: impl Into<String>, value: impl Into<String>) -> Span {
        self.fields
            .push((key.into(), FieldValue::Str(value.into())));
        self
    }

    /// Attaches an integer field without formatting it — the value stays
    /// numeric through [`SpanEvent::to_value`]. Use on hot spans where a
    /// `to_string` per span would dominate the span's own cost.
    #[must_use]
    pub fn field_u64(mut self, key: impl Into<String>, value: u64) -> Span {
        self.fields.push((key.into(), FieldValue::U64(value)));
        self
    }

    /// This span's process-unique sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(i) = stack.iter().rposition(|&s| s == self.seq) {
                stack.remove(i);
            }
        });
        if !self.sinks.is_empty() {
            let event = SpanEvent {
                seq: self.seq,
                parent: self.parent,
                name: std::mem::take(&mut self.name),
                phase: SpanPhase::End,
                elapsed_ns: self
                    .started
                    .map(|s| s.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64),
                fields: std::mem::take(&mut self.fields),
            };
            for sink in &self.sinks {
                sink.event(&event);
            }
        }
    }
}
