//! The metrics registry: named counters, gauges, and fixed-log-bucket
//! histograms with cheap atomic recording and deterministic snapshots.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};
use std::time::Instant;

use serde::Value;

/// Number of histogram buckets. Bucket 0 covers `[0, 2)` ns; bucket `i`
/// covers `[2^i, 2^(i+1))`; the last bucket is open-ended. 44 buckets span
/// sub-nanosecond to ~2.4 hours, enough for any wall-clock duration the
/// stack measures.
pub const NUM_BUCKETS: usize = 44;

/// Process-global switch for wall-clock recording. When off, histogram
/// timers skip `Instant::now()` entirely and record nothing; counters and
/// gauges keep working (they cost one relaxed atomic op). Initialized from
/// the `MIM_OBS` environment variable (`off`/`0`/`false` disable timing)
/// and overridable at runtime with [`set_timing`].
static TIMING: AtomicBool = AtomicBool::new(true);
static TIMING_ENV: Once = Once::new();

fn apply_timing_env() {
    TIMING_ENV.call_once(|| {
        if matches!(
            std::env::var("MIM_OBS").as_deref(),
            Ok("off" | "0" | "false")
        ) {
            TIMING.store(false, Ordering::Relaxed);
        }
    });
}

/// Whether wall-clock (histogram timer) recording is enabled.
pub fn timing_enabled() -> bool {
    apply_timing_env();
    TIMING.load(Ordering::Relaxed)
}

/// Enables or disables wall-clock recording at runtime (overrides the
/// `MIM_OBS` environment variable).
pub fn set_timing(enabled: bool) {
    apply_timing_env();
    TIMING.store(enabled, Ordering::Relaxed);
}

/// Reads the clock iff timing is enabled — the start half of every
/// latency measurement (pair with [`Histogram::observe_since`]).
pub fn clock() -> Option<Instant> {
    timing_enabled().then(Instant::now)
}

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that goes up and down (queue depths, in-flight
/// counts).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; NUM_BUCKETS],
}

/// A fixed-log-bucket histogram of `u64` samples (by convention,
/// nanoseconds). Bucket bounds are deterministic powers of two (see
/// [`bucket_bounds`]), recording is two-to-three relaxed atomic adds, and
/// quantiles are estimated from a [`HistogramSnapshot`] by linear
/// interpolation within the winning bucket.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

/// The deterministic `[lo, hi)` bounds of bucket `index`. The last bucket
/// is open-ended (`hi == u64::MAX`).
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < NUM_BUCKETS, "bucket index out of range");
    let lo = if index == 0 { 0 } else { 1u64 << index };
    let hi = if index == NUM_BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << (index + 1)
    };
    (lo, hi)
}

/// The bucket a value lands in: `floor(log2(value))`, clamped to the
/// bucket range.
pub fn bucket_index(value: u64) -> usize {
    if value < 2 {
        0
    } else {
        ((63 - value.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram(Arc::new(HistogramCore {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }))
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
        self.0.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records the nanoseconds elapsed since `started`, when timing is on
    /// (`started` comes from [`clock`]; `None` means timing was off at the
    /// start and nothing is recorded).
    pub fn observe_since(&self, started: Option<Instant>) {
        if let Some(started) = started {
            self.record(started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the histogram's state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
            buckets: self
                .0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A point-in-time copy of one histogram: total count, total sum, and
/// per-bucket counts (always `NUM_BUCKETS` long).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Per-bucket counts, aligned with [`bucket_bounds`].
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// within the bucket holding the target rank. The estimate is exact to
    /// bucket resolution: it always lies within the winning bucket's
    /// `[lo, hi)` bounds.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cumulative as f64 + n as f64 >= target {
                let (lo, hi) = bucket_bounds(i);
                // Cap the open-ended top bucket at twice its lower bound so
                // interpolation stays finite.
                let hi = if hi == u64::MAX {
                    lo.saturating_mul(2)
                } else {
                    hi
                };
                let fraction = (target - cumulative as f64) / n as f64;
                return lo as f64 + fraction * (hi - lo) as f64;
            }
            cumulative += n;
        }
        // Unreachable with a consistent snapshot; degrade gracefully.
        self.mean()
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Mutex<Vec<(String, Counter)>>,
    gauges: Mutex<Vec<(String, Gauge)>>,
    histograms: Mutex<Vec<(String, Histogram)>>,
}

/// A set of named instruments. Cheaply cloneable (an `Arc` handle) and
/// thread-safe; components own a registry each and snapshots merge, so
/// per-component counters stay test-isolated while a server can still
/// expose one combined metrics payload.
///
/// Instruments are get-or-create by name: asking twice for the same name
/// returns handles to the same underlying atomics.
///
/// # Example
///
/// ```
/// let registry = mim_obs::Registry::new();
/// let requests = registry.counter("requests");
/// requests.inc();
/// assert_eq!(registry.counter("requests").get(), 1);
/// let snapshot = registry.snapshot();
/// assert_eq!(snapshot.counter("requests"), Some(1));
/// ```
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Returns (creating on first use) the named counter.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = self.inner.counters.lock().expect("counter list poisoned");
        if let Some((_, c)) = counters.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let counter = Counter::default();
        counters.push((name.to_string(), counter.clone()));
        counter
    }

    /// Returns (creating on first use) the named gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut gauges = self.inner.gauges.lock().expect("gauge list poisoned");
        if let Some((_, g)) = gauges.iter().find(|(n, _)| n == name) {
            return g.clone();
        }
        let gauge = Gauge::default();
        gauges.push((name.to_string(), gauge.clone()));
        gauge
    }

    /// Returns (creating on first use) the named histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut histograms = self
            .inner
            .histograms
            .lock()
            .expect("histogram list poisoned");
        if let Some((_, h)) = histograms.iter().find(|(n, _)| n == name) {
            return h.clone();
        }
        let histogram = Histogram::default();
        histograms.push((name.to_string(), histogram.clone()));
        histogram
    }

    /// A consistent point-in-time snapshot of every instrument, sorted by
    /// name.
    pub fn snapshot(&self) -> Snapshot {
        let mut counters: Vec<(String, u64)> = self
            .inner
            .counters
            .lock()
            .expect("counter list poisoned")
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        let mut gauges: Vec<(String, i64)> = self
            .inner
            .gauges
            .lock()
            .expect("gauge list poisoned")
            .iter()
            .map(|(n, g)| (n.clone(), g.get()))
            .collect();
        let mut histograms: Vec<(String, HistogramSnapshot)> = self
            .inner
            .histograms
            .lock()
            .expect("histogram list poisoned")
            .iter()
            .map(|(n, h)| (n.clone(), h.snapshot()))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// The process-global registry: span counts, log counts, and anything not
/// scoped to a component land here.
pub fn global() -> &'static Registry {
    static GLOBAL: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// A point-in-time view of one or more registries: sorted instrument
/// lists that serialize to line-JSON ([`to_json`](Snapshot::to_json)) and
/// Prometheus-style text exposition
/// ([`to_prometheus`](Snapshot::to_prometheus)), and parse back
/// ([`from_value`](Snapshot::from_value)) for round-trip tests and
/// scrapers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, state)` histograms, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Merges `other` into `self`: counters and gauges with the same name
    /// sum, histograms with the same name merge bucket-wise, and the
    /// result stays name-sorted.
    pub fn merge(&mut self, other: Snapshot) {
        for (name, value) in other.counters {
            match self.counters.iter_mut().find(|(n, _)| *n == name) {
                Some((_, existing)) => *existing += value,
                None => self.counters.push((name, value)),
            }
        }
        for (name, value) in other.gauges {
            match self.gauges.iter_mut().find(|(n, _)| *n == name) {
                Some((_, existing)) => *existing += value,
                None => self.gauges.push((name, value)),
            }
        }
        for (name, hist) in other.histograms {
            match self.histograms.iter_mut().find(|(n, _)| *n == name) {
                Some((_, existing)) => {
                    existing.count += hist.count;
                    existing.sum += hist.sum;
                    for (mine, theirs) in existing.buckets.iter_mut().zip(&hist.buckets) {
                        *mine += theirs;
                    }
                }
                None => self.histograms.push((name, hist)),
            }
        }
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// The change from `baseline` to `self` — the payload of a live
    /// `watch` stream. Counters and histograms subtract element-wise
    /// (saturating, so a restarted registry never underflows); gauges
    /// keep their current absolute value, because a gauge delta (queue
    /// depth went from 3 to 5: "+2") is less useful than the level.
    /// Instruments absent from `baseline` pass through unchanged.
    pub fn delta_since(&self, baseline: &Snapshot) -> Snapshot {
        let mut out = self.clone();
        for (name, value) in &mut out.counters {
            if let Some(base) = baseline.counter(name) {
                *value = value.saturating_sub(base);
            }
        }
        for (name, h) in &mut out.histograms {
            if let Some(base) = baseline.histogram(name) {
                h.count = h.count.saturating_sub(base.count);
                h.sum = h.sum.saturating_sub(base.sum);
                for (mine, theirs) in h.buckets.iter_mut().zip(&base.buckets) {
                    *mine = mine.saturating_sub(*theirs);
                }
            }
        }
        out
    }

    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// The snapshot as a JSON value tree. Histograms carry derived
    /// `mean`/`p50`/`p90`/`p99` fields plus a sparse `[lo, count]` bucket
    /// list (non-zero buckets only, identified by their lower bound).
    pub fn to_value(&self) -> Value {
        let counters = Value::Object(
            self.counters
                .iter()
                .map(|(n, v)| (n.clone(), Value::UInt(*v)))
                .collect(),
        );
        let gauges = Value::Object(
            self.gauges
                .iter()
                .map(|(n, v)| (n.clone(), Value::Int(*v)))
                .collect(),
        );
        let histograms = Value::Object(
            self.histograms
                .iter()
                .map(|(n, h)| {
                    let buckets = Value::Array(
                        h.buckets
                            .iter()
                            .enumerate()
                            .filter(|(_, &count)| count > 0)
                            .map(|(i, &count)| {
                                Value::Array(vec![
                                    Value::UInt(bucket_bounds(i).0),
                                    Value::UInt(count),
                                ])
                            })
                            .collect(),
                    );
                    (
                        n.clone(),
                        Value::Object(vec![
                            ("count".into(), Value::UInt(h.count)),
                            ("sum".into(), Value::UInt(h.sum)),
                            ("mean".into(), Value::Float(h.mean())),
                            ("p50".into(), Value::Float(h.quantile(0.50))),
                            ("p90".into(), Value::Float(h.quantile(0.90))),
                            ("p99".into(), Value::Float(h.quantile(0.99))),
                            ("buckets".into(), buckets),
                        ]),
                    )
                })
                .collect(),
        );
        Value::Object(vec![
            ("counters".into(), counters),
            ("gauges".into(), gauges),
            ("histograms".into(), histograms),
        ])
    }

    /// Serializes the snapshot as one compact JSON line.
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.to_value()).expect("snapshot serialization is infallible")
    }

    /// Reconstructs a snapshot from its [`to_value`](Snapshot::to_value)
    /// form (derived quantile fields are recomputed, not trusted).
    ///
    /// # Errors
    ///
    /// Returns a message describing the first shape mismatch.
    pub fn from_value(value: &Value) -> Result<Snapshot, String> {
        fn uint(value: &Value, what: &str) -> Result<u64, String> {
            match value {
                Value::UInt(u) => Ok(*u),
                Value::Int(i) if *i >= 0 => Ok(*i as u64),
                other => Err(format!(
                    "{what} must be an unsigned integer, got {}",
                    other.kind()
                )),
            }
        }
        let mut snapshot = Snapshot::default();
        if let Some(counters) = value.get("counters").and_then(Value::as_object) {
            for (name, v) in counters {
                snapshot
                    .counters
                    .push((name.clone(), uint(v, "counter value")?));
            }
        }
        if let Some(gauges) = value.get("gauges").and_then(Value::as_object) {
            for (name, v) in gauges {
                let value = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => {
                        i64::try_from(*u).map_err(|_| format!("gauge `{name}` out of i64 range"))?
                    }
                    other => {
                        return Err(format!(
                            "gauge `{name}` must be an integer, got {}",
                            other.kind()
                        ))
                    }
                };
                snapshot.gauges.push((name.clone(), value));
            }
        }
        if let Some(histograms) = value.get("histograms").and_then(Value::as_object) {
            for (name, h) in histograms {
                let count = uint(
                    h.get("count")
                        .ok_or_else(|| format!("histogram `{name}` has no count"))?,
                    "histogram count",
                )?;
                let sum = uint(
                    h.get("sum")
                        .ok_or_else(|| format!("histogram `{name}` has no sum"))?,
                    "histogram sum",
                )?;
                let mut buckets = vec![0u64; NUM_BUCKETS];
                for entry in h
                    .get("buckets")
                    .and_then(Value::as_array)
                    .ok_or_else(|| format!("histogram `{name}` has no bucket list"))?
                {
                    let pair = entry.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
                        format!("histogram `{name}` bucket is not a [lo, count] pair")
                    })?;
                    let lo = uint(&pair[0], "bucket bound")?;
                    let n = uint(&pair[1], "bucket count")?;
                    let index = if lo == 0 {
                        0
                    } else if lo.is_power_of_two() {
                        (lo.trailing_zeros() as usize).min(NUM_BUCKETS - 1)
                    } else {
                        return Err(format!(
                            "histogram `{name}` bucket bound {lo} is not a power of two"
                        ));
                    };
                    buckets[index] += n;
                }
                snapshot.histograms.push((
                    name.clone(),
                    HistogramSnapshot {
                        count,
                        sum,
                        buckets,
                    },
                ));
            }
        }
        snapshot.counters.sort_by(|a, b| a.0.cmp(&b.0));
        snapshot.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        snapshot.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(snapshot)
    }

    /// Prometheus-style text exposition: `# TYPE` comments, sanitized
    /// metric names (non-alphanumerics become `_`), cumulative `_bucket`
    /// lines with `le` labels, and `_sum`/`_count` per histogram.
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect()
        }
        let mut out = String::new();
        for (name, value) in &self.counters {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        for (name, h) in &self.histograms {
            let name = sanitize(name);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            let last_nonzero = h.buckets.iter().rposition(|&n| n > 0);
            if let Some(last) = last_nonzero {
                for (i, &n) in h.buckets.iter().enumerate().take(last + 1) {
                    cumulative += n;
                    let (_, hi) = bucket_bounds(i);
                    if hi == u64::MAX {
                        break; // covered by the +Inf line below
                    }
                    out.push_str(&format!("{name}_bucket{{le=\"{hi}\"}} {cumulative}\n"));
                }
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{name}_sum {}\n", h.sum));
            out.push_str(&format!("{name}_count {}\n", h.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_are_get_or_create() {
        let registry = Registry::new();
        registry.counter("c").add(3);
        registry.counter("c").inc();
        assert_eq!(registry.counter("c").get(), 4);
        registry.gauge("g").set(5);
        registry.gauge("g").add(-2);
        assert_eq!(registry.gauge("g").get(), 3);
        registry.histogram("h").record(9);
        assert_eq!(registry.histogram("h").count(), 1);
    }

    #[test]
    fn bucket_index_matches_bounds() {
        for value in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            let i = bucket_index(value);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= value, "{value} below bucket {i} bound {lo}");
            assert!(
                value < hi || i == NUM_BUCKETS - 1,
                "{value} above bucket {i}"
            );
        }
    }

    #[test]
    fn quantiles_stay_within_their_bucket() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snapshot = h.snapshot();
        // True p50 is 500, in bucket [256, 512).
        let p50 = snapshot.quantile(0.50);
        assert!((256.0..512.0).contains(&p50), "p50 = {p50}");
        // True p99 is 990, in bucket [512, 1024).
        let p99 = snapshot.quantile(0.99);
        assert!((512.0..1024.0).contains(&p99), "p99 = {p99}");
        assert_eq!(snapshot.count, 1000);
        assert_eq!(snapshot.sum, 500_500);
    }

    #[test]
    fn merge_sums_everything() {
        let a = Registry::new();
        a.counter("c").add(1);
        a.gauge("g").set(2);
        a.histogram("h").record(10);
        let b = Registry::new();
        b.counter("c").add(2);
        b.counter("only-b").inc();
        b.histogram("h").record(20);
        let mut merged = a.snapshot();
        merged.merge(b.snapshot());
        assert_eq!(merged.counter("c"), Some(3));
        assert_eq!(merged.counter("only-b"), Some(1));
        assert_eq!(merged.gauge("g"), Some(2));
        assert_eq!(merged.histogram("h").unwrap().count, 2);
        assert_eq!(merged.histogram("h").unwrap().sum, 30);
    }
}
