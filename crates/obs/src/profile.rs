//! Wall-clock profiles: a [`SpanSink`] that aggregates span start/stop
//! events into a deterministic call tree, with Chrome trace-event and
//! flamegraph collapsed-stack exporters.
//!
//! The tree is keyed by span *name path* (`a` → `a;b` → `a;b;c`), so it
//! is stable across runs and thread counts: two runs doing the same work
//! produce the same nodes with the same counts. Nanosecond totals come
//! from the spans' `elapsed_ns`, which the span layer only populates when
//! [timing](crate::timing_enabled) is on — with `MIM_OBS=off` every
//! duration is zero and both exporters are byte-deterministic.
//!
//! Exports:
//!
//! * [`to_chrome_trace`](ProfileSink::to_chrome_trace) — trace-event JSON
//!   (`{"traceEvents":[...]}`) loadable in Perfetto / `chrome://tracing`,
//!   one complete (`"ph":"X"`) event per closed span.
//! * [`to_collapsed`](ProfileSink::to_collapsed) — collapsed-stack text
//!   (`a;b;c <self_ns>` per line) ready for `flamegraph.pl` /
//!   `inferno-flamegraph`. Line values are *self* time, so the lines sum
//!   exactly to the root total.
//! * [`tree`](ProfileSink::tree) / [`ProfileNode::to_value`] — the
//!   aggregate tree as data (the serve `profile` command's payload).
//! * [`breakdown`](ProfileSink::breakdown) — per-field-value aggregation
//!   of one span name (e.g. `experiment.cell` by `workload`), giving
//!   cell-level cost splits without polluting metric cardinality.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Instant;

use serde::Value;

use crate::registry::timing_enabled;
use crate::span::{SpanEvent, SpanPhase, SpanSink};

/// On-disk trace export format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// Chrome trace-event JSON (Perfetto / `chrome://tracing`).
    Chrome,
    /// Flamegraph collapsed-stack text (`stack <self_ns>` lines).
    Collapsed,
}

impl TraceFormat {
    /// Picks a format from a file path's extension: `.folded` / `.txt`
    /// mean [`Collapsed`](TraceFormat::Collapsed), anything else (the
    /// conventional `.json`) means [`Chrome`](TraceFormat::Chrome).
    pub fn from_path(path: &std::path::Path) -> TraceFormat {
        match path.extension().and_then(|e| e.to_str()) {
            Some("folded") | Some("txt") => TraceFormat::Collapsed,
            _ => TraceFormat::Chrome,
        }
    }
}

/// One node of the aggregated call tree: a span name path with its entry
/// count, inclusive nanoseconds, and self (exclusive) nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileNode {
    /// Span name (one path segment; the path is the ancestor chain).
    pub name: String,
    /// Closed spans aggregated into this node.
    pub count: u64,
    /// Total (inclusive) nanoseconds across those spans.
    pub total_ns: u64,
    /// Self (exclusive) nanoseconds: total minus children's totals,
    /// clamped at zero.
    pub self_ns: u64,
    /// Child nodes, sorted by name.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// The node (and its subtree) as a JSON value.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("count".to_string(), Value::UInt(self.count)),
            ("total_ns".to_string(), Value::UInt(self.total_ns)),
            ("self_ns".to_string(), Value::UInt(self.self_ns)),
            (
                "children".to_string(),
                Value::Array(self.children.iter().map(ProfileNode::to_value).collect()),
            ),
        ])
    }
}

/// One closed span's cost under one field value — a
/// [`breakdown`](ProfileSink::breakdown) row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakdownRow {
    /// The field's rendered value.
    pub value: String,
    /// Closed spans carrying that value.
    pub count: u64,
    /// Total nanoseconds across them.
    pub total_ns: u64,
}

struct Node {
    name: String,
    children: Vec<usize>,
    count: u64,
    total_ns: u64,
}

struct OpenSpan {
    node: usize,
    ts_ns: u64,
    tid: u64,
}

struct Complete {
    name: String,
    ts_ns: u64,
    dur_ns: u64,
    tid: u64,
}

#[derive(Default)]
struct State {
    nodes: Vec<Node>,
    open: HashMap<u64, OpenSpan>,
    complete: Vec<Complete>,
    threads: Vec<ThreadId>,
    // (span name, field key, rendered value) -> (count, total_ns)
    fields: HashMap<(String, String, String), (u64, u64)>,
}

impl State {
    fn child_of(&mut self, parent: usize, name: &str) -> usize {
        if let Some(&c) = self.nodes[parent]
            .children
            .iter()
            .find(|&&c| self.nodes[c].name == name)
        {
            return c;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node {
            name: name.to_string(),
            children: Vec::new(),
            count: 0,
            total_ns: 0,
        });
        self.nodes[parent].children.push(idx);
        idx
    }

    fn build(&self, idx: usize) -> ProfileNode {
        let node = &self.nodes[idx];
        let mut children: Vec<ProfileNode> = node.children.iter().map(|&c| self.build(c)).collect();
        children.sort_by(|a, b| a.name.cmp(&b.name));
        let child_total: u64 = children.iter().map(|c| c.total_ns).sum();
        ProfileNode {
            name: node.name.clone(),
            count: node.count,
            total_ns: node.total_ns,
            self_ns: node.total_ns.saturating_sub(child_total),
            children,
        }
    }
}

/// A [`SpanSink`] aggregating spans into a call-tree profile (see the
/// [module docs](self)).
///
/// Optionally [`with_export`](ProfileSink::with_export) rewrites a file
/// whenever the last open span closes — the `MIM_SPANS=chrome:<path>` /
/// `collapsed:<path>` auto-export mode, crash-tolerant because every
/// completed top-level span refreshes the file.
pub struct ProfileSink {
    epoch: Instant,
    state: Mutex<State>,
    export: Option<(TraceFormat, PathBuf)>,
}

impl Default for ProfileSink {
    fn default() -> ProfileSink {
        ProfileSink::new()
    }
}

impl ProfileSink {
    /// Creates an empty profile.
    pub fn new() -> ProfileSink {
        ProfileSink {
            epoch: Instant::now(),
            state: Mutex::new(State {
                nodes: vec![Node {
                    name: String::new(),
                    children: Vec::new(),
                    count: 0,
                    total_ns: 0,
                }],
                ..State::default()
            }),
            export: None,
        }
    }

    /// Configures auto-export: `path` is rewritten in `format` whenever
    /// the last open span closes (and on [`write`](ProfileSink::write)).
    #[must_use]
    pub fn with_export(mut self, format: TraceFormat, path: impl Into<PathBuf>) -> ProfileSink {
        self.export = Some((format, path.into()));
        self
    }

    /// The aggregated call tree: top-level (parentless) spans with their
    /// descendants, sorted by name at every level.
    pub fn tree(&self) -> Vec<ProfileNode> {
        let state = self.state.lock().expect("profile sink poisoned");
        state.build(0).children
    }

    /// The profile as a JSON value: `{"spans": [tree...]}` plus the total
    /// nanoseconds across top-level spans.
    pub fn to_value(&self) -> Value {
        let tree = self.tree();
        let total: u64 = tree.iter().map(|n| n.total_ns).sum();
        Value::Object(vec![
            ("total_ns".to_string(), Value::UInt(total)),
            (
                "spans".to_string(),
                Value::Array(tree.iter().map(ProfileNode::to_value).collect()),
            ),
        ])
    }

    /// Chrome trace-event JSON: one complete (`"ph":"X"`) event per
    /// closed span, timestamps in microseconds (nanosecond precision kept
    /// as exact decimals) relative to the sink's creation. Load the file
    /// in [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`.
    pub fn to_chrome_trace(&self) -> String {
        let state = self.state.lock().expect("profile sink poisoned");
        let mut out = String::from("{\"traceEvents\":[");
        for (i, e) in state.complete.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let name = serde_json::to_string(&Value::Str(e.name.clone()))
                .expect("string serialization is infallible");
            out.push_str(&format!(
                "{{\"name\":{name},\"cat\":\"mim\",\"ph\":\"X\",\"ts\":{}.{:03},\
                 \"dur\":{}.{:03},\"pid\":0,\"tid\":{}}}",
                e.ts_ns / 1000,
                e.ts_ns % 1000,
                e.dur_ns / 1000,
                e.dur_ns % 1000,
                e.tid
            ));
        }
        out.push_str("]}\n");
        out
    }

    /// Flamegraph collapsed-stack text: one `path;to;span <self_ns>` line
    /// per tree node, sorted, where the value is the node's *self* time —
    /// so the lines sum exactly to the root total. Feed to
    /// `flamegraph.pl` or `inferno-flamegraph`.
    pub fn to_collapsed(&self) -> String {
        fn walk(node: &ProfileNode, prefix: &str, lines: &mut Vec<String>) {
            let path = if prefix.is_empty() {
                node.name.clone()
            } else {
                format!("{prefix};{}", node.name)
            };
            lines.push(format!("{path} {}", node.self_ns));
            for child in &node.children {
                walk(child, &path, lines);
            }
        }
        let mut lines = Vec::new();
        for root in self.tree() {
            walk(&root, "", &mut lines);
        }
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// Aggregates the closed spans named `span` by the rendered value of
    /// their `key` field, sorted by value. Spans without the field are
    /// omitted.
    pub fn breakdown(&self, span: &str, key: &str) -> Vec<BreakdownRow> {
        let state = self.state.lock().expect("profile sink poisoned");
        let mut rows: Vec<BreakdownRow> = state
            .fields
            .iter()
            .filter(|((name, k, _), _)| name == span && k == key)
            .map(|((_, _, value), &(count, total_ns))| BreakdownRow {
                value: value.clone(),
                count,
                total_ns,
            })
            .collect();
        rows.sort_by(|a, b| a.value.cmp(&b.value));
        rows
    }

    /// Renders the profile in `format`.
    pub fn render(&self, format: TraceFormat) -> String {
        match format {
            TraceFormat::Chrome => self.to_chrome_trace(),
            TraceFormat::Collapsed => self.to_collapsed(),
        }
    }

    /// Writes the configured export file now (no-op without
    /// [`with_export`](ProfileSink::with_export)).
    ///
    /// # Errors
    ///
    /// Propagates the filesystem write error.
    pub fn write(&self) -> std::io::Result<()> {
        if let Some((format, path)) = &self.export {
            std::fs::write(path, self.render(*format))?;
        }
        Ok(())
    }
}

impl SpanSink for ProfileSink {
    fn event(&self, event: &SpanEvent) {
        let mut state = self.state.lock().expect("profile sink poisoned");
        match event.phase {
            SpanPhase::Start => {
                let parent = event
                    .parent
                    .and_then(|p| state.open.get(&p).map(|o| o.node))
                    .unwrap_or(0);
                let node = state.child_of(parent, &event.name);
                let ts_ns = if timing_enabled() {
                    self.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
                } else {
                    0
                };
                let id = std::thread::current().id();
                let tid = match state.threads.iter().position(|&t| t == id) {
                    Some(i) => i as u64,
                    None => {
                        state.threads.push(id);
                        (state.threads.len() - 1) as u64
                    }
                };
                state.open.insert(event.seq, OpenSpan { node, ts_ns, tid });
            }
            SpanPhase::End => {
                let Some(open) = state.open.remove(&event.seq) else {
                    return; // started before this sink was installed
                };
                let dur_ns = event.elapsed_ns.unwrap_or(0);
                state.nodes[open.node].count += 1;
                state.nodes[open.node].total_ns += dur_ns;
                state.complete.push(Complete {
                    name: event.name.clone(),
                    ts_ns: open.ts_ns,
                    dur_ns,
                    tid: open.tid,
                });
                for (key, value) in &event.fields {
                    let entry = state
                        .fields
                        .entry((event.name.clone(), key.clone(), value.render()))
                        .or_insert((0, 0));
                    entry.0 += 1;
                    entry.1 += dur_ns;
                }
                if self.export.is_some() && state.open.is_empty() {
                    drop(state);
                    let _ = self.write();
                }
            }
        }
    }
}
