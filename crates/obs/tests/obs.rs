//! Integration tests for the observability layer: deterministic bucket
//! bounds, quantile resolution, concurrent recording, snapshot
//! serialization round-trips, Prometheus exposition, span capture, and
//! the profile sink's call trees and exports.

use std::path::Path;
use std::sync::Arc;

use mim_obs::{
    bucket_bounds, bucket_index, set_span_sink, sink_from_spec, with_thread_sink, FieldValue,
    ProfileSink, Registry, RingSink, Snapshot, Span, SpanEvent, SpanPhase, SpanSink, TraceFormat,
    NUM_BUCKETS,
};
use serde::Value;

#[test]
fn bucket_bounds_are_deterministic_powers_of_two() {
    // Bucket 0 is [0, 2); bucket i is [2^i, 2^(i+1)); the last is open.
    assert_eq!(bucket_bounds(0).0, 0);
    for i in 1..NUM_BUCKETS {
        let (lo, hi) = bucket_bounds(i);
        assert_eq!(lo, 1u64 << i, "bucket {i} lower bound");
        if i + 1 < NUM_BUCKETS {
            assert_eq!(hi, 1u64 << (i + 1), "bucket {i} upper bound");
        }
    }
    // Every representable value maps into exactly the bucket whose bounds
    // contain it — spot-check the edges where off-by-ones live.
    for value in [0, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
        let i = bucket_index(value);
        let (lo, hi) = bucket_bounds(i);
        assert!(lo <= value, "{value} below bucket {i} bound {lo}");
        assert!(
            value < hi || i == NUM_BUCKETS - 1,
            "{value} above bucket {i}"
        );
    }
}

#[test]
fn quantile_estimates_stay_within_bucket_resolution() {
    let registry = Registry::new();
    let h = registry.histogram("latency_ns");
    for v in 1..=1000u64 {
        h.record(v);
    }
    let snapshot = h.snapshot();
    assert_eq!(snapshot.count, 1000);
    assert_eq!(snapshot.sum, 500_500);
    // The exact p50 is 500 (bucket [256,512)), p90 is 900, p99 is 990
    // (both in bucket [512,1024)): estimates must land in the right
    // bucket, i.e. within a factor-of-two of truth.
    let p50 = snapshot.quantile(0.5);
    assert!((256.0..512.0).contains(&p50), "p50 estimate {p50}");
    let p99 = snapshot.quantile(0.99);
    assert!((512.0..1024.0).contains(&p99), "p99 estimate {p99}");
    // Quantiles are monotone in q.
    assert!(snapshot.quantile(0.1) <= p50);
    assert!(p50 <= snapshot.quantile(0.9));
}

#[test]
fn concurrent_recording_loses_nothing() {
    let registry = Registry::new();
    let hits = registry.counter("hits");
    let latency = registry.histogram("latency_ns");
    std::thread::scope(|scope| {
        for t in 0..8 {
            let hits = hits.clone();
            let latency = latency.clone();
            scope.spawn(move || {
                for i in 0..1000u64 {
                    hits.inc();
                    latency.record(t * 1000 + i);
                }
            });
        }
    });
    assert_eq!(hits.get(), 8000);
    let snapshot = latency.snapshot();
    assert_eq!(snapshot.count, 8000);
    assert_eq!(snapshot.buckets.iter().sum::<u64>(), 8000);
}

#[test]
fn snapshot_round_trips_through_json() {
    let registry = Registry::new();
    registry.counter("requests").add(42);
    registry.gauge("queue_depth").set(-3);
    let h = registry.histogram("wait_ns");
    for v in [1, 100, 10_000, 1_000_000] {
        h.record(v);
    }
    let snapshot = registry.snapshot();
    let parsed = Snapshot::from_value(
        &serde_json::from_str(&snapshot.to_json()).expect("snapshot JSON parses"),
    )
    .expect("snapshot reconstructs");
    assert_eq!(parsed.counter("requests"), Some(42));
    assert_eq!(parsed.gauge("queue_depth"), Some(-3));
    let original = snapshot.histogram("wait_ns").expect("histogram");
    let restored = parsed.histogram("wait_ns").expect("histogram");
    assert_eq!(original.count, restored.count);
    assert_eq!(original.sum, restored.sum);
    assert_eq!(original.buckets, restored.buckets);
    assert_eq!(original.quantile(0.5), restored.quantile(0.5));
}

#[test]
fn merge_sums_counters_and_buckets() {
    let a = Registry::new();
    let b = Registry::new();
    a.counter("shared").add(3);
    b.counter("shared").add(4);
    b.counter("only_b").inc();
    a.histogram("lat").record(10);
    b.histogram("lat").record(10);
    b.histogram("lat").record(1_000_000);
    let mut merged = a.snapshot();
    merged.merge(b.snapshot());
    assert_eq!(merged.counter("shared"), Some(7));
    assert_eq!(merged.counter("only_b"), Some(1));
    let lat = merged.histogram("lat").expect("merged histogram");
    assert_eq!(lat.count, 3);
    assert_eq!(lat.sum, 1_000_020);
}

#[test]
fn prometheus_exposition_is_well_formed() {
    let registry = Registry::new();
    registry.counter("store.trace.hit").add(5);
    registry.gauge("jobs.queue_depth").set(2);
    let h = registry.histogram("jobs.run_ns");
    h.record(100);
    h.record(200_000);
    let text = registry.snapshot().to_prometheus();
    assert!(text.contains("# TYPE store_trace_hit counter"), "{text}");
    assert!(text.contains("store_trace_hit 5"), "{text}");
    assert!(text.contains("# TYPE jobs_queue_depth gauge"), "{text}");
    assert!(text.contains("# TYPE jobs_run_ns histogram"), "{text}");
    assert!(
        text.contains(r#"jobs_run_ns_bucket{le="+Inf"} 2"#),
        "{text}"
    );
    assert!(text.contains("jobs_run_ns_sum 200100"), "{text}");
    assert!(text.contains("jobs_run_ns_count 2"), "{text}");
    // Cumulative buckets never decrease.
    let mut last = 0u64;
    for line in text.lines().filter(|l| l.contains("jobs_run_ns_bucket")) {
        let count: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(count >= last, "non-cumulative bucket line: {line}");
        last = count;
    }
}

#[test]
fn spans_capture_nesting_and_fields_in_a_ring_sink() {
    let ring = Arc::new(RingSink::new(64));
    set_span_sink(Some(ring.clone()));
    {
        let _outer = Span::enter("outer").field("job", "7");
        let _inner = Span::enter("inner");
    }
    set_span_sink(None);
    let events = ring.events();
    assert_eq!(events.len(), 4, "start+end for each of two spans");
    let outer_start = &events[0];
    assert_eq!(outer_start.name, "outer");
    assert_eq!(outer_start.phase, SpanPhase::Start);
    assert_eq!(outer_start.parent, None);
    let inner_start = &events[1];
    assert_eq!(inner_start.name, "inner");
    assert_eq!(
        inner_start.parent,
        Some(outer_start.seq),
        "inner span records the outer as its parent"
    );
    // Drop order: inner ends first; the outer end carries its fields.
    assert_eq!(events[2].name, "inner");
    assert_eq!(events[2].phase, SpanPhase::End);
    let outer_end = &events[3];
    assert_eq!(outer_end.name, "outer");
    assert_eq!(outer_end.phase, SpanPhase::End);
    assert_eq!(
        outer_end.fields,
        vec![("job".to_string(), FieldValue::Str("7".to_string()))]
    );
}

#[test]
fn field_u64_stays_numeric_through_events() {
    let ring = Arc::new(RingSink::new(8));
    with_thread_sink(ring.clone(), || {
        let _span = Span::enter("grid").field_u64("cells", 42);
    });
    let end = ring.events().pop().expect("end event");
    assert_eq!(end.fields, vec![("cells".to_string(), FieldValue::U64(42))]);
    let json = serde_json::to_string(&end.to_value()).expect("event serializes");
    assert!(json.contains("\"cells\":42"), "unquoted integer: {json}");
}

#[test]
fn ring_sink_counts_evictions() {
    let ring = Arc::new(RingSink::new(2));
    with_thread_sink(ring.clone(), || {
        for _ in 0..3 {
            let _span = Span::enter("tick");
        }
    });
    // Three spans emit six events into a two-slot ring: four evicted.
    assert_eq!(ring.events().len(), 2);
    assert_eq!(ring.dropped(), 4);
    ring.clear();
    assert_eq!(ring.dropped(), 4, "clear() is not an eviction");
    assert!(ring.events().is_empty());
}

#[test]
fn delta_since_subtracts_a_baseline() {
    let registry = Registry::new();
    registry.counter("jobs").add(5);
    registry.gauge("depth").set(2);
    registry.histogram("lat").record(100);
    let baseline = registry.snapshot();
    registry.counter("jobs").add(3);
    registry.counter("fresh").inc();
    registry.gauge("depth").set(7);
    registry.histogram("lat").record(100);
    registry.histogram("lat").record(200);
    let delta = registry.snapshot().delta_since(&baseline);
    assert_eq!(delta.counter("jobs"), Some(3));
    assert_eq!(delta.counter("fresh"), Some(1));
    assert_eq!(
        delta.gauge("depth"),
        Some(7),
        "gauges report absolute values"
    );
    let lat = delta.histogram("lat").expect("histogram");
    assert_eq!(lat.count, 2);
    assert_eq!(lat.sum, 300);
    assert_eq!(lat.buckets.iter().sum::<u64>(), 2);
}

/// Fans events out to several sinks, so a ring and a profile observe the
/// exact same stream.
struct Tee(Vec<Arc<dyn SpanSink>>);

impl SpanSink for Tee {
    fn event(&self, event: &SpanEvent) {
        for sink in &self.0 {
            sink.event(event);
        }
    }
}

#[test]
fn profile_tree_and_chrome_trace_match_ring_nesting() {
    let ring = Arc::new(RingSink::new(64));
    let profile = Arc::new(ProfileSink::new());
    let tee = Arc::new(Tee(vec![ring.clone(), profile.clone()]));
    with_thread_sink(tee, || {
        let _run = Span::enter("run");
        for _ in 0..2 {
            let _step = Span::enter("step");
            let _leaf = Span::enter("leaf");
        }
    });
    // The aggregated tree collapses repeats by name path.
    let tree = profile.tree();
    assert_eq!(tree.len(), 1);
    assert_eq!((tree[0].name.as_str(), tree[0].count), ("run", 1));
    assert_eq!(tree[0].children.len(), 1);
    let step = &tree[0].children[0];
    assert_eq!((step.name.as_str(), step.count), ("step", 2));
    let leaf = &step.children[0];
    assert_eq!((leaf.name.as_str(), leaf.count), ("leaf", 2));
    // The tree's ancestry matches the ring's parent links exactly.
    let events = ring.events();
    let run_seq = events
        .iter()
        .find(|e| e.name == "run" && e.phase == SpanPhase::Start)
        .expect("run start")
        .seq;
    let step_seqs: Vec<u64> = events
        .iter()
        .filter(|e| e.name == "step" && e.phase == SpanPhase::Start)
        .map(|e| {
            assert_eq!(e.parent, Some(run_seq), "steps nest under run");
            e.seq
        })
        .collect();
    for e in events
        .iter()
        .filter(|e| e.name == "leaf" && e.phase == SpanPhase::Start)
    {
        assert!(
            step_seqs.contains(&e.parent.expect("leaf has a parent")),
            "leaves nest under steps"
        );
    }
    // The Chrome export is well-formed JSON with one complete event per
    // closed span.
    let chrome = profile.to_chrome_trace();
    let value: Value = serde_json::from_str(&chrome).expect("chrome trace parses");
    let trace_events = value
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert_eq!(trace_events.len(), 5, "run + 2 steps + 2 leaves");
    for event in trace_events {
        assert!(matches!(event.get("name"), Some(Value::Str(_))));
        assert_eq!(event.get("ph"), Some(&Value::Str("X".to_string())));
        assert!(event.get("ts").is_some() && event.get("dur").is_some());
    }
}

#[test]
fn collapsed_lines_sum_to_the_root_total() {
    // Feed a synthetic event stream so the durations are exact.
    let profile = ProfileSink::new();
    let feed = |seq: u64, parent: Option<u64>, name: &str, phase: SpanPhase, ns: Option<u64>| {
        profile.event(&SpanEvent {
            seq,
            parent,
            name: name.to_string(),
            phase,
            elapsed_ns: ns,
            fields: Vec::new(),
        });
    };
    feed(1, None, "run", SpanPhase::Start, None);
    feed(2, Some(1), "step", SpanPhase::Start, None);
    feed(2, Some(1), "step", SpanPhase::End, Some(300));
    feed(3, Some(1), "step", SpanPhase::Start, None);
    feed(3, Some(1), "step", SpanPhase::End, Some(200));
    feed(1, None, "run", SpanPhase::End, Some(1_000));
    let collapsed = profile.to_collapsed();
    assert!(collapsed.contains("run 500\n"), "{collapsed}");
    assert!(collapsed.contains("run;step 500\n"), "{collapsed}");
    let total: u64 = collapsed
        .lines()
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(total, 1_000, "self times sum to the root total");
}

#[test]
fn breakdown_groups_span_costs_by_field_value() {
    let profile = Arc::new(ProfileSink::new());
    with_thread_sink(profile.clone(), || {
        for workload in ["sha", "sha", "crc"] {
            let _cell = Span::enter("cell").field("workload", workload);
        }
    });
    let rows = profile.breakdown("cell", "workload");
    assert_eq!(rows.len(), 2);
    assert_eq!((rows[0].value.as_str(), rows[0].count), ("crc", 1));
    assert_eq!((rows[1].value.as_str(), rows[1].count), ("sha", 2));
    assert!(profile.breakdown("cell", "nonexistent").is_empty());
}

#[test]
fn exports_are_byte_deterministic_with_timing_off() {
    mim_obs::set_timing(false);
    let render = || {
        let profile = Arc::new(ProfileSink::new());
        with_thread_sink(profile.clone(), || {
            let _run = Span::enter("run");
            for _ in 0..3 {
                let _step = Span::enter("step");
            }
        });
        (profile.to_chrome_trace(), profile.to_collapsed())
    };
    let (chrome_a, collapsed_a) = render();
    let (chrome_b, collapsed_b) = render();
    mim_obs::set_timing(true);
    assert_eq!(chrome_a, chrome_b, "chrome export is byte-deterministic");
    assert_eq!(collapsed_a, collapsed_b);
    assert!(
        chrome_a.contains("\"ts\":0.000"),
        "no clock reads: {chrome_a}"
    );
}

#[test]
fn export_rewrites_the_file_as_top_level_spans_close() {
    let path = std::env::temp_dir().join(format!("mim_obs_export_{}.json", std::process::id()));
    let profile: Arc<ProfileSink> =
        Arc::new(ProfileSink::new().with_export(TraceFormat::Chrome, &path));
    with_thread_sink(profile, || {
        let _run = Span::enter("run");
    });
    let text = std::fs::read_to_string(&path).expect("export file written on close");
    let value: Value = serde_json::from_str(&text).expect("export parses");
    let events = value
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents");
    assert_eq!(events.len(), 1);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn sink_specs_parse_like_mim_spans() {
    assert!(sink_from_spec("stderr").is_some());
    assert!(sink_from_spec("chrome:/tmp/trace.json").is_some());
    assert!(sink_from_spec("collapsed:/tmp/stacks.folded").is_some());
    assert!(sink_from_spec("chrome:").is_none(), "empty path rejected");
    assert!(sink_from_spec("bogus").is_none());
    assert!(sink_from_spec("bogus:/tmp/x").is_none());
    assert_eq!(
        TraceFormat::from_path(Path::new("out.folded")),
        TraceFormat::Collapsed
    );
    assert_eq!(
        TraceFormat::from_path(Path::new("out.txt")),
        TraceFormat::Collapsed
    );
    assert_eq!(
        TraceFormat::from_path(Path::new("out.json")),
        TraceFormat::Chrome
    );
}
