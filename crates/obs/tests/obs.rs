//! Integration tests for the observability layer: deterministic bucket
//! bounds, quantile resolution, concurrent recording, snapshot
//! serialization round-trips, Prometheus exposition, and span capture.

use std::sync::Arc;

use mim_obs::{
    bucket_bounds, bucket_index, set_span_sink, Registry, RingSink, Snapshot, Span, SpanPhase,
    NUM_BUCKETS,
};

#[test]
fn bucket_bounds_are_deterministic_powers_of_two() {
    // Bucket 0 is [0, 2); bucket i is [2^i, 2^(i+1)); the last is open.
    assert_eq!(bucket_bounds(0).0, 0);
    for i in 1..NUM_BUCKETS {
        let (lo, hi) = bucket_bounds(i);
        assert_eq!(lo, 1u64 << i, "bucket {i} lower bound");
        if i + 1 < NUM_BUCKETS {
            assert_eq!(hi, 1u64 << (i + 1), "bucket {i} upper bound");
        }
    }
    // Every representable value maps into exactly the bucket whose bounds
    // contain it — spot-check the edges where off-by-ones live.
    for value in [0, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
        let i = bucket_index(value);
        let (lo, hi) = bucket_bounds(i);
        assert!(lo <= value, "{value} below bucket {i} bound {lo}");
        assert!(
            value < hi || i == NUM_BUCKETS - 1,
            "{value} above bucket {i}"
        );
    }
}

#[test]
fn quantile_estimates_stay_within_bucket_resolution() {
    let registry = Registry::new();
    let h = registry.histogram("latency_ns");
    for v in 1..=1000u64 {
        h.record(v);
    }
    let snapshot = h.snapshot();
    assert_eq!(snapshot.count, 1000);
    assert_eq!(snapshot.sum, 500_500);
    // The exact p50 is 500 (bucket [256,512)), p90 is 900, p99 is 990
    // (both in bucket [512,1024)): estimates must land in the right
    // bucket, i.e. within a factor-of-two of truth.
    let p50 = snapshot.quantile(0.5);
    assert!((256.0..512.0).contains(&p50), "p50 estimate {p50}");
    let p99 = snapshot.quantile(0.99);
    assert!((512.0..1024.0).contains(&p99), "p99 estimate {p99}");
    // Quantiles are monotone in q.
    assert!(snapshot.quantile(0.1) <= p50);
    assert!(p50 <= snapshot.quantile(0.9));
}

#[test]
fn concurrent_recording_loses_nothing() {
    let registry = Registry::new();
    let hits = registry.counter("hits");
    let latency = registry.histogram("latency_ns");
    std::thread::scope(|scope| {
        for t in 0..8 {
            let hits = hits.clone();
            let latency = latency.clone();
            scope.spawn(move || {
                for i in 0..1000u64 {
                    hits.inc();
                    latency.record(t * 1000 + i);
                }
            });
        }
    });
    assert_eq!(hits.get(), 8000);
    let snapshot = latency.snapshot();
    assert_eq!(snapshot.count, 8000);
    assert_eq!(snapshot.buckets.iter().sum::<u64>(), 8000);
}

#[test]
fn snapshot_round_trips_through_json() {
    let registry = Registry::new();
    registry.counter("requests").add(42);
    registry.gauge("queue_depth").set(-3);
    let h = registry.histogram("wait_ns");
    for v in [1, 100, 10_000, 1_000_000] {
        h.record(v);
    }
    let snapshot = registry.snapshot();
    let parsed = Snapshot::from_value(
        &serde_json::from_str(&snapshot.to_json()).expect("snapshot JSON parses"),
    )
    .expect("snapshot reconstructs");
    assert_eq!(parsed.counter("requests"), Some(42));
    assert_eq!(parsed.gauge("queue_depth"), Some(-3));
    let original = snapshot.histogram("wait_ns").expect("histogram");
    let restored = parsed.histogram("wait_ns").expect("histogram");
    assert_eq!(original.count, restored.count);
    assert_eq!(original.sum, restored.sum);
    assert_eq!(original.buckets, restored.buckets);
    assert_eq!(original.quantile(0.5), restored.quantile(0.5));
}

#[test]
fn merge_sums_counters_and_buckets() {
    let a = Registry::new();
    let b = Registry::new();
    a.counter("shared").add(3);
    b.counter("shared").add(4);
    b.counter("only_b").inc();
    a.histogram("lat").record(10);
    b.histogram("lat").record(10);
    b.histogram("lat").record(1_000_000);
    let mut merged = a.snapshot();
    merged.merge(b.snapshot());
    assert_eq!(merged.counter("shared"), Some(7));
    assert_eq!(merged.counter("only_b"), Some(1));
    let lat = merged.histogram("lat").expect("merged histogram");
    assert_eq!(lat.count, 3);
    assert_eq!(lat.sum, 1_000_020);
}

#[test]
fn prometheus_exposition_is_well_formed() {
    let registry = Registry::new();
    registry.counter("store.trace.hit").add(5);
    registry.gauge("jobs.queue_depth").set(2);
    let h = registry.histogram("jobs.run_ns");
    h.record(100);
    h.record(200_000);
    let text = registry.snapshot().to_prometheus();
    assert!(text.contains("# TYPE store_trace_hit counter"), "{text}");
    assert!(text.contains("store_trace_hit 5"), "{text}");
    assert!(text.contains("# TYPE jobs_queue_depth gauge"), "{text}");
    assert!(text.contains("# TYPE jobs_run_ns histogram"), "{text}");
    assert!(
        text.contains(r#"jobs_run_ns_bucket{le="+Inf"} 2"#),
        "{text}"
    );
    assert!(text.contains("jobs_run_ns_sum 200100"), "{text}");
    assert!(text.contains("jobs_run_ns_count 2"), "{text}");
    // Cumulative buckets never decrease.
    let mut last = 0u64;
    for line in text.lines().filter(|l| l.contains("jobs_run_ns_bucket")) {
        let count: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(count >= last, "non-cumulative bucket line: {line}");
        last = count;
    }
}

#[test]
fn spans_capture_nesting_and_fields_in_a_ring_sink() {
    let ring = Arc::new(RingSink::new(64));
    set_span_sink(Some(ring.clone()));
    {
        let _outer = Span::enter("outer").field("job", "7");
        let _inner = Span::enter("inner");
    }
    set_span_sink(None);
    let events = ring.events();
    assert_eq!(events.len(), 4, "start+end for each of two spans");
    let outer_start = &events[0];
    assert_eq!(outer_start.name, "outer");
    assert_eq!(outer_start.phase, SpanPhase::Start);
    assert_eq!(outer_start.parent, None);
    let inner_start = &events[1];
    assert_eq!(inner_start.name, "inner");
    assert_eq!(
        inner_start.parent,
        Some(outer_start.seq),
        "inner span records the outer as its parent"
    );
    // Drop order: inner ends first; the outer end carries its fields.
    assert_eq!(events[2].name, "inner");
    assert_eq!(events[2].phase, SpanPhase::End);
    let outer_end = &events[3];
    assert_eq!(outer_end.name, "outer");
    assert_eq!(outer_end.phase, SpanPhase::End);
    assert_eq!(outer_end.fields, vec![("job".to_string(), "7".to_string())]);
}
