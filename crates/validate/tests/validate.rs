//! Integration tests of the differential-validation subsystem, including
//! the proptest driver that shrinks any over-budget behaviour point to a
//! minimal recipe.

use mim_core::{DesignSpace, MachineConfig};
use mim_validate::{
    cpi_error_percent, shrink_recipe, BehaviorSpace, BranchProfile, DifferentialRun, ErrorTerm,
    MemoryProfile, ValidationReport,
};
use mim_workloads::synth::SyntheticRecipe;
use proptest::prelude::*;

fn small_space() -> BehaviorSpace {
    BehaviorSpace::new(SyntheticRecipe {
        iterations: 200,
        ..SyntheticRecipe::codec_like()
    })
    .with_branch(vec![
        BranchProfile::new("b0", 0, 0),
        BranchProfile::new("br", 14, 100),
    ])
    .expect("distinct labels")
    .with_memory(vec![
        MemoryProfile::hot("hot", 1 << 10),
        MemoryProfile::random("mem", 1 << 16),
    ])
    .expect("distinct labels")
}

fn small_designs() -> DesignSpace {
    DesignSpace::new(MachineConfig::default_config())
        .with_widths(vec![1, 4])
        .expect("distinct widths")
}

fn run(threads: usize) -> ValidationReport {
    DifferentialRun::new(small_space(), small_designs())
        .title("validate integration")
        .threads(threads)
        .budget_percent(15.0)
        .worst(3)
        .run()
        .expect("differential run")
}

#[test]
fn attribution_terms_close_the_error_identity() {
    let report = run(1);
    assert_eq!(report.cells.len(), 4 * 2);
    for cell in &report.cells {
        assert_eq!(cell.terms.len(), 6);
        // Per construction: total error = sum of term deltas + residual.
        let total = (cell.model_cpi - cell.sim_cpi) / 1.0;
        let parts: f64 = cell.terms.iter().map(|t| t.delta_cpi).sum::<f64>() + cell.residual_cpi;
        assert!(
            (total - parts).abs() < 1e-9,
            "{}: identity violated ({total} vs {parts})",
            cell.workload
        );
        // Shared functional models: swapping sim-measured counts into the
        // profile must not move the model at all.
        for t in &cell.terms {
            assert!(
                t.swap_cpi.abs() < 1e-12,
                "{}: measurement divergence in {:?}",
                cell.workload,
                t.term
            );
        }
        // The dominant term really is the largest contributor.
        let dominant = cell.dominant.expect("attribution enabled");
        let max_term = cell
            .terms
            .iter()
            .map(|t| t.delta_cpi.abs())
            .fold(cell.residual_cpi.abs(), f64::max);
        let dominant_abs = match dominant {
            ErrorTerm::Residual => cell.residual_cpi.abs(),
            term => cell
                .terms
                .iter()
                .find(|t| t.term == term)
                .expect("dominant term present")
                .delta_cpi
                .abs(),
        };
        assert!((dominant_abs - max_term).abs() < 1e-12);
    }
}

#[test]
fn behaviour_axes_move_the_expected_sim_terms() {
    let report = run(1);
    let term = |cell: &str, pi: usize, term: ErrorTerm| {
        report
            .get(cell, pi)
            .expect("cell present")
            .terms
            .iter()
            .find(|t| t.term == term)
            .expect("term present")
            .sim_cpi
    };
    // Random branches cost real simulator cycles; branch-free cells don't.
    assert!(
        term("synth/br-hot-base-base", 1, ErrorTerm::Branch)
            > term("synth/b0-hot-base-base", 1, ErrorTerm::Branch) + 0.05
    );
    // A memory-sized random footprint costs D-cache cycles; the hot set
    // doesn't.
    assert!(
        term("synth/b0-mem-base-base", 1, ErrorTerm::DCacheMlp)
            > term("synth/b0-hot-base-base", 1, ErrorTerm::DCacheMlp) + 0.5
    );
}

#[test]
fn reports_are_byte_deterministic_across_threads_and_round_trip() {
    let serial = run(1);
    let parallel = run(4);
    let a = serial.to_json();
    let b = parallel.to_json();
    assert_eq!(a, b, "thread count changed report bytes");
    let back = ValidationReport::from_json(&a).expect("round trip");
    assert_eq!(back, serial);
    // Offenders regenerate their exact programs from the embedded recipe.
    for offender in &serial.worst {
        let p1 = offender.recipe.generate();
        let p2 = offender.recipe.generate();
        assert_eq!(p1.text(), p2.text());
        assert_eq!(offender.describe, offender.recipe.describe());
    }
}

#[test]
fn shrinker_reaches_the_minimal_recipe_under_an_unmeetable_budget() {
    // A negative budget is always exceeded, so shrinking must drive every
    // axis to its floor and terminate there.
    let machine = MachineConfig::default_config();
    let start = SyntheticRecipe {
        iterations: 200,
        block_size: 16,
        branch_percent: 14,
        branch_random_percent: 100,
        random_addresses: true,
        footprint_words: 4_096,
        ..SyntheticRecipe::codec_like()
    };
    let minimal = shrink_recipe(&start, &machine, -1.0, None).expect("shrink");
    assert_eq!(minimal.iterations, 50);
    assert_eq!(minimal.block_size, 8);
    assert!(minimal.dep_distances.is_empty());
    assert_eq!(minimal.branch_percent, 0);
    assert_eq!(minimal.branch_random_percent, 0);
    assert!(!minimal.random_addresses);
    assert_eq!(minimal.stride_words, 0);
    assert_eq!(minimal.footprint_words, 64);
    let (_, mul, div, load, store) = minimal.mix;
    assert_eq!((mul, div, load, store), (0, 0, 0, 0));
    // Under-budget recipes come back untouched.
    let untouched = shrink_recipe(&start, &machine, 1e9, None).expect("shrink");
    assert_eq!(untouched, start);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The proptest driver: random recipes across the behaviour axes stay
    /// within a generous error budget on the default machine; any point
    /// that exceeds it is shrunk to a minimal reproducer before failing.
    #[test]
    fn random_recipes_stay_within_the_error_budget(
        block in 16usize..49,
        iters in 100u64..301,
        branch in 0u32..15,
        random in 0u32..101,
        footprint_bits in 9u32..17,
        pattern in 0u8..3,
        mix_idx in 0u8..3,
        ilp_idx in 0u8..3,
        seed in 1u64..100_000,
    ) {
        const BUDGET_PERCENT: f64 = 50.0;
        let mixes = [(78, 8, 2, 8, 4), (48, 2, 0, 32, 18), (62, 4, 1, 21, 12)];
        let ilps: [&[u32]; 3] = [&[100], &[8, 6, 4, 3, 2, 1], &[0, 0, 0, 0, 0, 0, 0, 2, 3, 4]];
        let recipe = SyntheticRecipe {
            block_size: block,
            iterations: iters,
            mix: mixes[mix_idx as usize],
            dep_distances: ilps[ilp_idx as usize].to_vec(),
            footprint_words: 1 << footprint_bits,
            branch_percent: branch,
            branch_random_percent: random,
            stride_words: if pattern == 1 { 8 } else { 0 },
            random_addresses: pattern == 2,
            seed,
        };
        let machine = MachineConfig::default_config();
        let error = cpi_error_percent(&recipe, &machine, None)
            .expect("recipe must evaluate");
        if error.abs() > BUDGET_PERCENT {
            let minimal = shrink_recipe(&recipe, &machine, BUDGET_PERCENT, None)
                .expect("shrink must evaluate");
            let minimal_error = cpi_error_percent(&minimal, &machine, None)
                .expect("minimal recipe must evaluate");
            prop_assert!(
                false,
                "recipe exceeds {BUDGET_PERCENT}% budget: {error:.2}%\n  full:    {}\n  minimal ({minimal_error:.2}%): {}",
                recipe.describe(),
                minimal.describe()
            );
        }
    }
}
