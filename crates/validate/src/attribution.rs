//! Per-term error attribution: which model term explains a
//! model-vs-simulation disagreement.
//!
//! The mechanistic model is additive (Eq. 1): total time is the base
//! `N/W` plus independent penalty terms for I-cache misses, D-cache
//! misses (with their partial overlap/MLP behaviour in the memory stage),
//! branches, long-latency units, and dependencies. Attribution measures
//! each term on *both* sides:
//!
//! * **model side** — the closed-form cycles the model charges the term
//!   (read off the [`CpiStack`] via the decomposition accessors, with the
//!   combined TLB component split into its I/D shares from the raw walk
//!   counts);
//! * **simulator side** — the *effective* cycles the detailed pipeline
//!   spends on the mechanism, measured counterfactually:
//!   `cycles(full) - cycles(mechanism idealized)` using
//!   [`SimIdealization`], with everything else (including cache and
//!   predictor state evolution) bit-identical.
//!
//! The per-term delta `model - sim` (in CPI) says which mechanism's
//! *approximation* is responsible for the disagreement; the leftover
//! after all terms is the interaction **residual** (mechanism overlaps
//! the one-at-a-time counterfactuals cannot separate). Orthogonally, the
//! *profile-swap* shift re-predicts the model with simulator-measured
//! event counts substituted one term at a time
//! ([`ModelEvaluator::with_inputs_map`](mim_runner::ModelEvaluator::with_inputs_map)),
//! separating measurement disagreement from approximation disagreement —
//! on this substrate the functional models are shared, so swap shifts
//! near zero certify that every delta is approximation error.

use mim_core::{CpiStack, MachineConfig, MechanisticModel};
use mim_pipeline::SimIdealization;
use mim_runner::EvalResult;
use serde::{Deserialize, Serialize};

/// One attributable model term (plus the interaction residual).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorTerm {
    /// The `N/W` issue-bandwidth floor (plus pipeline fill/drain in the
    /// simulator).
    Base,
    /// Instruction-side cache/TLB misses.
    ICache,
    /// Data-side cache/TLB misses, including their memory-stage
    /// overlap/MLP behaviour.
    DCacheMlp,
    /// Branch mispredictions and taken-branch fetch bubbles.
    Branch,
    /// Non-unit multiply/divide latencies.
    LongLat,
    /// Inter-instruction dependency stalls.
    Deps,
    /// Interaction residual: disagreement not separable by any single
    /// counterfactual (overlap between mechanisms).
    Residual,
}

impl ErrorTerm {
    /// The measurable terms, in canonical report order (excludes
    /// [`Residual`](ErrorTerm::Residual), which is derived).
    pub const MEASURED: [ErrorTerm; 6] = [
        ErrorTerm::Base,
        ErrorTerm::ICache,
        ErrorTerm::DCacheMlp,
        ErrorTerm::Branch,
        ErrorTerm::LongLat,
        ErrorTerm::Deps,
    ];

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            ErrorTerm::Base => "base",
            ErrorTerm::ICache => "icache",
            ErrorTerm::DCacheMlp => "dcache+mlp",
            ErrorTerm::Branch => "branch",
            ErrorTerm::LongLat => "long-lat",
            ErrorTerm::Deps => "deps",
            ErrorTerm::Residual => "residual",
        }
    }

    /// The simulator counterfactual that idealizes this term (the `Base`
    /// counterfactual idealizes *everything*, leaving only the
    /// issue-bandwidth floor).
    pub fn idealization(self) -> Option<SimIdealization> {
        let mut ideal = SimIdealization::none();
        match self {
            ErrorTerm::Base => {
                ideal.perfect_icache = true;
                ideal.perfect_dcache = true;
                ideal.oracle_branches = true;
                ideal.free_taken_bubbles = true;
                ideal.unit_latencies = true;
                ideal.no_dependencies = true;
            }
            ErrorTerm::ICache => ideal.perfect_icache = true,
            ErrorTerm::DCacheMlp => ideal.perfect_dcache = true,
            ErrorTerm::Branch => {
                ideal.oracle_branches = true;
                ideal.free_taken_bubbles = true;
            }
            ErrorTerm::LongLat => ideal.unit_latencies = true,
            ErrorTerm::Deps => ideal.no_dependencies = true,
            ErrorTerm::Residual => return None,
        }
        Some(ideal)
    }
}

/// One term's two-sided measurement for one (behaviour × design) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TermError {
    /// Which term.
    pub term: ErrorTerm,
    /// CPI the model charges the term.
    pub model_cpi: f64,
    /// CPI the simulator effectively spends on the mechanism
    /// (counterfactual-measured).
    pub sim_cpi: f64,
    /// Attribution: `model_cpi - sim_cpi`.
    pub delta_cpi: f64,
    /// Model-CPI shift when the simulator's measured event counts for
    /// this term are swapped into the profile (measurement disagreement;
    /// `0` for terms without measured counts).
    pub swap_cpi: f64,
}

/// Splits the model's CPI stack into the attribution terms' cycle totals,
/// in [`ErrorTerm::MEASURED`] order. The combined TLB component is split
/// into its instruction/data shares from the raw walk counts.
pub fn model_term_cycles(
    machine: &MachineConfig,
    stack: &CpiStack,
    itlb_misses: u64,
    dtlb_misses: u64,
) -> [f64; 6] {
    let model = MechanisticModel::new(machine);
    let walk = model.miss_penalty(machine.tlb_walk_cycles);
    [
        stack.cycles_of(mim_core::StackComponent::Base),
        stack.icache_cycles() + itlb_misses as f64 * walk,
        stack.dcache_cycles() + dtlb_misses as f64 * walk,
        stack.branch_cycles(),
        stack.mul_div(),
        stack.dependencies(),
    ]
}

/// Computes the full attribution for one cell.
///
/// `counterfactual_cycles` holds the simulator's cycle counts under each
/// term's idealization, in [`ErrorTerm::MEASURED`] order; `swap_cpi` the
/// per-term profile-swap shifts (same order).
pub fn attribute(
    machine: &MachineConfig,
    model_row: &EvalResult,
    sim_row: &EvalResult,
    counterfactual_cycles: &[u64; 6],
    swap_cpi: &[f64; 6],
) -> (Vec<TermError>, f64, ErrorTerm) {
    let stack = model_row
        .stack
        .as_ref()
        .expect("model rows carry CPI stacks");
    let misses = model_row.misses.expect("model rows carry miss counts");
    let insts = sim_row.instructions.max(1) as f64;
    let model_cycles = model_term_cycles(machine, stack, misses.itlb_misses, misses.dtlb_misses);

    let mut terms = Vec::with_capacity(6);
    for (i, term) in ErrorTerm::MEASURED.into_iter().enumerate() {
        // The Base counterfactual idealizes everything, so its cycles ARE
        // the simulator's base; the others measure full-minus-ideal.
        let sim_term_cycles = if term == ErrorTerm::Base {
            counterfactual_cycles[i] as f64
        } else {
            sim_row.cycles - counterfactual_cycles[i] as f64
        };
        let model_cpi = model_cycles[i] / insts;
        let sim_cpi = sim_term_cycles / insts;
        terms.push(TermError {
            term,
            model_cpi,
            sim_cpi,
            delta_cpi: model_cpi - sim_cpi,
            swap_cpi: swap_cpi[i],
        });
    }

    let total_delta = model_row.cpi - sim_row.cpi;
    let residual_cpi = total_delta - terms.iter().map(|t| t.delta_cpi).sum::<f64>();
    let mut dominant = ErrorTerm::Residual;
    let mut dominant_abs = residual_cpi.abs();
    for t in &terms {
        if t.delta_cpi.abs() > dominant_abs {
            dominant_abs = t.delta_cpi.abs();
            dominant = t.term;
        }
    }
    (terms, residual_cpi, dominant)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_idealizations_are_consistent() {
        let mut labels: Vec<&str> = ErrorTerm::MEASURED.iter().map(|t| t.label()).collect();
        labels.push(ErrorTerm::Residual.label());
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 7);
        assert!(ErrorTerm::Residual.idealization().is_none());
        // Single-mechanism counterfactuals touch exactly one knob...
        for term in [
            ErrorTerm::ICache,
            ErrorTerm::DCacheMlp,
            ErrorTerm::LongLat,
            ErrorTerm::Deps,
        ] {
            let i = term.idealization().unwrap();
            let knobs = [
                i.perfect_icache,
                i.perfect_dcache,
                i.oracle_branches,
                i.free_taken_bubbles,
                i.unit_latencies,
                i.no_dependencies,
            ];
            assert_eq!(knobs.iter().filter(|&&k| k).count(), 1, "{term:?}");
        }
        // ...branch removes both prediction penalties, base removes all.
        let b = ErrorTerm::Branch.idealization().unwrap();
        assert!(b.oracle_branches && b.free_taken_bubbles);
        let base = ErrorTerm::Base.idealization().unwrap();
        assert!(base.perfect_icache && base.no_dependencies && base.unit_latencies);
    }

    #[test]
    fn model_term_cycles_cover_the_whole_stack() {
        use mim_core::{MachineConfig, MechanisticModel, ModelInputs};
        let machine = MachineConfig::default_config();
        let mut inputs = ModelInputs::synthetic("t", 10_000);
        inputs.mix.mul = 100;
        inputs.mix.load = 1_000;
        inputs.misses.l1d_misses = 120;
        inputs.misses.l2d_misses = 30;
        inputs.misses.l1i_misses = 40;
        inputs.misses.itlb_misses = 7;
        inputs.misses.dtlb_misses = 11;
        inputs.branch.branches = 400;
        inputs.branch.mispredicts = 25;
        inputs.branch.taken_correct = 100;
        inputs.deps_unit.record(1);
        inputs.deps_load.record(2);
        let stack = MechanisticModel::new(&machine).predict(&inputs);
        let terms = model_term_cycles(
            &machine,
            &stack,
            inputs.misses.itlb_misses,
            inputs.misses.dtlb_misses,
        );
        let sum: f64 = terms.iter().sum();
        assert!(
            (sum - stack.total_cycles()).abs() < 1e-9,
            "terms {sum} vs stack {}",
            stack.total_cycles()
        );
    }
}
