//! # mim-validate — behavior-space differential validation
//!
//! The paper's accuracy claim ("the mechanistic model tracks detailed
//! simulation within a few percent CPI error") is only as strong as the
//! behaviours it was checked on. This crate turns that spot-check into a
//! systematic sweep:
//!
//! 1. a [`BehaviorSpace`] enumerates a grid over
//!    [`SyntheticRecipe`](mim_workloads::synth::SyntheticRecipe) axes —
//!    branch predictability, memory footprint / stack-distance shape,
//!    dependency-chain depth, instruction mix — using the same builder
//!    idiom as [`DesignSpace`](mim_core::DesignSpace);
//! 2. a [`DifferentialRun`] evaluates every (behaviour × design) cell
//!    through both the mechanistic model and the cycle-accurate
//!    [`PipelineSim`](mim_pipeline::PipelineSim), via the shared
//!    [`Experiment`](mim_runner::Experiment) /
//!    [`WorkloadStore`](mim_runner::WorkloadStore) machinery — one
//!    recorded trace per behaviour point, replayed by every timing pass;
//! 3. **per-term error attribution** decomposes each disagreement into
//!    base / I-cache / D-cache+MLP / branch / long-latency / dependency
//!    components, by comparing the model's closed-form term against the
//!    simulator's counterfactually measured penalty
//!    ([`SimIdealization`](mim_pipeline::SimIdealization)) and by swapping
//!    simulator-measured event counts into the profile one term at a time
//!    ([`ModelEvaluator::with_inputs_map`](mim_runner::ModelEvaluator::with_inputs_map));
//! 4. the [`ValidationReport`] is byte-deterministic JSON whose worst-N
//!    offenders carry their full recipes, so any flagged point regenerates
//!    bit-identically; [`shrink_recipe`] minimizes an offending recipe to
//!    a locally minimal reproducer.
//!
//! ## Example
//!
//! ```
//! use mim_core::{DesignSpace, MachineConfig};
//! use mim_validate::{BehaviorSpace, BranchProfile, DifferentialRun};
//! use mim_workloads::synth::SyntheticRecipe;
//!
//! let space = BehaviorSpace::new(SyntheticRecipe {
//!     iterations: 150,
//!     ..SyntheticRecipe::codec_like()
//! })
//! .with_branch(vec![
//!     BranchProfile::new("none", 0, 0),
//!     BranchProfile::new("rand", 14, 100),
//! ])
//! .unwrap();
//! let designs = DesignSpace::new(MachineConfig::default_config())
//!     .with_widths(vec![1, 4])
//!     .unwrap();
//! let report = DifferentialRun::new(space, designs)
//!     .threads(1)
//!     .budget_percent(15.0)
//!     .run()
//!     .unwrap();
//! assert_eq!(report.cells.len(), 4);
//! // The unpredictable-branch cells spend more simulator cycles on
//! // branches than the branch-free cells.
//! let branchy = report.get("synth/rand-base-base-base", 0).unwrap();
//! let quiet = report.get("synth/none-base-base-base", 0).unwrap();
//! let branch_cpi = |c: &mim_validate::CellDiff| {
//!     c.terms.iter().find(|t| t.term == mim_validate::ErrorTerm::Branch)
//!         .map(|t| t.sim_cpi).unwrap()
//! };
//! assert!(branch_cpi(branchy) > branch_cpi(quiet));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attribution;
mod diff;
mod error;
mod space;

pub use attribution::{attribute, model_term_cycles, ErrorTerm, TermError};
pub use diff::{
    cpi_error_percent, print_summary, shrink_recipe, CellDiff, DifferentialRun, Offender,
    TermSummary, ValidationReport, ValidationSummary,
};
pub use error::ValidateError;
pub use space::{BehaviorSpace, BranchProfile, IlpProfile, MemoryProfile, MixProfile};
