//! The behavior space: a grid over [`SyntheticRecipe`] axes.
//!
//! [`DesignSpace`](mim_core::DesignSpace) enumerates *machines*;
//! [`BehaviorSpace`] enumerates *program behaviours* — branch
//! predictability, memory footprint and stack-distance shape, dependency
//! ILP, and instruction mix — using the same flat-index builder idiom, so
//! a differential run is a plain cartesian product of the two.

use mim_workloads::synth::SyntheticRecipe;
use serde::{Deserialize, Serialize};

use crate::error::ValidateError;

/// One value of the branch-predictability axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BranchProfile {
    /// Short label, unique within the axis (used in workload names).
    pub label: String,
    /// Percent of body slots that emit a conditional-branch site.
    pub site_percent: u32,
    /// Percent of those sites with data-dependent pseudo-random direction.
    pub random_percent: u32,
}

impl BranchProfile {
    /// Creates a branch profile.
    pub fn new(label: impl Into<String>, site_percent: u32, random_percent: u32) -> BranchProfile {
        BranchProfile {
            label: label.into(),
            site_percent,
            random_percent,
        }
    }
}

/// One value of the memory footprint / stack-distance-shape axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryProfile {
    /// Short label, unique within the axis.
    pub label: String,
    /// Footprint in words.
    pub footprint_words: usize,
    /// Stride in words per iteration (`0` = fixed hot slots).
    pub stride_words: usize,
    /// Uniform-random addressing over the footprint (overrides stride).
    pub random_addresses: bool,
}

impl MemoryProfile {
    /// A hot fixed working set (short stack distances, everything in L1).
    pub fn hot(label: impl Into<String>, footprint_words: usize) -> MemoryProfile {
        MemoryProfile {
            label: label.into(),
            footprint_words,
            stride_words: 0,
            random_addresses: false,
        }
    }

    /// A strided stream through the footprint (long, regular stack
    /// distances).
    pub fn stream(
        label: impl Into<String>,
        footprint_words: usize,
        stride_words: usize,
    ) -> MemoryProfile {
        MemoryProfile {
            label: label.into(),
            footprint_words,
            stride_words,
            random_addresses: false,
        }
    }

    /// Uniform-random addressing over the footprint (cache-hostile).
    pub fn random(label: impl Into<String>, footprint_words: usize) -> MemoryProfile {
        MemoryProfile {
            label: label.into(),
            footprint_words,
            stride_words: 0,
            random_addresses: true,
        }
    }
}

/// One value of the dependency-chain-depth (ILP) axis: a dependency-
/// distance weight vector (`dep_distances[d-1]` weights distance `d`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IlpProfile {
    /// Short label, unique within the axis.
    pub label: String,
    /// Dependency-distance weights for the recipe.
    pub dep_distances: Vec<u32>,
}

impl IlpProfile {
    /// Creates an ILP profile.
    pub fn new(label: impl Into<String>, dep_distances: Vec<u32>) -> IlpProfile {
        IlpProfile {
            label: label.into(),
            dep_distances,
        }
    }
}

/// One value of the instruction-mix axis (also sizes the loop so dynamic
/// length stays comparable across mixes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixProfile {
    /// Short label, unique within the axis.
    pub label: String,
    /// `(alu, mul, div, load, store)` weights.
    pub mix: (u32, u32, u32, u32, u32),
    /// Loop-body size in instructions.
    pub block_size: usize,
    /// Loop iterations.
    pub iterations: u64,
}

impl MixProfile {
    /// Creates a mix profile.
    pub fn new(
        label: impl Into<String>,
        mix: (u32, u32, u32, u32, u32),
        block_size: usize,
        iterations: u64,
    ) -> MixProfile {
        MixProfile {
            label: label.into(),
            mix,
            block_size,
            iterations,
        }
    }
}

/// A grid over [`SyntheticRecipe`] behaviour axes, enumerated in flat-index
/// order (branch-major, then memory, then ILP, then mix) exactly like
/// [`DesignSpace`](mim_core::DesignSpace) enumerates machines.
///
/// # Example
///
/// ```
/// use mim_validate::BehaviorSpace;
///
/// let space = BehaviorSpace::default_grid();
/// assert_eq!(space.len(), 64);
/// let recipe = space.recipe_at(17).unwrap();
/// assert!(!recipe.describe().is_empty());
/// // Point names are unique and deterministic.
/// assert_ne!(space.name_at(0), space.name_at(1));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BehaviorSpace {
    base: SyntheticRecipe,
    branch: Vec<BranchProfile>,
    memory: Vec<MemoryProfile>,
    ilp: Vec<IlpProfile>,
    mix: Vec<MixProfile>,
}

impl BehaviorSpace {
    /// A degenerate one-point space around `base`: every axis holds the
    /// base recipe's value. Grow it with the `with_*` builder methods.
    pub fn new(base: SyntheticRecipe) -> BehaviorSpace {
        BehaviorSpace {
            branch: vec![BranchProfile::new(
                "base",
                base.branch_percent,
                base.branch_random_percent,
            )],
            memory: vec![MemoryProfile {
                label: "base".into(),
                footprint_words: base.footprint_words,
                stride_words: base.stride_words,
                random_addresses: base.random_addresses,
            }],
            ilp: vec![IlpProfile::new("base", base.dep_distances.clone())],
            mix: vec![MixProfile::new(
                "base",
                base.mix,
                base.block_size,
                base.iterations,
            )],
            base,
        }
    }

    /// The default 4×4×2×2 = 64-point validation grid: branch
    /// predictability from branch-free to fully random, memory behaviour
    /// from a hot L1 set to random addressing over a memory-sized
    /// footprint, serial vs parallel dependency chains, and compute- vs
    /// memory-leaning instruction mixes. Loop lengths are sized for CI
    /// smoke runs; see [`default_grid_scaled`](BehaviorSpace::default_grid_scaled).
    pub fn default_grid() -> BehaviorSpace {
        BehaviorSpace::default_grid_scaled(1)
    }

    /// The default grid with every mix profile's loop iterations
    /// multiplied by `iteration_scale` — full-precision sweeps use longer
    /// loops to wash out warmup effects while covering the *same*
    /// behaviours the CI smoke grid covers.
    pub fn default_grid_scaled(iteration_scale: u64) -> BehaviorSpace {
        let iterations = 500 * iteration_scale.max(1);
        BehaviorSpace::new(SyntheticRecipe::codec_like())
            .with_branch(vec![
                BranchProfile::new("b0", 0, 0),
                BranchProfile::new("bp", 14, 0),
                BranchProfile::new("bh", 14, 50),
                BranchProfile::new("br", 14, 100),
            ])
            .expect("distinct branch labels")
            .with_memory(vec![
                MemoryProfile::hot("hot", 1 << 10),
                MemoryProfile::stream("l1s", 1 << 11, 2),
                MemoryProfile::stream("l2s", 1 << 13, 16),
                MemoryProfile::random("mem", 1 << 17),
            ])
            .expect("distinct memory labels")
            .with_ilp(vec![
                IlpProfile::new("ser", vec![100]),
                IlpProfile::new("ilp", vec![0, 0, 0, 0, 0, 0, 0, 2, 3, 4]),
            ])
            .expect("distinct ilp labels")
            .with_mix(vec![
                MixProfile::new("cmp", (78, 8, 2, 8, 4), 48, iterations),
                MixProfile::new("mem", (48, 2, 0, 32, 18), 48, iterations),
            ])
            .expect("distinct mix labels")
    }

    fn validate_axis<T>(
        axis: &'static str,
        candidates: &[T],
        label: impl Fn(&T) -> &str,
    ) -> Result<(), ValidateError> {
        if candidates.is_empty() {
            return Err(ValidateError::EmptyAxis { axis });
        }
        for (i, candidate) in candidates.iter().enumerate() {
            if candidates[..i].iter().any(|c| label(c) == label(candidate)) {
                return Err(ValidateError::DuplicateLabel {
                    axis,
                    label: label(candidate).to_string(),
                });
            }
        }
        Ok(())
    }

    /// Replaces the branch-predictability axis.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] if the list is empty or repeats a label.
    pub fn with_branch(
        mut self,
        branch: Vec<BranchProfile>,
    ) -> Result<BehaviorSpace, ValidateError> {
        Self::validate_axis("branch", &branch, |p| &p.label)?;
        self.branch = branch;
        Ok(self)
    }

    /// Replaces the memory footprint/shape axis.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] if the list is empty or repeats a label.
    pub fn with_memory(
        mut self,
        memory: Vec<MemoryProfile>,
    ) -> Result<BehaviorSpace, ValidateError> {
        Self::validate_axis("memory", &memory, |p| &p.label)?;
        self.memory = memory;
        Ok(self)
    }

    /// Replaces the dependency-ILP axis.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] if the list is empty or repeats a label.
    pub fn with_ilp(mut self, ilp: Vec<IlpProfile>) -> Result<BehaviorSpace, ValidateError> {
        Self::validate_axis("ilp", &ilp, |p| &p.label)?;
        self.ilp = ilp;
        Ok(self)
    }

    /// Replaces the instruction-mix axis.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] if the list is empty or repeats a label.
    pub fn with_mix(mut self, mix: Vec<MixProfile>) -> Result<BehaviorSpace, ValidateError> {
        Self::validate_axis("mix", &mix, |p| &p.label)?;
        self.mix = mix;
        Ok(self)
    }

    /// Number of behaviour points.
    pub fn len(&self) -> usize {
        self.branch.len() * self.memory.len() * self.ilp.len() * self.mix.len()
    }

    /// True if the space has no points (never, given axis validation).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Candidate counts per axis: `[branch, memory, ilp, mix]`.
    pub fn axis_lens(&self) -> [usize; 4] {
        [
            self.branch.len(),
            self.memory.len(),
            self.ilp.len(),
            self.mix.len(),
        ]
    }

    /// Decodes a flat index into `[branch, memory, ilp, mix]` coordinates.
    pub fn coords_of(&self, index: usize) -> Option<[usize; 4]> {
        if index >= self.len() {
            return None;
        }
        let [_, nm, ni, nx] = self.axis_lens();
        let xi = index % nx;
        let ii = (index / nx) % ni;
        let mi = (index / (nx * ni)) % nm;
        let bi = index / (nx * ni * nm);
        Some([bi, mi, ii, xi])
    }

    /// The recipe at a flat index (deterministic: seed derives from the
    /// base seed and the index, and is recorded in the recipe so any
    /// reported point regenerates bit-identically).
    pub fn recipe_at(&self, index: usize) -> Option<SyntheticRecipe> {
        let [bi, mi, ii, xi] = self.coords_of(index)?;
        let b = &self.branch[bi];
        let m = &self.memory[mi];
        let i = &self.ilp[ii];
        let x = &self.mix[xi];
        Some(SyntheticRecipe {
            block_size: x.block_size,
            iterations: x.iterations,
            mix: x.mix,
            dep_distances: i.dep_distances.clone(),
            footprint_words: m.footprint_words,
            branch_percent: b.site_percent,
            branch_random_percent: b.random_percent,
            stride_words: m.stride_words,
            random_addresses: m.random_addresses,
            seed: self
                .base
                .seed
                .wrapping_add((index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        })
    }

    /// The unique, deterministic name of a behaviour point (also the
    /// workload name inside experiment reports), e.g. `"synth/br-mem-ser-cmp"`.
    pub fn name_at(&self, index: usize) -> Option<String> {
        let [bi, mi, ii, xi] = self.coords_of(index)?;
        Some(format!(
            "synth/{}-{}-{}-{}",
            self.branch[bi].label, self.memory[mi].label, self.ilp[ii].label, self.mix[xi].label
        ))
    }

    /// Enumerates `(name, recipe)` for every behaviour point in flat-index
    /// order.
    pub fn points(&self) -> impl Iterator<Item = (String, SyntheticRecipe)> + '_ {
        (0..self.len()).map(|i| {
            (
                self.name_at(i).expect("index within len"),
                self.recipe_at(i).expect("index within len"),
            )
        })
    }

    /// Instantiates every behaviour point as a named
    /// [`WorkloadSpec`](mim_runner::WorkloadSpec), in flat-index order —
    /// the bridge that lets the behaviour grid flow into any
    /// `Experiment`-based driver (differential validation, representative-
    /// input selection, ...) exactly like a bundled benchmark suite.
    pub fn workload_specs(&self) -> Vec<mim_runner::WorkloadSpec> {
        self.points()
            .map(|(name, recipe)| mim_runner::WorkloadSpec::program(name, recipe.generate()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_has_64_unique_points() {
        let space = BehaviorSpace::default_grid();
        assert_eq!(space.len(), 64);
        assert_eq!(space.axis_lens(), [4, 4, 2, 2]);
        let names: Vec<String> = (0..space.len())
            .map(|i| space.name_at(i).unwrap())
            .collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 64, "names must be unique");
        // Recipes are deterministic and distinct per point.
        let a = space.recipe_at(5).unwrap();
        let b = space.recipe_at(5).unwrap();
        assert_eq!(a, b);
        assert_ne!(space.recipe_at(4).unwrap(), a);
    }

    #[test]
    fn workload_specs_cover_every_point_with_matching_names() {
        let base = SyntheticRecipe::codec_like();
        let space = BehaviorSpace::new(base)
            .with_ilp(vec![
                IlpProfile::new("ser", vec![100]),
                IlpProfile::new("par", vec![0, 0, 0, 1]),
            ])
            .unwrap();
        let specs = space.workload_specs();
        assert_eq!(specs.len(), space.len());
        for (i, spec) in specs.iter().enumerate() {
            assert_eq!(spec.name(), space.name_at(i).unwrap());
        }
    }

    #[test]
    fn axis_validation_rejects_empty_and_duplicates() {
        let base = SyntheticRecipe::codec_like();
        assert!(matches!(
            BehaviorSpace::new(base.clone()).with_branch(vec![]),
            Err(ValidateError::EmptyAxis { axis: "branch" })
        ));
        let dup = vec![
            BranchProfile::new("x", 0, 0),
            BranchProfile::new("x", 10, 0),
        ];
        assert!(matches!(
            BehaviorSpace::new(base).with_branch(dup),
            Err(ValidateError::DuplicateLabel { axis: "branch", .. })
        ));
    }

    #[test]
    fn one_point_space_reproduces_the_base_recipe() {
        let base = SyntheticRecipe::codec_like();
        let space = BehaviorSpace::new(base.clone());
        assert_eq!(space.len(), 1);
        let recipe = space.recipe_at(0).unwrap();
        assert_eq!(recipe.mix, base.mix);
        assert_eq!(recipe.dep_distances, base.dep_distances);
        assert_eq!(recipe.footprint_words, base.footprint_words);
        assert!(space.recipe_at(1).is_none());
        assert!(space.coords_of(1).is_none());
    }
}
