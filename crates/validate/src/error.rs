//! Errors of the validation subsystem.

use std::error::Error;
use std::fmt;

use mim_runner::EvalError;

/// Error produced by the behavior-space builder or a differential run.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidateError {
    /// A behavior axis was replaced with an empty candidate list.
    EmptyAxis {
        /// Which axis was empty.
        axis: &'static str,
    },
    /// A behavior axis repeats a label (labels key workload names and
    /// report rows, so duplicates would silently alias behaviour points).
    DuplicateLabel {
        /// Which axis holds the duplicate.
        axis: &'static str,
        /// The duplicated label.
        label: String,
    },
    /// An underlying evaluation failed.
    Eval(EvalError),
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::EmptyAxis { axis } => {
                write!(f, "behavior-space axis `{axis}` must be non-empty")
            }
            ValidateError::DuplicateLabel { axis, label } => {
                write!(
                    f,
                    "behavior-space axis `{axis}` lists label `{label}` twice"
                )
            }
            ValidateError::Eval(e) => write!(f, "differential evaluation failed: {e}"),
        }
    }
}

impl Error for ValidateError {}

impl From<EvalError> for ValidateError {
    fn from(e: EvalError) -> ValidateError {
        ValidateError::Eval(e)
    }
}
