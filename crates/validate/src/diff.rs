//! The [`DifferentialRun`] builder and its deterministic
//! [`ValidationReport`], plus the recipe shrinker.

use mim_core::{DesignPoint, DesignSpace, MachineConfig};
use mim_pipeline::PipelineSim;
use mim_runner::{
    parallel_map, EvalError, EvalKind, EvalResult, Evaluator, Experiment, ModelEvaluator,
    SimEvaluator, WorkloadSpec, WorkloadStore,
};
use mim_workloads::synth::SyntheticRecipe;
use mim_workloads::WorkloadSize;
use serde::{Deserialize, Serialize};

use crate::attribution::{attribute, ErrorTerm, TermError};
use crate::error::ValidateError;
use crate::space::BehaviorSpace;

/// One (behaviour point × design point) comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellDiff {
    /// Behaviour-point name (the workload name in the underlying
    /// experiment).
    pub workload: String,
    /// Flat index of the behaviour point in the behavior space.
    pub behavior_index: usize,
    /// Machine id of the design point.
    pub machine_id: String,
    /// Index of the design point.
    pub machine_index: usize,
    /// Dynamic instructions evaluated.
    pub instructions: u64,
    /// Model-predicted CPI.
    pub model_cpi: f64,
    /// Detailed-simulation CPI.
    pub sim_cpi: f64,
    /// Signed relative CPI error, percent.
    pub error_percent: f64,
    /// Per-term attribution (empty when attribution is disabled).
    pub terms: Vec<TermError>,
    /// Interaction residual in CPI (error not separable by any single
    /// counterfactual).
    pub residual_cpi: f64,
    /// The term that dominates the disagreement.
    pub dominant: Option<ErrorTerm>,
}

/// Per-term aggregate over all cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TermSummary {
    /// Which term.
    pub term: ErrorTerm,
    /// Mean |delta CPI| across cells.
    pub mean_abs_delta_cpi: f64,
    /// Largest |delta CPI| across cells.
    pub max_abs_delta_cpi: f64,
    /// Largest |profile-swap shift| across cells (measurement
    /// disagreement; ~0 certifies shared functional models).
    pub max_abs_swap_cpi: f64,
    /// Number of cells this term dominates.
    pub dominated: usize,
}

/// Aggregate statistics of a differential run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationSummary {
    /// Total number of (behaviour × design) cells.
    pub cells: usize,
    /// Mean |CPI error| over all cells, percent.
    pub mean_abs_error_percent: f64,
    /// Largest |CPI error| over all cells, percent.
    pub max_abs_error_percent: f64,
    /// Cells whose |error| exceeds the run's budget.
    pub over_budget: usize,
    /// Per-term aggregates in canonical order (plus the residual row).
    pub terms: Vec<TermSummary>,
    /// Cells whose disagreement the interaction residual dominates.
    pub residual_dominated: usize,
}

/// One worst-offending cell, self-contained for reproduction: the full
/// recipe regenerates the exact program, the machine id names the design
/// point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Offender {
    /// Behaviour-point name.
    pub workload: String,
    /// Machine id of the design point.
    pub machine_id: String,
    /// Signed relative CPI error, percent.
    pub error_percent: f64,
    /// Dominant term of the disagreement.
    pub dominant: Option<ErrorTerm>,
    /// Human-readable recipe summary.
    pub describe: String,
    /// The full recipe (regenerates the identical program).
    pub recipe: SyntheticRecipe,
}

/// The outcome of [`DifferentialRun::run`]: every cell in deterministic
/// (behaviour-major, then design point) order, per-term aggregates, and
/// the worst offenders with their recipes.
///
/// Serialization is deterministic: the same run produces byte-identical
/// JSON for any thread count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Run title.
    pub title: String,
    /// Behaviour points evaluated.
    pub behavior_points: usize,
    /// Design points evaluated.
    pub design_points: usize,
    /// Error budget used to flag offenders, percent.
    pub budget_percent: f64,
    /// Behaviour-point names, in flat-index order.
    pub workloads: Vec<String>,
    /// Machine ids, in design-space order.
    pub machines: Vec<String>,
    /// The behavior space (regenerates every recipe).
    pub space: BehaviorSpace,
    /// All cells, behaviour-major then design point.
    pub cells: Vec<CellDiff>,
    /// Aggregate statistics.
    pub summary: ValidationSummary,
    /// The worst offenders by |error|, with reproducible recipes.
    pub worst: Vec<Offender>,
}

impl ValidationReport {
    /// Serializes the report as pretty JSON (deterministic bytes).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization is infallible")
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the parse error on malformed input.
    pub fn from_json(text: &str) -> Result<ValidationReport, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Looks up one cell.
    pub fn get(&self, workload: &str, machine_index: usize) -> Option<&CellDiff> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.machine_index == machine_index)
    }
}

/// Prints a compact human-readable summary of a report.
pub fn print_summary(report: &ValidationReport) {
    println!(
        "\n=== {} ===\n{} behaviour points x {} design points = {} cells",
        report.title, report.behavior_points, report.design_points, report.summary.cells
    );
    println!(
        "mean |CPI error| = {:.2}%   max = {:.2}%   over {:.0}% budget: {}",
        report.summary.mean_abs_error_percent,
        report.summary.max_abs_error_percent,
        report.budget_percent,
        report.summary.over_budget
    );
    if !report.summary.terms.is_empty() {
        println!(
            "{:<12} {:>14} {:>14} {:>12} {:>9}",
            "term", "mean |d CPI|", "max |d CPI|", "max |swap|", "dominates"
        );
        for t in &report.summary.terms {
            println!(
                "{:<12} {:>14.4} {:>14.4} {:>12.4} {:>9}",
                t.term.label(),
                t.mean_abs_delta_cpi,
                t.max_abs_delta_cpi,
                t.max_abs_swap_cpi,
                t.dominated
            );
        }
        println!(
            "{:<12} {:>51} {:>9}",
            "residual", "", report.summary.residual_dominated
        );
    }
    for o in &report.worst {
        println!(
            "worst {:+7.2}%  {} on {}  [{}]\n      {}",
            o.error_percent,
            o.workload,
            o.machine_id,
            o.dominant.map_or("-", ErrorTerm::label),
            o.describe
        );
    }
}

/// Declarative builder for a behaviour-space differential validation run:
/// every behaviour point crossed with every design point, evaluated by the
/// mechanistic model *and* the detailed simulator through the shared
/// [`Experiment`]/[`WorkloadStore`] machinery (one recorded trace per
/// behaviour point, replayed everywhere), then attributed per term.
///
/// # Example
///
/// ```
/// use mim_core::{DesignSpace, MachineConfig};
/// use mim_validate::{BehaviorSpace, DifferentialRun};
/// use mim_workloads::synth::SyntheticRecipe;
///
/// let recipe = SyntheticRecipe {
///     iterations: 120,
///     ..SyntheticRecipe::codec_like()
/// };
/// let report = DifferentialRun::new(
///     BehaviorSpace::new(recipe),
///     DesignSpace::new(MachineConfig::default_config()),
/// )
/// .title("doc example")
/// .threads(1)
/// .run()
/// .unwrap();
/// assert_eq!(report.cells.len(), 1);
/// assert!(report.cells[0].error_percent.abs() < 50.0);
/// ```
pub struct DifferentialRun {
    title: String,
    space: BehaviorSpace,
    designs: DesignSpace,
    threads: usize,
    limit: Option<u64>,
    budget_percent: f64,
    worst: usize,
    attribution: bool,
}

impl DifferentialRun {
    /// Creates a run over the full cross product of behaviour and design
    /// points.
    pub fn new(space: BehaviorSpace, designs: DesignSpace) -> DifferentialRun {
        DifferentialRun {
            title: "behavior-space differential validation".to_string(),
            space,
            designs,
            threads: 0,
            limit: None,
            budget_percent: 10.0,
            worst: 5,
            attribution: true,
        }
    }

    /// Sets the report title.
    pub fn title(mut self, title: impl Into<String>) -> DifferentialRun {
        self.title = title.into();
        self
    }

    /// Number of worker threads; `0` (the default) uses all cores. Any
    /// value produces byte-identical reports.
    pub fn threads(mut self, threads: usize) -> DifferentialRun {
        self.threads = threads;
        self
    }

    /// Truncates every evaluation to `limit` retired instructions.
    pub fn limit(mut self, limit: u64) -> DifferentialRun {
        self.limit = Some(limit);
        self
    }

    /// Error budget (percent) above which a cell counts as an offender
    /// (default 10%).
    pub fn budget_percent(mut self, budget: f64) -> DifferentialRun {
        self.budget_percent = budget;
        self
    }

    /// How many worst offenders the report lists with full recipes
    /// (default 5).
    pub fn worst(mut self, n: usize) -> DifferentialRun {
        self.worst = n;
        self
    }

    /// Enables or disables per-term attribution (default on; disabling
    /// skips the counterfactual simulation passes).
    pub fn attribution(mut self, attribution: bool) -> DifferentialRun {
        self.attribution = attribution;
        self
    }

    /// Worker threads for the counterfactual pass, matching the
    /// `Experiment` contract: `0` means all available cores.
    fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }

    /// Runs the grid and assembles the report.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] if any evaluation or replay fails.
    pub fn run(self) -> Result<ValidationReport, ValidateError> {
        let size = WorkloadSize::Small; // fixed programs: size is nominal
        let specs: Vec<WorkloadSpec> = self.space.workload_specs();
        let store = WorkloadStore::new();
        let mut experiment = Experiment::new()
            .title(self.title.clone())
            .workloads(specs.iter().cloned())
            .size(size)
            .design_space(self.designs.clone())
            .evaluators([EvalKind::Model, EvalKind::Sim])
            .threads(self.threads)
            .with_cache(store.clone());
        if let Some(limit) = self.limit {
            experiment = experiment.limit(limit);
        }
        let report = experiment.run().map_err(ValidateError::Eval)?;

        let points: Vec<DesignPoint> = self.designs.points().collect();
        let n_behaviors = self.space.len();
        let n_points = points.len();

        // Counterfactual timing passes: every (behaviour, design, term)
        // replays the cell's recording under the term's idealization.
        // Flat task list, deterministic slot order, parallel execution.
        let counterfactuals: Vec<[u64; 6]> = if self.attribution {
            let mut tasks = Vec::with_capacity(n_behaviors * n_points * 6);
            for wi in 0..n_behaviors {
                for pi in 0..n_points {
                    for term in ErrorTerm::MEASURED {
                        tasks.push((wi, pi, term));
                    }
                }
            }
            let cycles: Vec<Result<u64, EvalError>> =
                parallel_map(self.resolved_threads(), &tasks, |_, &(wi, pi, term)| {
                    let spec = &specs[wi];
                    let program = store.program(spec, size);
                    let trace = store.trace(spec, size, self.limit)?;
                    let mut replay = trace
                        .replay(&program)
                        .map_err(|e| EvalError::trace(spec.name(), "counterfactual", &e))?;
                    let ideal = term.idealization().expect("measured term");
                    let sim = PipelineSim::new(&points[pi].machine)
                        .with_idealization(ideal)
                        .simulate_source(&mut replay)
                        .map_err(|e| EvalError::trace(spec.name(), "counterfactual", &e))?;
                    Ok(sim.cycles)
                });
            let mut flat = Vec::with_capacity(n_behaviors * n_points);
            for chunk in cycles.chunks(6) {
                let mut arr = [0u64; 6];
                for (slot, outcome) in arr.iter_mut().zip(chunk) {
                    *slot = outcome.clone()?;
                }
                flat.push(arr);
            }
            flat
        } else {
            Vec::new()
        };

        // Assemble cells, behaviour-major then design point.
        let mut cells = Vec::with_capacity(n_behaviors * n_points);
        for (wi, spec) in specs.iter().enumerate() {
            for (pi, point) in points.iter().enumerate() {
                let model_row = report
                    .get(spec.name(), pi, "model")
                    .expect("model cell present");
                let sim_row = report
                    .get(spec.name(), pi, "sim")
                    .expect("sim cell present");
                let error_percent = 100.0 * (model_row.cpi - sim_row.cpi) / sim_row.cpi;
                let (terms, residual_cpi, dominant) = if self.attribution {
                    let swaps = self.swap_shifts(&store, spec, size, point, model_row, sim_row)?;
                    let (terms, residual, dominant) = attribute(
                        &point.machine,
                        model_row,
                        sim_row,
                        &counterfactuals[wi * n_points + pi],
                        &swaps,
                    );
                    (terms, residual, Some(dominant))
                } else {
                    (Vec::new(), 0.0, None)
                };
                cells.push(CellDiff {
                    workload: spec.name().to_string(),
                    behavior_index: wi,
                    machine_id: point.machine.id(),
                    machine_index: pi,
                    instructions: sim_row.instructions,
                    model_cpi: model_row.cpi,
                    sim_cpi: sim_row.cpi,
                    error_percent,
                    terms,
                    residual_cpi,
                    dominant,
                });
            }
        }

        let summary = summarize(&cells, self.budget_percent);
        let worst = worst_offenders(&cells, &self.space, self.worst);
        Ok(ValidationReport {
            title: self.title,
            behavior_points: n_behaviors,
            design_points: n_points,
            budget_percent: self.budget_percent,
            workloads: (0..n_behaviors)
                .map(|i| self.space.name_at(i).expect("in range"))
                .collect(),
            machines: points.iter().map(|p| p.machine.id()).collect(),
            space: self.space,
            cells,
            summary,
            worst,
        })
    }

    /// Per-term profile-swap shifts: re-predict the model with the
    /// simulator's measured counts substituted for one term's inputs at a
    /// time (via the runner's [`ModelEvaluator::with_inputs_map`] hook)
    /// and report the CPI movement. Base/long-lat/deps carry no externally
    /// measured counts, so their shift is zero by definition.
    fn swap_shifts(
        &self,
        store: &WorkloadStore,
        spec: &WorkloadSpec,
        size: WorkloadSize,
        point: &DesignPoint,
        model_row: &EvalResult,
        sim_row: &EvalResult,
    ) -> Result<[f64; 6], ValidateError> {
        let sim_misses = sim_row.misses.expect("sim rows carry miss counts");
        let sim_branch = sim_row.branch.expect("sim rows carry branch counts");
        let mut shifts = [0.0; 6];
        for (i, term) in ErrorTerm::MEASURED.into_iter().enumerate() {
            let mut evaluator = ModelEvaluator::for_point(&self.designs, point)
                .with_cache(store.clone())
                .with_name(format!("model+swap:{}", term.label()));
            if let Some(limit) = self.limit {
                evaluator = evaluator.with_limit(Some(limit));
            }
            let swapping = match term {
                ErrorTerm::ICache => evaluator.with_inputs_map(move |mut inputs| {
                    inputs.misses.l1i_misses = sim_misses.l1i_misses;
                    inputs.misses.l2i_misses = sim_misses.l2i_misses;
                    inputs.misses.itlb_misses = sim_misses.itlb_misses;
                    inputs
                }),
                ErrorTerm::DCacheMlp => evaluator.with_inputs_map(move |mut inputs| {
                    inputs.misses.l1d_misses = sim_misses.l1d_misses;
                    inputs.misses.l2d_misses = sim_misses.l2d_misses;
                    inputs.misses.dtlb_misses = sim_misses.dtlb_misses;
                    inputs
                }),
                ErrorTerm::Branch => evaluator.with_inputs_map(move |mut inputs| {
                    inputs.branch.branches = sim_branch.branches;
                    inputs.branch.mispredicts = sim_branch.mispredicts;
                    inputs.branch.taken_correct = sim_branch.taken_correct;
                    inputs
                }),
                // Base/long-lat/deps carry no externally measured counts.
                _ => continue,
            };
            let swapped = swapping.evaluate(spec, size).map_err(ValidateError::Eval)?;
            shifts[i] = swapped.cpi - model_row.cpi;
        }
        Ok(shifts)
    }
}

fn summarize(cells: &[CellDiff], budget_percent: f64) -> ValidationSummary {
    let n = cells.len().max(1) as f64;
    let mean_abs_error_percent = cells.iter().map(|c| c.error_percent.abs()).sum::<f64>() / n;
    let max_abs_error_percent = cells
        .iter()
        .map(|c| c.error_percent.abs())
        .fold(0.0, f64::max);
    let over_budget = cells
        .iter()
        .filter(|c| c.error_percent.abs() > budget_percent)
        .count();
    let has_terms = cells.iter().any(|c| !c.terms.is_empty());
    let terms = if has_terms {
        ErrorTerm::MEASURED
            .into_iter()
            .enumerate()
            .map(|(i, term)| {
                let deltas: Vec<f64> = cells
                    .iter()
                    .filter_map(|c| c.terms.get(i))
                    .map(|t| t.delta_cpi)
                    .collect();
                let swaps: Vec<f64> = cells
                    .iter()
                    .filter_map(|c| c.terms.get(i))
                    .map(|t| t.swap_cpi)
                    .collect();
                TermSummary {
                    term,
                    mean_abs_delta_cpi: deltas.iter().map(|d| d.abs()).sum::<f64>()
                        / deltas.len().max(1) as f64,
                    max_abs_delta_cpi: deltas.iter().map(|d| d.abs()).fold(0.0, f64::max),
                    max_abs_swap_cpi: swaps.iter().map(|s| s.abs()).fold(0.0, f64::max),
                    dominated: cells.iter().filter(|c| c.dominant == Some(term)).count(),
                }
            })
            .collect()
    } else {
        Vec::new()
    };
    ValidationSummary {
        cells: cells.len(),
        mean_abs_error_percent,
        max_abs_error_percent,
        over_budget,
        terms,
        residual_dominated: cells
            .iter()
            .filter(|c| c.dominant == Some(ErrorTerm::Residual))
            .count(),
    }
}

fn worst_offenders(cells: &[CellDiff], space: &BehaviorSpace, n: usize) -> Vec<Offender> {
    let mut order: Vec<&CellDiff> = cells.iter().collect();
    // Deterministic: |error| descending, then (workload, machine) as the
    // tie-break.
    order.sort_by(|a, b| {
        b.error_percent
            .abs()
            .partial_cmp(&a.error_percent.abs())
            .expect("finite errors")
            .then_with(|| a.workload.cmp(&b.workload))
            .then_with(|| a.machine_index.cmp(&b.machine_index))
    });
    order
        .into_iter()
        .take(n)
        .map(|c| {
            let recipe = space.recipe_at(c.behavior_index).expect("index in range");
            Offender {
                workload: c.workload.clone(),
                machine_id: c.machine_id.clone(),
                error_percent: c.error_percent,
                dominant: c.dominant,
                describe: recipe.describe(),
                recipe,
            }
        })
        .collect()
}

/// Signed model-vs-simulation CPI error (percent) of one recipe on one
/// machine — the scalar the shrinker minimizes against its budget.
///
/// # Errors
///
/// Returns an [`EvalError`] if the generated program faults.
pub fn cpi_error_percent(
    recipe: &SyntheticRecipe,
    machine: &MachineConfig,
    limit: Option<u64>,
) -> Result<f64, EvalError> {
    let store = WorkloadStore::new();
    let spec = WorkloadSpec::program("shrink-probe", recipe.generate());
    // Simulate first so the recording exists and the profile replays it:
    // one functional execution for the pair.
    let sim = SimEvaluator::new(machine)
        .with_cache(store.clone())
        .with_limit(limit)
        .evaluate(&spec, WorkloadSize::Small)?;
    let model = ModelEvaluator::new(machine)
        .with_cache(store)
        .with_limit(limit)
        .evaluate(&spec, WorkloadSize::Small)?;
    Ok(100.0 * (model.cpi - sim.cpi) / sim.cpi)
}

/// Shrinks a recipe that exceeds the error budget to a minimal recipe
/// that still exceeds it — the failure-minimization step of the proptest
/// driver (the vendored proptest stand-in does not shrink, so the domain
/// shrinker lives here).
///
/// Candidate reductions are tried in a fixed order (halve the iteration
/// count, halve the block, drop dependency/branch/memory features, shrink
/// the footprint, simplify the mix); any reduction that still exceeds the
/// budget is accepted and the search restarts, so the result is a local
/// minimum: no single candidate reduction keeps it over budget.
///
/// # Errors
///
/// Returns an [`EvalError`] if a candidate program faults.
pub fn shrink_recipe(
    recipe: &SyntheticRecipe,
    machine: &MachineConfig,
    budget_percent: f64,
    limit: Option<u64>,
) -> Result<SyntheticRecipe, EvalError> {
    let exceeds = |r: &SyntheticRecipe| -> Result<bool, EvalError> {
        Ok(cpi_error_percent(r, machine, limit)?.abs() > budget_percent)
    };
    let mut current = recipe.clone();
    if !exceeds(&current)? {
        return Ok(current);
    }
    loop {
        let mut advanced = false;
        for candidate in shrink_candidates(&current) {
            if exceeds(&candidate)? {
                current = candidate;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return Ok(current);
        }
    }
}

/// Strictly smaller/simpler variants of a recipe, in preference order.
fn shrink_candidates(r: &SyntheticRecipe) -> Vec<SyntheticRecipe> {
    let mut out = Vec::new();
    let mut push = |candidate: SyntheticRecipe| {
        if candidate != *r {
            out.push(candidate);
        }
    };
    if r.iterations > 50 {
        push(SyntheticRecipe {
            iterations: (r.iterations / 2).max(50),
            ..r.clone()
        });
    }
    if r.block_size > 8 {
        push(SyntheticRecipe {
            block_size: (r.block_size / 2).max(8),
            ..r.clone()
        });
    }
    if !r.dep_distances.is_empty() {
        push(SyntheticRecipe {
            dep_distances: Vec::new(),
            ..r.clone()
        });
    }
    if r.branch_random_percent > 0 {
        push(SyntheticRecipe {
            branch_random_percent: 0,
            ..r.clone()
        });
    }
    if r.branch_percent > 0 {
        push(SyntheticRecipe {
            branch_percent: 0,
            ..r.clone()
        });
    }
    if r.random_addresses {
        push(SyntheticRecipe {
            random_addresses: false,
            ..r.clone()
        });
    }
    if r.stride_words > 0 {
        push(SyntheticRecipe {
            stride_words: 0,
            ..r.clone()
        });
    }
    if r.footprint_words > 64 {
        push(SyntheticRecipe {
            footprint_words: (r.footprint_words / 4).max(64),
            ..r.clone()
        });
    }
    let (alu, mul, div, load, store) = r.mix;
    if mul > 0 || div > 0 {
        push(SyntheticRecipe {
            mix: (alu.max(1), 0, 0, load, store),
            ..r.clone()
        });
    }
    if load > 0 || store > 0 {
        push(SyntheticRecipe {
            mix: (alu.max(1), mul, div, 0, 0),
            ..r.clone()
        });
    }
    out
}
