//! Block-compiled functional execution (the DBT-style engine).
//!
//! The interpreting [`Vm`](crate::Vm) re-decodes every instruction on
//! every dynamic execution: fetch, bounds check, a 30-arm opcode match,
//! operand-shape matches (`writes()`/`sources()`), and the construction
//! of a full [`TraceEvent`] per retired instruction. That per-step cost
//! is the hard floor under every trace recording and sweep profile.
//!
//! This module removes it the way dynamic binary translators do:
//!
//! * [`BlockCompiler`] decodes each **basic block** once — from an entry
//!   PC up to the first control-flow instruction — into a dense array of
//!   pre-resolved micro-ops (register *indices*, immediates, and the
//!   branch target as plain integers) plus one static [`TraceEvent`]
//!   template per instruction.
//! * [`BlockCache`] memoizes compiled blocks by entry PC. Programs are
//!   immutable, so the cache never invalidates; blocks additionally
//!   inline-cache their successor blocks, so steady-state dispatch never
//!   touches the hash map.
//! * [`BlockEngine`] executes cached blocks in a tight loop, invoking
//!   [`BlockHooks`] — a monomorphized, r2vm-`PipelineModel`-shaped hook
//!   interface (`begin_block` / `before_instruction` /
//!   `after_taken_branch`, …) — so consumers observe exactly the dynamic
//!   facts they need (a branch direction, an effective address) without
//!   the engine materializing events it will throw away.
//!
//! The interpreter is kept, bit-for-bit compatible, as the differential
//! oracle: the engine produces identical architectural state, identical
//! [`TraceEvent`] streams (via [`BlockEngine::run_with`]), identical
//! [`VmError`]s, and identical [`RunOutcome`]s, which the test suite
//! asserts on every bundled workload. Set `MIM_BLOCK_ENGINE=off` (or call
//! [`set_block_engine`]) to force downstream consumers back onto the
//! interpreter.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

use crate::error::VmError;
use crate::inst::{Cond, Inst, InstClass, Opcode};
use crate::program::{Program, WORD_BYTES};
use crate::reg::{Reg, NUM_REGS};
use crate::vm::{count_functional_execution, RunOutcome, TraceEvent, Vm};

// ---------------------------------------------------------------------------
// Engine selection (mirrors mim-obs's `MIM_OBS` switch)
// ---------------------------------------------------------------------------

/// Whether downstream consumers (trace recording, profiling) should use
/// the block engine. Defaults to on; `MIM_BLOCK_ENGINE=off` (or `0` /
/// `false`) in the environment, or [`set_block_engine`], forces the
/// interpreter path.
static ENABLED: AtomicBool = AtomicBool::new(true);
static ENABLED_ENV: Once = Once::new();

fn apply_engine_env() {
    ENABLED_ENV.call_once(|| {
        if matches!(
            std::env::var("MIM_BLOCK_ENGINE").as_deref(),
            Ok("off" | "0" | "false")
        ) {
            ENABLED.store(false, Ordering::Relaxed);
        }
    });
}

/// True when the block-compiled engine is the preferred functional
/// backend (the default). Controlled by the `MIM_BLOCK_ENGINE`
/// environment variable (`off`/`0`/`false` disable it) and overridable at
/// runtime with [`set_block_engine`].
///
/// Consumers honoring this switch produce byte-identical results either
/// way — it selects an execution strategy, never semantics.
pub fn block_engine_enabled() -> bool {
    apply_engine_env();
    ENABLED.load(Ordering::Relaxed)
}

/// Enables or disables the block engine at runtime (overrides the
/// `MIM_BLOCK_ENGINE` environment variable).
pub fn set_block_engine(enabled: bool) {
    apply_engine_env();
    ENABLED.store(enabled, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// The shared execution trait
// ---------------------------------------------------------------------------

/// Object-safe interface over the two functional backends — the
/// interpreting [`Vm`] and the block-compiled [`BlockEngine`].
///
/// Consumers that only need "execute this program and show me each
/// retired instruction" (trace recording front-ends, differential tests)
/// are written against this trait, so switching backends is a
/// constructor-site decision, not a rewrite.
pub trait Executor {
    /// Runs until `halt` or until `limit` instructions have retired,
    /// invoking `observer` for every retired instruction — the dynamic
    /// contract of [`Vm::run_with`], regardless of backend.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] raised during execution.
    fn run_events(
        &mut self,
        limit: Option<u64>,
        observer: &mut dyn FnMut(&TraceEvent),
    ) -> Result<RunOutcome, VmError>;

    /// Current value of register `r`.
    fn reg(&self, r: Reg) -> i64;

    /// Sets register `r` (parameterizing kernels, tests).
    fn set_reg(&mut self, r: Reg, value: i64);

    /// Read-only view of data memory, in words.
    fn memory(&self) -> &[i64];

    /// Current program counter.
    fn pc(&self) -> u32;

    /// True once a `halt` instruction has executed.
    fn is_halted(&self) -> bool;

    /// Number of instructions retired so far (excluding `halt`).
    fn retired(&self) -> u64;
}

impl Executor for Vm<'_> {
    fn run_events(
        &mut self,
        limit: Option<u64>,
        observer: &mut dyn FnMut(&TraceEvent),
    ) -> Result<RunOutcome, VmError> {
        self.run_with(limit, |ev| observer(ev))
    }

    fn reg(&self, r: Reg) -> i64 {
        Vm::reg(self, r)
    }

    fn set_reg(&mut self, r: Reg, value: i64) {
        Vm::set_reg(self, r, value);
    }

    fn memory(&self) -> &[i64] {
        Vm::memory(self)
    }

    fn pc(&self) -> u32 {
        Vm::pc(self)
    }

    fn is_halted(&self) -> bool {
        Vm::is_halted(self)
    }

    fn retired(&self) -> u64 {
        Vm::retired(self)
    }
}

// ---------------------------------------------------------------------------
// Hooks
// ---------------------------------------------------------------------------

/// Timing/observation hooks invoked by the block dispatch loop.
///
/// The shape follows r2vm's `PipelineModel`: the compiler-side static
/// facts arrive as pre-built [`TraceEvent`] templates (everything but
/// `eff_addr`/`taken`/a taken branch's `next_pc` is resolved at block
/// compile time), and the dispatch loop adds only the dynamic facts.
/// All methods default to no-ops; because the loop is monomorphized over
/// the hook type, unimplemented hooks compile away entirely — a consumer
/// pays only for the callbacks it uses.
///
/// Per retired instruction the engine fires, in order:
///
/// 1. [`before_instruction`](BlockHooks::before_instruction) — always;
/// 2. [`mem_access`](BlockHooks::mem_access) (loads/stores) or
///    [`cond_branch`](BlockHooks::cond_branch) (conditional branches);
/// 3. exactly one of [`after_instruction`](BlockHooks::after_instruction)
///    (sequential flow) or
///    [`after_taken_branch`](BlockHooks::after_taken_branch) (taken
///    conditional branch or jump).
///
/// [`begin_block`](BlockHooks::begin_block) fires once when dispatch
/// enters a block. A `halt` fires no hooks (it does not retire), and a
/// faulting instruction fires `before_instruction` but none of the
/// after-hooks — its effects never happen.
pub trait BlockHooks {
    /// Dispatch entered `block` (about to execute its first instruction).
    #[inline(always)]
    fn begin_block(&mut self, _block: &Block) {}

    /// An instruction is about to execute. `op` is its static template:
    /// `pc`, `opcode`, `class`, `dst`, `sources`, and the sequential
    /// `next_pc` are valid; `eff_addr`/`taken` are not yet known.
    #[inline(always)]
    fn before_instruction(&mut self, _op: &TraceEvent) {}

    /// A load or store computed effective address `addr` (and did not
    /// fault). Fires between `before_instruction` and
    /// `after_instruction`.
    #[inline(always)]
    fn mem_access(&mut self, _op: &TraceEvent, _addr: u64) {}

    /// A conditional branch resolved to `taken`. Fires between
    /// `before_instruction` and the matching after-hook.
    #[inline(always)]
    fn cond_branch(&mut self, _op: &TraceEvent, _taken: bool) {}

    /// The instruction retired and control continues sequentially (this
    /// includes not-taken conditional branches).
    #[inline(always)]
    fn after_instruction(&mut self, _op: &TraceEvent) {}

    /// The instruction retired as a taken control transfer to
    /// `target` (taken conditional branch, or a jump).
    #[inline(always)]
    fn after_taken_branch(&mut self, _op: &TraceEvent, _target: u32) {}
}

/// The hook set that observes nothing — bare functional execution.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoHooks;

impl BlockHooks for NoHooks {}

// ---------------------------------------------------------------------------
// Compiled form
// ---------------------------------------------------------------------------

/// Pre-decoded operation selector of a [`MicroOp`]. One flat tag —
/// conditions folded in — so dispatch is a single-byte jump table.
///
/// The `XY`/`XYZ` variants are **superops**: the block compiler fuses
/// the hottest consecutive instruction pairs and triples (measured
/// across the bundled kernels) into one dispatch. A fused group still
/// occupies its original body slots — the trailing slots keep their
/// decoded form and are simply skipped over — so events, retirement
/// accounting, and fault PCs stay 1:1 with instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum OpKind {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    Slt,
    SltU,
    Addi,
    Andi,
    Ori,
    Xori,
    Slli,
    Srli,
    Srai,
    Slti,
    Li,
    Mul,
    Div,
    Rem,
    Ld,
    St,
    Nop,
    // Fused ALU/ALU pairs.
    SlliAdd,
    AddAddi,
    AddiAddi,
    MulAdd,
    SlliAddi,
    AddSlli,
    SlliSlli,
    AddiLi,
    SraiAdd,
    MulSrai,
    AddiSlli,
    LiLi,
    AndiSlli,
    AddAdd,
    XorAnd,
    XorXor,
    AndAdd,
    OrAnd,
    XorLi,
    AddAnd,
    SrliOr,
    AndAddi,
    // Fused pairs with a memory op in first or second position.
    AddiLd,
    AddLd,
    LdMul,
    LdSlli,
    LdAdd,
    LdSub,
    LdLd,
    LdAddi,
    StAddi,
    LdXor,
    XorLd,
    AndSt,
    // Fused triples (array-indexing, address-generation, schedule-xor
    // and rotate idioms).
    SlliAddLd,
    SlliSlliAdd,
    AddiLdMul,
    MulAddSlli,
    AddAddiLd,
    SlliAddiLd,
    StAddiAddi,
    SraiAddAddi,
    AddiAddiAddi,
    AndiSlliAdd,
    SlliSrliOr,
    OrAndSt,
    OrAndAdd,
    LdXorLd,
    AddAddAdd,
    XorAndXor,
    OrAndAddi,
}

/// Fusible pair table: `(first, second) -> fused`. Order matters only
/// for readability; the compile pass scans greedily left to right,
/// trying [`fuse_kinds3`] before this table at each position.
fn fuse_kinds(first: OpKind, second: OpKind) -> Option<OpKind> {
    Some(match (first, second) {
        (OpKind::Slli, OpKind::Add) => OpKind::SlliAdd,
        (OpKind::Add, OpKind::Addi) => OpKind::AddAddi,
        (OpKind::Addi, OpKind::Addi) => OpKind::AddiAddi,
        (OpKind::Mul, OpKind::Add) => OpKind::MulAdd,
        (OpKind::Slli, OpKind::Addi) => OpKind::SlliAddi,
        (OpKind::Add, OpKind::Slli) => OpKind::AddSlli,
        (OpKind::Slli, OpKind::Slli) => OpKind::SlliSlli,
        (OpKind::Addi, OpKind::Li) => OpKind::AddiLi,
        (OpKind::Srai, OpKind::Add) => OpKind::SraiAdd,
        (OpKind::Mul, OpKind::Srai) => OpKind::MulSrai,
        (OpKind::Addi, OpKind::Slli) => OpKind::AddiSlli,
        (OpKind::Li, OpKind::Li) => OpKind::LiLi,
        (OpKind::Andi, OpKind::Slli) => OpKind::AndiSlli,
        (OpKind::Add, OpKind::Add) => OpKind::AddAdd,
        (OpKind::Xor, OpKind::And) => OpKind::XorAnd,
        (OpKind::Xor, OpKind::Xor) => OpKind::XorXor,
        (OpKind::And, OpKind::Add) => OpKind::AndAdd,
        (OpKind::Or, OpKind::And) => OpKind::OrAnd,
        (OpKind::Xor, OpKind::Li) => OpKind::XorLi,
        (OpKind::Add, OpKind::And) => OpKind::AddAnd,
        (OpKind::Srli, OpKind::Or) => OpKind::SrliOr,
        (OpKind::And, OpKind::Addi) => OpKind::AndAddi,
        (OpKind::Addi, OpKind::Ld) => OpKind::AddiLd,
        (OpKind::Add, OpKind::Ld) => OpKind::AddLd,
        (OpKind::Ld, OpKind::Mul) => OpKind::LdMul,
        (OpKind::Ld, OpKind::Slli) => OpKind::LdSlli,
        (OpKind::Ld, OpKind::Add) => OpKind::LdAdd,
        (OpKind::Ld, OpKind::Sub) => OpKind::LdSub,
        (OpKind::Ld, OpKind::Ld) => OpKind::LdLd,
        (OpKind::Ld, OpKind::Addi) => OpKind::LdAddi,
        (OpKind::St, OpKind::Addi) => OpKind::StAddi,
        (OpKind::Ld, OpKind::Xor) => OpKind::LdXor,
        (OpKind::Xor, OpKind::Ld) => OpKind::XorLd,
        (OpKind::And, OpKind::St) => OpKind::AndSt,
        _ => return None,
    })
}

/// Fusible triple table, tried before pairs (longest match wins).
fn fuse_kinds3(first: OpKind, second: OpKind, third: OpKind) -> Option<OpKind> {
    Some(match (first, second, third) {
        (OpKind::Slli, OpKind::Add, OpKind::Ld) => OpKind::SlliAddLd,
        (OpKind::Slli, OpKind::Slli, OpKind::Add) => OpKind::SlliSlliAdd,
        (OpKind::Addi, OpKind::Ld, OpKind::Mul) => OpKind::AddiLdMul,
        (OpKind::Mul, OpKind::Add, OpKind::Slli) => OpKind::MulAddSlli,
        (OpKind::Add, OpKind::Addi, OpKind::Ld) => OpKind::AddAddiLd,
        (OpKind::Slli, OpKind::Addi, OpKind::Ld) => OpKind::SlliAddiLd,
        (OpKind::St, OpKind::Addi, OpKind::Addi) => OpKind::StAddiAddi,
        (OpKind::Srai, OpKind::Add, OpKind::Addi) => OpKind::SraiAddAddi,
        (OpKind::Addi, OpKind::Addi, OpKind::Addi) => OpKind::AddiAddiAddi,
        (OpKind::Andi, OpKind::Slli, OpKind::Add) => OpKind::AndiSlliAdd,
        (OpKind::Slli, OpKind::Srli, OpKind::Or) => OpKind::SlliSrliOr,
        (OpKind::Or, OpKind::And, OpKind::St) => OpKind::OrAndSt,
        (OpKind::Or, OpKind::And, OpKind::Add) => OpKind::OrAndAdd,
        (OpKind::Ld, OpKind::Xor, OpKind::Ld) => OpKind::LdXorLd,
        (OpKind::Add, OpKind::Add, OpKind::Add) => OpKind::AddAddAdd,
        (OpKind::Xor, OpKind::And, OpKind::Xor) => OpKind::XorAndXor,
        (OpKind::Or, OpKind::And, OpKind::Addi) => OpKind::OrAndAddi,
        _ => return None,
    })
}

/// One pre-decoded straight-line instruction: operand register *indices*
/// and the immediate, resolved once at compile time. 16 bytes.
#[derive(Debug, Clone, Copy)]
struct MicroOp {
    kind: OpKind,
    dst: u8,
    src1: u8,
    src2: u8,
    imm: i64,
}

/// How a compiled block ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Terminator {
    /// Conditional branch: taken to `target` (an absolute instruction
    /// index), else fall through.
    CondBr {
        cond: Cond,
        src1: u8,
        src2: u8,
        target: u32,
    },
    /// Unconditional direct jump to `target`.
    Jump { target: u32 },
    /// The machine halts (the `halt` itself does not retire).
    Halt,
    /// No control flow: the block was split at the length cap or at the
    /// end of the program text; execution continues at the next PC.
    FallThrough,
}

/// Straight-line blocks are split at this many instructions so compile
/// latency and limit-handling stay bounded.
const MAX_BLOCK_OPS: usize = 128;

/// Bitmask proving register indices in-bounds to the optimizer.
/// `Reg::index()` is always `< NUM_REGS`, so masking is the identity.
const REG_MASK: usize = NUM_REGS - 1;
const _: () = assert!(NUM_REGS.is_power_of_two());

/// One compiled basic block: the decoded straight-line body, its
/// terminator, and a static [`TraceEvent`] template per instruction (the
/// compile-time half of each event — hooks receive these, so no consumer
/// ever re-derives operand shapes per dynamic instruction).
#[derive(Debug, Clone)]
pub struct Block {
    entry_pc: u32,
    body: Vec<MicroOp>,
    term: Terminator,
    /// PC of the terminator instruction (== `entry_pc + body.len()`);
    /// for `FallThrough` this is the PC execution continues at.
    term_pc: u32,
    /// Static event templates: one per body op, plus one for a
    /// `CondBr`/`Jump` terminator.
    events: Vec<TraceEvent>,
    /// Instructions retired by a full (uninterrupted) execution of the
    /// block.
    retire_len: u64,
    /// Minimum remaining instruction budget for the no-limit-checks fast
    /// path (`retire_len`, plus one for a `Halt` terminator so the halt
    /// "step" itself stays within the caller's limit, exactly as the
    /// interpreter's per-step limit check behaves).
    fast_need: u64,
}

impl Block {
    /// Entry PC of the block (its cache key).
    pub fn entry_pc(&self) -> u32 {
        self.entry_pc
    }

    /// Number of instructions a full execution of this block retires.
    pub fn instructions(&self) -> u64 {
        self.retire_len
    }

    /// Static event templates of the block's instructions, in program
    /// order (`eff_addr`/`taken` unset; a taken terminator additionally
    /// overrides `next_pc` at run time).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }
}

/// Decodes basic blocks of an immutable [`Program`] into their dense
/// compiled form ([`Block`]).
///
/// The compiler performs, once per static block, all the work the
/// interpreter repeats per dynamic instruction: operand-shape resolution
/// (`writes()`/`sources()`), class assignment, branch-target decoding,
/// and bounds-safe fetching.
#[derive(Debug, Clone, Copy)]
pub struct BlockCompiler<'p> {
    program: &'p Program,
}

impl<'p> BlockCompiler<'p> {
    /// A compiler over `program`.
    pub fn new(program: &'p Program) -> BlockCompiler<'p> {
        BlockCompiler { program }
    }

    /// Compiles the basic block entered at `entry` (which must be inside
    /// the program text): instructions up to and including the first
    /// control-flow instruction or `halt`, split at [`MAX_BLOCK_OPS`].
    ///
    /// # Panics
    ///
    /// Panics if `entry` is outside the program text (callers check:
    /// entering text from outside is the interpreter's
    /// [`VmError::PcOutOfRange`], raised by the dispatch loop before
    /// compilation).
    pub fn compile(&self, entry: u32) -> Block {
        let started = mim_obs::clock();
        assert!(
            (entry as usize) < self.program.len(),
            "block entry {entry} outside program text"
        );
        let mut body = Vec::new();
        let mut events = Vec::new();
        let mut term = Terminator::FallThrough;
        let mut pc = entry;
        while let Some(inst) = self.program.fetch(pc) {
            match inst.opcode {
                Opcode::Br(cond) => {
                    term = Terminator::CondBr {
                        cond,
                        src1: inst.src1.index() as u8,
                        src2: inst.src2.index() as u8,
                        target: inst.imm as u32,
                    };
                    events.push(event_template(inst, pc));
                    break;
                }
                Opcode::J => {
                    term = Terminator::Jump {
                        target: inst.imm as u32,
                    };
                    events.push(event_template(inst, pc));
                    break;
                }
                Opcode::Halt => {
                    term = Terminator::Halt;
                    break;
                }
                _ => {
                    body.push(micro_op(inst));
                    events.push(event_template(inst, pc));
                    if body.len() >= MAX_BLOCK_OPS {
                        break;
                    }
                    pc += 1;
                }
            }
        }
        // Superop fusion: rewrite the first slot of each fusible group to
        // its fused kind, longest match first. The trailing slots stay as
        // decoded (the fused arm reads their operands and the dispatch
        // loop skips over them), so the slot/instruction correspondence
        // is untouched.
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() {
                if let Some(fused) = fuse_kinds3(body[i].kind, body[i + 1].kind, body[i + 2].kind) {
                    body[i].kind = fused;
                    i += 3;
                    continue;
                }
            }
            if i + 1 < body.len() {
                if let Some(fused) = fuse_kinds(body[i].kind, body[i + 1].kind) {
                    body[i].kind = fused;
                    i += 2;
                    continue;
                }
            }
            i += 1;
        }

        let term_pc = entry + body.len() as u32;
        let retire_len = body.len() as u64
            + match term {
                Terminator::CondBr { .. } | Terminator::Jump { .. } => 1,
                Terminator::Halt | Terminator::FallThrough => 0,
            };
        let fast_need = match term {
            Terminator::Halt => retire_len + 1,
            _ => retire_len,
        };
        let block = Block {
            entry_pc: entry,
            body,
            term,
            term_pc,
            events,
            retire_len,
            fast_need,
        };
        let obs = mim_obs::global();
        obs.counter("block.compiled").inc();
        obs.histogram("block.compile_ns").observe_since(started);
        block
    }
}

fn micro_op(inst: &Inst) -> MicroOp {
    let kind = match inst.opcode {
        Opcode::Add => OpKind::Add,
        Opcode::Sub => OpKind::Sub,
        Opcode::And => OpKind::And,
        Opcode::Or => OpKind::Or,
        Opcode::Xor => OpKind::Xor,
        Opcode::Sll => OpKind::Sll,
        Opcode::Srl => OpKind::Srl,
        Opcode::Sra => OpKind::Sra,
        Opcode::Slt => OpKind::Slt,
        Opcode::SltU => OpKind::SltU,
        Opcode::Addi => OpKind::Addi,
        Opcode::Andi => OpKind::Andi,
        Opcode::Ori => OpKind::Ori,
        Opcode::Xori => OpKind::Xori,
        Opcode::Slli => OpKind::Slli,
        Opcode::Srli => OpKind::Srli,
        Opcode::Srai => OpKind::Srai,
        Opcode::Slti => OpKind::Slti,
        Opcode::Li => OpKind::Li,
        Opcode::Mul => OpKind::Mul,
        Opcode::Div => OpKind::Div,
        Opcode::Rem => OpKind::Rem,
        Opcode::Ld => OpKind::Ld,
        Opcode::St => OpKind::St,
        Opcode::Nop => OpKind::Nop,
        Opcode::Br(_) | Opcode::J | Opcode::Halt => {
            unreachable!("control flow is a terminator, not a body op")
        }
    };
    MicroOp {
        kind,
        dst: inst.dst.index() as u8,
        src1: inst.src1.index() as u8,
        src2: inst.src2.index() as u8,
        imm: inst.imm,
    }
}

/// The compile-time half of a [`TraceEvent`]: everything the interpreter
/// recomputes per dynamic instruction. `eff_addr` and `taken` stay unset
/// (`None`) except for jumps, whose direction and target are static.
fn event_template(inst: &Inst, pc: u32) -> TraceEvent {
    let (taken, next_pc) = match inst.opcode {
        Opcode::J => (Some(true), inst.imm as u32),
        _ => (None, pc + 1),
    };
    TraceEvent {
        pc,
        opcode: inst.opcode,
        class: inst.class(),
        dst: inst.writes(),
        sources: inst.sources(),
        eff_addr: None,
        taken,
        next_pc,
    }
}

// ---------------------------------------------------------------------------
// Block cache
// ---------------------------------------------------------------------------

/// Unresolved successor-link marker.
const NO_SUCC: u32 = u32::MAX;

/// Compiled blocks of one program, keyed by entry PC.
///
/// Programs are immutable, so the cache is append-only and never
/// invalidates. Each block also carries two inline successor links
/// (taken / fall-through), filled in by the dispatch loop the first time
/// an edge is followed — steady-state block chaining is two array reads,
/// no hashing.
#[derive(Debug, Default, Clone)]
pub struct BlockCache {
    by_pc: HashMap<u32, u32>,
    blocks: Vec<Block>,
    /// `[taken, fallthrough]` successor block indices per block.
    succs: Vec<[u32; 2]>,
    /// Block entries resolved from an already-compiled block (by inline
    /// link or map hit) during dispatch, accumulated locally and flushed
    /// to the `block.cache_hits` counter at the end of each run.
    hits: u64,
}

impl BlockCache {
    /// An empty cache.
    pub fn new() -> BlockCache {
        BlockCache::default()
    }

    /// Number of distinct basic blocks compiled so far.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if nothing has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The block index for `pc`, compiling on first visit.
    ///
    /// # Errors
    ///
    /// [`VmError::PcOutOfRange`] if `pc` is outside the program text —
    /// the same fault, with the same payload, the interpreter raises when
    /// stepping there.
    fn lookup_or_compile(&mut self, program: &Program, pc: u32) -> Result<u32, VmError> {
        if let Some(&bid) = self.by_pc.get(&pc) {
            self.hits += 1;
            return Ok(bid);
        }
        if pc as usize >= program.len() {
            return Err(VmError::PcOutOfRange {
                pc,
                text_len: program.len() as u32,
            });
        }
        let block = BlockCompiler::new(program).compile(pc);
        let bid = self.blocks.len() as u32;
        self.blocks.push(block);
        self.succs.push([NO_SUCC, NO_SUCC]);
        self.by_pc.insert(pc, bid);
        Ok(bid)
    }

    /// Flushes locally accumulated cache-hit counts into the global
    /// `block.cache_hits` counter (one atomic add per run, not per
    /// block).
    fn flush_hits(&mut self) {
        if self.hits > 0 {
            mim_obs::global().counter("block.cache_hits").add(self.hits);
            self.hits = 0;
        }
    }
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

/// Block-compiled functional execution engine: interprets a program's
/// architectural semantics exactly like [`Vm`], but through the
/// [`BlockCache`] and a hook-driven dispatch loop instead of a per-step
/// decode.
///
/// # Example
///
/// ```
/// use mim_isa::{BlockEngine, ProgramBuilder, Reg, Vm};
///
/// # fn main() -> Result<(), mim_isa::VmError> {
/// let mut b = ProgramBuilder::new();
/// b.li(Reg::R1, 6);
/// b.li(Reg::R2, 7);
/// b.mul(Reg::R3, Reg::R1, Reg::R2);
/// b.halt();
/// let p = b.build();
///
/// let mut engine = BlockEngine::new(&p);
/// let outcome = engine.run(None)?;
/// assert!(outcome.halted());
/// assert_eq!(engine.reg(Reg::R3), 42);
///
/// // The interpreter is the differential oracle: identical state.
/// let mut vm = Vm::new(&p);
/// vm.run(None)?;
/// assert_eq!(vm.reg(Reg::R3), engine.reg(Reg::R3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BlockEngine<'p> {
    program: &'p Program,
    cache: BlockCache,
    regs: [i64; NUM_REGS],
    mem: Vec<i64>,
    pc: u32,
    halted: bool,
    retired: u64,
}

impl<'p> BlockEngine<'p> {
    /// An engine with zeroed registers, the program's initial data image,
    /// and an empty block cache (blocks compile lazily on first
    /// execution).
    pub fn new(program: &'p Program) -> BlockEngine<'p> {
        BlockEngine {
            program,
            cache: BlockCache::new(),
            regs: [0; NUM_REGS],
            mem: program.data().to_vec(),
            pc: 0,
            halted: false,
            retired: 0,
        }
    }

    /// Current value of register `r`.
    #[inline]
    pub fn reg(&self, r: Reg) -> i64 {
        self.regs[r.index()]
    }

    /// Sets register `r`.
    #[inline]
    pub fn set_reg(&mut self, r: Reg, value: i64) {
        self.regs[r.index()] = value;
    }

    /// Read-only view of data memory, in words.
    pub fn memory(&self) -> &[i64] {
        &self.mem
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// True once a `halt` instruction has executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions retired so far (excluding `halt`).
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// The engine's block cache (compiled-block count, for tests and
    /// instrumentation).
    pub fn cache(&self) -> &BlockCache {
        &self.cache
    }

    /// Runs until `halt` or until `limit` instructions have retired,
    /// with no observation — the cheapest possible functional pass.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] raised during execution.
    pub fn run(&mut self, limit: Option<u64>) -> Result<RunOutcome, VmError> {
        self.run_hooks(limit, &mut NoHooks)
    }

    /// Runs like [`run`](BlockEngine::run) while invoking `observer` for
    /// every retired instruction, reconstructing the exact
    /// [`TraceEvent`] stream the interpreter would emit (dynamic fields
    /// patched into the block's static templates).
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] raised during execution.
    pub fn run_with<F>(
        &mut self,
        limit: Option<u64>,
        mut observer: F,
    ) -> Result<RunOutcome, VmError>
    where
        F: FnMut(&TraceEvent),
    {
        let mut hooks = EventHooks {
            observer: &mut observer,
            pending: IDLE_EVENT,
        };
        self.run_hooks(limit, &mut hooks)
    }

    /// Runs the program on the compiled-block dispatch loop, firing
    /// `hooks` as described on [`BlockHooks`]. This is the engine's
    /// primary entry point: trace recording and sweep profiling are hook
    /// sets.
    ///
    /// Counts as one functional execution pass
    /// ([`functional_executions`](crate::functional_executions)), exactly
    /// like [`Vm::run_with`].
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] raised during execution; on error the
    /// engine's state (registers, memory, `pc`, retired count) is
    /// identical to the interpreter's after the same fault.
    pub fn run_hooks<H: BlockHooks>(
        &mut self,
        limit: Option<u64>,
        hooks: &mut H,
    ) -> Result<RunOutcome, VmError> {
        count_functional_execution();
        let result = self.dispatch(limit.unwrap_or(u64::MAX), hooks);
        self.cache.flush_hits();
        result
    }

    /// The dispatch loop proper. Registers are staged in a local array
    /// (flushed on every exit path) so the optimizer can keep them out of
    /// memory; `retired`/`pc` advance in block-sized strides on the fast
    /// path.
    fn dispatch<H: BlockHooks>(
        &mut self,
        limit: u64,
        hooks: &mut H,
    ) -> Result<RunOutcome, VmError> {
        let program = self.program;
        let mut regs = self.regs;
        let mut pc = self.pc;
        let mut retired = self.retired;
        let mut remaining = limit;
        let mut hits: u64 = 0;
        // The inline-cached successor of the edge the previous block
        // exited through, plus that edge's home slot for filling in.
        let mut hint: u32 = NO_SUCC;
        let mut link: Option<(u32, usize)> = None;

        macro_rules! flush {
            () => {
                self.regs = regs;
                self.pc = pc;
                self.retired = retired;
                self.cache.hits += hits;
            };
        }

        // The interpreter's run loop checks the budget before looking at
        // machine state, so an exhausted budget wins over a halted VM.
        if remaining == 0 {
            return Ok(RunOutcome::LimitReached {
                instructions: retired,
            });
        }
        if self.halted {
            return Ok(RunOutcome::Halted {
                instructions: retired,
            });
        }

        // ALU evaluation by (pre-fusion) op kind, shared between the
        // halves of fused superop pairs.
        macro_rules! alu {
            (Add, $a:expr, $b:expr, $imm:expr) => {
                $a.wrapping_add($b)
            };
            (Sub, $a:expr, $b:expr, $imm:expr) => {
                $a.wrapping_sub($b)
            };
            (Addi, $a:expr, $b:expr, $imm:expr) => {
                $a.wrapping_add($imm)
            };
            (Slli, $a:expr, $b:expr, $imm:expr) => {
                $a.wrapping_shl(($imm & 63) as u32)
            };
            (Srai, $a:expr, $b:expr, $imm:expr) => {
                $a.wrapping_shr(($imm & 63) as u32)
            };
            (Andi, $a:expr, $b:expr, $imm:expr) => {
                $a & $imm
            };
            (And, $a:expr, $b:expr, $imm:expr) => {
                $a & $b
            };
            (Or, $a:expr, $b:expr, $imm:expr) => {
                $a | $b
            };
            (Xor, $a:expr, $b:expr, $imm:expr) => {
                $a ^ $b
            };
            (Srli, $a:expr, $b:expr, $imm:expr) => {
                (($a as u64).wrapping_shr(($imm & 63) as u32)) as i64
            };
            (Li, $a:expr, $b:expr, $imm:expr) => {
                $imm
            };
            (Mul, $a:expr, $b:expr, $imm:expr) => {
                $a.wrapping_mul($b)
            };
        }
        loop {
            if remaining == 0 {
                flush!();
                return Ok(RunOutcome::LimitReached {
                    instructions: retired,
                });
            }
            let bid = if hint != NO_SUCC {
                hits += 1;
                hint
            } else {
                let bid = match self.cache.lookup_or_compile(program, pc) {
                    Ok(bid) => bid,
                    Err(e) => {
                        flush!();
                        return Err(e);
                    }
                };
                if let Some((from, slot)) = link {
                    self.cache.succs[from as usize][slot] = bid;
                }
                bid
            };

            let block = &self.cache.blocks[bid as usize];
            if remaining < block.fast_need {
                // Not enough budget to run this block whole: flush and
                // finish the window one instruction at a time off the
                // program text. Bounded cold tail — fewer than
                // `MAX_BLOCK_OPS + 1` steps, at most once per run.
                flush!();
                return self.finish_careful(remaining, hooks);
            }
            hooks.begin_block(block);
            let body_len = block.body.len();

            // Body: straight-line pre-decoded ops. The budget admits the
            // whole block, so the loop carries no limit bookkeeping;
            // indexing equal-length slices lets the optimizer drop the
            // bounds checks too.
            let body = &block.body[..];
            let evs = &block.events[..body_len];
            let mem = &mut self.mem;
            let mut idx = 0;
            while idx < body_len {
                let op = &body[idx];
                let ev = &evs[idx];
                hooks.before_instruction(ev);
                let a = regs[op.src1 as usize & REG_MASK];
                let b = regs[op.src2 as usize & REG_MASK];
                let imm = op.imm;
                // Fused-group helpers. Defined here (not at the top of
                // `dispatch`) so macro hygiene lets them reach the loop
                // locals; `macro_rules!` in statement position is purely
                // syntactic and costs nothing per iteration. Each helper
                // executes the op in body slot `idx + $slot` with its full
                // hook sequence; slot 0's `before_instruction` was already
                // fired by the loop header, and slot 0's operand re-reads
                // fold into the header's via common-subexpression
                // elimination.
                macro_rules! h_alu {
                    ($k:ident, $slot:expr) => {{
                        let opn = &body[idx + $slot];
                        let evn = &evs[idx + $slot];
                        if $slot != 0 {
                            hooks.before_instruction(evn);
                        }
                        let an = regs[opn.src1 as usize & REG_MASK];
                        let bn = regs[opn.src2 as usize & REG_MASK];
                        let _ = (an, bn);
                        regs[opn.dst as usize & REG_MASK] = alu!($k, an, bn, opn.imm);
                        hooks.after_instruction(evn);
                    }};
                }
                macro_rules! h_ld {
                    ($slot:expr) => {{
                        let opn = &body[idx + $slot];
                        let evn = &evs[idx + $slot];
                        if $slot != 0 {
                            hooks.before_instruction(evn);
                        }
                        let an = regs[opn.src1 as usize & REG_MASK];
                        let addr = an.wrapping_add(opn.imm) as u64;
                        match checked_word(mem, addr) {
                            Ok(word) => {
                                hooks.mem_access(evn, addr);
                                regs[opn.dst as usize & REG_MASK] = mem[word];
                            }
                            Err(e) => {
                                retired += (idx + $slot) as u64;
                                pc = block.entry_pc + (idx + $slot) as u32;
                                flush!();
                                return Err(e.at(pc));
                            }
                        }
                        hooks.after_instruction(evn);
                    }};
                }
                macro_rules! h_st {
                    ($slot:expr) => {{
                        let opn = &body[idx + $slot];
                        let evn = &evs[idx + $slot];
                        if $slot != 0 {
                            hooks.before_instruction(evn);
                        }
                        // src1 = value, src2 = base.
                        let an = regs[opn.src1 as usize & REG_MASK];
                        let bn = regs[opn.src2 as usize & REG_MASK];
                        let addr = bn.wrapping_add(opn.imm) as u64;
                        match checked_word(mem, addr) {
                            Ok(word) => {
                                hooks.mem_access(evn, addr);
                                mem[word] = an;
                            }
                            Err(e) => {
                                retired += (idx + $slot) as u64;
                                pc = block.entry_pc + (idx + $slot) as u32;
                                flush!();
                                return Err(e.at(pc));
                            }
                        }
                        hooks.after_instruction(evn);
                    }};
                }
                macro_rules! skip {
                    ($n:expr) => {{
                        idx += $n;
                        continue;
                    }};
                }
                let value = match op.kind {
                    OpKind::Add => a.wrapping_add(b),
                    OpKind::Sub => a.wrapping_sub(b),
                    OpKind::And => a & b,
                    OpKind::Or => a | b,
                    OpKind::Xor => a ^ b,
                    OpKind::Sll => a.wrapping_shl((b & 63) as u32),
                    OpKind::Srl => ((a as u64).wrapping_shr((b & 63) as u32)) as i64,
                    OpKind::Sra => a.wrapping_shr((b & 63) as u32),
                    OpKind::Slt => i64::from(a < b),
                    OpKind::SltU => i64::from((a as u64) < (b as u64)),
                    OpKind::Addi => a.wrapping_add(imm),
                    OpKind::Andi => a & imm,
                    OpKind::Ori => a | imm,
                    OpKind::Xori => a ^ imm,
                    OpKind::Slli => a.wrapping_shl((imm & 63) as u32),
                    OpKind::Srli => ((a as u64).wrapping_shr((imm & 63) as u32)) as i64,
                    OpKind::Srai => a.wrapping_shr((imm & 63) as u32),
                    OpKind::Slti => i64::from(a < imm),
                    OpKind::Li => imm,
                    OpKind::Mul => a.wrapping_mul(b),
                    OpKind::Div | OpKind::Rem => {
                        if b == 0 {
                            retired += idx as u64;
                            pc = block.entry_pc + idx as u32;
                            flush!();
                            return Err(VmError::DivideByZero { pc });
                        }
                        if op.kind == OpKind::Div {
                            a.wrapping_div(b)
                        } else {
                            a.wrapping_rem(b)
                        }
                    }
                    OpKind::Ld => {
                        let addr = a.wrapping_add(imm) as u64;
                        match checked_word(mem, addr) {
                            Ok(word) => {
                                hooks.mem_access(ev, addr);
                                mem[word]
                            }
                            Err(e) => {
                                retired += idx as u64;
                                pc = block.entry_pc + idx as u32;
                                flush!();
                                return Err(e.at(pc));
                            }
                        }
                    }
                    OpKind::St => {
                        // src1 = value, src2 = base.
                        let addr = b.wrapping_add(imm) as u64;
                        match checked_word(mem, addr) {
                            Ok(word) => {
                                hooks.mem_access(ev, addr);
                                mem[word] = a;
                            }
                            Err(e) => {
                                retired += idx as u64;
                                pc = block.entry_pc + idx as u32;
                                flush!();
                                return Err(e.at(pc));
                            }
                        }
                        hooks.after_instruction(ev);
                        idx += 1;
                        continue;
                    }
                    OpKind::Nop => {
                        hooks.after_instruction(ev);
                        idx += 1;
                        continue;
                    }
                    // Fused superops: one dispatch executes two or three
                    // architectural instructions (see `fuse_kinds` /
                    // `fuse_kinds3`).
                    OpKind::SlliAdd => {
                        h_alu!(Slli, 0);
                        h_alu!(Add, 1);
                        skip!(2)
                    }
                    OpKind::AddAddi => {
                        h_alu!(Add, 0);
                        h_alu!(Addi, 1);
                        skip!(2)
                    }
                    OpKind::AddiAddi => {
                        h_alu!(Addi, 0);
                        h_alu!(Addi, 1);
                        skip!(2)
                    }
                    OpKind::MulAdd => {
                        h_alu!(Mul, 0);
                        h_alu!(Add, 1);
                        skip!(2)
                    }
                    OpKind::SlliAddi => {
                        h_alu!(Slli, 0);
                        h_alu!(Addi, 1);
                        skip!(2)
                    }
                    OpKind::AddSlli => {
                        h_alu!(Add, 0);
                        h_alu!(Slli, 1);
                        skip!(2)
                    }
                    OpKind::SlliSlli => {
                        h_alu!(Slli, 0);
                        h_alu!(Slli, 1);
                        skip!(2)
                    }
                    OpKind::AddiLi => {
                        h_alu!(Addi, 0);
                        h_alu!(Li, 1);
                        skip!(2)
                    }
                    OpKind::SraiAdd => {
                        h_alu!(Srai, 0);
                        h_alu!(Add, 1);
                        skip!(2)
                    }
                    OpKind::MulSrai => {
                        h_alu!(Mul, 0);
                        h_alu!(Srai, 1);
                        skip!(2)
                    }
                    OpKind::AddiSlli => {
                        h_alu!(Addi, 0);
                        h_alu!(Slli, 1);
                        skip!(2)
                    }
                    OpKind::LiLi => {
                        h_alu!(Li, 0);
                        h_alu!(Li, 1);
                        skip!(2)
                    }
                    OpKind::AndiSlli => {
                        h_alu!(Andi, 0);
                        h_alu!(Slli, 1);
                        skip!(2)
                    }
                    OpKind::AddAdd => {
                        h_alu!(Add, 0);
                        h_alu!(Add, 1);
                        skip!(2)
                    }
                    OpKind::XorAnd => {
                        h_alu!(Xor, 0);
                        h_alu!(And, 1);
                        skip!(2)
                    }
                    OpKind::XorXor => {
                        h_alu!(Xor, 0);
                        h_alu!(Xor, 1);
                        skip!(2)
                    }
                    OpKind::AndAdd => {
                        h_alu!(And, 0);
                        h_alu!(Add, 1);
                        skip!(2)
                    }
                    OpKind::OrAnd => {
                        h_alu!(Or, 0);
                        h_alu!(And, 1);
                        skip!(2)
                    }
                    OpKind::XorLi => {
                        h_alu!(Xor, 0);
                        h_alu!(Li, 1);
                        skip!(2)
                    }
                    OpKind::AddAnd => {
                        h_alu!(Add, 0);
                        h_alu!(And, 1);
                        skip!(2)
                    }
                    OpKind::SrliOr => {
                        h_alu!(Srli, 0);
                        h_alu!(Or, 1);
                        skip!(2)
                    }
                    OpKind::AndAddi => {
                        h_alu!(And, 0);
                        h_alu!(Addi, 1);
                        skip!(2)
                    }
                    OpKind::AddiLd => {
                        h_alu!(Addi, 0);
                        h_ld!(1);
                        skip!(2)
                    }
                    OpKind::AddLd => {
                        h_alu!(Add, 0);
                        h_ld!(1);
                        skip!(2)
                    }
                    OpKind::LdMul => {
                        h_ld!(0);
                        h_alu!(Mul, 1);
                        skip!(2)
                    }
                    OpKind::LdSlli => {
                        h_ld!(0);
                        h_alu!(Slli, 1);
                        skip!(2)
                    }
                    OpKind::LdAdd => {
                        h_ld!(0);
                        h_alu!(Add, 1);
                        skip!(2)
                    }
                    OpKind::LdSub => {
                        h_ld!(0);
                        h_alu!(Sub, 1);
                        skip!(2)
                    }
                    OpKind::LdLd => {
                        h_ld!(0);
                        h_ld!(1);
                        skip!(2)
                    }
                    OpKind::LdAddi => {
                        h_ld!(0);
                        h_alu!(Addi, 1);
                        skip!(2)
                    }
                    OpKind::StAddi => {
                        h_st!(0);
                        h_alu!(Addi, 1);
                        skip!(2)
                    }
                    OpKind::LdXor => {
                        h_ld!(0);
                        h_alu!(Xor, 1);
                        skip!(2)
                    }
                    OpKind::XorLd => {
                        h_alu!(Xor, 0);
                        h_ld!(1);
                        skip!(2)
                    }
                    OpKind::AndSt => {
                        h_alu!(And, 0);
                        h_st!(1);
                        skip!(2)
                    }
                    OpKind::SlliAddLd => {
                        h_alu!(Slli, 0);
                        h_alu!(Add, 1);
                        h_ld!(2);
                        skip!(3)
                    }
                    OpKind::SlliSlliAdd => {
                        h_alu!(Slli, 0);
                        h_alu!(Slli, 1);
                        h_alu!(Add, 2);
                        skip!(3)
                    }
                    OpKind::AddiLdMul => {
                        h_alu!(Addi, 0);
                        h_ld!(1);
                        h_alu!(Mul, 2);
                        skip!(3)
                    }
                    OpKind::MulAddSlli => {
                        h_alu!(Mul, 0);
                        h_alu!(Add, 1);
                        h_alu!(Slli, 2);
                        skip!(3)
                    }
                    OpKind::AddAddiLd => {
                        h_alu!(Add, 0);
                        h_alu!(Addi, 1);
                        h_ld!(2);
                        skip!(3)
                    }
                    OpKind::SlliAddiLd => {
                        h_alu!(Slli, 0);
                        h_alu!(Addi, 1);
                        h_ld!(2);
                        skip!(3)
                    }
                    OpKind::StAddiAddi => {
                        h_st!(0);
                        h_alu!(Addi, 1);
                        h_alu!(Addi, 2);
                        skip!(3)
                    }
                    OpKind::SraiAddAddi => {
                        h_alu!(Srai, 0);
                        h_alu!(Add, 1);
                        h_alu!(Addi, 2);
                        skip!(3)
                    }
                    OpKind::AddiAddiAddi => {
                        h_alu!(Addi, 0);
                        h_alu!(Addi, 1);
                        h_alu!(Addi, 2);
                        skip!(3)
                    }
                    OpKind::AndiSlliAdd => {
                        h_alu!(Andi, 0);
                        h_alu!(Slli, 1);
                        h_alu!(Add, 2);
                        skip!(3)
                    }
                    OpKind::SlliSrliOr => {
                        h_alu!(Slli, 0);
                        h_alu!(Srli, 1);
                        h_alu!(Or, 2);
                        skip!(3)
                    }
                    OpKind::OrAndSt => {
                        h_alu!(Or, 0);
                        h_alu!(And, 1);
                        h_st!(2);
                        skip!(3)
                    }
                    OpKind::OrAndAdd => {
                        h_alu!(Or, 0);
                        h_alu!(And, 1);
                        h_alu!(Add, 2);
                        skip!(3)
                    }
                    OpKind::LdXorLd => {
                        h_ld!(0);
                        h_alu!(Xor, 1);
                        h_ld!(2);
                        skip!(3)
                    }
                    OpKind::AddAddAdd => {
                        h_alu!(Add, 0);
                        h_alu!(Add, 1);
                        h_alu!(Add, 2);
                        skip!(3)
                    }
                    OpKind::XorAndXor => {
                        h_alu!(Xor, 0);
                        h_alu!(And, 1);
                        h_alu!(Xor, 2);
                        skip!(3)
                    }
                    OpKind::OrAndAddi => {
                        h_alu!(Or, 0);
                        h_alu!(And, 1);
                        h_alu!(Addi, 2);
                        skip!(3)
                    }
                };
                regs[op.dst as usize & REG_MASK] = value;
                hooks.after_instruction(ev);
                idx += 1;
            }

            // Terminator. The fast-path guarantee `remaining >=
            // fast_need` means the whole block — branch included — fits
            // the budget, so no limit checks are needed here. Halt
            // blocks reserve one extra budget slot (`retire_len + 1`),
            // so an exactly-exhausted budget takes the careful path
            // above and exits LimitReached without executing the halt,
            // like the interpreter's check-then-step loop.
            match block.term {
                Terminator::CondBr {
                    cond,
                    src1,
                    src2,
                    target,
                } => {
                    let ev = &block.events[body_len];
                    hooks.before_instruction(ev);
                    let taken = cond.eval(
                        regs[src1 as usize & REG_MASK],
                        regs[src2 as usize & REG_MASK],
                    );
                    hooks.cond_branch(ev, taken);
                    retired += block.retire_len;
                    remaining -= block.retire_len;
                    let (next, slot) = if taken {
                        hooks.after_taken_branch(ev, target);
                        (target, 0)
                    } else {
                        hooks.after_instruction(ev);
                        (block.term_pc + 1, 1)
                    };
                    pc = next;
                    hint = self.cache.succs[bid as usize][slot];
                    link = Some((bid, slot));
                }
                Terminator::Jump { target } => {
                    let ev = &block.events[body_len];
                    hooks.before_instruction(ev);
                    retired += block.retire_len;
                    remaining -= block.retire_len;
                    hooks.after_taken_branch(ev, target);
                    pc = target;
                    hint = self.cache.succs[bid as usize][0];
                    link = Some((bid, 0));
                }
                Terminator::Halt => {
                    retired += block.retire_len;
                    pc = block.term_pc;
                    self.halted = true;
                    flush!();
                    return Ok(RunOutcome::Halted {
                        instructions: retired,
                    });
                }
                Terminator::FallThrough => {
                    retired += block.retire_len;
                    remaining -= block.retire_len;
                    pc = block.term_pc;
                    hint = self.cache.succs[bid as usize][1];
                    link = Some((bid, 1));
                }
            }
        }
    }

    /// Cold tail of [`dispatch`](Self::dispatch): fewer budget steps
    /// remain than the next block needs to run whole, so the window is
    /// finished one instruction at a time straight off the program text,
    /// with [`Vm::step`]-identical semantics and the same per-instruction
    /// hook protocol (no `begin_block` — no block is entered). Bounded:
    /// fewer than [`MAX_BLOCK_OPS`]` + 1` steps, at most once per run.
    #[cold]
    fn finish_careful<H: BlockHooks>(
        &mut self,
        mut remaining: u64,
        hooks: &mut H,
    ) -> Result<RunOutcome, VmError> {
        while remaining > 0 {
            let pc = self.pc;
            let Some(inst) = self.program.fetch(pc) else {
                return Err(VmError::PcOutOfRange {
                    pc,
                    text_len: self.program.len() as u32,
                });
            };
            let inst = *inst;
            if inst.opcode == Opcode::Halt {
                // Like the interpreter, halt fires no hooks and does not
                // retire or advance the PC.
                self.halted = true;
                return Ok(RunOutcome::Halted {
                    instructions: self.retired,
                });
            }
            let ev = event_template(&inst, pc);
            hooks.before_instruction(&ev);
            let a = self.regs[inst.src1.index()];
            let b = self.regs[inst.src2.index()];
            let imm = inst.imm;
            let mut next_pc = pc + 1;
            let mut taken_branch = false;
            let mut write: Option<i64> = None;
            match inst.opcode {
                Opcode::Add => write = Some(a.wrapping_add(b)),
                Opcode::Sub => write = Some(a.wrapping_sub(b)),
                Opcode::And => write = Some(a & b),
                Opcode::Or => write = Some(a | b),
                Opcode::Xor => write = Some(a ^ b),
                Opcode::Sll => write = Some(a.wrapping_shl((b & 63) as u32)),
                Opcode::Srl => write = Some(((a as u64).wrapping_shr((b & 63) as u32)) as i64),
                Opcode::Sra => write = Some(a.wrapping_shr((b & 63) as u32)),
                Opcode::Slt => write = Some(i64::from(a < b)),
                Opcode::SltU => write = Some(i64::from((a as u64) < (b as u64))),
                Opcode::Addi => write = Some(a.wrapping_add(imm)),
                Opcode::Andi => write = Some(a & imm),
                Opcode::Ori => write = Some(a | imm),
                Opcode::Xori => write = Some(a ^ imm),
                Opcode::Slli => write = Some(a.wrapping_shl((imm & 63) as u32)),
                Opcode::Srli => write = Some(((a as u64).wrapping_shr((imm & 63) as u32)) as i64),
                Opcode::Srai => write = Some(a.wrapping_shr((imm & 63) as u32)),
                Opcode::Slti => write = Some(i64::from(a < imm)),
                Opcode::Li => write = Some(imm),
                Opcode::Mul => write = Some(a.wrapping_mul(b)),
                Opcode::Div => {
                    if b == 0 {
                        return Err(VmError::DivideByZero { pc });
                    }
                    write = Some(a.wrapping_div(b));
                }
                Opcode::Rem => {
                    if b == 0 {
                        return Err(VmError::DivideByZero { pc });
                    }
                    write = Some(a.wrapping_rem(b));
                }
                Opcode::Ld => {
                    let addr = a.wrapping_add(imm) as u64;
                    let word = checked_word(&self.mem, addr).map_err(|e| e.at(pc))?;
                    hooks.mem_access(&ev, addr);
                    write = Some(self.mem[word]);
                }
                Opcode::St => {
                    // src1 = value, src2 = base.
                    let addr = b.wrapping_add(imm) as u64;
                    let word = checked_word(&self.mem, addr).map_err(|e| e.at(pc))?;
                    hooks.mem_access(&ev, addr);
                    self.mem[word] = a;
                }
                Opcode::Br(cond) => {
                    let t = cond.eval(a, b);
                    hooks.cond_branch(&ev, t);
                    if t {
                        next_pc = imm as u32;
                        taken_branch = true;
                    }
                }
                Opcode::J => {
                    next_pc = imm as u32;
                    taken_branch = true;
                }
                Opcode::Nop => {}
                Opcode::Halt => unreachable!("handled before hooks fire"),
            }
            if let Some(v) = write {
                self.regs[inst.dst.index()] = v;
            }
            self.pc = next_pc;
            self.retired += 1;
            remaining -= 1;
            if taken_branch {
                hooks.after_taken_branch(&ev, next_pc);
            } else {
                hooks.after_instruction(&ev);
            }
        }
        Ok(RunOutcome::LimitReached {
            instructions: self.retired,
        })
    }
}

/// A word-granular memory fault, pre-`pc`: the dispatch loop stamps the
/// faulting PC on via [`MemFault::at`].
enum MemFault {
    Unaligned { addr: u64 },
    OutOfBounds { addr: u64, memory_bytes: u64 },
}

impl MemFault {
    fn at(self, pc: u32) -> VmError {
        match self {
            MemFault::Unaligned { addr } => VmError::UnalignedAccess { pc, addr },
            MemFault::OutOfBounds { addr, memory_bytes } => VmError::MemoryOutOfBounds {
                pc,
                addr,
                memory_bytes,
            },
        }
    }
}

#[inline(always)]
fn checked_word(mem: &[i64], addr: u64) -> Result<usize, MemFault> {
    if !addr.is_multiple_of(WORD_BYTES) {
        return Err(MemFault::Unaligned { addr });
    }
    let idx = (addr / WORD_BYTES) as usize;
    if idx >= mem.len() {
        return Err(MemFault::OutOfBounds {
            addr,
            memory_bytes: mem.len() as u64 * WORD_BYTES,
        });
    }
    Ok(idx)
}

impl Executor for BlockEngine<'_> {
    fn run_events(
        &mut self,
        limit: Option<u64>,
        observer: &mut dyn FnMut(&TraceEvent),
    ) -> Result<RunOutcome, VmError> {
        self.run_with(limit, |ev| observer(ev))
    }

    fn reg(&self, r: Reg) -> i64 {
        BlockEngine::reg(self, r)
    }

    fn set_reg(&mut self, r: Reg, value: i64) {
        BlockEngine::set_reg(self, r, value);
    }

    fn memory(&self) -> &[i64] {
        BlockEngine::memory(self)
    }

    fn pc(&self) -> u32 {
        BlockEngine::pc(self)
    }

    fn is_halted(&self) -> bool {
        BlockEngine::is_halted(self)
    }

    fn retired(&self) -> u64 {
        BlockEngine::retired(self)
    }
}

/// Placeholder the event adapter starts from (overwritten by the first
/// `before_instruction`).
const IDLE_EVENT: TraceEvent = TraceEvent {
    pc: 0,
    opcode: Opcode::Nop,
    class: InstClass::IntAlu,
    dst: None,
    sources: [None, None],
    eff_addr: None,
    taken: None,
    next_pc: 0,
};

/// Hook adapter reconstructing the interpreter's exact per-instruction
/// [`TraceEvent`] stream from block templates plus the dynamic facts.
struct EventHooks<'o> {
    observer: &'o mut dyn FnMut(&TraceEvent),
    pending: TraceEvent,
}

impl BlockHooks for EventHooks<'_> {
    #[inline(always)]
    fn before_instruction(&mut self, op: &TraceEvent) {
        self.pending = *op;
    }

    #[inline(always)]
    fn mem_access(&mut self, _op: &TraceEvent, addr: u64) {
        self.pending.eff_addr = Some(addr);
    }

    #[inline(always)]
    fn cond_branch(&mut self, _op: &TraceEvent, taken: bool) {
        self.pending.taken = Some(taken);
    }

    #[inline(always)]
    fn after_instruction(&mut self, _op: &TraceEvent) {
        (self.observer)(&self.pending);
    }

    #[inline(always)]
    fn after_taken_branch(&mut self, _op: &TraceEvent, target: u32) {
        self.pending.next_pc = target;
        (self.observer)(&self.pending);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    /// A kernel covering every event shape: ALU, mem, taken/untaken
    /// branches, jump, mul/div.
    fn kernel() -> Program {
        let mut b = ProgramBuilder::named("block-kernel");
        let data = b.data_words(&[3, 1, 4, 1, 5, 9, 2, 6]);
        b.li(Reg::R1, data as i64);
        b.li(Reg::R2, 0);
        b.li(Reg::R3, 8);
        let top = b.here();
        b.ld(Reg::R4, Reg::R1, 0);
        b.mul(Reg::R5, Reg::R4, Reg::R4);
        b.add(Reg::R2, Reg::R2, Reg::R5);
        b.st(Reg::R2, Reg::R1, 0);
        b.addi(Reg::R1, Reg::R1, 8);
        b.addi(Reg::R3, Reg::R3, -1);
        b.bne(Reg::R3, Reg::R0, top);
        b.halt();
        b.build()
    }

    fn interp_events(p: &Program, limit: Option<u64>) -> (Vec<TraceEvent>, RunOutcome, Vm<'_>) {
        let mut vm = Vm::new(p);
        let mut events = Vec::new();
        let outcome = vm.run_with(limit, |ev| events.push(*ev)).unwrap();
        (events, outcome, vm)
    }

    fn block_events(
        p: &Program,
        limit: Option<u64>,
    ) -> (Vec<TraceEvent>, RunOutcome, BlockEngine<'_>) {
        let mut engine = BlockEngine::new(p);
        let mut events = Vec::new();
        let outcome = engine.run_with(limit, |ev| events.push(*ev)).unwrap();
        (events, outcome, engine)
    }

    fn assert_state_matches(vm: &Vm<'_>, engine: &BlockEngine<'_>) {
        for r in Reg::ALL {
            assert_eq!(vm.reg(r), engine.reg(r), "register {r}");
        }
        assert_eq!(vm.memory(), engine.memory());
        assert_eq!(vm.pc(), engine.pc());
        assert_eq!(vm.is_halted(), engine.is_halted());
        assert_eq!(vm.retired(), engine.retired());
    }

    #[test]
    fn matches_interpreter_stream_and_state() {
        let p = kernel();
        let (ie, io, vm) = interp_events(&p, None);
        let (be, bo, engine) = block_events(&p, None);
        assert_eq!(ie, be);
        assert_eq!(io, bo);
        assert_state_matches(&vm, &engine);
    }

    #[test]
    fn matches_interpreter_at_every_limit() {
        let p = kernel();
        let (full, _, _) = interp_events(&p, None);
        for limit in 0..=(full.len() as u64 + 2) {
            let (ie, io, vm) = interp_events(&p, Some(limit));
            let (be, bo, engine) = block_events(&p, Some(limit));
            assert_eq!(ie, be, "limit {limit}");
            assert_eq!(io, bo, "limit {limit}");
            assert_state_matches(&vm, &engine);
        }
    }

    #[test]
    fn blocks_split_at_control_flow() {
        let p = kernel();
        let mut engine = BlockEngine::new(&p);
        engine.run(None).unwrap();
        // Setup block (li,li,li + loop body up to bne) compiles from 0;
        // back edge re-enters at `top` = 3; halt block at 10.
        assert_eq!(engine.cache().len(), 3);
        let entries: Vec<u32> = {
            let mut v: Vec<u32> = engine.cache.blocks.iter().map(|b| b.entry_pc()).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(entries, vec![0, 3, 10]);
    }

    #[test]
    fn straight_line_blocks_split_at_cap() {
        let mut b = ProgramBuilder::new();
        for _ in 0..(MAX_BLOCK_OPS + 10) {
            b.addi(Reg::R1, Reg::R1, 1);
        }
        b.halt();
        let p = b.build();
        let (ie, io, vm) = interp_events(&p, None);
        let (be, bo, engine) = block_events(&p, None);
        assert_eq!(ie, be);
        assert_eq!(io, bo);
        assert_state_matches(&vm, &engine);
        assert_eq!(engine.cache().len(), 2); // cap block + tail block
    }

    #[test]
    fn divide_by_zero_matches_interpreter_fault_and_state() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 7);
        b.div(Reg::R2, Reg::R1, Reg::R0);
        b.halt();
        let p = b.build();
        let mut vm = Vm::new(&p);
        let ierr = vm.run(None).unwrap_err();
        let mut engine = BlockEngine::new(&p);
        let berr = engine.run(None).unwrap_err();
        assert_eq!(ierr, berr);
        assert_eq!(ierr, VmError::DivideByZero { pc: 1 });
        assert_state_matches(&vm, &engine);
    }

    #[test]
    fn memory_faults_match_interpreter() {
        for offset in [64i64, 4] {
            let mut b = ProgramBuilder::new();
            b.data_words(&[0]);
            b.li(Reg::R1, offset);
            b.ld(Reg::R2, Reg::R1, 0);
            b.halt();
            let p = b.build();
            let mut vm = Vm::new(&p);
            let ierr = vm.run(None).unwrap_err();
            let mut engine = BlockEngine::new(&p);
            let berr = engine.run(None).unwrap_err();
            assert_eq!(ierr, berr, "offset {offset}");
            assert_state_matches(&vm, &engine);
        }
    }

    #[test]
    fn falling_off_the_text_matches_interpreter() {
        let mut b = ProgramBuilder::new();
        b.nop(); // no halt
        let p = b.build();
        let mut vm = Vm::new(&p);
        let ierr = vm.run(None).unwrap_err();
        let mut engine = BlockEngine::new(&p);
        let berr = engine.run(None).unwrap_err();
        assert_eq!(ierr, berr);
        assert!(matches!(berr, VmError::PcOutOfRange { pc: 1, .. }));
        assert_state_matches(&vm, &engine);
    }

    #[test]
    fn branch_to_out_of_range_target_faults_like_interpreter() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 1);
        // A jump to an absolute target outside the text (no builder
        // helper emits one, so push the raw instruction).
        b.push(Inst {
            opcode: Opcode::J,
            dst: Reg::R0,
            src1: Reg::R0,
            src2: Reg::R0,
            imm: 1_000,
        });
        b.halt();
        let p = b.build();
        let mut vm = Vm::new(&p);
        let ierr = vm.run(None).unwrap_err();
        let mut engine = BlockEngine::new(&p);
        let berr = engine.run(None).unwrap_err();
        assert_eq!(ierr, berr);
        assert!(matches!(berr, VmError::PcOutOfRange { pc: 1_000, .. }));
        assert_state_matches(&vm, &engine);
        // ...but with the limit exhausted first, the jump retires and no
        // fault is raised — also like the interpreter.
        let mut engine = BlockEngine::new(&p);
        let outcome = engine.run(Some(2)).unwrap();
        assert_eq!(outcome, RunOutcome::LimitReached { instructions: 2 });
    }

    #[test]
    fn resumes_across_run_calls() {
        let p = kernel();
        let (full, fo, vm) = interp_events(&p, None);
        let mut engine = BlockEngine::new(&p);
        let mut events = Vec::new();
        // Drive in dribs and drabs; the event stream must concatenate to
        // the full run.
        loop {
            let out = engine.run_with(Some(7), |ev| events.push(*ev)).unwrap();
            if out.halted() {
                assert_eq!(out, fo);
                break;
            }
        }
        assert_eq!(events, full);
        assert_state_matches(&vm, &engine);
    }

    #[test]
    fn run_on_halted_engine_reports_halted() {
        let mut b = ProgramBuilder::new();
        b.halt();
        let p = b.build();
        let mut engine = BlockEngine::new(&p);
        assert!(engine.run(None).unwrap().halted());
        assert!(engine.run(None).unwrap().halted());
        // With a zero limit the limit wins, exactly like the interpreter.
        assert_eq!(
            engine.run(Some(0)).unwrap(),
            RunOutcome::LimitReached { instructions: 0 }
        );
    }

    #[test]
    fn set_reg_parameterizes_like_vm() {
        let mut b = ProgramBuilder::new();
        b.addi(Reg::R2, Reg::R1, 5);
        b.halt();
        let p = b.build();
        let mut vm = Vm::new(&p);
        vm.set_reg(Reg::R1, 37);
        vm.run(None).unwrap();
        let mut engine = BlockEngine::new(&p);
        engine.set_reg(Reg::R1, 37);
        engine.run(None).unwrap();
        assert_eq!(vm.reg(Reg::R2), engine.reg(Reg::R2));
        assert_eq!(engine.reg(Reg::R2), 42);
    }

    #[test]
    fn hook_protocol_fires_in_documented_order() {
        #[derive(Default)]
        struct Log(Vec<String>);
        impl BlockHooks for Log {
            fn begin_block(&mut self, block: &Block) {
                self.0.push(format!("begin@{}", block.entry_pc()));
            }
            fn before_instruction(&mut self, op: &TraceEvent) {
                self.0.push(format!("before@{}", op.pc));
            }
            fn mem_access(&mut self, op: &TraceEvent, addr: u64) {
                self.0.push(format!("mem@{}:{addr}", op.pc));
            }
            fn cond_branch(&mut self, op: &TraceEvent, taken: bool) {
                self.0.push(format!("cond@{}:{taken}", op.pc));
            }
            fn after_instruction(&mut self, op: &TraceEvent) {
                self.0.push(format!("after@{}", op.pc));
            }
            fn after_taken_branch(&mut self, op: &TraceEvent, target: u32) {
                self.0.push(format!("taken@{}->{target}", op.pc));
            }
        }

        let mut b = ProgramBuilder::new();
        let data = b.data_words(&[11]);
        b.li(Reg::R1, data as i64); // pc 0
        b.ld(Reg::R2, Reg::R1, 0); // pc 1
        let skip = b.label();
        b.beq(Reg::R2, Reg::R0, skip); // pc 2: not taken
        b.bne(Reg::R2, Reg::R0, skip); // pc 3: taken
        b.nop(); // pc 4: skipped
        b.bind(skip);
        b.halt(); // pc 5
        let p = b.build();
        let mut log = Log::default();
        BlockEngine::new(&p).run_hooks(None, &mut log).unwrap();
        assert_eq!(
            log.0,
            vec![
                "begin@0",
                "before@0",
                "after@0",
                "before@1",
                "mem@1:0",
                "after@1",
                "before@2",
                "cond@2:false",
                "after@2",
                "begin@3",
                "before@3",
                "cond@3:true",
                "taken@3->5",
                "begin@5",
            ]
        );
    }

    #[test]
    fn successor_links_bypass_the_map_but_results_agree() {
        let p = kernel();
        let (a, ..) = block_events(&p, None);
        let (bevs, ..) = block_events(&p, None);
        assert_eq!(a, bevs);
    }

    #[test]
    fn engine_toggle_round_trips() {
        // Cannot assert the default here (other tests flip the switch in
        // parallel); assert the setter is authoritative.
        let was = block_engine_enabled();
        set_block_engine(false);
        assert!(!block_engine_enabled());
        set_block_engine(true);
        assert!(block_engine_enabled());
        set_block_engine(was);
    }

    #[test]
    fn executor_trait_is_object_safe_over_both_backends() {
        let p = kernel();
        let mut vm = Vm::new(&p);
        let mut engine = BlockEngine::new(&p);
        let backends: [&mut dyn Executor; 2] = [&mut vm, &mut engine];
        let mut counts = Vec::new();
        for backend in backends {
            let mut n = 0u64;
            backend.run_events(None, &mut |_| n += 1).unwrap();
            counts.push((n, backend.retired(), backend.is_halted()));
        }
        assert_eq!(counts[0], counts[1]);
    }
}
