//! # mim-isa — virtual ISA and functional simulator
//!
//! This crate defines the RISC-style virtual instruction set used throughout
//! the MIM (Mechanistic In-order Model) toolkit, together with:
//!
//! * [`Inst`]/[`Opcode`] — a flat, fixed-format instruction representation,
//! * [`ProgramBuilder`] — an ergonomic assembler with labels and a data
//!   segment, used by `mim-workloads` to express benchmark kernels,
//! * [`Vm`] — a deterministic functional simulator that executes a
//!   [`Program`] and emits one [`TraceEvent`] per dynamic instruction,
//! * [`BlockEngine`] — a block-compiled (DBT-style) functional backend
//!   producing bit-identical results at a multiple of the interpreter's
//!   throughput, with [`BlockHooks`] for timing-tool observation; the
//!   [`Executor`] trait abstracts over the two backends.
//!
//! The trace events drive both the single-pass profiler (`mim-profile`) and
//! the cycle-accurate pipeline simulator (`mim-pipeline`); the ISA is the
//! stand-in for the ARM/Alpha binaries the ISPASS 2012 paper ran under the
//! M5 simulator. The interpreter and the block engine implement the same
//! architectural semantics — [`Vm`] remains the reference (and the
//! differential oracle in tests); [`BlockEngine`] is the throughput
//! backend that recording and profiling use by default (see
//! [`block_engine_enabled`]).
//!
//! ## Example
//!
//! ```
//! use mim_isa::{ProgramBuilder, Reg, Vm};
//!
//! # fn main() -> Result<(), mim_isa::VmError> {
//! let mut b = ProgramBuilder::new();
//! let acc = Reg::R1;
//! let i = Reg::R2;
//! let n = Reg::R3;
//! b.li(n, 10);
//! b.li(acc, 0);
//! b.li(i, 0);
//! let top = b.here();
//! b.add(acc, acc, i);
//! b.addi(i, i, 1);
//! b.blt(i, n, top);
//! b.halt();
//!
//! let program = b.build();
//! let mut vm = Vm::new(&program);
//! let outcome = vm.run(None)?;
//! assert!(outcome.halted());
//! assert_eq!(vm.reg(acc), 45);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod block;
mod builder;
mod disasm;
mod error;
mod inst;
mod program;
mod reg;
mod vm;

pub use asm::{assemble, disassemble, AsmError};
pub use block::{
    block_engine_enabled, set_block_engine, Block, BlockCache, BlockCompiler, BlockEngine,
    BlockHooks, Executor, NoHooks,
};
pub use builder::{Label, ProgramBuilder};
pub use error::VmError;
pub use inst::{Cond, Inst, InstClass, Opcode};
pub use program::{Program, WORD_BYTES};
pub use reg::{Reg, NUM_REGS};
pub use vm::{functional_executions, RunOutcome, TraceEvent, Vm};
