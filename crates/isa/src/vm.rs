//! Functional (architectural) simulation of programs.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::VmError;
use crate::inst::{InstClass, Opcode};
use crate::program::{Program, WORD_BYTES};
use crate::reg::{Reg, NUM_REGS};

/// Process-wide count of functional execution passes, bumped once per
/// recording pass by whichever backend performs it.
static FUNCTIONAL_EXECUTIONS: AtomicU64 = AtomicU64::new(0);

/// Records the start of one functional execution pass. Called by every
/// functional backend's run entry point — [`Vm::run_with`] and
/// [`BlockEngine::run_hooks`](crate::BlockEngine::run_hooks) — so the
/// counter's meaning is backend-independent.
pub(crate) fn count_functional_execution() {
    FUNCTIONAL_EXECUTIONS.fetch_add(1, Ordering::Relaxed);
}

/// Number of functional execution passes started in this process so far.
///
/// A "pass" is one *recording run* — a [`Vm::run`]/[`Vm::run_with`] call
/// on the interpreter, or a
/// [`BlockEngine::run_hooks`](crate::BlockEngine::run_hooks)-family call
/// on the block-compiled engine — **not** one instruction step. Which
/// backend executed the pass is deliberately invisible here: the counter
/// measures how often the stack re-executes a program, the quantity the
/// record-once trace layer (`mim-trace`) exists to minimize. That layer
/// keeps this number at one per `(workload, size)` no matter how many
/// design points consume the dynamic instruction stream; tests assert the
/// invariant by sampling the counter around a sweep. Monotone, never
/// reset; measure deltas.
pub fn functional_executions() -> u64 {
    FUNCTIONAL_EXECUTIONS.load(Ordering::Relaxed)
}

/// One dynamically executed instruction, as observed by trace consumers.
///
/// The functional [`Vm`] emits one event per retired instruction. Events
/// carry everything the profiler and the cycle-accurate pipeline simulator
/// need: operand registers, effective address of memory operations, and
/// resolved control-flow direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Program counter (instruction index) of this instruction.
    pub pc: u32,
    /// Opcode, for consumers that distinguish more than [`InstClass`].
    pub opcode: Opcode,
    /// Behaviour class used by the model and simulator.
    pub class: InstClass,
    /// Destination register, if the instruction writes one.
    pub dst: Option<Reg>,
    /// Source registers in operand order (`None` for absent operands).
    pub sources: [Option<Reg>; 2],
    /// Effective byte address for loads and stores.
    pub eff_addr: Option<u64>,
    /// Resolved direction for control-flow instructions (`Some(true)` if
    /// taken); `None` for non-control instructions.
    pub taken: Option<bool>,
    /// Program counter of the next dynamic instruction.
    pub next_pc: u32,
}

/// Why a [`Vm::run`] call stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The program executed a `halt` instruction.
    Halted {
        /// Number of instructions retired (excluding the `halt`).
        instructions: u64,
    },
    /// The caller-provided instruction limit was reached first.
    LimitReached {
        /// Number of instructions retired.
        instructions: u64,
    },
}

impl RunOutcome {
    /// True if the program ran to completion (`halt`).
    pub fn halted(self) -> bool {
        matches!(self, RunOutcome::Halted { .. })
    }

    /// Number of instructions retired before stopping.
    pub fn instructions(self) -> u64 {
        match self {
            RunOutcome::Halted { instructions } | RunOutcome::LimitReached { instructions } => {
                instructions
            }
        }
    }
}

/// Deterministic functional simulator for a [`Program`].
///
/// The VM executes the architectural semantics only — no timing. Its trace
/// events are consumed by `mim-profile` (statistics) and `mim-pipeline`
/// (timing). Because execution is fully deterministic, a program needs to be
/// profiled only once, which is the premise of the mechanistic modeling
/// framework (paper §2.1).
///
/// # Example
///
/// ```
/// use mim_isa::{ProgramBuilder, Reg, Vm};
///
/// # fn main() -> Result<(), mim_isa::VmError> {
/// let mut b = ProgramBuilder::new();
/// b.li(Reg::R1, 6);
/// b.li(Reg::R2, 7);
/// b.mul(Reg::R3, Reg::R1, Reg::R2);
/// b.halt();
/// let p = b.build();
///
/// let mut vm = Vm::new(&p);
/// let mut classes = Vec::new();
/// vm.run_with(None, |ev| classes.push(ev.class))?;
/// assert_eq!(vm.reg(Reg::R3), 42);
/// assert_eq!(classes.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Vm<'p> {
    program: &'p Program,
    regs: [i64; NUM_REGS],
    mem: Vec<i64>,
    pc: u32,
    halted: bool,
    retired: u64,
}

impl<'p> Vm<'p> {
    /// Creates a VM with zeroed registers and the program's initial data
    /// image loaded into memory.
    pub fn new(program: &'p Program) -> Vm<'p> {
        Vm {
            program,
            regs: [0; NUM_REGS],
            mem: program.data().to_vec(),
            pc: 0,
            halted: false,
            retired: 0,
        }
    }

    /// Current value of register `r`.
    #[inline]
    pub fn reg(&self, r: Reg) -> i64 {
        self.regs[r.index()]
    }

    /// Sets register `r` (useful for tests and for parameterizing kernels).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, value: i64) {
        self.regs[r.index()] = value;
    }

    /// Read-only view of data memory, in words.
    pub fn memory(&self) -> &[i64] {
        &self.mem
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// True once a `halt` instruction has executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions retired so far (excluding `halt`).
    pub fn retired(&self) -> u64 {
        self.retired
    }

    #[inline]
    fn mem_word(&mut self, pc: u32, addr: u64) -> Result<usize, VmError> {
        if !addr.is_multiple_of(WORD_BYTES) {
            return Err(VmError::UnalignedAccess { pc, addr });
        }
        let idx = (addr / WORD_BYTES) as usize;
        if idx >= self.mem.len() {
            return Err(VmError::MemoryOutOfBounds {
                pc,
                addr,
                memory_bytes: self.mem.len() as u64 * WORD_BYTES,
            });
        }
        Ok(idx)
    }

    /// Executes a single instruction.
    ///
    /// Returns `Ok(None)` if the machine is halted (either already, or
    /// because this step executed `halt`); otherwise returns the trace
    /// event of the retired instruction.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on memory faults, division by zero, or control
    /// flow leaving the program text.
    pub fn step(&mut self) -> Result<Option<TraceEvent>, VmError> {
        if self.halted {
            return Ok(None);
        }
        let pc = self.pc;
        let inst = *self.program.fetch(pc).ok_or(VmError::PcOutOfRange {
            pc,
            text_len: self.program.len() as u32,
        })?;

        let a = self.regs[inst.src1.index()];
        let b = self.regs[inst.src2.index()];
        let imm = inst.imm;
        let mut next_pc = pc + 1;
        let mut eff_addr = None;
        let mut taken = None;
        let mut write: Option<i64> = None;

        match inst.opcode {
            Opcode::Add => write = Some(a.wrapping_add(b)),
            Opcode::Sub => write = Some(a.wrapping_sub(b)),
            Opcode::And => write = Some(a & b),
            Opcode::Or => write = Some(a | b),
            Opcode::Xor => write = Some(a ^ b),
            Opcode::Sll => write = Some(a.wrapping_shl((b & 63) as u32)),
            Opcode::Srl => write = Some(((a as u64).wrapping_shr((b & 63) as u32)) as i64),
            Opcode::Sra => write = Some(a.wrapping_shr((b & 63) as u32)),
            Opcode::Slt => write = Some(i64::from(a < b)),
            Opcode::SltU => write = Some(i64::from((a as u64) < (b as u64))),
            Opcode::Addi => write = Some(a.wrapping_add(imm)),
            Opcode::Andi => write = Some(a & imm),
            Opcode::Ori => write = Some(a | imm),
            Opcode::Xori => write = Some(a ^ imm),
            Opcode::Slli => write = Some(a.wrapping_shl((imm & 63) as u32)),
            Opcode::Srli => write = Some(((a as u64).wrapping_shr((imm & 63) as u32)) as i64),
            Opcode::Srai => write = Some(a.wrapping_shr((imm & 63) as u32)),
            Opcode::Slti => write = Some(i64::from(a < imm)),
            Opcode::Li => write = Some(imm),
            Opcode::Mul => write = Some(a.wrapping_mul(b)),
            Opcode::Div => {
                if b == 0 {
                    return Err(VmError::DivideByZero { pc });
                }
                write = Some(a.wrapping_div(b));
            }
            Opcode::Rem => {
                if b == 0 {
                    return Err(VmError::DivideByZero { pc });
                }
                write = Some(a.wrapping_rem(b));
            }
            Opcode::Ld => {
                let addr = (a.wrapping_add(imm)) as u64;
                let idx = self.mem_word(pc, addr)?;
                eff_addr = Some(addr);
                write = Some(self.mem[idx]);
            }
            Opcode::St => {
                // src1 = value, src2 = base
                let addr = (b.wrapping_add(imm)) as u64;
                let idx = self.mem_word(pc, addr)?;
                eff_addr = Some(addr);
                self.mem[idx] = a;
            }
            Opcode::Br(cond) => {
                let t = cond.eval(a, b);
                taken = Some(t);
                if t {
                    next_pc = imm as u32;
                }
            }
            Opcode::J => {
                taken = Some(true);
                next_pc = imm as u32;
            }
            Opcode::Nop => {}
            Opcode::Halt => {
                self.halted = true;
                return Ok(None);
            }
        }

        if let (Some(v), Some(dst)) = (write, inst.writes()) {
            self.regs[dst.index()] = v;
        }

        self.pc = next_pc;
        self.retired += 1;

        Ok(Some(TraceEvent {
            pc,
            opcode: inst.opcode,
            class: inst.class(),
            dst: inst.writes(),
            sources: inst.sources(),
            eff_addr,
            taken,
            next_pc,
        }))
    }

    /// Runs until `halt` or until `limit` instructions have retired.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] raised during execution.
    pub fn run(&mut self, limit: Option<u64>) -> Result<RunOutcome, VmError> {
        self.run_with(limit, |_| {})
    }

    /// Runs like [`run`](Vm::run) while invoking `observer` for every
    /// retired instruction.
    ///
    /// This is the main driver used by the profiler and pipeline simulator:
    /// the dynamic instruction stream is consumed on the fly, so arbitrarily
    /// long executions need no trace storage.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] raised during execution.
    pub fn run_with<F>(
        &mut self,
        limit: Option<u64>,
        mut observer: F,
    ) -> Result<RunOutcome, VmError>
    where
        F: FnMut(&TraceEvent),
    {
        count_functional_execution();
        let limit = limit.unwrap_or(u64::MAX);
        let start = self.retired;
        while self.retired - start < limit {
            match self.step()? {
                Some(ev) => observer(&ev),
                None => {
                    return Ok(RunOutcome::Halted {
                        instructions: self.retired,
                    })
                }
            }
        }
        Ok(RunOutcome::LimitReached {
            instructions: self.retired,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn run_program(b: ProgramBuilder) -> Vm<'static> {
        let p = Box::leak(Box::new(b.build()));
        let mut vm = Vm::new(p);
        vm.run(None).expect("program faulted");
        vm
    }

    #[test]
    fn alu_semantics() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 10);
        b.li(Reg::R2, 3);
        b.add(Reg::R3, Reg::R1, Reg::R2);
        b.sub(Reg::R4, Reg::R1, Reg::R2);
        b.and(Reg::R5, Reg::R1, Reg::R2);
        b.or(Reg::R6, Reg::R1, Reg::R2);
        b.xor(Reg::R7, Reg::R1, Reg::R2);
        b.sll(Reg::R8, Reg::R1, Reg::R2);
        b.slt(Reg::R9, Reg::R2, Reg::R1);
        b.halt();
        let vm = run_program(b);
        assert_eq!(vm.reg(Reg::R3), 13);
        assert_eq!(vm.reg(Reg::R4), 7);
        assert_eq!(vm.reg(Reg::R5), 2);
        assert_eq!(vm.reg(Reg::R6), 11);
        assert_eq!(vm.reg(Reg::R7), 9);
        assert_eq!(vm.reg(Reg::R8), 80);
        assert_eq!(vm.reg(Reg::R9), 1);
    }

    #[test]
    fn shift_semantics_logical_vs_arithmetic() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, -8);
        b.srai(Reg::R2, Reg::R1, 1);
        b.srli(Reg::R3, Reg::R1, 1);
        b.halt();
        let vm = run_program(b);
        assert_eq!(vm.reg(Reg::R2), -4);
        assert_eq!(vm.reg(Reg::R3), ((-8i64) as u64 >> 1) as i64);
    }

    #[test]
    fn mul_div_rem() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, -17);
        b.li(Reg::R2, 5);
        b.mul(Reg::R3, Reg::R1, Reg::R2);
        b.div(Reg::R4, Reg::R1, Reg::R2);
        b.rem(Reg::R5, Reg::R1, Reg::R2);
        b.halt();
        let vm = run_program(b);
        assert_eq!(vm.reg(Reg::R3), -85);
        assert_eq!(vm.reg(Reg::R4), -3); // truncating
        assert_eq!(vm.reg(Reg::R5), -2);
    }

    #[test]
    fn divide_by_zero_is_reported() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 1);
        b.div(Reg::R2, Reg::R1, Reg::R0);
        b.halt();
        let p = b.build();
        let mut vm = Vm::new(&p);
        let err = vm.run(None).unwrap_err();
        assert_eq!(err, VmError::DivideByZero { pc: 1 });
    }

    #[test]
    fn loads_and_stores_round_trip() {
        let mut b = ProgramBuilder::new();
        let addr = b.data_words(&[11, 22, 33]);
        b.li(Reg::R1, addr as i64);
        b.ld(Reg::R2, Reg::R1, 8);
        b.addi(Reg::R2, Reg::R2, 100);
        b.st(Reg::R2, Reg::R1, 16);
        b.ld(Reg::R3, Reg::R1, 16);
        b.halt();
        let vm = run_program(b);
        assert_eq!(vm.reg(Reg::R2), 122);
        assert_eq!(vm.reg(Reg::R3), 122);
        assert_eq!(vm.memory()[2], 122);
    }

    #[test]
    fn out_of_bounds_access_is_reported() {
        let mut b = ProgramBuilder::new();
        b.data_words(&[0]);
        b.li(Reg::R1, 64);
        b.ld(Reg::R2, Reg::R1, 0);
        b.halt();
        let p = b.build();
        let mut vm = Vm::new(&p);
        let err = vm.run(None).unwrap_err();
        assert!(matches!(err, VmError::MemoryOutOfBounds { addr: 64, .. }));
    }

    #[test]
    fn unaligned_access_is_reported() {
        let mut b = ProgramBuilder::new();
        b.data_words(&[0, 0]);
        b.li(Reg::R1, 4);
        b.ld(Reg::R2, Reg::R1, 0);
        b.halt();
        let p = b.build();
        let mut vm = Vm::new(&p);
        let err = vm.run(None).unwrap_err();
        assert!(matches!(err, VmError::UnalignedAccess { addr: 4, .. }));
    }

    #[test]
    fn falling_off_the_text_is_reported() {
        let mut b = ProgramBuilder::new();
        b.nop(); // no halt
        let p = b.build();
        let mut vm = Vm::new(&p);
        let err = vm.run(None).unwrap_err();
        assert!(matches!(err, VmError::PcOutOfRange { pc: 1, .. }));
    }

    #[test]
    fn branch_events_carry_direction_and_target() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 1);
        let skip = b.label();
        b.beq(Reg::R1, Reg::R0, skip); // not taken
        b.bne(Reg::R1, Reg::R0, skip); // taken
        b.nop(); // skipped
        b.bind(skip);
        b.halt();
        let p = b.build();
        let mut vm = Vm::new(&p);
        let mut events = Vec::new();
        vm.run_with(None, |ev| events.push(*ev)).unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[1].taken, Some(false));
        assert_eq!(events[1].next_pc, 2);
        assert_eq!(events[2].taken, Some(true));
        assert_eq!(events[2].next_pc, 4);
    }

    #[test]
    fn run_limit_stops_infinite_loops() {
        let mut b = ProgramBuilder::new();
        let top = b.here();
        b.addi(Reg::R1, Reg::R1, 1);
        b.jmp(top);
        let p = b.build();
        let mut vm = Vm::new(&p);
        let outcome = vm.run(Some(100)).unwrap();
        assert!(!outcome.halted());
        assert_eq!(outcome.instructions(), 100);
    }

    #[test]
    fn determinism_two_runs_identical() {
        let mut b = ProgramBuilder::new();
        let data = b.data_words(&[5, 9, 2, 7]);
        b.li(Reg::R1, data as i64);
        b.li(Reg::R2, 0);
        b.li(Reg::R3, 4);
        let top = b.here();
        b.ld(Reg::R4, Reg::R1, 0);
        b.add(Reg::R2, Reg::R2, Reg::R4);
        b.addi(Reg::R1, Reg::R1, 8);
        b.addi(Reg::R3, Reg::R3, -1);
        b.bne(Reg::R3, Reg::R0, top);
        b.halt();
        let p = b.build();

        let mut trace1 = Vec::new();
        let mut trace2 = Vec::new();
        Vm::new(&p).run_with(None, |e| trace1.push(*e)).unwrap();
        Vm::new(&p).run_with(None, |e| trace2.push(*e)).unwrap();
        assert_eq!(trace1, trace2);
    }
}
