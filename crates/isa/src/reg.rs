//! Architectural register names.

use std::fmt;

/// Number of architectural general-purpose registers.
pub const NUM_REGS: usize = 32;

/// An architectural general-purpose register (`R0`–`R31`).
///
/// All registers are general purpose; `R0` is an ordinary register (it is
/// *not* hardwired to zero). Workload kernels follow the loose convention
/// that `R0` holds zero and low registers hold loop-carried state, but the
/// ISA imposes no such rule.
///
/// # Example
///
/// ```
/// use mim_isa::Reg;
/// let r = Reg::R7;
/// assert_eq!(r.index(), 7);
/// assert_eq!(Reg::from_index(7), Some(Reg::R7));
/// assert_eq!(r.to_string(), "r7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
#[repr(u8)]
pub enum Reg {
    R0 = 0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
    R16,
    R17,
    R18,
    R19,
    R20,
    R21,
    R22,
    R23,
    R24,
    R25,
    R26,
    R27,
    R28,
    R29,
    R30,
    R31,
}

impl Reg {
    /// All registers in index order, useful for iteration.
    pub const ALL: [Reg; NUM_REGS] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
        Reg::R16,
        Reg::R17,
        Reg::R18,
        Reg::R19,
        Reg::R20,
        Reg::R21,
        Reg::R22,
        Reg::R23,
        Reg::R24,
        Reg::R25,
        Reg::R26,
        Reg::R27,
        Reg::R28,
        Reg::R29,
        Reg::R30,
        Reg::R31,
    ];

    /// Returns the zero-based register index (0–31).
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Returns the register with the given index, or `None` if `index >= 32`.
    #[inline]
    pub const fn from_index(index: usize) -> Option<Reg> {
        if index < NUM_REGS {
            Some(Self::ALL[index])
        } else {
            None
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Reg::from_index(i), Some(*r));
        }
    }

    #[test]
    fn out_of_range_index_is_none() {
        assert_eq!(Reg::from_index(NUM_REGS), None);
        assert_eq!(Reg::from_index(usize::MAX), None);
    }

    #[test]
    fn display_is_rn() {
        assert_eq!(Reg::R0.to_string(), "r0");
        assert_eq!(Reg::R31.to_string(), "r31");
    }
}
