//! Instruction formats, opcodes, and modeling classes.

use crate::reg::Reg;

/// Condition codes for conditional branches.
///
/// Comparisons are performed on the signed 64-bit values of the two source
/// registers, except [`Cond::LtU`]/[`Cond::GeU`] which compare unsigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if (signed) less than.
    Lt,
    /// Branch if (signed) greater than or equal.
    Ge,
    /// Branch if (unsigned) less than.
    LtU,
    /// Branch if (unsigned) greater than or equal.
    GeU,
}

impl Cond {
    /// Evaluates the condition on the two operand values.
    ///
    /// ```
    /// use mim_isa::Cond;
    /// assert!(Cond::Lt.eval(-1, 0));
    /// assert!(!Cond::LtU.eval(-1, 0)); // -1 is u64::MAX unsigned
    /// ```
    #[inline]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Ge => a >= b,
            Cond::LtU => (a as u64) < (b as u64),
            Cond::GeU => (a as u64) >= (b as u64),
        }
    }

    /// The logically opposite condition (`Lt` ↔ `Ge`, `Eq` ↔ `Ne`, ...).
    ///
    /// For all `a`, `b`: `cond.negated().eval(a, b) == !cond.eval(a, b)`.
    /// Used by program transformations that invert loop exits.
    pub fn negated(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::LtU => Cond::GeU,
            Cond::GeU => Cond::LtU,
        }
    }

    /// Mnemonic suffix used by the disassembler (`eq`, `ne`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
            Cond::LtU => "ltu",
            Cond::GeU => "geu",
        }
    }
}

/// Operation selector of an [`Inst`].
///
/// The ISA is deliberately small but covers every behaviour class the
/// mechanistic model distinguishes: unit-latency integer ALU operations,
/// non-unit multiply/divide, loads and stores, and direct control flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    // -- unit-latency register-register ALU --------------------------------
    /// `dst = src1 + src2`
    Add,
    /// `dst = src1 - src2`
    Sub,
    /// `dst = src1 & src2`
    And,
    /// `dst = src1 | src2`
    Or,
    /// `dst = src1 ^ src2`
    Xor,
    /// `dst = src1 << (src2 & 63)`
    Sll,
    /// `dst = ((src1 as u64) >> (src2 & 63)) as i64`
    Srl,
    /// `dst = src1 >> (src2 & 63)` (arithmetic)
    Sra,
    /// `dst = (src1 < src2) as i64` (signed)
    Slt,
    /// `dst = (src1 <u src2) as i64` (unsigned)
    SltU,
    // -- unit-latency register-immediate ALU -------------------------------
    /// `dst = src1 + imm`
    Addi,
    /// `dst = src1 & imm`
    Andi,
    /// `dst = src1 | imm`
    Ori,
    /// `dst = src1 ^ imm`
    Xori,
    /// `dst = src1 << (imm & 63)`
    Slli,
    /// `dst = ((src1 as u64) >> (imm & 63)) as i64`
    Srli,
    /// `dst = src1 >> (imm & 63)` (arithmetic)
    Srai,
    /// `dst = (src1 < imm) as i64` (signed)
    Slti,
    /// `dst = imm` (load immediate; no register sources)
    Li,
    // -- non-unit ("long-latency") arithmetic ------------------------------
    /// `dst = src1 * src2` (wrapping); multi-cycle on the modeled machine.
    Mul,
    /// `dst = src1 / src2` (signed, truncating); multi-cycle. Traps on zero.
    Div,
    /// `dst = src1 % src2` (signed); multi-cycle (divider). Traps on zero.
    Rem,
    // -- memory -------------------------------------------------------------
    /// `dst = mem[src1 + imm]` (8-byte word load; address must be 8-aligned)
    Ld,
    /// `mem[src2 + imm] = src1` (8-byte word store; `src1` is the value,
    /// `src2` the base address register)
    St,
    // -- control ------------------------------------------------------------
    /// Conditional branch: `if cond(src1, src2) pc = imm` (absolute target).
    Br(Cond),
    /// Unconditional direct jump to `imm` (absolute target).
    J,
    /// No operation.
    Nop,
    /// Stop the machine.
    Halt,
}

/// Behaviour class of an instruction as seen by the performance model and
/// the pipeline simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Unit-latency integer ALU operation (including `Li` and `Nop`).
    IntAlu,
    /// Integer multiply (non-unit latency).
    Mul,
    /// Integer divide/remainder (non-unit latency).
    Div,
    /// Memory load (produces its result in the memory stage).
    Load,
    /// Memory store.
    Store,
    /// Conditional branch (resolved in the execute stage).
    CondBranch,
    /// Unconditional direct jump (always taken).
    Jump,
    /// Halt marker.
    Halt,
}

impl InstClass {
    /// True for instructions whose execute-stage latency may exceed one
    /// cycle on the modeled machine (multiply/divide).
    #[inline]
    pub fn is_long_latency(self) -> bool {
        matches!(self, InstClass::Mul | InstClass::Div)
    }

    /// True for control-flow instructions (conditional or unconditional).
    #[inline]
    pub fn is_control(self) -> bool {
        matches!(self, InstClass::CondBranch | InstClass::Jump)
    }
}

/// A single fixed-format instruction.
///
/// All instructions share one flat layout (`opcode`, `dst`, `src1`, `src2`,
/// `imm`); which fields are meaningful depends on the opcode, as documented
/// on [`Opcode`]. Branch/jump targets are absolute instruction indices
/// stored in `imm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inst {
    /// Operation selector.
    pub opcode: Opcode,
    /// Destination register (ignored by stores, branches, `J`, `Nop`, `Halt`).
    pub dst: Reg,
    /// First source register.
    pub src1: Reg,
    /// Second source register.
    pub src2: Reg,
    /// Immediate operand, byte offset, or absolute branch target.
    pub imm: i64,
}

impl Inst {
    /// A canonical `nop`.
    pub const NOP: Inst = Inst {
        opcode: Opcode::Nop,
        dst: Reg::R0,
        src1: Reg::R0,
        src2: Reg::R0,
        imm: 0,
    };

    /// Returns the behaviour class used by the model and simulator.
    #[inline]
    pub fn class(&self) -> InstClass {
        match self.opcode {
            Opcode::Mul => InstClass::Mul,
            Opcode::Div | Opcode::Rem => InstClass::Div,
            Opcode::Ld => InstClass::Load,
            Opcode::St => InstClass::Store,
            Opcode::Br(_) => InstClass::CondBranch,
            Opcode::J => InstClass::Jump,
            Opcode::Halt => InstClass::Halt,
            _ => InstClass::IntAlu,
        }
    }

    /// Register operands read by this instruction, in operand order.
    ///
    /// The returned array holds up to two registers; absent sources are
    /// `None`. Used by the profiler to build dependency-distance profiles
    /// and by the pipeline simulator for hazard detection.
    #[inline]
    pub fn sources(&self) -> [Option<Reg>; 2] {
        use Opcode::*;
        match self.opcode {
            Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | SltU | Mul | Div | Rem => {
                [Some(self.src1), Some(self.src2)]
            }
            Addi | Andi | Ori | Xori | Slli | Srli | Srai | Slti => [Some(self.src1), None],
            Li | Nop | Halt | J => [None, None],
            Ld => [Some(self.src1), None],
            St => [Some(self.src1), Some(self.src2)],
            Br(_) => [Some(self.src1), Some(self.src2)],
        }
    }

    /// The register written by this instruction, if any.
    #[inline]
    pub fn writes(&self) -> Option<Reg> {
        use Opcode::*;
        match self.opcode {
            St | Br(_) | J | Nop | Halt => None,
            _ => Some(self.dst),
        }
    }

    /// Absolute control-flow target (instruction index), if this is a
    /// branch or jump.
    #[inline]
    pub fn target(&self) -> Option<u32> {
        match self.opcode {
            Opcode::Br(_) | Opcode::J => Some(self.imm as u32),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(opcode: Opcode) -> Inst {
        Inst {
            opcode,
            dst: Reg::R1,
            src1: Reg::R2,
            src2: Reg::R3,
            imm: 42,
        }
    }

    #[test]
    fn classes_are_assigned_correctly() {
        assert_eq!(inst(Opcode::Add).class(), InstClass::IntAlu);
        assert_eq!(inst(Opcode::Li).class(), InstClass::IntAlu);
        assert_eq!(inst(Opcode::Mul).class(), InstClass::Mul);
        assert_eq!(inst(Opcode::Div).class(), InstClass::Div);
        assert_eq!(inst(Opcode::Rem).class(), InstClass::Div);
        assert_eq!(inst(Opcode::Ld).class(), InstClass::Load);
        assert_eq!(inst(Opcode::St).class(), InstClass::Store);
        assert_eq!(inst(Opcode::Br(Cond::Eq)).class(), InstClass::CondBranch);
        assert_eq!(inst(Opcode::J).class(), InstClass::Jump);
        assert_eq!(inst(Opcode::Halt).class(), InstClass::Halt);
    }

    #[test]
    fn sources_match_operand_shape() {
        assert_eq!(inst(Opcode::Add).sources(), [Some(Reg::R2), Some(Reg::R3)]);
        assert_eq!(inst(Opcode::Addi).sources(), [Some(Reg::R2), None]);
        assert_eq!(inst(Opcode::Li).sources(), [None, None]);
        assert_eq!(inst(Opcode::Ld).sources(), [Some(Reg::R2), None]);
        // store reads the value (src1) and the base (src2)
        assert_eq!(inst(Opcode::St).sources(), [Some(Reg::R2), Some(Reg::R3)]);
        assert_eq!(
            inst(Opcode::Br(Cond::Ne)).sources(),
            [Some(Reg::R2), Some(Reg::R3)]
        );
    }

    #[test]
    fn writes_excludes_stores_and_control() {
        assert_eq!(inst(Opcode::Add).writes(), Some(Reg::R1));
        assert_eq!(inst(Opcode::Ld).writes(), Some(Reg::R1));
        assert_eq!(inst(Opcode::St).writes(), None);
        assert_eq!(inst(Opcode::Br(Cond::Eq)).writes(), None);
        assert_eq!(inst(Opcode::J).writes(), None);
        assert_eq!(inst(Opcode::Nop).writes(), None);
    }

    #[test]
    fn target_only_for_control_flow() {
        assert_eq!(inst(Opcode::Br(Cond::Lt)).target(), Some(42));
        assert_eq!(inst(Opcode::J).target(), Some(42));
        assert_eq!(inst(Opcode::Add).target(), None);
    }

    #[test]
    fn cond_eval_signed_vs_unsigned() {
        assert!(Cond::Eq.eval(5, 5));
        assert!(Cond::Ne.eval(5, 6));
        assert!(Cond::Lt.eval(-3, 2));
        assert!(Cond::Ge.eval(2, 2));
        assert!(!Cond::LtU.eval(-3, 2));
        assert!(Cond::GeU.eval(-3, 2));
    }

    #[test]
    fn long_latency_flags() {
        assert!(InstClass::Mul.is_long_latency());
        assert!(InstClass::Div.is_long_latency());
        assert!(!InstClass::Load.is_long_latency());
        assert!(InstClass::CondBranch.is_control());
        assert!(InstClass::Jump.is_control());
        assert!(!InstClass::IntAlu.is_control());
    }
}
