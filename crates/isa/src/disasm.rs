//! Human-readable disassembly via `Display` implementations.

use std::fmt;

use crate::inst::{Inst, Opcode};
use crate::program::Program;

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Opcode::*;
        let (d, a, b, imm) = (self.dst, self.src1, self.src2, self.imm);
        match self.opcode {
            Add => write!(f, "add {d}, {a}, {b}"),
            Sub => write!(f, "sub {d}, {a}, {b}"),
            And => write!(f, "and {d}, {a}, {b}"),
            Or => write!(f, "or {d}, {a}, {b}"),
            Xor => write!(f, "xor {d}, {a}, {b}"),
            Sll => write!(f, "sll {d}, {a}, {b}"),
            Srl => write!(f, "srl {d}, {a}, {b}"),
            Sra => write!(f, "sra {d}, {a}, {b}"),
            Slt => write!(f, "slt {d}, {a}, {b}"),
            SltU => write!(f, "sltu {d}, {a}, {b}"),
            Addi => write!(f, "addi {d}, {a}, {imm}"),
            Andi => write!(f, "andi {d}, {a}, {imm}"),
            Ori => write!(f, "ori {d}, {a}, {imm}"),
            Xori => write!(f, "xori {d}, {a}, {imm}"),
            Slli => write!(f, "slli {d}, {a}, {imm}"),
            Srli => write!(f, "srli {d}, {a}, {imm}"),
            Srai => write!(f, "srai {d}, {a}, {imm}"),
            Slti => write!(f, "slti {d}, {a}, {imm}"),
            Li => write!(f, "li {d}, {imm}"),
            Mul => write!(f, "mul {d}, {a}, {b}"),
            Div => write!(f, "div {d}, {a}, {b}"),
            Rem => write!(f, "rem {d}, {a}, {b}"),
            Ld => write!(f, "ld {d}, {imm}({a})"),
            St => write!(f, "st {a}, {imm}({b})"),
            Br(c) => write!(f, "b{} {a}, {b}, @{imm}", c.mnemonic()),
            J => write!(f, "j @{imm}"),
            Nop => write!(f, "nop"),
            Halt => write!(f, "halt"),
        }
    }
}

impl fmt::Display for Program {
    /// Disassembles the whole text segment, one instruction per line with
    /// its index, e.g. for debugging workload kernels.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "; program \"{}\" ({} insts, {} data words)",
            self.name(),
            self.len(),
            self.data().len()
        )?;
        for (i, inst) in self.text().iter().enumerate() {
            writeln!(f, "{i:6}: {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::ProgramBuilder;
    use crate::reg::Reg;

    #[test]
    fn every_opcode_disassembles_distinctly() {
        let mut b = ProgramBuilder::new();
        b.add(Reg::R1, Reg::R2, Reg::R3);
        b.sub(Reg::R1, Reg::R2, Reg::R3);
        b.and(Reg::R1, Reg::R2, Reg::R3);
        b.or(Reg::R1, Reg::R2, Reg::R3);
        b.xor(Reg::R1, Reg::R2, Reg::R3);
        b.sll(Reg::R1, Reg::R2, Reg::R3);
        b.srl(Reg::R1, Reg::R2, Reg::R3);
        b.sra(Reg::R1, Reg::R2, Reg::R3);
        b.slt(Reg::R1, Reg::R2, Reg::R3);
        b.sltu(Reg::R1, Reg::R2, Reg::R3);
        b.addi(Reg::R1, Reg::R2, 1);
        b.andi(Reg::R1, Reg::R2, 1);
        b.ori(Reg::R1, Reg::R2, 1);
        b.xori(Reg::R1, Reg::R2, 1);
        b.slli(Reg::R1, Reg::R2, 1);
        b.srli(Reg::R1, Reg::R2, 1);
        b.srai(Reg::R1, Reg::R2, 1);
        b.slti(Reg::R1, Reg::R2, 1);
        b.li(Reg::R1, 1);
        b.mul(Reg::R1, Reg::R2, Reg::R3);
        b.div(Reg::R1, Reg::R2, Reg::R3);
        b.rem(Reg::R1, Reg::R2, Reg::R3);
        b.ld(Reg::R1, Reg::R2, 8);
        b.st(Reg::R1, Reg::R2, 8);
        let l = b.here();
        b.beq(Reg::R1, Reg::R2, l);
        b.jmp(l);
        b.nop();
        b.halt();
        let p = b.build();
        let lines: Vec<String> = p.text().iter().map(|i| i.to_string()).collect();
        // all distinct mnemonics/line contents except none empty
        for line in &lines {
            assert!(!line.is_empty());
        }
        let mut sorted = lines.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), lines.len(), "disassembly lines collide");
    }

    #[test]
    fn program_display_includes_header() {
        let mut b = ProgramBuilder::named("demo");
        b.halt();
        let p = b.build();
        let s = p.to_string();
        assert!(s.contains("demo"));
        assert!(s.contains("halt"));
    }
}
