//! Error types for functional execution.

use std::error::Error;
use std::fmt;

/// An error raised while functionally executing a program on the [`Vm`].
///
/// All variants carry enough context (program counter, offending address)
/// to locate the fault in the program.
///
/// [`Vm`]: crate::Vm
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmError {
    /// A load or store addressed memory outside the data segment.
    MemoryOutOfBounds {
        /// Program counter of the faulting instruction.
        pc: u32,
        /// The faulting byte address.
        addr: u64,
        /// Size of the data segment in bytes.
        memory_bytes: u64,
    },
    /// A load or store used an address that is not 8-byte aligned.
    UnalignedAccess {
        /// Program counter of the faulting instruction.
        pc: u32,
        /// The faulting byte address.
        addr: u64,
    },
    /// A `div` or `rem` executed with a zero divisor.
    DivideByZero {
        /// Program counter of the faulting instruction.
        pc: u32,
    },
    /// Control flow left the program text (bad branch target or fall-through
    /// past the last instruction without `halt`).
    PcOutOfRange {
        /// The out-of-range program counter.
        pc: u32,
        /// Number of instructions in the program.
        text_len: u32,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            VmError::MemoryOutOfBounds {
                pc,
                addr,
                memory_bytes,
            } => write!(
                f,
                "memory access at byte address {addr:#x} is outside the \
                 {memory_bytes}-byte data segment (pc {pc})"
            ),
            VmError::UnalignedAccess { pc, addr } => {
                write!(f, "unaligned 8-byte access at address {addr:#x} (pc {pc})")
            }
            VmError::DivideByZero { pc } => write!(f, "division by zero (pc {pc})"),
            VmError::PcOutOfRange { pc, text_len } => write!(
                f,
                "program counter {pc} is outside the program text of {text_len} instructions"
            ),
        }
    }
}

impl Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_informative() {
        let errors: [VmError; 4] = [
            VmError::MemoryOutOfBounds {
                pc: 3,
                addr: 0x100,
                memory_bytes: 64,
            },
            VmError::UnalignedAccess { pc: 1, addr: 7 },
            VmError::DivideByZero { pc: 9 },
            VmError::PcOutOfRange {
                pc: 12,
                text_len: 10,
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(format!("{e:?}").len() > 2);
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VmError>();
    }
}
