//! An ergonomic assembler for constructing [`Program`]s.

use crate::inst::{Cond, Inst, Opcode};
use crate::program::{Program, WORD_BYTES};
use crate::reg::Reg;

/// A forward- or backward-referenceable code position.
///
/// Create one with [`ProgramBuilder::label`], attach it to the next emitted
/// instruction with [`ProgramBuilder::bind`], and use it as a branch or jump
/// target. [`ProgramBuilder::here`] creates and binds in one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Incremental builder ("assembler") for [`Program`]s.
///
/// The builder offers one method per opcode, label-based control flow, and a
/// word-granular data segment. Branch targets are resolved when
/// [`build`](ProgramBuilder::build) is called.
///
/// # Example
///
/// ```
/// use mim_isa::{ProgramBuilder, Reg, Vm};
///
/// # fn main() -> Result<(), mim_isa::VmError> {
/// let mut b = ProgramBuilder::named("sum-array");
/// let data = b.data_words(&[3, 1, 4, 1, 5]);
/// let (ptr, end, acc, x) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4);
/// b.li(ptr, data as i64);
/// b.li(end, (data + 5 * 8) as i64);
/// b.li(acc, 0);
/// let top = b.here();
/// b.ld(x, ptr, 0);
/// b.add(acc, acc, x);
/// b.addi(ptr, ptr, 8);
/// b.blt(ptr, end, top);
/// b.halt();
///
/// let program = b.build();
/// let mut vm = Vm::new(&program);
/// vm.run(None)?;
/// assert_eq!(vm.reg(acc), 14);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    name: String,
    text: Vec<Inst>,
    data: Vec<i64>,
    /// Resolved instruction index per label, if bound.
    labels: Vec<Option<u32>>,
    /// Instructions whose `imm` must be patched with a label address.
    fixups: Vec<(usize, Label)>,
}

impl ProgramBuilder {
    /// Creates an empty builder with an empty program name.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Creates an empty builder with the given program name.
    pub fn named(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            name: name.into(),
            ..ProgramBuilder::default()
        }
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// True if no instructions have been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    // -- data segment -------------------------------------------------------

    /// Appends `words` to the data segment and returns the byte address of
    /// the first word.
    pub fn data_words(&mut self, words: &[i64]) -> u64 {
        let addr = self.data.len() as u64 * WORD_BYTES;
        self.data.extend_from_slice(words);
        addr
    }

    /// Reserves `n` zero-initialized words and returns the byte address of
    /// the first.
    pub fn alloc_words(&mut self, n: usize) -> u64 {
        let addr = self.data.len() as u64 * WORD_BYTES;
        self.data.resize(self.data.len() + n, 0);
        addr
    }

    // -- labels ---------------------------------------------------------------

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the position of the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.text.len() as u32);
    }

    /// Creates a label and binds it to the current position.
    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    // -- raw emission ---------------------------------------------------------

    /// Appends a raw instruction and returns its index.
    pub fn push(&mut self, inst: Inst) -> usize {
        self.text.push(inst);
        self.text.len() - 1
    }

    fn rrr(&mut self, opcode: Opcode, dst: Reg, src1: Reg, src2: Reg) {
        self.push(Inst {
            opcode,
            dst,
            src1,
            src2,
            imm: 0,
        });
    }

    fn rri(&mut self, opcode: Opcode, dst: Reg, src1: Reg, imm: i64) {
        self.push(Inst {
            opcode,
            dst,
            src1,
            src2: Reg::R0,
            imm,
        });
    }

    fn branch(&mut self, cond: Cond, a: Reg, b: Reg, target: Label) {
        let idx = self.push(Inst {
            opcode: Opcode::Br(cond),
            dst: Reg::R0,
            src1: a,
            src2: b,
            imm: 0,
        });
        self.fixups.push((idx, target));
    }

    // -- register-register ALU -------------------------------------------------

    /// `dst = a + b`
    pub fn add(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.rrr(Opcode::Add, dst, a, b);
    }
    /// `dst = a - b`
    pub fn sub(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.rrr(Opcode::Sub, dst, a, b);
    }
    /// `dst = a & b`
    pub fn and(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.rrr(Opcode::And, dst, a, b);
    }
    /// `dst = a | b`
    pub fn or(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.rrr(Opcode::Or, dst, a, b);
    }
    /// `dst = a ^ b`
    pub fn xor(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.rrr(Opcode::Xor, dst, a, b);
    }
    /// `dst = a << (b & 63)`
    pub fn sll(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.rrr(Opcode::Sll, dst, a, b);
    }
    /// `dst = a >> (b & 63)` (logical)
    pub fn srl(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.rrr(Opcode::Srl, dst, a, b);
    }
    /// `dst = a >> (b & 63)` (arithmetic)
    pub fn sra(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.rrr(Opcode::Sra, dst, a, b);
    }
    /// `dst = (a < b) as i64` (signed)
    pub fn slt(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.rrr(Opcode::Slt, dst, a, b);
    }
    /// `dst = (a <u b) as i64` (unsigned)
    pub fn sltu(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.rrr(Opcode::SltU, dst, a, b);
    }

    // -- register-immediate ALU ---------------------------------------------

    /// `dst = a + imm`
    pub fn addi(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.rri(Opcode::Addi, dst, a, imm);
    }
    /// `dst = a & imm`
    pub fn andi(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.rri(Opcode::Andi, dst, a, imm);
    }
    /// `dst = a | imm`
    pub fn ori(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.rri(Opcode::Ori, dst, a, imm);
    }
    /// `dst = a ^ imm`
    pub fn xori(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.rri(Opcode::Xori, dst, a, imm);
    }
    /// `dst = a << (imm & 63)`
    pub fn slli(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.rri(Opcode::Slli, dst, a, imm);
    }
    /// `dst = a >> (imm & 63)` (logical)
    pub fn srli(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.rri(Opcode::Srli, dst, a, imm);
    }
    /// `dst = a >> (imm & 63)` (arithmetic)
    pub fn srai(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.rri(Opcode::Srai, dst, a, imm);
    }
    /// `dst = (a < imm) as i64` (signed)
    pub fn slti(&mut self, dst: Reg, a: Reg, imm: i64) {
        self.rri(Opcode::Slti, dst, a, imm);
    }
    /// `dst = imm`
    pub fn li(&mut self, dst: Reg, imm: i64) {
        self.rri(Opcode::Li, dst, Reg::R0, imm);
    }
    /// `dst = a` (register move; encoded as `addi dst, a, 0`)
    pub fn mv(&mut self, dst: Reg, a: Reg) {
        self.addi(dst, a, 0);
    }

    // -- long-latency arithmetic ------------------------------------------------

    /// `dst = a * b` (multi-cycle multiply)
    pub fn mul(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.rrr(Opcode::Mul, dst, a, b);
    }
    /// `dst = a / b` (multi-cycle divide; traps on `b == 0`)
    pub fn div(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.rrr(Opcode::Div, dst, a, b);
    }
    /// `dst = a % b` (multi-cycle remainder; traps on `b == 0`)
    pub fn rem(&mut self, dst: Reg, a: Reg, b: Reg) {
        self.rrr(Opcode::Rem, dst, a, b);
    }

    // -- memory ------------------------------------------------------------------

    /// `dst = mem[base + offset]` (8-byte load; byte offset)
    pub fn ld(&mut self, dst: Reg, base: Reg, offset: i64) {
        self.rri(Opcode::Ld, dst, base, offset);
    }
    /// `mem[base + offset] = value` (8-byte store; byte offset)
    pub fn st(&mut self, value: Reg, base: Reg, offset: i64) {
        self.push(Inst {
            opcode: Opcode::St,
            dst: Reg::R0,
            src1: value,
            src2: base,
            imm: offset,
        });
    }

    // -- control flow -------------------------------------------------------------

    /// Branch to `target` if `cond(a, b)` — the generic form of
    /// [`beq`](ProgramBuilder::beq)/[`blt`](ProgramBuilder::blt)/etc., used
    /// by program transformations that manipulate conditions symbolically.
    pub fn br(&mut self, cond: Cond, a: Reg, b: Reg, target: Label) {
        self.branch(cond, a, b, target);
    }

    /// Branch to `target` if `a == b`.
    pub fn beq(&mut self, a: Reg, b: Reg, target: Label) {
        self.branch(Cond::Eq, a, b, target);
    }
    /// Branch to `target` if `a != b`.
    pub fn bne(&mut self, a: Reg, b: Reg, target: Label) {
        self.branch(Cond::Ne, a, b, target);
    }
    /// Branch to `target` if `a < b` (signed).
    pub fn blt(&mut self, a: Reg, b: Reg, target: Label) {
        self.branch(Cond::Lt, a, b, target);
    }
    /// Branch to `target` if `a >= b` (signed).
    pub fn bge(&mut self, a: Reg, b: Reg, target: Label) {
        self.branch(Cond::Ge, a, b, target);
    }
    /// Branch to `target` if `a < b` (unsigned).
    pub fn bltu(&mut self, a: Reg, b: Reg, target: Label) {
        self.branch(Cond::LtU, a, b, target);
    }
    /// Branch to `target` if `a >= b` (unsigned).
    pub fn bgeu(&mut self, a: Reg, b: Reg, target: Label) {
        self.branch(Cond::GeU, a, b, target);
    }
    /// Unconditional jump to `target`.
    pub fn jmp(&mut self, target: Label) {
        let idx = self.push(Inst {
            opcode: Opcode::J,
            dst: Reg::R0,
            src1: Reg::R0,
            src2: Reg::R0,
            imm: 0,
        });
        self.fixups.push((idx, target));
    }
    /// No-operation.
    pub fn nop(&mut self) {
        self.push(Inst::NOP);
    }
    /// Stops the machine.
    pub fn halt(&mut self) {
        self.push(Inst {
            opcode: Opcode::Halt,
            dst: Reg::R0,
            src1: Reg::R0,
            src2: Reg::R0,
            imm: 0,
        });
    }

    // -- finalization -----------------------------------------------------------

    /// Resolves all label references and produces the [`Program`].
    ///
    /// # Panics
    ///
    /// Panics if any label used as a branch target was never bound. Use
    /// [`try_build`](ProgramBuilder::try_build) for a fallible variant.
    pub fn build(self) -> Program {
        self.try_build().expect("program has unbound labels")
    }

    /// Resolves labels and produces the [`Program`], or returns the index of
    /// the first instruction referencing an unbound label.
    ///
    /// # Errors
    ///
    /// Returns `Err(instruction_index)` if a branch or jump references a
    /// label that was never [`bind`](ProgramBuilder::bind)ed.
    pub fn try_build(mut self) -> Result<Program, usize> {
        for &(idx, label) in &self.fixups {
            match self.labels[label.0] {
                Some(pos) => self.text[idx].imm = i64::from(pos),
                None => return Err(idx),
            }
        }
        Ok(Program::from_parts(self.name, self.text, self.data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::InstClass;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut b = ProgramBuilder::new();
        let fwd = b.label();
        b.li(Reg::R1, 1);
        let back = b.here();
        b.addi(Reg::R1, Reg::R1, 1);
        b.beq(Reg::R0, Reg::R0, fwd); // forward reference
        b.jmp(back); // backward reference
        b.bind(fwd);
        b.halt();
        let p = b.build();
        // beq at index 2 targets instruction 4 (halt)
        assert_eq!(p.text()[2].target(), Some(4));
        // jmp at index 3 targets instruction 1 (addi)
        assert_eq!(p.text()[3].target(), Some(1));
    }

    #[test]
    fn try_build_reports_unbound_label() {
        let mut b = ProgramBuilder::new();
        let dangling = b.label();
        b.jmp(dangling);
        let err = b.try_build().unwrap_err();
        assert_eq!(err, 0);
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn data_segment_addresses_are_byte_granular() {
        let mut b = ProgramBuilder::new();
        let a = b.data_words(&[1, 2]);
        let c = b.alloc_words(3);
        let d = b.data_words(&[9]);
        assert_eq!(a, 0);
        assert_eq!(c, 16);
        assert_eq!(d, 40);
        b.halt();
        let p = b.build();
        assert_eq!(p.data(), &[1, 2, 0, 0, 0, 9]);
    }

    #[test]
    fn emitted_opcodes_have_expected_classes() {
        let mut b = ProgramBuilder::new();
        b.mul(Reg::R1, Reg::R2, Reg::R3);
        b.div(Reg::R1, Reg::R2, Reg::R3);
        b.ld(Reg::R1, Reg::R2, 8);
        b.st(Reg::R1, Reg::R2, 8);
        b.mv(Reg::R4, Reg::R5);
        b.halt();
        let p = b.build();
        let classes: Vec<InstClass> = p.text().iter().map(|i| i.class()).collect();
        assert_eq!(
            classes,
            vec![
                InstClass::Mul,
                InstClass::Div,
                InstClass::Load,
                InstClass::Store,
                InstClass::IntAlu,
                InstClass::Halt
            ]
        );
    }

    #[test]
    fn store_operand_layout() {
        let mut b = ProgramBuilder::new();
        b.st(Reg::R7, Reg::R8, 16);
        b.halt();
        let p = b.build();
        let st = &p.text()[0];
        assert_eq!(st.src1, Reg::R7); // value
        assert_eq!(st.src2, Reg::R8); // base
        assert_eq!(st.imm, 16);
    }
}
