//! A textual assembler for the MIM ISA.
//!
//! The [`ProgramBuilder`](crate::ProgramBuilder) API is the primary way to
//! construct programs; this module adds a plain-text syntax so kernels can
//! be written, stored, and diffed as `.s` files — and so the disassembler
//! output ([`Inst`]'s `Display`) round-trips back into a [`Program`].
//!
//! # Syntax
//!
//! ```text
//! ; comment (also `#`)
//! .data 1 2 3          ; append words to the data segment
//! .reserve 16          ; append 16 zero words
//! start:               ; label
//!     li   r1, 0
//!     ld   r2, 8(r1)   ; load: offset(base)
//!     addi r1, r1, 8
//!     blt  r1, r3, start
//!     j    done
//! done:
//!     halt
//! ```
//!
//! Branch/jump targets may be labels or absolute `@N` instruction indices
//! (the form the disassembler emits).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::builder::ProgramBuilder;
use crate::inst::{Cond, Inst, Opcode};
use crate::program::Program;
use crate::reg::Reg;

/// Error produced when assembling source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line of the problem.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn parse_reg(line: usize, token: &str) -> Result<Reg, AsmError> {
    let token = token.trim_end_matches(',');
    let rest = token
        .strip_prefix('r')
        .or_else(|| token.strip_prefix('R'))
        .ok_or_else(|| err(line, format!("expected register, got `{token}`")))?;
    let index: usize = rest
        .parse()
        .map_err(|_| err(line, format!("bad register `{token}`")))?;
    Reg::from_index(index).ok_or_else(|| err(line, format!("register out of range `{token}`")))
}

fn parse_imm(line: usize, token: &str) -> Result<i64, AsmError> {
    let token = token.trim_end_matches(',');
    let (neg, body) = match token.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, token),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse()
    }
    .map_err(|_| err(line, format!("bad immediate `{token}`")))?;
    Ok(if neg { -value } else { value })
}

/// `offset(base)` memory operand.
fn parse_mem(line: usize, token: &str) -> Result<(Reg, i64), AsmError> {
    let token = token.trim_end_matches(',');
    let open = token
        .find('(')
        .ok_or_else(|| err(line, format!("expected offset(base), got `{token}`")))?;
    if !token.ends_with(')') {
        return Err(err(line, format!("unclosed memory operand `{token}`")));
    }
    let offset = if open == 0 {
        0
    } else {
        parse_imm(line, &token[..open])?
    };
    let base = parse_reg(line, &token[open + 1..token.len() - 1])?;
    Ok((base, offset))
}

/// Assembles source text into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] pinpointing the offending line for unknown
/// mnemonics, malformed operands, duplicate or undefined labels.
///
/// # Example
///
/// ```
/// use mim_isa::{assemble, Vm, Reg};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = assemble("sum", r"
///     .data 5 7 11
///     li   r1, 0          ; address cursor
///     li   r2, 24         ; end
///     li   r3, 0          ; accumulator
/// top:
///     ld   r4, (r1)
///     add  r3, r3, r4
///     addi r1, r1, 8
///     blt  r1, r2, top
///     halt
/// ")?;
/// let mut vm = Vm::new(&program);
/// vm.run(None)?;
/// assert_eq!(vm.reg(Reg::R3), 23);
/// # Ok(())
/// # }
/// ```
pub fn assemble(name: &str, source: &str) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::named(name);
    let mut labels: HashMap<String, crate::builder::Label> = HashMap::new();
    let mut bound: HashMap<String, usize> = HashMap::new();

    let mut label_of = |b: &mut ProgramBuilder, name: &str| {
        *labels.entry(name.to_string()).or_insert_with(|| b.label())
    };

    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        let text = raw
            .split(';')
            .next()
            .unwrap_or("")
            .split('#')
            .next()
            .unwrap_or("")
            .trim();
        if text.is_empty() {
            continue;
        }

        // Labels (possibly followed by an instruction on the same line).
        let mut text = text;
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break; // not a label — could be inside an operand
            }
            if bound.insert(label.to_string(), line).is_some() {
                return Err(err(line, format!("label `{label}` defined twice")));
            }
            let l = label_of(&mut b, label);
            b.bind(l);
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }

        let mut parts = text.split_whitespace();
        let mnemonic = parts.next().expect("nonempty");
        let ops: Vec<&str> = parts.collect();
        let want = |n: usize| -> Result<(), AsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(err(
                    line,
                    format!("`{mnemonic}` expects {n} operands, got {}", ops.len()),
                ))
            }
        };

        macro_rules! rrr {
            ($method:ident) => {{
                want(3)?;
                let d = parse_reg(line, ops[0])?;
                let a = parse_reg(line, ops[1])?;
                let c = parse_reg(line, ops[2])?;
                b.$method(d, a, c);
            }};
        }
        macro_rules! rri {
            ($method:ident) => {{
                want(3)?;
                let d = parse_reg(line, ops[0])?;
                let a = parse_reg(line, ops[1])?;
                let imm = parse_imm(line, ops[2])?;
                b.$method(d, a, imm);
            }};
        }
        macro_rules! branch {
            ($cond:expr) => {{
                want(3)?;
                let a = parse_reg(line, ops[0])?;
                let c = parse_reg(line, ops[1])?;
                let target = branch_target(&mut b, &mut label_of, line, ops[2])?;
                b.br($cond, a, c, target);
            }};
        }

        match mnemonic.to_ascii_lowercase().as_str() {
            ".data" => {
                for op in &ops {
                    let v = parse_imm(line, op)?;
                    b.data_words(&[v]);
                }
            }
            ".reserve" => {
                want(1)?;
                let n = parse_imm(line, ops[0])?;
                if n < 0 {
                    return Err(err(line, "negative .reserve size"));
                }
                b.alloc_words(n as usize);
            }
            "add" => rrr!(add),
            "sub" => rrr!(sub),
            "and" => rrr!(and),
            "or" => rrr!(or),
            "xor" => rrr!(xor),
            "sll" => rrr!(sll),
            "srl" => rrr!(srl),
            "sra" => rrr!(sra),
            "slt" => rrr!(slt),
            "sltu" => rrr!(sltu),
            "mul" => rrr!(mul),
            "div" => rrr!(div),
            "rem" => rrr!(rem),
            "addi" => rri!(addi),
            "andi" => rri!(andi),
            "ori" => rri!(ori),
            "xori" => rri!(xori),
            "slli" => rri!(slli),
            "srli" => rri!(srli),
            "srai" => rri!(srai),
            "slti" => rri!(slti),
            "li" => {
                want(2)?;
                let d = parse_reg(line, ops[0])?;
                let imm = parse_imm(line, ops[1])?;
                b.li(d, imm);
            }
            "mv" => {
                want(2)?;
                let d = parse_reg(line, ops[0])?;
                let a = parse_reg(line, ops[1])?;
                b.mv(d, a);
            }
            "ld" => {
                want(2)?;
                let d = parse_reg(line, ops[0])?;
                let (base, off) = parse_mem(line, ops[1])?;
                b.ld(d, base, off);
            }
            "st" => {
                want(2)?;
                let v = parse_reg(line, ops[0])?;
                let (base, off) = parse_mem(line, ops[1])?;
                b.st(v, base, off);
            }
            "beq" => branch!(Cond::Eq),
            "bne" => branch!(Cond::Ne),
            "blt" => branch!(Cond::Lt),
            "bge" => branch!(Cond::Ge),
            "bltu" => branch!(Cond::LtU),
            "bgeu" => branch!(Cond::GeU),
            "j" | "jmp" => {
                want(1)?;
                let target = branch_target(&mut b, &mut label_of, line, ops[0])?;
                b.jmp(target);
            }
            "nop" => {
                want(0)?;
                b.nop();
            }
            "halt" => {
                want(0)?;
                b.halt();
            }
            other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
        }
    }

    b.try_build().map_err(|inst_index| {
        err(
            0,
            format!("instruction {inst_index} references an undefined label"),
        )
    })
}

fn branch_target(
    b: &mut ProgramBuilder,
    label_of: &mut impl FnMut(&mut ProgramBuilder, &str) -> crate::builder::Label,
    line: usize,
    token: &str,
) -> Result<crate::builder::Label, AsmError> {
    // `@N` absolute-index form (as emitted by the disassembler) is mapped
    // to a synthetic label bound lazily; since we cannot bind labels to
    // arbitrary positions post-hoc, absolute targets are only supported
    // for already-known positions via a name of the form `@N` — handled
    // by collecting them as named labels the caller must define with
    // `@N:`. In practice, prefer named labels.
    if token.starts_with('@') || !token.starts_with(|c: char| c.is_ascii_alphabetic() || c == '_') {
        if token.starts_with('@') {
            return Ok(label_of(b, token));
        }
        return Err(err(line, format!("bad branch target `{token}`")));
    }
    Ok(label_of(b, token))
}

/// Disassembles a program into text that [`assemble`] accepts (labels are
/// synthesized as `@N:` markers at every branch target).
///
/// # Example
///
/// ```
/// use mim_isa::{assemble, disassemble};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = assemble("t", "li r1, 5\nhalt\n")?;
/// let text = disassemble(&p);
/// let round = assemble("t", &text)?;
/// assert_eq!(p.text(), round.text());
/// # Ok(())
/// # }
/// ```
pub fn disassemble(program: &Program) -> String {
    use std::collections::HashSet;
    let mut targets: HashSet<u32> = HashSet::new();
    for inst in program.text() {
        if let Some(t) = inst.target() {
            targets.insert(t);
        }
    }
    let mut out = String::new();
    if !program.data().is_empty() {
        // Emit the data segment in chunks.
        for chunk in program.data().chunks(8) {
            out.push_str(".data");
            for w in chunk {
                out.push_str(&format!(" {w}"));
            }
            out.push('\n');
        }
    }
    for (i, inst) in program.text().iter().enumerate() {
        if targets.contains(&(i as u32)) {
            out.push_str(&format!("@{i}:\n"));
        }
        out.push_str(&format!("    {}\n", render(inst)));
    }
    out
}

/// Renders one instruction in assembler (not `Display`) syntax.
fn render(inst: &Inst) -> String {
    use Opcode::*;
    let (d, a, bb, imm) = (inst.dst, inst.src1, inst.src2, inst.imm);
    match inst.opcode {
        Add => format!("add {d}, {a}, {bb}"),
        Sub => format!("sub {d}, {a}, {bb}"),
        And => format!("and {d}, {a}, {bb}"),
        Or => format!("or {d}, {a}, {bb}"),
        Xor => format!("xor {d}, {a}, {bb}"),
        Sll => format!("sll {d}, {a}, {bb}"),
        Srl => format!("srl {d}, {a}, {bb}"),
        Sra => format!("sra {d}, {a}, {bb}"),
        Slt => format!("slt {d}, {a}, {bb}"),
        SltU => format!("sltu {d}, {a}, {bb}"),
        Mul => format!("mul {d}, {a}, {bb}"),
        Div => format!("div {d}, {a}, {bb}"),
        Rem => format!("rem {d}, {a}, {bb}"),
        Addi => format!("addi {d}, {a}, {imm}"),
        Andi => format!("andi {d}, {a}, {imm}"),
        Ori => format!("ori {d}, {a}, {imm}"),
        Xori => format!("xori {d}, {a}, {imm}"),
        Slli => format!("slli {d}, {a}, {imm}"),
        Srli => format!("srli {d}, {a}, {imm}"),
        Srai => format!("srai {d}, {a}, {imm}"),
        Slti => format!("slti {d}, {a}, {imm}"),
        Li => format!("li {d}, {imm}"),
        Ld => format!("ld {d}, {imm}({a})"),
        St => format!("st {a}, {imm}({bb})"),
        Br(c) => format!("b{} {a}, {bb}, @{imm}", c.mnemonic()),
        J => format!("j @{imm}"),
        Nop => "nop".to_string(),
        Halt => "halt".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::Vm;

    #[test]
    fn assembles_and_runs_a_loop() {
        let p = assemble(
            "sum",
            r"
            .data 1 2 3 4 5
            li r1, 0
            li r2, 40
            li r3, 0
        top:
            ld r4, (r1)
            add r3, r3, r4
            addi r1, r1, 8
            blt r1, r2, top
            halt
        ",
        )
        .unwrap();
        let mut vm = Vm::new(&p);
        vm.run(None).unwrap();
        assert_eq!(vm.reg(Reg::R3), 15);
    }

    #[test]
    fn hex_and_negative_immediates() {
        let p = assemble("imm", "li r1, 0x10\naddi r2, r1, -3\nhalt\n").unwrap();
        let mut vm = Vm::new(&p);
        vm.run(None).unwrap();
        assert_eq!(vm.reg(Reg::R1), 16);
        assert_eq!(vm.reg(Reg::R2), 13);
    }

    #[test]
    fn memory_operands_with_and_without_offset() {
        let p = assemble(
            "mem",
            ".data 7 9\nli r1, 0\nld r2, (r1)\nld r3, 8(r1)\nst r3, (r1)\nhalt\n",
        )
        .unwrap();
        let mut vm = Vm::new(&p);
        vm.run(None).unwrap();
        assert_eq!(vm.reg(Reg::R2), 7);
        assert_eq!(vm.reg(Reg::R3), 9);
        assert_eq!(vm.memory()[0], 9);
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = assemble("bad", "li r1, 1\nfrob r2, r3\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("frob"));

        let e = assemble("bad", "li r99, 1\n").unwrap_err();
        assert_eq!(e.line, 1);

        let e = assemble("bad", "add r1, r2\n").unwrap_err();
        assert!(e.message.contains("expects 3 operands"));
    }

    #[test]
    fn duplicate_and_undefined_labels_are_errors() {
        let e = assemble("dup", "x:\nnop\nx:\nhalt\n").unwrap_err();
        assert!(e.message.contains("defined twice"));

        let e = assemble("undef", "j nowhere\nhalt\n").unwrap_err();
        assert!(e.message.contains("undefined label"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let p = assemble(
            "c",
            "; leading comment\n\n   # another\nli r1, 1 ; trailing\nhalt\n",
        )
        .unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn disassemble_round_trips_every_kernel_shape() {
        // Build a program exercising every opcode, then round-trip.
        let mut b = ProgramBuilder::named("all");
        b.data_words(&[1, 2, 3]);
        let l = b.label();
        b.add(Reg::R1, Reg::R2, Reg::R3);
        b.sub(Reg::R1, Reg::R2, Reg::R3);
        b.and(Reg::R1, Reg::R2, Reg::R3);
        b.or(Reg::R1, Reg::R2, Reg::R3);
        b.xor(Reg::R1, Reg::R2, Reg::R3);
        b.sll(Reg::R1, Reg::R2, Reg::R3);
        b.srl(Reg::R1, Reg::R2, Reg::R3);
        b.sra(Reg::R1, Reg::R2, Reg::R3);
        b.slt(Reg::R1, Reg::R2, Reg::R3);
        b.sltu(Reg::R1, Reg::R2, Reg::R3);
        b.addi(Reg::R1, Reg::R2, -5);
        b.andi(Reg::R1, Reg::R2, 255);
        b.ori(Reg::R1, Reg::R2, 1);
        b.xori(Reg::R1, Reg::R2, 1);
        b.slli(Reg::R1, Reg::R2, 3);
        b.srli(Reg::R1, Reg::R2, 3);
        b.srai(Reg::R1, Reg::R2, 3);
        b.slti(Reg::R1, Reg::R2, 10);
        b.li(Reg::R1, 42);
        b.mul(Reg::R1, Reg::R2, Reg::R3);
        b.div(Reg::R1, Reg::R2, Reg::R3);
        b.rem(Reg::R1, Reg::R2, Reg::R3);
        b.ld(Reg::R1, Reg::R2, 8);
        b.st(Reg::R1, Reg::R2, 8);
        b.bind(l);
        b.beq(Reg::R1, Reg::R2, l);
        b.jmp(l);
        b.nop();
        b.halt();
        let p = b.build();
        let text = disassemble(&p);
        let round = assemble("all", &text).unwrap();
        assert_eq!(p.text(), round.text());
        assert_eq!(p.data(), round.data());
    }

    #[test]
    fn mibench_style_program_round_trips() {
        // A realistic control-flow shape: nested loops plus branches.
        let src = r"
            .data 9 8 7 6 5 4 3 2 1 0
            .reserve 10
            li r1, 0
        outer:
            li r2, 0
        inner:
            slli r3, r2, 3
            ld r4, (r3)
            addi r5, r4, 1
            st r5, 80(r3)
            addi r2, r2, 1
            slti r6, r2, 10
            bne r6, r0, inner
            addi r1, r1, 1
            slti r6, r1, 3
            bne r6, r0, outer
            halt
        ";
        let p = assemble("nested", src).unwrap();
        let mut vm = Vm::new(&p);
        assert!(vm.run(Some(100_000)).unwrap().halted());
        let text = disassemble(&p);
        let round = assemble("nested", &text).unwrap();
        let mut vm2 = Vm::new(&round);
        vm2.run(Some(100_000)).unwrap();
        assert_eq!(vm.memory(), vm2.memory());
    }
}
