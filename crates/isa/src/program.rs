//! Executable programs: text segment, initial data image, and metadata.

use crate::inst::Inst;

/// Size of a machine word (and of every load/store access) in bytes.
pub const WORD_BYTES: u64 = 8;

/// Size of one instruction in bytes, for instruction-cache addressing.
pub(crate) const INST_BYTES: u64 = 4;

/// A complete executable program: instructions plus an initial data image.
///
/// Programs are produced by [`ProgramBuilder`](crate::ProgramBuilder) and
/// consumed by the functional [`Vm`](crate::Vm), the profiler, and the
/// pipeline simulator. Data memory is word-granular (8-byte words) but
/// byte-addressed so that cache simulation sees realistic addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    text: Vec<Inst>,
    data: Vec<i64>,
    name: String,
}

impl Program {
    /// Creates a program from raw parts.
    ///
    /// Prefer [`ProgramBuilder`](crate::ProgramBuilder) in application code;
    /// this constructor exists for tests and for program transformations
    /// (e.g. the compiler passes in `mim-workloads`).
    pub fn from_parts(name: impl Into<String>, text: Vec<Inst>, data: Vec<i64>) -> Program {
        Program {
            text,
            data,
            name: name.into(),
        }
    }

    /// Human-readable program name (benchmark name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction sequence (text segment).
    pub fn text(&self) -> &[Inst] {
        &self.text
    }

    /// The initial data image, in 8-byte words.
    pub fn data(&self) -> &[i64] {
        &self.data
    }

    /// Number of instructions in the text segment.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// True if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// Size of the data segment in bytes.
    pub fn data_bytes(&self) -> u64 {
        self.data.len() as u64 * WORD_BYTES
    }

    /// Byte address of the instruction at index `pc`, for I-cache modeling.
    ///
    /// Instructions are 4 bytes each, so a 64-byte cache line holds 16
    /// instructions — comparable to the RISC binaries the paper profiles.
    #[inline]
    pub fn inst_addr(pc: u32) -> u64 {
        u64::from(pc) * INST_BYTES
    }

    /// Returns the instruction at `pc`, if in range.
    #[inline]
    pub fn fetch(&self, pc: u32) -> Option<&Inst> {
        self.text.get(pc as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Inst, Opcode};
    use crate::reg::Reg;

    #[test]
    fn accessors_reflect_parts() {
        let text = vec![
            Inst::NOP,
            Inst {
                opcode: Opcode::Halt,
                dst: Reg::R0,
                src1: Reg::R0,
                src2: Reg::R0,
                imm: 0,
            },
        ];
        let p = Program::from_parts("t", text.clone(), vec![1, 2, 3]);
        assert_eq!(p.name(), "t");
        assert_eq!(p.text(), &text[..]);
        assert_eq!(p.data(), &[1, 2, 3]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.data_bytes(), 24);
    }

    #[test]
    fn inst_addresses_are_4_byte_spaced() {
        assert_eq!(Program::inst_addr(0), 0);
        assert_eq!(Program::inst_addr(1), 4);
        assert_eq!(Program::inst_addr(16), 64); // next I-cache line
    }

    #[test]
    fn fetch_checks_bounds() {
        let p = Program::from_parts("t", vec![Inst::NOP], vec![]);
        assert!(p.fetch(0).is_some());
        assert!(p.fetch(1).is_none());
    }
}
