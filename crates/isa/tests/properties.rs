//! Property-based tests for the ISA: assembler/disassembler round trips
//! and VM execution invariants over random programs.

use mim_isa::{assemble, disassemble, Program, ProgramBuilder, Reg, Vm};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Rrr(u8, u8, u8, u8), // opcode-select, dst, a, b
    Rri(u8, u8, u8, i32),
    Li(u8, i32),
    Ld(u8, u8),
    St(u8, u8),
    Br(u8, u8, u8, u8), // cond-select, a, b, forward skip
    J(u8),              // forward skip
}

/// Straight-line operations only (no control flow), for properties that
/// need every instruction to retire exactly once.
fn linear_op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..13, 1u8..28, 0u8..28, 0u8..28).prop_map(|(o, d, a, b)| Op::Rrr(o, d, a, b)),
        (0u8..8, 1u8..28, 0u8..28, -1000i32..1000).prop_map(|(o, d, a, i)| Op::Rri(o, d, a, i)),
        (1u8..28, -100_000i32..100_000).prop_map(|(d, i)| Op::Li(d, i)),
        (1u8..28, 0u8..16).prop_map(|(d, s)| Op::Ld(d, s)),
        (0u8..28, 0u8..16).prop_map(|(v, s)| Op::St(v, s)),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => linear_op_strategy(),
        1 => (0u8..6, 0u8..28, 0u8..28, 0u8..8).prop_map(|(c, a, b, s)| Op::Br(c, a, b, s)),
        1 => (0u8..8).prop_map(Op::J),
    ]
}

/// Builds a safe random program: registers initialized, divides excluded
/// from Rrr (no trap hazards), all memory inside a 16-word arena, and all
/// control flow strictly forward (guaranteed termination).
fn build(ops: &[Op]) -> Program {
    let mut b = ProgramBuilder::named("random");
    b.alloc_words(16);
    let base = Reg::R30;
    b.li(base, 0);
    for i in 0..28 {
        b.li(Reg::from_index(i).unwrap(), i as i64 + 1);
    }
    let reg = |i: u8| Reg::from_index(i as usize).unwrap();
    // One label per op position plus one for the final halt; branch
    // targets are always forward, so every path reaches `halt`.
    let labels: Vec<_> = (0..=ops.len()).map(|_| b.label()).collect();
    let target = |i: usize, skip: u8| labels[(i + 1 + skip as usize).min(ops.len())];
    for (i, op) in ops.iter().enumerate() {
        b.bind(labels[i]);
        match *op {
            Op::Rrr(o, d, a, c) => {
                let (d, a, c) = (reg(d), reg(a), reg(c));
                match o {
                    0 => b.add(d, a, c),
                    1 => b.sub(d, a, c),
                    2 => b.and(d, a, c),
                    3 => b.or(d, a, c),
                    4 => b.xor(d, a, c),
                    5 => b.sll(d, a, c),
                    6 => b.srl(d, a, c),
                    7 => b.sra(d, a, c),
                    8 => b.slt(d, a, c),
                    9 => b.sltu(d, a, c),
                    10 => b.mul(d, a, c),
                    11 => b.rem(d, a, reg(1)), // r1 initialized nonzero... may be overwritten
                    _ => b.add(d, a, c),
                }
            }
            Op::Rri(o, d, a, i) => {
                let (d, a, i) = (reg(d), reg(a), i64::from(i));
                match o {
                    0 => b.addi(d, a, i),
                    1 => b.andi(d, a, i),
                    2 => b.ori(d, a, i),
                    3 => b.xori(d, a, i),
                    4 => b.slli(d, a, i & 63),
                    5 => b.srli(d, a, i & 63),
                    6 => b.srai(d, a, i & 63),
                    _ => b.slti(d, a, i),
                }
            }
            Op::Li(d, i) => b.li(reg(d), i64::from(i)),
            Op::Ld(d, s) => b.ld(reg(d), base, i64::from(s) * 8),
            Op::St(v, s) => b.st(reg(v), base, i64::from(s) * 8),
            Op::Br(c, a, x, s) => {
                let t = target(i, s);
                let (a, x) = (reg(a), reg(x));
                match c {
                    0 => b.beq(a, x, t),
                    1 => b.bne(a, x, t),
                    2 => b.blt(a, x, t),
                    3 => b.bge(a, x, t),
                    4 => b.bltu(a, x, t),
                    _ => b.bgeu(a, x, t),
                }
            }
            Op::J(s) => b.jmp(target(i, s)),
        }
    }
    b.bind(labels[ops.len()]);
    b.halt();
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// assemble(disassemble(p)) reproduces the exact instruction stream
    /// and data segment.
    #[test]
    fn disassembly_round_trips(ops in proptest::collection::vec(op_strategy(), 1..150)) {
        // rem with a potentially-overwritten r1 could fault at run time,
        // but round-tripping is purely syntactic and must always work.
        let p = build(&ops);
        let text = disassemble(&p);
        let round = assemble("random", &text).unwrap();
        prop_assert_eq!(p.text(), round.text());
        prop_assert_eq!(p.data(), round.data());
    }

    /// Two runs of the VM over the same program are bit-identical.
    #[test]
    fn vm_is_deterministic(ops in proptest::collection::vec(op_strategy(), 1..150)) {
        let p = build(&ops);
        let run = |p: &Program| {
            let mut vm = Vm::new(p);
            let outcome = vm.run(Some(100_000));
            (outcome.ok(), vm.memory().to_vec(),
             (0..32).map(|i| vm.reg(Reg::from_index(i).unwrap())).collect::<Vec<_>>())
        };
        prop_assert_eq!(run(&p), run(&p));
    }

    /// The VM retires exactly the number of non-halt instructions for
    /// straight-line programs that do not fault.
    #[test]
    fn straight_line_retires_every_instruction(ops in proptest::collection::vec(linear_op_strategy(), 1..100)) {
        let p = build(&ops);
        let mut vm = Vm::new(&p);
        if let Ok(outcome) = vm.run(None) {
            prop_assert!(outcome.halted());
            prop_assert_eq!(outcome.instructions(), p.len() as u64 - 1);
        }
    }

    /// Forward-only control flow guarantees termination: every non-faulting
    /// run halts, retiring at most the static instruction count (taken
    /// branches skip instructions, so strictly fewer when any branch fires).
    #[test]
    fn forward_programs_always_halt(ops in proptest::collection::vec(op_strategy(), 1..100)) {
        let p = build(&ops);
        let mut vm = Vm::new(&p);
        if let Ok(outcome) = vm.run(Some(p.len() as u64 + 1)) {
            prop_assert!(outcome.halted(), "forward control flow must reach halt");
            prop_assert!(outcome.instructions() < p.len() as u64);
        }
    }

    /// asm -> disasm -> asm is a fixed point: assembling the disassembly
    /// and disassembling again reproduces the identical source text (so
    /// `.s` files, including branch targets, survive arbitrary round
    /// trips).
    #[test]
    fn asm_disasm_asm_is_a_fixed_point(ops in proptest::collection::vec(op_strategy(), 1..150)) {
        let p = build(&ops);
        let text1 = disassemble(&p);
        let p2 = assemble("random", &text1).unwrap();
        let text2 = disassemble(&p2);
        prop_assert_eq!(&text1, &text2);
        prop_assert_eq!(p.text(), p2.text());
        prop_assert_eq!(p.data(), p2.data());
    }

    /// Trace events are well-formed: memory ops carry addresses, control
    /// ops carry directions, and next_pc chains correctly for
    /// straight-line code.
    #[test]
    fn trace_events_are_well_formed(ops in proptest::collection::vec(op_strategy(), 1..100)) {
        let p = build(&ops);
        let mut vm = Vm::new(&p);
        let mut expected_pc = 0u32;
        let mut ok = true;
        let result = vm.run_with(None, |ev| {
            ok &= ev.pc == expected_pc;
            expected_pc = ev.next_pc;
            match ev.class {
                mim_isa::InstClass::Load | mim_isa::InstClass::Store => {
                    ok &= ev.eff_addr.is_some();
                }
                mim_isa::InstClass::CondBranch | mim_isa::InstClass::Jump => {
                    ok &= ev.taken.is_some();
                }
                _ => {
                    ok &= ev.eff_addr.is_none() && ev.taken.is_none();
                }
            }
        });
        if result.is_ok() {
            prop_assert!(ok, "malformed trace event");
        }
    }
}
