//! SPEC CPU2006-like memory-intensive kernels (paper Figure 6).
//!
//! The paper validates its model on "a number of SPEC CPU2006 benchmarks
//! which are more memory-intensive than the MiBench applications". We
//! reproduce that pressure with six kernels whose working sets exceed the
//! 512 KB L2 of the default machine: pointer chasing (`mcf`-like),
//! streaming sweeps (`libquantum`-like), block sorting (`bzip2`-like),
//! dynamic-programming recurrences (`hmmer`-like), bit-board search
//! (`sjeng`-like) and lattice arithmetic (`milc`-like).

use mim_isa::{Program, ProgramBuilder, Reg::*};

use crate::util::SplitMix64;
use crate::workload::{Workload, WorkloadSize};

/// All six SPEC-like workloads.
pub fn all() -> Vec<Workload> {
    vec![
        mcf_like(),
        libquantum_like(),
        bzip2_like(),
        hmmer_like(),
        sjeng_like(),
        milc_like(),
    ]
}

fn footprint_words(size: WorkloadSize) -> usize {
    // 1 MB at Tiny, 2 MB at Small and Large: always larger than L2.
    match size {
        WorkloadSize::Tiny => 64 * 1024,
        _ => 256 * 1024,
    }
}

/// `mcf`-like: random pointer chasing through a permutation cycle spanning
/// a multi-megabyte array — every load is a dependent L2/memory miss.
pub fn mcf_like() -> Workload {
    Workload::new("mcf_like", build_mcf)
}

fn build_mcf(size: WorkloadSize) -> Program {
    let n = footprint_words(size);
    let steps = 2_500 * size.scale() as usize;
    // Sattolo's algorithm: a single cycle covering all n slots.
    let mut rng = SplitMix64::new(0x3cf);
    let mut next: Vec<i64> = (0..n as i64).collect();
    let mut i = n - 1;
    while i > 0 {
        let j = rng.below(i as u64) as usize;
        next.swap(i, j);
        i -= 1;
    }

    let mut b = ProgramBuilder::named("mcf_like");
    let arr = b.data_words(&next);
    let result = b.alloc_words(1);

    let (cur, acc, k, lim, addr, tmp) = (R1, R2, R3, R4, R5, R6);
    b.li(cur, 0);
    b.li(acc, 0);
    b.li(k, 0);
    b.li(lim, steps as i64);
    let top = b.here();
    b.slli(addr, cur, 3);
    b.addi(addr, addr, arr as i64);
    b.ld(cur, addr, 0); // serial dependent load
    b.add(acc, acc, cur);
    b.addi(k, k, 1);
    b.blt(k, lim, top);
    b.li(tmp, result as i64);
    b.st(acc, tmp, 0);
    b.halt();
    b.build()
}

/// `libquantum`-like: repeated streaming passes that toggle quantum-state
/// amplitudes (XOR) over an array larger than the L2 — pure bandwidth.
pub fn libquantum_like() -> Workload {
    Workload::new("libquantum_like", build_libquantum)
}

fn build_libquantum(size: WorkloadSize) -> Program {
    let n = footprint_words(size);
    let passes = (size.scale() as usize / 8).max(1);
    let mut rng = SplitMix64::new(0x11b);
    let state: Vec<i64> = (0..n).map(|_| rng.next_u64() as i64).collect();

    let mut b = ProgramBuilder::named("libquantum_like");
    let arr = b.data_words(&state);

    let (p, e, v, pass, npass, mask) = (R1, R2, R3, R4, R5, R6);
    b.li(pass, 0);
    b.li(npass, passes as i64);
    b.li(mask, 0x5555_5555);
    let pass_loop = b.here();
    b.li(p, arr as i64);
    b.li(e, (arr + 8 * n as u64) as i64);
    let top = b.here();
    b.ld(v, p, 0);
    b.xor(v, v, mask);
    b.addi(v, v, 1);
    b.st(v, p, 0);
    b.addi(p, p, 8);
    b.blt(p, e, top);
    b.addi(pass, pass, 1);
    b.blt(pass, npass, pass_loop);
    b.halt();
    b.build()
}

/// `bzip2`-like: bucket (counting) sort of a large byte-expanded block —
/// histogram construction, prefix sums, and a scatter pass with
/// data-dependent store addresses.
pub fn bzip2_like() -> Workload {
    Workload::new("bzip2_like", build_bzip2)
}

fn build_bzip2(size: WorkloadSize) -> Program {
    let n = (footprint_words(size) / 2).min(40_000 * size.scale() as usize);
    let mut rng = SplitMix64::new(0xb21b2);
    let data: Vec<i64> = (0..n).map(|_| rng.below(256) as i64).collect();

    let mut b = ProgramBuilder::named("bzip2_like");
    let src = b.data_words(&data);
    let counts = b.alloc_words(256);
    let dst = b.alloc_words(n);

    let (i, nreg, addr, tmp, v, c) = (R1, R2, R3, R4, R5, R6);
    let (sum, k, lim) = (R7, R8, R9);

    b.li(nreg, n as i64);
    // histogram
    b.li(i, 0);
    let hist = b.here();
    b.slli(addr, i, 3);
    b.addi(addr, addr, src as i64);
    b.ld(v, addr, 0);
    b.slli(addr, v, 3);
    b.addi(addr, addr, counts as i64);
    b.ld(c, addr, 0);
    b.addi(c, c, 1);
    b.st(c, addr, 0);
    b.addi(i, i, 1);
    b.blt(i, nreg, hist);
    // exclusive prefix sum
    b.li(sum, 0);
    b.li(k, 0);
    b.li(lim, 256);
    let scan = b.here();
    b.slli(addr, k, 3);
    b.addi(addr, addr, counts as i64);
    b.ld(c, addr, 0);
    b.st(sum, addr, 0);
    b.add(sum, sum, c);
    b.addi(k, k, 1);
    b.blt(k, lim, scan);
    // scatter
    b.li(i, 0);
    let scatter = b.here();
    b.slli(addr, i, 3);
    b.addi(addr, addr, src as i64);
    b.ld(v, addr, 0);
    b.slli(addr, v, 3);
    b.addi(addr, addr, counts as i64);
    b.ld(c, addr, 0);
    b.addi(tmp, c, 1);
    b.st(tmp, addr, 0);
    b.slli(addr, c, 3);
    b.addi(addr, addr, dst as i64);
    b.st(v, addr, 0);
    b.addi(i, i, 1);
    b.blt(i, nreg, scatter);
    b.halt();
    b.build()
}

/// `hmmer`-like: profile-HMM Viterbi inner loop — three dynamic-programming
/// arrays updated per cell with adds and max-selects over a long model,
/// mixing regular loads with branchy maxima.
pub fn hmmer_like() -> Workload {
    Workload::new("hmmer_like", build_hmmer)
}

fn build_hmmer(size: WorkloadSize) -> Program {
    let model = 2_000usize;
    let rows = 2 * size.scale() as usize;
    let mut rng = SplitMix64::new(0x4773);
    let emit: Vec<i64> = (0..model).map(|_| rng.signed(40)).collect();

    let mut b = ProgramBuilder::named("hmmer_like");
    let emit_b = b.data_words(&emit);
    let m_row = b.alloc_words(model + 1);
    let i_row = b.alloc_words(model + 1);

    let (r, nr, j, nj, addr) = (R1, R2, R3, R4, R5);
    let (mprev, iv, ev, best, tmp) = (R6, R7, R8, R9, R10);
    let (mbase, ibase, ebase, gap) = (R11, R12, R13, R14);

    b.li(gap, -3);
    b.li(r, 0);
    b.li(nr, rows as i64);
    b.li(mbase, m_row as i64);
    b.li(ibase, i_row as i64);
    b.li(ebase, emit_b as i64);
    let row_loop = b.here();
    b.li(j, 1);
    b.li(nj, model as i64);
    let cell = b.here();
    b.slli(addr, j, 3);
    // mprev = m[j-1]; iv = i[j]; ev = emit[(j + r) mod model]
    b.add(tmp, addr, mbase);
    b.ld(mprev, tmp, -8);
    b.add(tmp, addr, ibase);
    b.ld(iv, tmp, 0);
    b.add(tmp, j, r);
    let nowrap = b.label();
    b.blt(tmp, nj, nowrap);
    b.sub(tmp, tmp, nj);
    b.bind(nowrap);
    b.slli(tmp, tmp, 3);
    b.add(tmp, tmp, ebase);
    b.ld(ev, tmp, 0);
    // best = max(mprev + ev, iv + gap)
    b.add(best, mprev, ev);
    b.add(iv, iv, gap);
    let keep = b.label();
    b.bge(best, iv, keep);
    b.mv(best, iv);
    b.bind(keep);
    // decay to keep values bounded over arbitrarily many rows
    b.srai(best, best, 1);
    // m[j] = best; i[j] = max(best + gap, iv)
    b.add(tmp, addr, mbase);
    b.st(best, tmp, 0);
    b.add(best, best, gap);
    let keep2 = b.label();
    b.bge(best, iv, keep2);
    b.mv(best, iv);
    b.bind(keep2);
    b.add(tmp, addr, ibase);
    b.st(best, tmp, 0);
    b.addi(j, j, 1);
    b.blt(j, nj, cell);
    b.addi(r, r, 1);
    b.blt(r, nr, row_loop);
    b.halt();
    b.build()
}

/// `sjeng`-like: game-tree bit-board evaluation — population counts,
/// bit extraction loops and table lookups with hard-to-predict branches.
pub fn sjeng_like() -> Workload {
    Workload::new("sjeng_like", build_sjeng)
}

fn build_sjeng(size: WorkloadSize) -> Program {
    let positions = 1_500 * size.scale() as usize;
    let mut rng = SplitMix64::new(0x57e6);
    let boards: Vec<i64> = (0..positions).map(|_| rng.next_u64() as i64).collect();
    let ptable: Vec<i64> = (0..256).map(|_| rng.signed(50)).collect();

    let mut b = ProgramBuilder::named("sjeng_like");
    let src = b.data_words(&boards);
    let tab = b.data_words(&ptable);
    let result = b.alloc_words(1);

    let (p, e, board, score) = (R1, R2, R3, R4);
    let (bits, byte, tmp, addr, total, zero) = (R5, R6, R7, R8, R9, R0);
    let count = R10;

    b.li(zero, 0);
    b.li(total, 0);
    b.li(p, src as i64);
    b.li(e, (src + 8 * positions as u64) as i64);
    let top = b.here();
    b.ld(board, p, 0);
    // popcount via Kernighan loop (data-dependent trip count)
    b.li(count, 0);
    b.mv(bits, board);
    let pc_loop = b.here();
    let pc_done = b.label();
    b.beq(bits, zero, pc_done);
    b.addi(tmp, bits, -1);
    b.and(bits, bits, tmp);
    b.addi(count, count, 1);
    b.jmp(pc_loop);
    b.bind(pc_done);
    // material-ish score: sum piece table over 4 bytes of the board
    b.li(score, 0);
    b.andi(byte, board, 255);
    b.slli(addr, byte, 3);
    b.addi(addr, addr, tab as i64);
    b.ld(tmp, addr, 0);
    b.add(score, score, tmp);
    b.srli(byte, board, 8);
    b.andi(byte, byte, 255);
    b.slli(addr, byte, 3);
    b.addi(addr, addr, tab as i64);
    b.ld(tmp, addr, 0);
    b.add(score, score, tmp);
    b.srli(byte, board, 16);
    b.andi(byte, byte, 255);
    b.slli(addr, byte, 3);
    b.addi(addr, addr, tab as i64);
    b.ld(tmp, addr, 0);
    b.add(score, score, tmp);
    b.srli(byte, board, 24);
    b.andi(byte, byte, 255);
    b.slli(addr, byte, 3);
    b.addi(addr, addr, tab as i64);
    b.ld(tmp, addr, 0);
    b.add(score, score, tmp);
    // weight by mobility (popcount), data-dependent sign
    b.mul(score, score, count);
    let sub = b.label();
    let acc_done = b.label();
    b.li(tmp, 32);
    b.bge(count, tmp, sub);
    b.add(total, total, score);
    b.jmp(acc_done);
    b.bind(sub);
    b.sub(total, total, score);
    b.bind(acc_done);
    b.addi(p, p, 8);
    b.blt(p, e, top);
    b.li(tmp, result as i64);
    b.st(total, tmp, 0);
    b.halt();
    b.build()
}

/// `milc`-like: lattice QCD flavor — streaming fused multiply/add sweeps
/// combining three large arrays (`c[i] = (a[i]*w1 + b[i]*w2) >> s`), the
/// multiply-dense bandwidth-bound pattern of scientific codes.
pub fn milc_like() -> Workload {
    Workload::new("milc_like", build_milc)
}

fn build_milc(size: WorkloadSize) -> Program {
    let n = footprint_words(size) / 6;
    let passes = 2usize;
    let mut rng = SplitMix64::new(0x312c);
    let a: Vec<i64> = (0..n).map(|_| rng.signed(1 << 20)).collect();
    let bb: Vec<i64> = (0..n).map(|_| rng.signed(1 << 20)).collect();

    let mut b = ProgramBuilder::named("milc_like");
    let ab = b.data_words(&a);
    let bbuf = b.data_words(&bb);
    let cb = b.alloc_words(n);

    let (i, nreg, addr, av, bv, cv) = (R1, R2, R3, R4, R5, R6);
    let (w1, w2, pass, npass, tmp) = (R7, R8, R9, R10, R11);

    b.li(w1, 331);
    b.li(w2, 173);
    b.li(pass, 0);
    b.li(npass, passes as i64);
    b.li(nreg, n as i64);
    let pass_loop = b.here();
    b.li(i, 0);
    let top = b.here();
    b.slli(addr, i, 3);
    b.addi(tmp, addr, ab as i64);
    b.ld(av, tmp, 0);
    b.addi(tmp, addr, bbuf as i64);
    b.ld(bv, tmp, 0);
    b.mul(av, av, w1);
    b.mul(bv, bv, w2);
    b.add(cv, av, bv);
    b.srai(cv, cv, 9);
    b.addi(tmp, addr, cb as i64);
    b.st(cv, tmp, 0);
    b.addi(i, i, 1);
    b.blt(i, nreg, top);
    b.addi(pass, pass, 1);
    b.blt(pass, npass, pass_loop);
    b.halt();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mim_isa::Vm;

    #[test]
    fn there_are_6_spec_kernels_with_unique_names() {
        let ws = all();
        assert_eq!(ws.len(), 6);
        let mut names: Vec<&str> = ws.iter().map(|w| w.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn every_spec_kernel_halts_at_tiny() {
        for w in all() {
            let p = w.program(WorkloadSize::Tiny);
            let mut vm = Vm::new(&p);
            let outcome = vm
                .run(Some(20_000_000))
                .unwrap_or_else(|e| panic!("{} faulted: {e}", w.name()));
            assert!(outcome.halted(), "{} did not halt", w.name());
        }
    }

    #[test]
    fn mcf_chase_visits_distinct_slots() {
        // Sattolo permutation is a single cycle: the first `steps` visits
        // (steps < n) must all be distinct.
        let p = build_mcf(WorkloadSize::Tiny);
        let n = footprint_words(WorkloadSize::Tiny);
        let steps = 2_500 * WorkloadSize::Tiny.scale() as usize;
        assert!(steps < n);
        let next = &p.data()[0..n];
        let mut seen = std::collections::HashSet::new();
        let mut cur = 0i64;
        for _ in 0..steps {
            cur = next[cur as usize];
            assert!(seen.insert(cur), "cycle shorter than steps");
        }
    }

    #[test]
    fn bzip2_sorts_by_counting() {
        let p = build_bzip2(WorkloadSize::Tiny);
        let mut vm = Vm::new(&p);
        assert!(vm.run(Some(50_000_000)).unwrap().halted());
        let mem = vm.memory();
        let n = mem.len() - 256 - {
            // src length equals dst length
            (mem.len() - 256) / 2
        };
        let dst = &mem[mem.len() - n..];
        assert!(dst.windows(2).all(|w| w[0] <= w[1]), "scatter not sorted");
    }
}
