//! # mim-workloads — benchmark kernels and compiler passes
//!
//! The ISPASS 2012 paper evaluates its model on 19 MiBench benchmarks
//! (`large` inputs) plus a memory-intensive SPEC CPU2006 subset, and its
//! second case study (§6.2) recompiles benchmarks with different gcc
//! options. We cannot ship those binaries or a cross-compiler, so this
//! crate rebuilds the equivalent substrate from scratch:
//!
//! * [`mibench`] — 19 kernels written directly in the MIM virtual ISA,
//!   one per MiBench program, implementing the *same algorithm class*
//!   (ADPCM codec, Dijkstra, SHA-1 rounds, Floyd–Steinberg dithering, …) so
//!   that instruction mixes, dependency-distance profiles, branch behaviour
//!   and locality are genuinely diverse;
//! * [`spec`] — 6 memory-intensive SPEC-like kernels (pointer chasing,
//!   streaming, block sorting, …) for the Figure 6 validation;
//! * [`synth`] — statistical workload synthesis (generate a program from
//!   an instruction mix + dependency-distance recipe, the §7.2
//!   related-work technique); [`mibench::extended`] adds four kernels
//!   beyond the paper's 19 (`basicmath`, `bitcount`, `crc32`, `fft`);
//! * [`opt`] — compiler passes over ISA programs: a dependency-aware
//!   basic-block **list scheduler** (the `-fschedule-insns` stand-in) and a
//!   counted-loop **unroller with register renaming**
//!   (`-funroll-loops`), used by the Figure 8 case study.
//!
//! Every kernel is exposed as a [`Workload`] that can be instantiated at
//! three [`WorkloadSize`]s (unit tests use `Tiny`; the experiment harness
//! uses `Small`/`Large`).
//!
//! ## Example
//!
//! ```
//! use mim_workloads::{mibench, WorkloadSize};
//! use mim_isa::Vm;
//!
//! let program = mibench::sha().program(WorkloadSize::Tiny);
//! let mut vm = Vm::new(&program);
//! let outcome = vm.run(Some(10_000_000)).expect("kernel must not fault");
//! assert!(outcome.halted());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mibench;
pub mod opt;
pub mod spec;
pub mod synth;
mod util;
mod workload;

pub use workload::{Workload, WorkloadSize};
