//! Compiler passes over ISA programs (the §6.2 case-study substrate).
//!
//! The paper's second application recompiles benchmarks with
//! `-O3 -fno-schedule-insns` and `-O3 -funroll-loops` and studies the CPI
//! stacks. We reproduce the substrate with two real passes over our ISA:
//!
//! * [`schedule`] — a latency- and dependency-aware basic-block **list
//!   scheduler** that reorders independent instructions to stretch
//!   producer–consumer distances (the `-fschedule-insns` stand-in);
//! * [`unroll`] — a counted-loop **unroller with per-copy register
//!   renaming** (the `-funroll-loops` stand-in), which both removes taken
//!   branches and, crucially, gives the scheduler independent work from
//!   several iterations to interleave.
//!
//! Both passes are semantics-preserving: the transformed program computes
//! the same architectural state, verified by differential VM execution in
//! this crate's tests.
//!
//! ## Example
//!
//! ```
//! use mim_workloads::{mibench, opt, WorkloadSize};
//!
//! let nosched = mibench::sha().program(WorkloadSize::Tiny);
//! let o3 = opt::schedule(&nosched);
//! let unrolled = opt::schedule(&opt::unroll(&nosched, 4));
//! assert_eq!(o3.len(), nosched.len()); // scheduling only reorders
//! assert!(unrolled.len() > nosched.len()); // unrolling duplicates bodies
//! ```

mod cfg;
mod sched;
mod unroll;

pub use sched::schedule;
pub use unroll::unroll;
