//! A minimal control-flow-graph IR for program transformations.

use mim_isa::{Cond, Inst, InstClass, Program, ProgramBuilder, Reg};

/// Block terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Term {
    /// Conditional branch: taken to `target`, otherwise to `fallthrough`.
    Branch {
        cond: Cond,
        a: Reg,
        b: Reg,
        target: usize,
        fallthrough: usize,
    },
    /// Unconditional jump.
    Jump { target: usize },
    /// Fall into the next block.
    FallThrough { next: usize },
    /// Program stop.
    Halt,
}

/// A basic block: straight-line body plus one terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Block {
    pub body: Vec<Inst>,
    pub term: Term,
}

/// Control-flow graph of a [`Program`], with blocks in original layout
/// order. Round-trips losslessly for layout-preserving passes.
#[derive(Debug, Clone)]
pub(crate) struct Cfg {
    pub name: String,
    pub data: Vec<i64>,
    pub blocks: Vec<Block>,
}

impl Cfg {
    /// Builds the CFG of a program.
    ///
    /// # Panics
    ///
    /// Panics if a branch targets the middle of nowhere (outside the text),
    /// which cannot happen for programs built via `ProgramBuilder`.
    pub fn from_program(program: &Program) -> Cfg {
        let text = program.text();
        let n = text.len();
        // Leaders: entry, every branch/jump target, every instruction after
        // a control instruction or halt.
        let mut leader = vec![false; n + 1];
        leader[0] = true;
        leader[n] = true;
        for (i, inst) in text.iter().enumerate() {
            if let Some(t) = inst.target() {
                leader[t as usize] = true;
            }
            if inst.class().is_control() || inst.class() == InstClass::Halt {
                leader[i + 1] = true;
            }
        }
        let starts: Vec<usize> = (0..n).filter(|&i| leader[i]).collect();
        let block_of = {
            let mut map = vec![0usize; n];
            for (b, &s) in starts.iter().enumerate() {
                let end = starts.get(b + 1).copied().unwrap_or(n);
                for slot in &mut map[s..end] {
                    *slot = b;
                }
            }
            map
        };

        let mut blocks = Vec::with_capacity(starts.len());
        for (b, &s) in starts.iter().enumerate() {
            let end = starts.get(b + 1).copied().unwrap_or(n);
            let last = text[end - 1];
            let (body_end, term) = match last.class() {
                InstClass::CondBranch => (
                    end - 1,
                    Term::Branch {
                        cond: match last.opcode {
                            mim_isa::Opcode::Br(c) => c,
                            _ => unreachable!("cond branch has Br opcode"),
                        },
                        a: last.src1,
                        b: last.src2,
                        target: block_of[last.imm as usize],
                        fallthrough: b + 1,
                    },
                ),
                InstClass::Jump => (
                    end - 1,
                    Term::Jump {
                        target: block_of[last.imm as usize],
                    },
                ),
                InstClass::Halt => (end - 1, Term::Halt),
                _ => (end, Term::FallThrough { next: b + 1 }),
            };
            blocks.push(Block {
                body: text[s..body_end].to_vec(),
                term,
            });
        }
        Cfg {
            name: program.name().to_string(),
            data: program.data().to_vec(),
            blocks,
        }
    }

    /// Re-emits the CFG as a program, inserting explicit jumps wherever a
    /// fallthrough successor is not the next block in layout order and
    /// eliding jumps to the next block.
    pub fn into_program(self) -> Program {
        let mut b = ProgramBuilder::named(self.name);
        b.data_words(&self.data);
        let labels: Vec<_> = self.blocks.iter().map(|_| b.label()).collect();
        let nblocks = self.blocks.len();
        for (i, block) in self.blocks.into_iter().enumerate() {
            b.bind(labels[i]);
            for inst in block.body {
                b.push(inst);
            }
            match block.term {
                Term::Branch {
                    cond,
                    a,
                    b: rb,
                    target,
                    fallthrough,
                } => {
                    b.br(cond, a, rb, labels[target]);
                    if fallthrough != i + 1 {
                        assert!(fallthrough < nblocks, "fallthrough out of range");
                        b.jmp(labels[fallthrough]);
                    }
                }
                Term::Jump { target } => {
                    if target != i + 1 {
                        b.jmp(labels[target]);
                    }
                }
                Term::FallThrough { next } => {
                    if next != i + 1 {
                        b.jmp(labels[next]);
                    }
                }
                Term::Halt => b.halt(),
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mibench;
    use crate::WorkloadSize;
    use mim_isa::Vm;

    #[test]
    fn round_trip_preserves_program_exactly() {
        for w in mibench::all() {
            let p = w.program(WorkloadSize::Tiny);
            let rt = Cfg::from_program(&p).into_program();
            assert_eq!(
                p.text(),
                rt.text(),
                "{}: CFG round-trip changed the text",
                w.name()
            );
            assert_eq!(p.data(), rt.data());
        }
    }

    #[test]
    fn blocks_have_no_interior_control_flow() {
        let p = mibench::dijkstra().program(WorkloadSize::Tiny);
        let cfg = Cfg::from_program(&p);
        assert!(cfg.blocks.len() > 3);
        for block in &cfg.blocks {
            for inst in &block.body {
                assert!(!inst.class().is_control());
                assert_ne!(inst.class(), InstClass::Halt);
            }
        }
    }

    #[test]
    fn round_trip_preserves_execution() {
        let p = mibench::qsort().program(WorkloadSize::Tiny);
        let rt = Cfg::from_program(&p).into_program();
        let mut v1 = Vm::new(&p);
        let mut v2 = Vm::new(&rt);
        v1.run(Some(10_000_000)).unwrap();
        v2.run(Some(10_000_000)).unwrap();
        assert_eq!(v1.memory(), v2.memory());
    }
}
