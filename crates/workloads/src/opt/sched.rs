//! Latency-aware basic-block list scheduling.

use mim_isa::{Inst, InstClass, Program};

use super::cfg::Cfg;

/// Approximate producer latency used for scheduling priorities, in cycles.
/// These mirror the modeled machine (multiply 4, divide 20, load-to-use 2).
fn latency(inst: &Inst) -> u32 {
    match inst.class() {
        InstClass::Mul => 4,
        InstClass::Div => 20,
        InstClass::Load => 2,
        _ => 1,
    }
}

/// True if `later` must stay after `earlier` (data or memory dependence).
fn depends(later: &Inst, earlier: &Inst) -> bool {
    // RAW: later reads earlier's destination.
    if let Some(dst) = earlier.writes() {
        if later.sources().iter().flatten().any(|&r| r == dst) {
            return true;
        }
    }
    // WAR: later overwrites a register earlier still reads.
    if let Some(dst) = later.writes() {
        if earlier.sources().iter().flatten().any(|&r| r == dst) {
            return true;
        }
        // WAW
        if earlier.writes() == Some(dst) {
            return true;
        }
    }
    // Memory: conservative — keep stores ordered with all memory ops.
    let mem = |i: &Inst| matches!(i.class(), InstClass::Load | InstClass::Store);
    if mem(later) && mem(earlier) {
        let st = |i: &Inst| i.class() == InstClass::Store;
        if st(later) || st(earlier) {
            return true;
        }
    }
    false
}

/// Reorders instructions within every basic block to stretch the distance
/// between dependent instructions, without changing program semantics.
///
/// This is the `-fschedule-insns` stand-in for the paper's §6.2 case
/// study: classic list scheduling with critical-path (latency-weighted
/// height) priority. Dependent pairs that sat back-to-back in the source
/// order are separated by independent work wherever any exists, which
/// directly shrinks the model's `P_deps` term.
///
/// The pass preserves the block structure and instruction count, so branch
/// targets and profile comparability are maintained.
///
/// # Example
///
/// ```
/// use mim_workloads::{mibench, opt, WorkloadSize};
///
/// let p = mibench::tiff2bw().program(WorkloadSize::Tiny);
/// let scheduled = opt::schedule(&p);
/// assert_eq!(p.len(), scheduled.len());
/// ```
pub fn schedule(program: &Program) -> Program {
    let mut cfg = Cfg::from_program(program);
    for block in &mut cfg.blocks {
        block.body = schedule_block(&block.body);
    }
    cfg.into_program()
}

fn schedule_block(body: &[Inst]) -> Vec<Inst> {
    let n = body.len();
    if n < 3 {
        return body.to_vec();
    }
    // Build the dependence DAG (successor lists + predecessor counts).
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut preds: Vec<u32> = vec![0; n];
    for j in 0..n {
        for i in 0..j {
            if depends(&body[j], &body[i]) {
                succs[i].push(j);
                preds[j] += 1;
            }
        }
    }
    // Height = latency-weighted longest path to the block exit.
    let mut height: Vec<u32> = vec![0; n];
    for i in (0..n).rev() {
        let tail = succs[i].iter().map(|&s| height[s]).max().unwrap_or(0);
        height[i] = latency(&body[i]) + tail;
    }
    // Stall-avoiding list scheduling (the classic `-fschedule-insns`
    // objective): track each ready instruction's operand-ready *position*
    // (producer position + producer latency, in instruction slots) and
    // prefer instructions whose operands are already available — this
    // pulls independent work between dependent pairs instead of re-packing
    // chains back-to-back. Ties go to the latency-weighted critical path.
    let mut ready_at: Vec<usize> = vec![0; n];
    let mut ready: Vec<usize> = (0..n).filter(|&i| preds[i] == 0).collect();
    let mut out = Vec::with_capacity(n);
    let mut emitted = vec![false; n];
    while !ready.is_empty() {
        let p = out.len();
        let pos = ready
            .iter()
            .enumerate()
            .min_by_key(|&(_, &i)| {
                let stall = ready_at[i].saturating_sub(p);
                (stall, std::cmp::Reverse(height[i]), i)
            })
            .map(|(pos, _)| pos)
            .expect("ready set is nonempty");
        let i = ready.swap_remove(pos);
        emitted[i] = true;
        out.push(body[i]);
        for &s in &succs[i] {
            // Data successors become usable only after the producer's
            // latency; order-only (WAR/WAW/memory) edges impose no delay,
            // but using latency uniformly is a safe overapproximation.
            ready_at[s] = ready_at[s].max(p + latency(&body[i]) as usize);
            preds[s] -= 1;
            if preds[s] == 0 && !emitted[s] {
                ready.push(s);
            }
        }
    }
    debug_assert_eq!(out.len(), n, "scheduler dropped instructions");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mibench, WorkloadSize};
    use mim_isa::{ProgramBuilder, Reg::*, Vm};

    #[test]
    fn interleaves_independent_chains() {
        // Two independent dependent-pairs written back-to-back; the
        // scheduler should interleave them: a1 b1 a2 b2 instead of
        // a1 a2 b1 b2.
        let mut b = ProgramBuilder::new();
        b.li(R1, 1);
        b.li(R3, 2);
        // chain A: R2 = R1 + 1 ; R2 = R2 + 1 (dependent pair)
        b.addi(R2, R1, 1);
        b.addi(R2, R2, 1);
        // chain B: R4 = R3 + 1 ; R4 = R4 + 1
        b.addi(R4, R3, 1);
        b.addi(R4, R4, 1);
        b.halt();
        let p = b.build();
        let s = schedule(&p);
        // Find positions of the two dependent adds of chain A.
        let text = s.text();
        let a1 = text
            .iter()
            .position(|i| i.dst == R2 && i.src1 == R1)
            .unwrap();
        let a2 = text
            .iter()
            .position(|i| i.dst == R2 && i.src1 == R2)
            .unwrap();
        assert!(
            a2 > a1 + 1,
            "dependent pair still adjacent: {a1} -> {a2}\n{s}"
        );
    }

    #[test]
    fn hoists_long_latency_producers() {
        // A divide whose consumer is last: the scheduler should move the
        // divide as early as dependences allow.
        let mut b = ProgramBuilder::new();
        b.li(R1, 100);
        b.li(R2, 7);
        b.addi(R3, R1, 1); // independent filler
        b.addi(R4, R1, 2);
        b.div(R5, R1, R2);
        b.add(R6, R5, R3);
        b.halt();
        let p = b.build();
        let s = schedule(&p);
        let text = s.text();
        let div_pos = text.iter().position(|i| i.dst == R5).unwrap();
        let fill_pos = text.iter().position(|i| i.dst == R4).unwrap();
        assert!(div_pos < fill_pos, "divide was not hoisted:\n{s}");
    }

    #[test]
    fn preserves_memory_ordering() {
        // store then load of the same address must not be reordered.
        let mut b = ProgramBuilder::new();
        let a = b.data_words(&[5]);
        b.li(R1, a as i64);
        b.li(R2, 42);
        b.st(R2, R1, 0);
        b.ld(R3, R1, 0);
        b.halt();
        let p = b.build();
        let s = schedule(&p);
        let mut vm = Vm::new(&s);
        vm.run(None).unwrap();
        assert_eq!(vm.reg(R3), 42);
    }

    #[test]
    fn scheduling_preserves_semantics_on_all_kernels() {
        for w in mibench::all() {
            let p = w.program(WorkloadSize::Tiny);
            let s = schedule(&p);
            assert_eq!(p.len(), s.len(), "{}: length changed", w.name());
            let mut v1 = Vm::new(&p);
            let mut v2 = Vm::new(&s);
            let o1 = v1.run(Some(20_000_000)).unwrap();
            let o2 = v2.run(Some(20_000_000)).unwrap();
            assert!(o1.halted() && o2.halted(), "{}", w.name());
            assert_eq!(
                v1.memory(),
                v2.memory(),
                "{}: scheduling changed the result",
                w.name()
            );
        }
    }
}
