//! Counted-loop unrolling with per-copy register renaming.

use std::collections::HashSet;

use mim_isa::{Cond, Inst, Opcode, Program, Reg, NUM_REGS};

use super::cfg::{Cfg, Term};

/// Unrolls every eligible counted loop `factor` times.
///
/// A loop is eligible when it is a single-block do-while of the canonical
/// shape produced by our kernels (and by compilers for counted loops):
///
/// ```text
/// L:  body                ; contains exactly one write to i: addi i,i,s (s > 0)
///     blt i, n, L         ; n not written in the body
/// ```
///
/// The transformed code guards each unrolled burst with a trip-count check
/// (`i + (factor-1)*s < n`), runs `factor` copies of the body
/// back-to-back, and falls back to the original loop for the remaining
/// iterations — semantics are preserved for *any* trip count:
///
/// ```text
/// L:  t = i + (factor-1)*s
///     blt t, n, U         ; enough iterations left for a full burst?
/// T:  body                ; original tail loop
///     blt i, n, T
///     j   F
/// U:  body  (copy 1, temps renamed)
///     ...
///     body  (copy factor, original registers)
///     blt i, n, L
/// F:  ...
/// ```
///
/// Pure-temporary registers (written before read in the body, i.e. not
/// loop-carried) are renamed to free registers in all copies except the
/// last, so a subsequent [`schedule`](super::schedule) pass can interleave
/// the copies — this is where the paper's §6.2 observation comes from:
/// "loop unrolling enables the instruction scheduler to better schedule
/// instructions so that fewer inter-instruction dependencies have an
/// impact".
///
/// Loops that do not match the shape (or when no scratch registers remain)
/// are left untouched.
///
/// # Panics
///
/// Panics if `factor < 2`.
///
/// # Example
///
/// ```
/// use mim_workloads::{mibench, opt, WorkloadSize};
///
/// let p = mibench::tiff2bw().program(WorkloadSize::Tiny);
/// let u = opt::unroll(&p, 4);
/// assert!(u.len() > p.len());
/// ```
pub fn unroll(program: &Program, factor: u32) -> Program {
    assert!(factor >= 2, "unroll factor must be at least 2");
    let mut cfg = Cfg::from_program(program);

    // Registers never used anywhere are available as scratch/renaming pool.
    let mut used = [false; NUM_REGS];
    for inst in program.text() {
        if let Some(d) = inst.writes() {
            used[d.index()] = true;
        }
        for r in inst.sources().into_iter().flatten() {
            used[r.index()] = true;
        }
    }
    let mut free: Vec<Reg> = Reg::ALL
        .iter()
        .copied()
        .filter(|r| !used[r.index()])
        .collect();

    // Collect candidate block ids first (we mutate the block list).
    let candidates: Vec<usize> = (0..cfg.blocks.len())
        .filter(|&b| candidate(&cfg, b).is_some())
        .collect();

    for &b in &candidates {
        let Some(cand) = candidate(&cfg, b) else {
            continue;
        };
        let Some(scratch) = free.pop() else { break };
        apply(&mut cfg, b, cand, scratch, &mut free, factor);
    }
    cfg.into_program()
}

/// The matched counter pattern of an eligible loop.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    counter: Reg,
    bound: Reg,
    step: i64,
}

fn candidate(cfg: &Cfg, b: usize) -> Option<Candidate> {
    let block = &cfg.blocks[b];
    let Term::Branch {
        cond: Cond::Lt,
        a: counter,
        b: bound,
        target,
        ..
    } = block.term
    else {
        return None;
    };
    if target != b || block.body.is_empty() || block.body.len() > 120 {
        return None;
    }
    // Exactly one write to the counter: `addi counter, counter, step`
    // with positive step; no writes to the bound.
    let mut step = None;
    for inst in &block.body {
        if inst.writes() == Some(bound) {
            return None;
        }
        if inst.writes() == Some(counter) {
            if step.is_some() {
                return None; // multiple counter writes
            }
            if inst.opcode == Opcode::Addi && inst.src1 == counter && inst.imm > 0 {
                step = Some(inst.imm);
            } else {
                return None;
            }
        }
    }
    step.map(|step| Candidate {
        counter,
        bound,
        step,
    })
}

/// Registers written before they are read in `body` (pure temporaries,
/// not loop-carried) — safe to rename in non-final copies.
fn renameable_temps(body: &[Inst]) -> Vec<Reg> {
    let mut written: HashSet<Reg> = HashSet::new();
    let mut carried: HashSet<Reg> = HashSet::new();
    for inst in body {
        for r in inst.sources().into_iter().flatten() {
            if !written.contains(&r) {
                carried.insert(r);
            }
        }
        if let Some(d) = inst.writes() {
            written.insert(d);
        }
    }
    written
        .into_iter()
        .filter(|r| !carried.contains(r))
        .collect()
}

fn rename(body: &[Inst], map: &[(Reg, Reg)]) -> Vec<Inst> {
    let lookup = |r: Reg| {
        map.iter()
            .find(|&&(from, _)| from == r)
            .map_or(r, |&(_, to)| to)
    };
    body.iter()
        .map(|inst| {
            let mut out = *inst;
            if inst.writes().is_some() {
                out.dst = lookup(inst.dst);
            }
            let srcs = inst.sources();
            if srcs[0].is_some() {
                out.src1 = lookup(inst.src1);
            }
            if srcs[1].is_some() {
                out.src2 = lookup(inst.src2);
            }
            out
        })
        .collect()
}

fn apply(cfg: &mut Cfg, b: usize, cand: Candidate, scratch: Reg, free: &mut Vec<Reg>, factor: u32) {
    let body = cfg.blocks[b].body.clone();
    let Term::Branch { cond, a, b: rb, .. } = cfg.blocks[b].term else {
        unreachable!("candidate() checked the terminator");
    };
    let exit = match cfg.blocks[b].term {
        Term::Branch { fallthrough, .. } => fallthrough,
        _ => unreachable!(),
    };

    // Rename map shared by all non-final copies (a fresh register per temp,
    // reused across copies — copies remain WAW-dependent on each other but
    // independent of the final copy; with a larger pool we could rename
    // per copy, at the cost of registers).
    let temps = renameable_temps(&body);
    let mut map = Vec::new();
    for t in temps {
        if let Some(f) = free.pop() {
            map.push((t, f));
        }
    }

    // New blocks appended at the end of the layout:
    let tail_id = cfg.blocks.len();
    let unrolled_id = tail_id + 1;

    // Rewrite the original block into the trip-count check.
    let check_body = vec![Inst {
        opcode: Opcode::Addi,
        dst: scratch,
        src1: cand.counter,
        src2: Reg::R0,
        imm: (i64::from(factor) - 1) * cand.step,
    }];
    cfg.blocks[b].body = check_body;
    cfg.blocks[b].term = Term::Branch {
        cond: Cond::Lt,
        a: scratch,
        b: cand.bound,
        target: unrolled_id,
        fallthrough: tail_id,
    };

    // Tail loop: the original body and exit test, self-looping.
    cfg.blocks.push(super::cfg::Block {
        body: body.clone(),
        term: Term::Branch {
            cond,
            a,
            b: rb,
            target: tail_id,
            fallthrough: exit,
        },
    });

    // Unrolled burst: factor copies, final copy unrenamed.
    let mut burst = Vec::with_capacity(body.len() * factor as usize);
    for copy in 0..factor {
        if copy + 1 < factor && !map.is_empty() {
            burst.extend(rename(&body, &map));
        } else {
            burst.extend_from_slice(&body);
        }
    }
    cfg.blocks.push(super::cfg::Block {
        body: burst,
        term: Term::Branch {
            cond,
            a,
            b: rb,
            target: b,
            fallthrough: exit,
        },
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mibench, opt, WorkloadSize};
    use mim_isa::{InstClass, ProgramBuilder, Reg::*, Vm};

    fn sum_loop(n: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let data: Vec<i64> = (0..n).collect();
        let arr = b.data_words(&data);
        b.li(R1, 0); // i
        b.li(R2, n); // bound
        b.li(R3, 0); // acc
        let top = b.here();
        b.slli(R4, R1, 3);
        b.addi(R4, R4, arr as i64);
        b.ld(R5, R4, 0);
        b.add(R3, R3, R5);
        b.addi(R1, R1, 1);
        b.blt(R1, R2, top);
        b.halt();
        b.build()
    }

    fn run_count_branches(p: &Program) -> (i64, u64, u64) {
        let mut vm = Vm::new(p);
        let mut taken = 0u64;
        let mut total = 0u64;
        vm.run_with(Some(50_000_000), |ev| {
            total += 1;
            if ev.class == InstClass::CondBranch && ev.taken == Some(true) {
                taken += 1;
            }
        })
        .unwrap();
        (vm.reg(R3), total, taken)
    }

    #[test]
    fn unrolled_sum_is_correct_for_various_trip_counts() {
        for n in [1i64, 2, 3, 4, 5, 7, 8, 9, 100, 101, 102, 103] {
            let p = sum_loop(n);
            let u = unroll(&p, 4);
            let (acc_p, _, _) = run_count_branches(&p);
            let (acc_u, _, _) = run_count_branches(&u);
            assert_eq!(acc_p, n * (n - 1) / 2, "baseline broken at n={n}");
            assert_eq!(acc_u, acc_p, "unrolled result differs at n={n}");
        }
    }

    #[test]
    fn unrolling_reduces_taken_branches() {
        let p = sum_loop(1000);
        let u = unroll(&p, 4);
        let (_, _, taken_p) = run_count_branches(&p);
        let (_, _, taken_u) = run_count_branches(&u);
        assert!(
            taken_u * 2 < taken_p,
            "taken branches: {taken_p} -> {taken_u}"
        );
    }

    #[test]
    fn unroll_then_schedule_preserves_semantics_on_all_kernels() {
        for w in mibench::all() {
            let p = w.program(WorkloadSize::Tiny);
            let u = opt::schedule(&unroll(&p, 4));
            let mut v1 = Vm::new(&p);
            let mut v2 = Vm::new(&u);
            let o1 = v1.run(Some(30_000_000)).unwrap();
            let o2 = v2.run(Some(30_000_000)).unwrap();
            assert!(o1.halted() && o2.halted(), "{}", w.name());
            assert_eq!(
                v1.memory(),
                v2.memory(),
                "{}: unroll+schedule changed the result",
                w.name()
            );
        }
    }

    #[test]
    fn non_canonical_loops_are_left_alone() {
        // Loop counting downward (bge) — not eligible; must be unchanged.
        let mut b = ProgramBuilder::new();
        b.li(R1, 10);
        let top = b.here();
        b.addi(R1, R1, -1);
        b.bge(R1, R0, top);
        b.halt();
        let p = b.build();
        let u = unroll(&p, 4);
        assert_eq!(p.text(), u.text());
    }

    #[test]
    #[should_panic(expected = "unroll factor must be at least 2")]
    fn factor_one_is_rejected() {
        let p = sum_loop(4);
        let _ = unroll(&p, 1);
    }
}
