//! TIFF image-conversion kernels: `tiff2bw`, `tiff2rgba`, `tiffdither`,
//! `tiffmedian`.

use mim_isa::{Program, ProgramBuilder, Reg::*};

use crate::util::{synth_image, SplitMix64};
use crate::workload::{Workload, WorkloadSize};

fn pixels(size: WorkloadSize) -> usize {
    1500 * size.scale() as usize
}

/// The `tiff2bw` workload: RGB-to-grayscale with the ITU luma weights
/// `(77 R + 150 G + 29 B) >> 8` — three multiplies per pixel over a pure
/// streaming access pattern. The paper singles this benchmark out for its
/// large mul/div CPI component on in-order cores (Figure 7).
pub fn tiff2bw() -> Workload {
    Workload::new("tiff2bw", build_tiff2bw)
}

fn build_tiff2bw(size: WorkloadSize) -> Program {
    let n = pixels(size);
    let mut rng = SplitMix64::new(0x2b3);
    let r: Vec<i64> = (0..n).map(|_| rng.below(256) as i64).collect();
    let g: Vec<i64> = (0..n).map(|_| rng.below(256) as i64).collect();
    let bl: Vec<i64> = (0..n).map(|_| rng.below(256) as i64).collect();

    let mut b = ProgramBuilder::named("tiff2bw");
    let rp = b.data_words(&r);
    let gp = b.data_words(&g);
    let bp = b.data_words(&bl);
    let out = b.alloc_words(n);

    let (i, nreg, addr, tmp) = (R1, R2, R3, R4);
    let (rv, gv, bv, acc) = (R5, R6, R7, R8);
    let (wr, wg, wb) = (R9, R10, R11);

    b.li(wr, 77);
    b.li(wg, 150);
    b.li(wb, 29);
    b.li(i, 0);
    b.li(nreg, n as i64);
    let top = b.here();
    b.slli(addr, i, 3);
    b.addi(tmp, addr, rp as i64);
    b.ld(rv, tmp, 0);
    b.addi(tmp, addr, gp as i64);
    b.ld(gv, tmp, 0);
    b.addi(tmp, addr, bp as i64);
    b.ld(bv, tmp, 0);
    b.mul(rv, rv, wr);
    b.mul(gv, gv, wg);
    b.mul(bv, bv, wb);
    b.add(acc, rv, gv);
    b.add(acc, acc, bv);
    b.srai(acc, acc, 8);
    b.addi(tmp, addr, out as i64);
    b.st(acc, tmp, 0);
    b.addi(i, i, 1);
    b.blt(i, nreg, top);
    b.halt();
    b.build()
}

/// The `tiff2rgba` workload: palette-indexed image to RGBA expansion —
/// per pixel one indexed table load, three shift/mask unpacks, and four
/// stores. Store-bandwidth bound with a large streaming footprint (the
/// paper highlights its L2 component, Figure 7).
pub fn tiff2rgba() -> Workload {
    Workload::new("tiff2rgba", build_tiff2rgba)
}

fn build_tiff2rgba(size: WorkloadSize) -> Program {
    let n = pixels(size);
    let mut rng = SplitMix64::new(0x26ba);
    let indices: Vec<i64> = (0..n).map(|_| rng.below(256) as i64).collect();
    let palette: Vec<i64> = (0..256).map(|_| rng.below(1 << 24) as i64).collect();

    let mut b = ProgramBuilder::named("tiff2rgba");
    let idxp = b.data_words(&indices);
    let pal = b.data_words(&palette);
    let out = b.alloc_words(4 * n);

    let (i, nreg, addr, tmp) = (R1, R2, R3, R4);
    let (idx, packed, ch, outp) = (R5, R6, R7, R8);
    let alpha = R9;

    b.li(alpha, 255);
    b.li(i, 0);
    b.li(nreg, n as i64);
    b.li(outp, out as i64);
    let top = b.here();
    b.slli(addr, i, 3);
    b.addi(tmp, addr, idxp as i64);
    b.ld(idx, tmp, 0);
    b.slli(tmp, idx, 3);
    b.addi(tmp, tmp, pal as i64);
    b.ld(packed, tmp, 0);
    // unpack R,G,B and store with alpha
    b.srli(ch, packed, 16);
    b.andi(ch, ch, 255);
    b.st(ch, outp, 0);
    b.srli(ch, packed, 8);
    b.andi(ch, ch, 255);
    b.st(ch, outp, 8);
    b.andi(ch, packed, 255);
    b.st(ch, outp, 16);
    b.st(alpha, outp, 24);
    b.addi(outp, outp, 32);
    b.addi(i, i, 1);
    b.blt(i, nreg, top);
    b.halt();
    b.build()
}

fn dither_dims(size: WorkloadSize) -> (usize, usize) {
    // fixed width, height scales linearly
    (64, 10 * size.scale() as usize + 6)
}

/// The `tiffdither` workload: Floyd–Steinberg error-diffusion dithering.
/// The quantization error of each pixel feeds its right and lower
/// neighbours **through memory**, producing the serial dependence chains
/// that make this benchmark the suite's worst case for dependency stalls
/// (and the one benchmark where the paper found scheduling to *hurt*,
/// §6.2).
pub fn tiffdither() -> Workload {
    Workload::new("tiffdither", build_tiffdither)
}

fn build_tiffdither(size: WorkloadSize) -> Program {
    let (w, h) = dither_dims(size);
    let img = synth_image(w, h, 0xd17e);

    let mut b = ProgramBuilder::named("tiffdither");
    let src = b.data_words(&img);
    let err = b.alloc_words(w * h + w + 2); // slack for edge writes
    let out = b.alloc_words(w * h);

    let (x, y, tmp, addr, base) = (R1, R2, R3, R4, R5);
    let (v, e, bit, zero) = (R6, R7, R8, R0);
    let (wreg, hreg, e7, e3) = (R9, R10, R11, R12);
    let (e5, thresh, maxv, e1) = (R13, R14, R15, R16);

    b.li(zero, 0);
    b.li(wreg, w as i64);
    b.li(hreg, h as i64);
    b.li(thresh, 128);
    b.li(maxv, 255);

    b.li(y, 0);
    let row = b.here();
    b.li(x, 1);
    let col = b.here();
    // base = (y*w + x) * 8
    b.mul(base, y, wreg);
    b.add(base, base, x);
    b.slli(base, base, 3);
    // v = src[y][x] + err[y][x]
    b.addi(addr, base, src as i64);
    b.ld(v, addr, 0);
    b.addi(addr, base, err as i64);
    b.ld(tmp, addr, 0);
    b.add(v, v, tmp);
    // threshold
    let dark = b.label();
    let emit = b.label();
    b.blt(v, thresh, dark);
    b.li(bit, 1);
    b.sub(e, v, maxv);
    b.jmp(emit);
    b.bind(dark);
    b.li(bit, 0);
    b.mv(e, v);
    b.bind(emit);
    b.addi(addr, base, out as i64);
    b.st(bit, addr, 0);
    // distribute error: right 7/16, below-left 3/16, below 5/16, below-right 1/16
    b.addi(addr, base, err as i64);
    // e7 = 7e/16 etc. via shifts/adds
    b.srai(e1, e, 4); // e/16 (the 1/16 share)
    b.slli(e7, e1, 3);
    b.sub(e7, e7, e1); // 7 * (e/16)
    b.slli(e3, e1, 1);
    b.add(e3, e3, e1); // 3 * (e/16)
    b.slli(e5, e1, 2);
    b.add(e5, e5, e1); // 5 * (e/16)

    // err[y][x+1] += e7
    b.ld(v, addr, 8);
    b.add(v, v, e7);
    b.st(v, addr, 8);
    // err[y+1][x-1..x+1]
    b.slli(tmp, wreg, 3);
    b.add(addr, addr, tmp);
    b.ld(v, addr, -8);
    b.add(v, v, e3);
    b.st(v, addr, -8);
    b.ld(v, addr, 0);
    b.add(v, v, e5);
    b.st(v, addr, 0);
    b.ld(v, addr, 8);
    b.add(v, v, e1);
    b.st(v, addr, 8);
    b.addi(x, x, 1);
    b.addi(tmp, wreg, -1);
    b.blt(x, tmp, col);
    b.addi(y, y, 1);
    b.addi(tmp, hreg, -1);
    b.blt(y, tmp, row);
    b.halt();
    b.build()
}

fn median_pixels(size: WorkloadSize) -> usize {
    1200 * size.scale() as usize
}

/// The `tiffmedian` workload: median-cut style color quantization —
/// per-tile histogram construction (read-modify-write on histogram
/// buckets) followed by a cumulative scan to locate the median bucket.
pub fn tiffmedian() -> Workload {
    Workload::new("tiffmedian", build_tiffmedian)
}

fn build_tiffmedian(size: WorkloadSize) -> Program {
    let n = median_pixels(size);
    let tile = 256usize;
    let ntiles = n / tile;
    let img = synth_image(n, 1, 0x3ed1);

    let mut b = ProgramBuilder::named("tiffmedian");
    let src = b.data_words(&img);
    let hist = b.alloc_words(64);
    let medians = b.alloc_words(ntiles);

    let (t, nt, i, addr) = (R1, R2, R3, R4);
    let (px, bucket, cum, half, base) = (R6, R7, R8, R9, R10);
    let (cnt, out, sixty4, tile_reg) = (R11, R12, R13, R14);

    b.li(sixty4, 64);
    b.li(tile_reg, tile as i64);
    b.li(half, (tile / 2) as i64);
    b.li(t, 0);
    b.li(nt, ntiles as i64);
    b.li(out, medians as i64);

    let tile_loop = b.here();
    // clear histogram
    b.li(i, 0);
    let clear = b.here();
    b.slli(addr, i, 3);
    b.addi(addr, addr, hist as i64);
    b.st(R0, addr, 0);
    b.addi(i, i, 1);
    b.blt(i, sixty4, clear);
    // accumulate: bucket = px >> 2
    b.mul(base, t, tile_reg);
    b.slli(base, base, 3);
    b.addi(base, base, src as i64);
    b.li(i, 0);
    let acc_loop = b.here();
    b.slli(addr, i, 3);
    b.add(addr, addr, base);
    b.ld(px, addr, 0);
    b.srai(bucket, px, 2);
    b.slli(bucket, bucket, 3);
    b.addi(bucket, bucket, hist as i64);
    b.ld(cnt, bucket, 0);
    b.addi(cnt, cnt, 1);
    b.st(cnt, bucket, 0);
    b.addi(i, i, 1);
    b.blt(i, tile_reg, acc_loop);
    // cumulative scan for the median bucket
    b.li(cum, 0);
    b.li(i, 0);
    let scan = b.here();
    b.slli(addr, i, 3);
    b.addi(addr, addr, hist as i64);
    b.ld(cnt, addr, 0);
    b.add(cum, cum, cnt);
    let found = b.label();
    b.bge(cum, half, found);
    b.addi(i, i, 1);
    b.blt(i, sixty4, scan);
    b.bind(found);
    b.st(i, out, 0);
    b.addi(out, out, 8);
    b.addi(t, t, 1);
    b.blt(t, nt, tile_loop);
    b.halt();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mim_isa::Vm;

    #[test]
    fn tiff2bw_matches_luma_formula() {
        let n = pixels(WorkloadSize::Tiny);
        let p = build_tiff2bw(WorkloadSize::Tiny);
        let mut vm = Vm::new(&p);
        assert!(vm.run(Some(50_000_000)).unwrap().halted());
        let mem = vm.memory();
        let (r, g, bl) = (&mem[0..n], &mem[n..2 * n], &mem[2 * n..3 * n]);
        let out = &mem[3 * n..4 * n];
        for i in (0..n).step_by(97) {
            let expected = (77 * r[i] + 150 * g[i] + 29 * bl[i]) >> 8;
            assert_eq!(out[i], expected, "pixel {i}");
        }
        assert!(out.iter().all(|&v| (0..=255).contains(&v)));
    }

    #[test]
    fn tiff2rgba_unpacks_palette_entries() {
        let n = pixels(WorkloadSize::Tiny);
        let p = build_tiff2rgba(WorkloadSize::Tiny);
        let mut vm = Vm::new(&p);
        assert!(vm.run(Some(50_000_000)).unwrap().halted());
        let mem = vm.memory();
        let indices = &mem[0..n];
        let palette = &mem[n..n + 256];
        let out = &mem[n + 256..n + 256 + 4 * n];
        for i in (0..n).step_by(131) {
            let packed = palette[indices[i] as usize];
            assert_eq!(out[4 * i], (packed >> 16) & 255, "R of pixel {i}");
            assert_eq!(out[4 * i + 1], (packed >> 8) & 255, "G of pixel {i}");
            assert_eq!(out[4 * i + 2], packed & 255, "B of pixel {i}");
            assert_eq!(out[4 * i + 3], 255, "alpha of pixel {i}");
        }
    }

    #[test]
    fn tiffdither_emits_bits_with_plausible_density() {
        let (w, h) = dither_dims(WorkloadSize::Tiny);
        let p = build_tiffdither(WorkloadSize::Tiny);
        let mut vm = Vm::new(&p);
        assert!(vm.run(Some(50_000_000)).unwrap().halted());
        let mem = vm.memory();
        let out = &mem[mem.len() - w * h..];
        assert!(out.iter().all(|&v| v == 0 || v == 1));
        let ones: i64 = out.iter().sum();
        let frac = ones as f64 / (w * h) as f64;
        // The gradient image averages mid-gray; dithering should produce
        // an intermediate bit density.
        assert!(
            (0.2..=0.8).contains(&frac),
            "implausible dither density {frac}"
        );
    }

    #[test]
    fn tiffmedian_finds_central_buckets() {
        let p = build_tiffmedian(WorkloadSize::Tiny);
        let n = median_pixels(WorkloadSize::Tiny);
        let ntiles = n / 256;
        let mut vm = Vm::new(&p);
        assert!(vm.run(Some(50_000_000)).unwrap().halted());
        let mem = vm.memory();
        let medians = &mem[mem.len() - ntiles..];
        assert!(medians.iter().all(|&m| (0..64).contains(&m)));
        // Reference check on tile 0.
        let img = &mem[0..256];
        let mut hist = [0i64; 64];
        for &px in img {
            hist[(px >> 2) as usize] += 1;
        }
        let mut cum = 0;
        let mut expected = 63;
        for (i, &c) in hist.iter().enumerate() {
            cum += c;
            if cum >= 128 {
                expected = i as i64;
                break;
            }
        }
        assert_eq!(medians[0], expected);
    }
}
