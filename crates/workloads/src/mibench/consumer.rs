//! Consumer-domain kernels: `jpeg_c`, `jpeg_d`, `lame`.

use mim_isa::{Program, ProgramBuilder, Reg::*};

use crate::util::{synth_image, SplitMix64};
use crate::workload::{Workload, WorkloadSize};

/// Q10 fixed-point DCT-II basis: `C[u][x] = round(1024 * c(u) *
/// cos((2x+1) u pi / 16))`, the kernel of JPEG's 8-point transform.
fn dct_table() -> [i64; 64] {
    let mut t = [0i64; 64];
    for u in 0..8 {
        for x in 0..8 {
            let cu = if u == 0 { 1.0 / (2.0f64).sqrt() } else { 1.0 };
            let v = cu * ((2.0 * x as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0).cos();
            t[u * 8 + x] = (v * 1024.0 / 2.0).round() as i64;
        }
    }
    t
}

fn blocks(size: WorkloadSize) -> usize {
    8 * size.scale() as usize
}

/// The `jpeg_c` workload: forward 8-point DCT with quantization over image
/// blocks — dense multiply/accumulate with regular streaming access.
pub fn jpeg_c() -> Workload {
    Workload::new("jpeg_c", |size| build_jpeg(size, false))
}

/// The `jpeg_d` workload: inverse DCT with saturation clamping — the same
/// arithmetic density as `jpeg_c` plus data-dependent clamp branches.
pub fn jpeg_d() -> Workload {
    Workload::new("jpeg_d", |size| build_jpeg(size, true))
}

fn build_jpeg(size: WorkloadSize, inverse: bool) -> Program {
    let nblocks = blocks(size);
    let n = nblocks * 64;
    let img = synth_image(n, 1, if inverse { 0x1dc7 } else { 0xdc7 });
    let table = dct_table();

    let mut b = ProgramBuilder::named(if inverse { "jpeg_d" } else { "jpeg_c" });
    let src = b.data_words(&img);
    let tab = b.data_words(&table);
    let dst = b.alloc_words(n);

    let (blk, nblk, row) = (R1, R2, R3);
    let (u, x, acc, tmp, addr) = (R4, R5, R6, R7, R8);
    let (px, cf, base_in, base_out, zero) = (R9, R10, R11, R12, R0);
    let (eight, out) = (R13, R14);

    b.li(zero, 0);
    b.li(eight, 8);
    b.li(blk, 0);
    b.li(nblk, nblocks as i64);

    let blk_loop = b.here();
    b.li(row, 0);
    let row_loop = b.here();
    // base_in = src + (blk*64 + row*8)*8
    b.slli(base_in, blk, 6);
    b.slli(tmp, row, 3);
    b.add(base_in, base_in, tmp);
    b.slli(base_in, base_in, 3);
    b.addi(base_out, base_in, dst as i64);
    b.addi(base_in, base_in, src as i64);
    // for u in 0..8: acc = sum_x in[x] * C[u*8+x] (forward) or C[x*8+u]
    b.li(u, 0);
    let u_loop = b.here();
    b.li(acc, 0);
    b.li(x, 0);
    let x_loop = b.here();
    b.slli(addr, x, 3);
    b.add(addr, addr, base_in);
    b.ld(px, addr, 0);
    if inverse {
        // transposed basis: C[x][u]
        b.slli(addr, x, 6);
        b.slli(tmp, u, 3);
        b.add(addr, addr, tmp);
    } else {
        b.slli(addr, u, 6);
        b.slli(tmp, x, 3);
        b.add(addr, addr, tmp);
    }
    b.addi(addr, addr, tab as i64);
    b.ld(cf, addr, 0);
    b.mul(px, px, cf);
    b.add(acc, acc, px);
    b.addi(x, x, 1);
    b.blt(x, eight, x_loop);
    // normalize
    b.srai(acc, acc, 10);
    if inverse {
        // clamp to 0..255 (saturation branches)
        let lo_ok = b.label();
        b.bge(acc, zero, lo_ok);
        b.li(acc, 0);
        b.bind(lo_ok);
        b.li(tmp, 255);
        let hi_ok = b.label();
        b.blt(acc, tmp, hi_ok);
        b.mv(acc, tmp);
        b.bind(hi_ok);
    } else {
        // quantize: round toward zero by a per-frequency step (u+1)
        b.addi(tmp, u, 1);
        b.div(acc, acc, tmp);
    }
    b.slli(out, u, 3);
    b.add(out, out, base_out);
    b.st(acc, out, 0);
    b.addi(u, u, 1);
    b.blt(u, eight, u_loop);
    b.addi(row, row, 1);
    b.blt(row, eight, row_loop);
    b.addi(blk, blk, 1);
    b.blt(blk, nblk, blk_loop);
    b.halt();
    b.build()
}

/// The `lame` workload: MP3-style analysis windowing — each granule of 32
/// samples is projected onto 8 window functions (long multiply/accumulate
/// loops over a coefficient table), the inner loop of MDCT/subband
/// analysis in MP3 encoding.
pub fn lame() -> Workload {
    Workload::new("lame", build_lame)
}

fn granules(size: WorkloadSize) -> usize {
    24 * size.scale() as usize
}

fn build_lame(size: WorkloadSize) -> Program {
    let ngran = granules(size);
    let n = ngran * 32;
    let mut rng = SplitMix64::new(0x1a3e);
    let mut v = 0i64;
    let samples: Vec<i64> = (0..n)
        .map(|_| {
            v = (v + rng.signed(400)).clamp(-12000, 12000);
            v
        })
        .collect();
    // 8 windows x 32 taps, Q10 triangular-ish windows.
    let mut win = Vec::with_capacity(256);
    for k in 0..8i64 {
        for i in 0..32i64 {
            let tri = 1024 - ((i - 16).abs() * 64);
            win.push((tri * (k + 1) / 8).max(1));
        }
    }

    let mut b = ProgramBuilder::named("lame");
    let src = b.data_words(&samples);
    let wtab = b.data_words(&win);
    let dst = b.alloc_words(ngran * 8);

    let (g, ngr, base) = (R1, R2, R3);
    let (k, i, acc, tmp, addr) = (R4, R5, R6, R7, R8);
    let (x, wv, out) = (R9, R10, R11);
    let (eight, thirty2) = (R12, R13);

    b.li(eight, 8);
    b.li(thirty2, 32);
    b.li(g, 0);
    b.li(ngr, ngran as i64);
    b.li(out, dst as i64);

    let g_loop = b.here();
    b.slli(base, g, 8); // g*32*8
    b.addi(base, base, src as i64);
    b.li(k, 0);
    let k_loop = b.here();
    b.li(acc, 0);
    b.li(i, 0);
    let i_loop = b.here();
    b.slli(addr, i, 3);
    b.add(addr, addr, base);
    b.ld(x, addr, 0);
    b.slli(addr, k, 8);
    b.slli(tmp, i, 3);
    b.add(addr, addr, tmp);
    b.addi(addr, addr, wtab as i64);
    b.ld(wv, addr, 0);
    b.mul(x, x, wv);
    b.srai(x, x, 10);
    b.add(acc, acc, x);
    b.addi(i, i, 1);
    b.blt(i, thirty2, i_loop);
    b.st(acc, out, 0);
    b.addi(out, out, 8);
    b.addi(k, k, 1);
    b.blt(k, eight, k_loop);
    b.addi(g, g, 1);
    b.blt(g, ngr, g_loop);
    b.halt();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mim_isa::Vm;

    #[test]
    fn dct_of_constant_signal_concentrates_in_dc() {
        // Verify against a Rust reference on the first block.
        let p = build_jpeg(WorkloadSize::Tiny, false);
        let nb = blocks(WorkloadSize::Tiny);
        let mut vm = Vm::new(&p);
        assert!(vm.run(Some(50_000_000)).unwrap().halted());
        let mem = vm.memory();
        let n = nb * 64;
        let img = &mem[0..n];
        let out = &mem[mem.len() - n..];
        let table = dct_table();
        // reference for block 0, row 0
        for u in 0..8 {
            let mut acc: i64 = 0;
            for x in 0..8 {
                acc += img[x] * table[u * 8 + x];
            }
            let expected = (acc >> 10) / (u as i64 + 1);
            assert_eq!(out[u], expected, "coefficient {u}");
        }
    }

    #[test]
    fn idct_output_is_clamped() {
        let p = build_jpeg(WorkloadSize::Tiny, true);
        let nb = blocks(WorkloadSize::Tiny);
        let mut vm = Vm::new(&p);
        assert!(vm.run(Some(50_000_000)).unwrap().halted());
        let mem = vm.memory();
        let out = &mem[mem.len() - nb * 64..];
        assert!(out.iter().all(|&v| (0..=255).contains(&v)));
    }

    #[test]
    fn lame_subband_energies_reflect_window_gain() {
        let p = build_lame(WorkloadSize::Tiny);
        let ng = granules(WorkloadSize::Tiny);
        let mut vm = Vm::new(&p);
        assert!(vm.run(Some(50_000_000)).unwrap().halted());
        let mem = vm.memory();
        let out = &mem[mem.len() - ng * 8..];
        // Windows scale with (k+1): band 7 magnitude >= band 0 magnitude
        // on aggregate.
        let e0: i64 = (0..ng).map(|g| out[g * 8].abs()).sum();
        let e7: i64 = (0..ng).map(|g| out[g * 8 + 7].abs()).sum();
        assert!(e7 >= e0, "band gains not monotone: e0={e0} e7={e7}");
    }
}
