//! SUSAN image kernels: smoothing, edge detection, corner detection.

use mim_isa::{Program, ProgramBuilder, Reg::*};

use crate::util::synth_image;
use crate::workload::{Workload, WorkloadSize};

fn dims(size: WorkloadSize) -> (usize, usize) {
    match size {
        WorkloadSize::Tiny => (24, 18),
        WorkloadSize::Small => (72, 56),
        WorkloadSize::Large => (176, 136),
    }
}

/// The `susan_s` workload: 3x3 weighted smoothing. Per pixel: nine loads,
/// nine multiplies by mask weights, and one divide by the weight sum — the
/// mul/div-heavy member of the SUSAN trio.
pub fn susan_s() -> Workload {
    Workload::new("susan_s", |size| build_susan(size, Variant::Smooth))
}

/// The `susan_e` workload: edge response — sum of absolute differences
/// against the center pixel with a threshold count (USAN area).
pub fn susan_e() -> Workload {
    Workload::new("susan_e", |size| build_susan(size, Variant::Edges))
}

/// The `susan_c` workload: corner response — like edges but with a tighter
/// geometric test and more data-dependent branching per pixel.
pub fn susan_c() -> Workload {
    Workload::new("susan_c", |size| build_susan(size, Variant::Corners))
}

#[derive(Clone, Copy, PartialEq)]
enum Variant {
    Smooth,
    Edges,
    Corners,
}

fn build_susan(size: WorkloadSize, variant: Variant) -> Program {
    let (w, h) = dims(size);
    let img = synth_image(w, h, 0x5a5a);
    let name = match variant {
        Variant::Smooth => "susan_s",
        Variant::Edges => "susan_e",
        Variant::Corners => "susan_c",
    };
    // 3x3 Gaussian-ish mask, weight sum 16.
    let mask: [i64; 9] = [1, 2, 1, 2, 4, 2, 1, 2, 1];

    let mut b = ProgramBuilder::named(name);
    let src = b.data_words(&img);
    let maskb = b.data_words(&mask);
    let dst = b.alloc_words(w * h);

    let (x, y, tmp, addr) = (R1, R2, R3, R4);
    let (acc, px, center, k) = (R5, R6, R7, R8);
    let (dx, dy, weight, zero) = (R9, R10, R11, R0);
    let (wreg, hreg, row, thresh) = (R12, R13, R14, R15);
    let (out, diff, cnt) = (R16, R17, R18);

    b.li(zero, 0);
    b.li(wreg, w as i64);
    b.li(hreg, h as i64);
    b.li(thresh, 20);

    b.li(y, 1);
    let row_loop = b.here();
    b.li(x, 1);
    let col_loop = b.here();
    // row = (y*w + x)*8 + src
    b.mul(row, y, wreg);
    b.add(row, row, x);
    b.slli(row, row, 3);
    // center pixel
    b.addi(addr, row, 0);
    b.addi(addr, addr, src as i64);
    b.ld(center, addr, 0);
    b.li(acc, 0);
    b.li(cnt, 0);
    b.li(k, 0);
    // 3x3 neighborhood scan: dy = k/3 - 1, dx = k%3 - 1.
    b.li(dy, -1);
    let dy_loop = b.here();
    b.li(dx, -1);
    let dx_loop = b.here();
    // addr = src + row + (dy*w + dx)*8
    b.mul(tmp, dy, wreg);
    b.add(tmp, tmp, dx);
    b.slli(tmp, tmp, 3);
    b.add(tmp, tmp, row);
    b.addi(tmp, tmp, src as i64);
    b.ld(px, tmp, 0);
    match variant {
        Variant::Smooth => {
            // weight = mask[k]; acc += px * weight
            b.slli(tmp, k, 3);
            b.addi(tmp, tmp, maskb as i64);
            b.ld(weight, tmp, 0);
            b.mul(px, px, weight);
            b.add(acc, acc, px);
        }
        Variant::Edges | Variant::Corners => {
            // diff = |px - center|; if diff < thresh { cnt += 1 } ; acc += diff
            b.sub(diff, px, center);
            let pos = b.label();
            b.bge(diff, zero, pos);
            b.sub(diff, zero, diff);
            b.bind(pos);
            b.add(acc, acc, diff);
            let far = b.label();
            b.bge(diff, thresh, far);
            b.addi(cnt, cnt, 1);
            b.bind(far);
        }
    }
    b.addi(k, k, 1);
    b.addi(dx, dx, 1);
    b.li(tmp, 2);
    b.blt(dx, tmp, dx_loop);
    b.addi(dy, dy, 1);
    b.blt(dy, tmp, dy_loop);

    // Write the response.
    b.addi(addr, row, dst as i64);
    match variant {
        Variant::Smooth => {
            // out = acc / 16 via divide (the MiBench code divides by the
            // accumulated weight, which is not a constant power of two).
            b.li(tmp, 16);
            b.div(out, acc, tmp);
            b.st(out, addr, 0);
        }
        Variant::Edges => {
            // Edge strength = total difference; mark if USAN area small.
            let no_edge = b.label();
            b.li(tmp, 6);
            b.bge(cnt, tmp, no_edge);
            b.st(acc, addr, 0);
            b.bind(no_edge);
        }
        Variant::Corners => {
            // Corner: very small USAN *and* strong response.
            let no_corner = b.label();
            b.li(tmp, 4);
            b.bge(cnt, tmp, no_corner);
            b.li(tmp, 100);
            b.blt(acc, tmp, no_corner);
            b.li(tmp, 1);
            b.st(tmp, addr, 0);
            b.bind(no_corner);
        }
    }
    b.addi(x, x, 1);
    b.addi(tmp, wreg, -1);
    b.blt(x, tmp, col_loop);
    b.addi(y, y, 1);
    b.addi(tmp, hreg, -1);
    b.blt(y, tmp, row_loop);
    b.halt();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mim_isa::Vm;

    fn run(variant: Variant) -> (Vec<i64>, usize, usize) {
        let (w, h) = dims(WorkloadSize::Tiny);
        let p = build_susan(WorkloadSize::Tiny, variant);
        let mut vm = Vm::new(&p);
        assert!(vm.run(Some(50_000_000)).unwrap().halted());
        let mem = vm.memory();
        (mem[mem.len() - w * h..].to_vec(), w, h)
    }

    #[test]
    fn smoothing_matches_reference_filter() {
        let (out, w, h) = run(Variant::Smooth);
        let img = synth_image(w, h, 0x5a5a);
        let mask: [i64; 9] = [1, 2, 1, 2, 4, 2, 1, 2, 1];
        for y in 1..h - 1 {
            for x in 1..w - 1 {
                let mut acc = 0;
                for dy in 0..3 {
                    for dx in 0..3 {
                        acc += img[(y + dy - 1) * w + (x + dx - 1)] * mask[dy * 3 + dx];
                    }
                }
                assert_eq!(out[y * w + x], acc / 16, "pixel ({x},{y})");
            }
        }
    }

    #[test]
    fn edges_fire_somewhere_but_not_everywhere() {
        let (out, w, h) = run(Variant::Edges);
        let nonzero = out.iter().filter(|&&v| v != 0).count();
        assert!(nonzero > 0, "no edges detected");
        assert!(nonzero < w * h, "every pixel an edge");
    }

    #[test]
    fn corners_are_sparser_than_edges() {
        let (edges, _, _) = run(Variant::Edges);
        let (corners, _, _) = run(Variant::Corners);
        let ne = edges.iter().filter(|&&v| v != 0).count();
        let nc = corners.iter().filter(|&&v| v != 0).count();
        assert!(nc <= ne, "corners ({nc}) should be rarer than edges ({ne})");
    }
}
