//! Office/auto kernels: `qsort` and `stringsearch`.

use mim_isa::{Program, ProgramBuilder, Reg::*};

use crate::util::SplitMix64;
use crate::workload::{Workload, WorkloadSize};

/// The `qsort` workload: iterative quicksort (Hoare partition, explicit
/// stack) over a pseudo-random word array. Compare/swap with
/// data-dependent, poorly predictable branches.
pub fn qsort() -> Workload {
    Workload::new("qsort", build_qsort)
}

fn qsort_len(size: WorkloadSize) -> usize {
    200 * size.scale() as usize
}

fn build_qsort(size: WorkloadSize) -> Program {
    let n = qsort_len(size);
    let mut rng = SplitMix64::new(0x9507);
    let array: Vec<i64> = (0..n).map(|_| rng.below(1 << 30) as i64).collect();

    let mut b = ProgramBuilder::named("qsort");
    let arr = b.data_words(&array);
    // Explicit stack of (lo, hi) pairs; depth bound 2*log2(n)+margin.
    let stack = b.alloc_words(128);

    let (sp, lo, hi) = (R1, R2, R3);
    let (i, j, pivot, tmp) = (R4, R5, R6, R7);
    let (ai, aj, addri, addrj) = (R8, R9, R10, R11);
    let (zero, mid) = (R0, R12);

    b.li(zero, 0);
    // push (0, n-1)
    b.li(sp, stack as i64);
    b.st(zero, sp, 0);
    b.li(tmp, (n - 1) as i64);
    b.st(tmp, sp, 8);
    b.addi(sp, sp, 16);

    let main_loop = b.here();
    // stack empty?
    let done = b.label();
    b.li(tmp, stack as i64);
    b.bge(tmp, sp, done);
    // pop
    b.addi(sp, sp, -16);
    b.ld(lo, sp, 0);
    b.ld(hi, sp, 8);
    let next = b.label();
    b.bge(lo, hi, next);
    // pivot = arr[(lo+hi)/2]
    b.add(mid, lo, hi);
    b.srai(mid, mid, 1);
    b.slli(tmp, mid, 3);
    b.addi(tmp, tmp, arr as i64);
    b.ld(pivot, tmp, 0);
    // Hoare partition
    b.addi(i, lo, -1);
    b.addi(j, hi, 1);
    let part = b.here();
    let fwd = b.here();
    b.addi(i, i, 1);
    b.slli(addri, i, 3);
    b.addi(addri, addri, arr as i64);
    b.ld(ai, addri, 0);
    b.blt(ai, pivot, fwd);
    let back = b.here();
    b.addi(j, j, -1);
    b.slli(addrj, j, 3);
    b.addi(addrj, addrj, arr as i64);
    b.ld(aj, addrj, 0);
    b.blt(pivot, aj, back);
    // if i >= j: partition done at j
    let partition_done = b.label();
    b.bge(i, j, partition_done);
    // swap
    b.st(aj, addri, 0);
    b.st(ai, addrj, 0);
    b.jmp(part);
    b.bind(partition_done);
    // push (lo, j) and (j+1, hi)
    b.st(lo, sp, 0);
    b.st(j, sp, 8);
    b.addi(sp, sp, 16);
    b.addi(tmp, j, 1);
    b.st(tmp, sp, 0);
    b.st(hi, sp, 8);
    b.addi(sp, sp, 16);
    b.bind(next);
    b.jmp(main_loop);
    b.bind(done);
    b.halt();
    b.build()
}

/// The `stringsearch` workload: Boyer–Moore–Horspool substring search of
/// several patterns over a synthetic text (one symbol per word). Table
/// lookups, backward compare loops and shift arithmetic; highly
/// branch-dependent on data.
pub fn stringsearch() -> Workload {
    Workload::new("stringsearch", build_stringsearch)
}

const ALPHABET: u64 = 32;
const PAT_LEN: usize = 6;

fn text_len(size: WorkloadSize) -> usize {
    2500 * size.scale() as usize
}

fn build_stringsearch(size: WorkloadSize) -> Program {
    let n = text_len(size);
    let mut rng = SplitMix64::new(0x7357);
    let mut text: Vec<i64> = (0..n).map(|_| rng.below(ALPHABET) as i64).collect();
    // Plant a real pattern every ~500 symbols so hits occur.
    let pattern: Vec<i64> = (0..PAT_LEN).map(|_| rng.below(ALPHABET) as i64).collect();
    let mut k = 400;
    while k + PAT_LEN < n {
        text[k..k + PAT_LEN].copy_from_slice(&pattern);
        k += 500;
    }

    let mut b = ProgramBuilder::named("stringsearch");
    let txt = b.data_words(&text);
    let pat = b.data_words(&pattern);
    let skip = b.alloc_words(ALPHABET as usize);
    let result = b.alloc_words(1);

    let (i, tmp, addr, c) = (R1, R2, R3, R4);
    let (pos, limit, j, count) = (R5, R6, R7, R8);
    let (tc, pc, zero, m) = (R9, R10, R0, R11);
    let shift = R12;

    b.li(zero, 0);
    b.li(m, PAT_LEN as i64);
    b.li(count, 0);

    // Build skip table: skip[c] = m; then skip[pat[i]] = m-1-i for i<m-1.
    b.li(i, 0);
    b.li(tmp, ALPHABET as i64);
    let fill = b.here();
    b.slli(addr, i, 3);
    b.addi(addr, addr, skip as i64);
    b.st(m, addr, 0);
    b.addi(i, i, 1);
    b.blt(i, tmp, fill);
    b.li(i, 0);
    b.li(tmp, (PAT_LEN - 1) as i64);
    let fill2 = b.here();
    b.slli(addr, i, 3);
    b.addi(addr, addr, pat as i64);
    b.ld(c, addr, 0);
    b.slli(addr, c, 3);
    b.addi(addr, addr, skip as i64);
    b.sub(shift, m, i);
    b.addi(shift, shift, -1);
    b.st(shift, addr, 0);
    b.addi(i, i, 1);
    b.blt(i, tmp, fill2);

    // Search: pos from 0 while pos <= n - m.
    b.li(pos, 0);
    b.li(limit, (n - PAT_LEN) as i64);
    let search = b.here();
    let done = b.label();
    b.blt(limit, pos, done);
    // compare backwards: j = m-1
    b.addi(j, m, -1);
    let cmp = b.here();
    // tc = text[pos+j]; pc = pat[j]
    b.add(tmp, pos, j);
    b.slli(addr, tmp, 3);
    b.addi(addr, addr, txt as i64);
    b.ld(tc, addr, 0);
    b.slli(addr, j, 3);
    b.addi(addr, addr, pat as i64);
    b.ld(pc, addr, 0);
    let mismatch = b.label();
    b.bne(tc, pc, mismatch);
    b.addi(j, j, -1);
    b.bge(j, zero, cmp);
    // full match
    b.addi(count, count, 1);
    // advance by 1 on match
    b.addi(pos, pos, 1);
    b.jmp(search);
    b.bind(mismatch);
    // shift by skip[text[pos+m-1]]
    b.add(tmp, pos, m);
    b.addi(tmp, tmp, -1);
    b.slli(addr, tmp, 3);
    b.addi(addr, addr, txt as i64);
    b.ld(tc, addr, 0);
    b.slli(addr, tc, 3);
    b.addi(addr, addr, skip as i64);
    b.ld(shift, addr, 0);
    b.add(pos, pos, shift);
    b.jmp(search);
    b.bind(done);
    b.li(tmp, result as i64);
    b.st(count, tmp, 0);
    b.halt();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mim_isa::Vm;

    #[test]
    fn qsort_actually_sorts() {
        let p = build_qsort(WorkloadSize::Tiny);
        let n = qsort_len(WorkloadSize::Tiny);
        let mut vm = Vm::new(&p);
        assert!(vm.run(Some(50_000_000)).unwrap().halted());
        let arr = &vm.memory()[0..n];
        assert!(arr.windows(2).all(|w| w[0] <= w[1]), "array is not sorted");
        // Content preserved: same multiset as the original input.
        let mut original: Vec<i64> = {
            let mut rng = SplitMix64::new(0x9507);
            (0..n).map(|_| rng.below(1 << 30) as i64).collect()
        };
        original.sort_unstable();
        assert_eq!(arr, &original[..]);
    }

    #[test]
    fn stringsearch_counts_match_reference() {
        let p = build_stringsearch(WorkloadSize::Tiny);
        let mut vm = Vm::new(&p);
        assert!(vm.run(Some(50_000_000)).unwrap().halted());
        let count = *vm.memory().last().unwrap();

        // Reference: naive count of pattern occurrences on the same data.
        let n = text_len(WorkloadSize::Tiny);
        let mut rng = SplitMix64::new(0x7357);
        let mut text: Vec<i64> = (0..n).map(|_| rng.below(ALPHABET) as i64).collect();
        let pattern: Vec<i64> = (0..PAT_LEN).map(|_| rng.below(ALPHABET) as i64).collect();
        let mut k = 400;
        while k + PAT_LEN < n {
            text[k..k + PAT_LEN].copy_from_slice(&pattern);
            k += 500;
        }
        let expected = (0..=n - PAT_LEN)
            .filter(|&i| text[i..i + PAT_LEN] == pattern[..])
            .count() as i64;
        assert_eq!(count, expected);
        assert!(count > 0, "no matches found — data generation is broken");
    }
}
