//! Network kernels: `dijkstra` and `patricia`.

use mim_isa::{Program, ProgramBuilder, Reg::*};

use crate::util::SplitMix64;
use crate::workload::{Workload, WorkloadSize};

/// The `dijkstra` workload: single-source shortest paths over a dense
/// adjacency matrix using repeated linear min-scans (exactly the MiBench
/// implementation strategy, which uses no priority queue).
///
/// The min-scan is a serial compare/select chain over loaded values —
/// minimal ILP — which is why this benchmark gains the least from
/// superscalar width in the paper's Figure 4.
pub fn dijkstra() -> Workload {
    Workload::new("dijkstra", build_dijkstra)
}

fn vertices(size: WorkloadSize) -> usize {
    match size {
        WorkloadSize::Tiny => 20,
        WorkloadSize::Small => 72,
        WorkloadSize::Large => 176,
    }
}

fn build_dijkstra(size: WorkloadSize) -> Program {
    let v = vertices(size);
    let mut rng = SplitMix64::new(0xD13A);
    // Dense weight matrix, weights in 1..100.
    let matrix: Vec<i64> = (0..v * v).map(|_| 1 + rng.below(99) as i64).collect();
    const INF: i64 = 1 << 40;

    let mut b = ProgramBuilder::named("dijkstra");
    let mat = b.data_words(&matrix);
    let dist = b.alloc_words(v);
    let visited = b.alloc_words(v);

    let (i, n, tmp, addr) = (R1, R2, R3, R4);
    let (best, bestu, iter) = (R5, R6, R7);
    let (du, w, dv, row, zero, inf) = (R8, R9, R10, R11, R0, R12);
    let vflag = R13;

    b.li(zero, 0);
    b.li(n, v as i64);
    b.li(inf, INF);

    // dist[*] = INF; dist[0] = 0; visited[*] = 0 (allocated zeroed).
    b.li(i, 0);
    let init = b.here();
    b.slli(addr, i, 3);
    b.addi(addr, addr, dist as i64);
    b.st(inf, addr, 0);
    b.addi(i, i, 1);
    b.blt(i, n, init);
    b.li(tmp, dist as i64);
    b.st(zero, tmp, 0);

    // Main loop: v iterations of (extract-min, relax row).
    b.li(iter, 0);
    let outer = b.here();
    // extract-min scan
    b.mv(best, inf);
    b.li(bestu, -1);
    b.li(i, 0);
    let scan = b.here();
    b.slli(addr, i, 3);
    b.addi(tmp, addr, visited as i64);
    b.ld(vflag, tmp, 0);
    let skip = b.label();
    b.bne(vflag, zero, skip);
    b.addi(tmp, addr, dist as i64);
    b.ld(dv, tmp, 0);
    b.bge(dv, best, skip);
    b.mv(best, dv);
    b.mv(bestu, i);
    b.bind(skip);
    b.addi(i, i, 1);
    b.blt(i, n, scan);

    let done = b.label();
    b.blt(bestu, zero, done); // graph exhausted

    // visited[bestu] = 1
    b.slli(addr, bestu, 3);
    b.addi(tmp, addr, visited as i64);
    b.li(vflag, 1);
    b.st(vflag, tmp, 0);
    // du = dist[bestu]; row = mat + bestu*v*8
    b.addi(tmp, addr, dist as i64);
    b.ld(du, tmp, 0);
    b.li(tmp, (v * 8) as i64);
    b.mul(row, bestu, tmp);
    b.addi(row, row, mat as i64);
    // relax all
    b.li(i, 0);
    let relax = b.here();
    b.slli(addr, i, 3);
    b.add(tmp, addr, row);
    b.ld(w, tmp, 0);
    b.add(w, w, du);
    b.addi(tmp, addr, dist as i64);
    b.ld(dv, tmp, 0);
    let no_update = b.label();
    b.bge(w, dv, no_update);
    b.st(w, tmp, 0);
    b.bind(no_update);
    b.addi(i, i, 1);
    b.blt(i, n, relax);

    b.addi(iter, iter, 1);
    b.blt(iter, n, outer);
    b.bind(done);
    b.halt();
    b.build()
}

/// The `patricia` workload: Patricia-trie construction and lookups over
/// 32-bit keys (MiBench uses it for IP routing tables). Node-to-node
/// pointer chasing with a data-dependent branch at every step — load
/// latency plus branch behaviour dominate.
pub fn patricia() -> Workload {
    Workload::new("patricia", build_patricia)
}

fn build_patricia(size: WorkloadSize) -> Program {
    let inserts = 150 * size.scale() as usize;
    let lookups = 400 * size.scale() as usize;
    let mut rng = SplitMix64::new(0x9a77);
    // Keys clustered in subnets to give realistic trie shape.
    let make_key = |rng: &mut SplitMix64| -> i64 {
        let subnet = rng.below(64) << 24;
        (subnet | rng.below(1 << 16)) as i64
    };
    let ins_keys: Vec<i64> = (0..inserts).map(|_| make_key(&mut rng)).collect();
    let look_keys: Vec<i64> = (0..lookups)
        .map(|_| {
            if rng.below(2) == 0 {
                ins_keys[rng.below(ins_keys.len() as u64) as usize]
            } else {
                make_key(&mut rng)
            }
        })
        .collect();

    // Node layout: [key, left, right], 3 words. Node 0 is the root
    // sentinel. `heap` counts allocated nodes.
    let mut b = ProgramBuilder::named("patricia");
    let ins = b.data_words(&ins_keys);
    let look = b.data_words(&look_keys);
    let nodes = b.alloc_words(3 * (inserts + 2));
    let result = b.alloc_words(2); // [hits, node_count]

    let (ptr, end, key) = (R1, R2, R3);
    let (node, next, bit, tmp, addr) = (R4, R5, R6, R7, R8);
    let (heap, zero, nkey, hits) = (R9, R0, R10, R11);
    let depth = R12;

    b.li(zero, 0);
    b.li(heap, 1); // node 0 = root (key 0, children null=0)
    b.li(hits, 0);

    // ---- insertion phase ----
    b.li(ptr, ins as i64);
    b.li(end, (ins + 8 * inserts as u64) as i64);
    let ins_loop = b.here();
    b.ld(key, ptr, 0);
    b.li(node, 0);
    b.li(depth, 31);
    let walk = b.here();
    // bit = (key >> depth) & 1; next = bit ? node.right : node.left
    b.sra(bit, key, depth);
    b.andi(bit, bit, 1);
    // addr = nodes + node*24 + 8 + bit*8
    b.slli(addr, node, 1);
    b.add(addr, addr, node); // node*3
    b.slli(addr, addr, 3); // node*24
    b.addi(addr, addr, nodes as i64);
    b.slli(tmp, bit, 3);
    b.add(addr, addr, tmp);
    b.ld(next, addr, 8);
    let attach = b.label();
    b.beq(next, zero, attach);
    // check for duplicate key at the child
    b.slli(tmp, next, 1);
    b.add(tmp, tmp, next);
    b.slli(tmp, tmp, 3);
    b.addi(tmp, tmp, nodes as i64);
    b.ld(nkey, tmp, 0);
    let cont = b.label();
    b.bne(nkey, key, cont);
    let ins_next = b.label();
    b.jmp(ins_next); // duplicate: skip
    b.bind(cont);
    b.mv(node, next);
    b.addi(depth, depth, -1);
    b.bge(depth, zero, walk);
    b.jmp(ins_next); // exhausted bits (collision): skip
    b.bind(attach);
    // allocate heap node: key = key
    b.st(heap, addr, 8); // parent child pointer
    b.slli(tmp, heap, 1);
    b.add(tmp, tmp, heap);
    b.slli(tmp, tmp, 3);
    b.addi(tmp, tmp, nodes as i64);
    b.st(key, tmp, 0);
    b.st(zero, tmp, 8);
    b.st(zero, tmp, 16);
    b.addi(heap, heap, 1);
    b.bind(ins_next);
    b.addi(ptr, ptr, 8);
    b.blt(ptr, end, ins_loop);

    // ---- lookup phase ----
    b.li(ptr, look as i64);
    b.li(end, (look + 8 * lookups as u64) as i64);
    let look_loop = b.here();
    b.ld(key, ptr, 0);
    b.li(node, 0);
    b.li(depth, 31);
    let lwalk = b.here();
    b.sra(bit, key, depth);
    b.andi(bit, bit, 1);
    b.slli(addr, node, 1);
    b.add(addr, addr, node);
    b.slli(addr, addr, 3);
    b.addi(addr, addr, nodes as i64);
    b.slli(tmp, bit, 3);
    b.add(addr, addr, tmp);
    b.ld(next, addr, 8);
    let miss = b.label();
    b.beq(next, zero, miss);
    b.slli(tmp, next, 1);
    b.add(tmp, tmp, next);
    b.slli(tmp, tmp, 3);
    b.addi(tmp, tmp, nodes as i64);
    b.ld(nkey, tmp, 0);
    let lcont = b.label();
    b.bne(nkey, key, lcont);
    b.addi(hits, hits, 1);
    b.jmp(miss);
    b.bind(lcont);
    b.mv(node, next);
    b.addi(depth, depth, -1);
    b.bge(depth, zero, lwalk);
    b.bind(miss);
    b.addi(ptr, ptr, 8);
    b.blt(ptr, end, look_loop);

    // record results
    b.li(tmp, result as i64);
    b.st(hits, tmp, 0);
    b.st(heap, tmp, 8);
    b.halt();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mim_isa::Vm;

    #[test]
    fn dijkstra_distances_match_reference() {
        let v = vertices(WorkloadSize::Tiny);
        let p = build_dijkstra(WorkloadSize::Tiny);
        let mut vm = Vm::new(&p);
        assert!(vm.run(Some(20_000_000)).unwrap().halted());
        let mem = vm.memory();
        let matrix = &mem[0..v * v];
        let dist = &mem[v * v..v * v + v];

        // Reference Dijkstra in Rust.
        const INF: i64 = 1 << 40;
        let mut rd = vec![INF; v];
        let mut vis = vec![false; v];
        rd[0] = 0;
        for _ in 0..v {
            let u = (0..v).filter(|&u| !vis[u]).min_by_key(|&u| rd[u]).unwrap();
            vis[u] = true;
            for w in 0..v {
                let cand = rd[u] + matrix[u * v + w];
                if cand < rd[w] {
                    rd[w] = cand;
                }
            }
        }
        assert_eq!(dist, &rd[..], "assembly Dijkstra disagrees with reference");
    }

    #[test]
    fn patricia_finds_inserted_keys() {
        let p = build_patricia(WorkloadSize::Tiny);
        let mut vm = Vm::new(&p);
        assert!(vm.run(Some(50_000_000)).unwrap().halted());
        let mem = vm.memory();
        let hits = mem[mem.len() - 2];
        let node_count = mem[mem.len() - 1];
        let lookups = 400 * WorkloadSize::Tiny.scale() as i64;
        // ~half the lookups are drawn from inserted keys.
        assert!(hits > lookups / 4, "hits {hits} too low");
        assert!(hits <= lookups);
        let inserts = 150 * WorkloadSize::Tiny.scale() as i64;
        assert!(node_count > inserts / 2 && node_count <= inserts + 1);
    }
}
