//! IMA ADPCM encoder/decoder kernels (`adpcm_c`, `adpcm_d`).
//!
//! Faithful integer implementations of the IMA ADPCM step logic: the
//! encoder quantizes sample deltas into 4-bit codes against an adaptive
//! step-size table; the decoder reconstructs samples from codes. Both are
//! ALU- and branch-dense with short dependency chains and fully sequential
//! memory access — the classic telecom profile.

use mim_isa::{Program, ProgramBuilder, Reg::*};

use crate::util::SplitMix64;
use crate::workload::{Workload, WorkloadSize};

/// First 89 entries of the IMA ADPCM step-size table.
const STEP_TABLE: [i64; 89] = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66,
    73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449,
    494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
    2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493,
    10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
];

/// Index adjustment per 3-bit magnitude code.
const INDEX_TABLE: [i64; 8] = [-1, -1, -1, -1, 2, 4, 6, 8];

fn num_samples(size: WorkloadSize) -> usize {
    1200 * size.scale() as usize
}

/// The `adpcm_c` workload: ADPCM *encode* of a synthetic PCM stream.
pub fn adpcm_c() -> Workload {
    Workload::new("adpcm_c", build_encoder)
}

/// The `adpcm_d` workload: ADPCM *decode* of a pre-encoded code stream.
pub fn adpcm_d() -> Workload {
    Workload::new("adpcm_d", build_decoder)
}

fn build_encoder(size: WorkloadSize) -> Program {
    let n = num_samples(size);
    let mut rng = SplitMix64::new(0xADC0DE);
    // Smooth-ish PCM: random walk clamped to 14 bits.
    let mut pcm = Vec::with_capacity(n);
    let mut v: i64 = 0;
    for _ in 0..n {
        v = (v + rng.signed(800)).clamp(-16000, 16000);
        pcm.push(v);
    }

    let mut b = ProgramBuilder::named("adpcm_c");
    let steps = b.data_words(&STEP_TABLE);
    let idxtab = b.data_words(&INDEX_TABLE);
    let input = b.data_words(&pcm);
    let output = b.alloc_words(n);

    // Register map.
    let (ptr, end, out) = (R1, R2, R3);
    let (valpred, index) = (R4, R5);
    let (sample, diff, sign, step, delta, vpdiff, tmp, tmp2) = (R6, R7, R8, R9, R10, R11, R12, R13);
    let (steps_base, idx_base, zero) = (R14, R15, R0);

    b.li(zero, 0);
    b.li(ptr, input as i64);
    b.li(end, (input + 8 * n as u64) as i64);
    b.li(out, output as i64);
    b.li(valpred, 0);
    b.li(index, 0);
    b.li(steps_base, steps as i64);
    b.li(idx_base, idxtab as i64);

    let loop_top = b.here();
    // sample = *ptr; diff = sample - valpred
    b.ld(sample, ptr, 0);
    b.sub(diff, sample, valpred);
    // sign = (diff < 0) ? 8 : 0; diff = |diff|
    b.slt(sign, diff, zero);
    b.slli(sign, sign, 3);
    let nonneg = b.label();
    b.bge(diff, zero, nonneg);
    b.sub(diff, zero, diff);
    b.bind(nonneg);
    // step = STEP_TABLE[index]
    b.slli(tmp, index, 3);
    b.add(tmp, tmp, steps_base);
    b.ld(step, tmp, 0);
    // delta = 0; vpdiff = step >> 3
    b.li(delta, 0);
    b.srai(vpdiff, step, 3);
    // if diff >= step { delta = 4; diff -= step; vpdiff += step }
    let lt4 = b.label();
    b.blt(diff, step, lt4);
    b.li(delta, 4);
    b.sub(diff, diff, step);
    b.add(vpdiff, vpdiff, step);
    b.bind(lt4);
    // step >>= 1; if diff >= step { delta |= 2; diff -= step; vpdiff += step }
    b.srai(step, step, 1);
    let lt2 = b.label();
    b.blt(diff, step, lt2);
    b.ori(delta, delta, 2);
    b.sub(diff, diff, step);
    b.add(vpdiff, vpdiff, step);
    b.bind(lt2);
    // step >>= 1; if diff >= step { delta |= 1; vpdiff += step }
    b.srai(step, step, 1);
    let lt1 = b.label();
    b.blt(diff, step, lt1);
    b.ori(delta, delta, 1);
    b.add(vpdiff, vpdiff, step);
    b.bind(lt1);
    // valpred += sign ? -vpdiff : vpdiff, clamped to 16 bits
    let plus = b.label();
    let clamp = b.label();
    b.beq(sign, zero, plus);
    b.sub(valpred, valpred, vpdiff);
    b.jmp(clamp);
    b.bind(plus);
    b.add(valpred, valpred, vpdiff);
    b.bind(clamp);
    b.li(tmp, 32767);
    let no_hi = b.label();
    b.blt(valpred, tmp, no_hi);
    b.mv(valpred, tmp);
    b.bind(no_hi);
    b.li(tmp2, -32768);
    let no_lo = b.label();
    b.bge(valpred, tmp2, no_lo);
    b.mv(valpred, tmp2);
    b.bind(no_lo);
    // index += INDEX_TABLE[delta]; clamp to [0, 88]
    b.slli(tmp, delta, 3);
    b.add(tmp, tmp, idx_base);
    b.ld(tmp, tmp, 0);
    b.add(index, index, tmp);
    let idx_lo = b.label();
    b.bge(index, zero, idx_lo);
    b.li(index, 0);
    b.bind(idx_lo);
    b.li(tmp, 88);
    let idx_hi = b.label();
    b.blt(index, tmp, idx_hi);
    b.mv(index, tmp);
    b.bind(idx_hi);
    // *out = delta | sign; advance
    b.or(tmp, delta, sign);
    b.st(tmp, out, 0);
    b.addi(out, out, 8);
    b.addi(ptr, ptr, 8);
    b.blt(ptr, end, loop_top);
    b.halt();
    b.build()
}

fn build_decoder(size: WorkloadSize) -> Program {
    let n = num_samples(size);
    // Pre-encode deterministic codes (4-bit, sign in bit 3).
    let mut rng = SplitMix64::new(0xDEC0DE);
    let codes: Vec<i64> = (0..n).map(|_| rng.below(16) as i64).collect();

    let mut b = ProgramBuilder::named("adpcm_d");
    let steps = b.data_words(&STEP_TABLE);
    let idxtab = b.data_words(&INDEX_TABLE);
    let input = b.data_words(&codes);
    let output = b.alloc_words(n);

    let (ptr, end, out) = (R1, R2, R3);
    let (valpred, index) = (R4, R5);
    let (code, sign, mag, step, vpdiff, tmp, tmp2) = (R6, R7, R8, R9, R10, R11, R12);
    let (steps_base, idx_base, zero) = (R14, R15, R0);

    b.li(zero, 0);
    b.li(ptr, input as i64);
    b.li(end, (input + 8 * n as u64) as i64);
    b.li(out, output as i64);
    b.li(valpred, 0);
    b.li(index, 0);
    b.li(steps_base, steps as i64);
    b.li(idx_base, idxtab as i64);

    let loop_top = b.here();
    b.ld(code, ptr, 0);
    // sign = code & 8; mag = code & 7
    b.andi(sign, code, 8);
    b.andi(mag, code, 7);
    // step = STEP_TABLE[index]
    b.slli(tmp, index, 3);
    b.add(tmp, tmp, steps_base);
    b.ld(step, tmp, 0);
    // vpdiff = step>>3 + (mag&4 ? step : 0) + (mag&2 ? step>>1 : 0) + (mag&1 ? step>>2 : 0)
    b.srai(vpdiff, step, 3);
    b.andi(tmp, mag, 4);
    let no4 = b.label();
    b.beq(tmp, zero, no4);
    b.add(vpdiff, vpdiff, step);
    b.bind(no4);
    b.andi(tmp, mag, 2);
    let no2 = b.label();
    b.beq(tmp, zero, no2);
    b.srai(tmp2, step, 1);
    b.add(vpdiff, vpdiff, tmp2);
    b.bind(no2);
    b.andi(tmp, mag, 1);
    let no1 = b.label();
    b.beq(tmp, zero, no1);
    b.srai(tmp2, step, 2);
    b.add(vpdiff, vpdiff, tmp2);
    b.bind(no1);
    // valpred +/- vpdiff with clamp
    let plus = b.label();
    let clamp = b.label();
    b.beq(sign, zero, plus);
    b.sub(valpred, valpred, vpdiff);
    b.jmp(clamp);
    b.bind(plus);
    b.add(valpred, valpred, vpdiff);
    b.bind(clamp);
    b.li(tmp, 32767);
    let no_hi = b.label();
    b.blt(valpred, tmp, no_hi);
    b.mv(valpred, tmp);
    b.bind(no_hi);
    b.li(tmp2, -32768);
    let no_lo = b.label();
    b.bge(valpred, tmp2, no_lo);
    b.mv(valpred, tmp2);
    b.bind(no_lo);
    // index += INDEX_TABLE[mag]; clamp
    b.slli(tmp, mag, 3);
    b.add(tmp, tmp, idx_base);
    b.ld(tmp, tmp, 0);
    b.add(index, index, tmp);
    let idx_lo = b.label();
    b.bge(index, zero, idx_lo);
    b.li(index, 0);
    b.bind(idx_lo);
    b.li(tmp, 88);
    let idx_hi = b.label();
    b.blt(index, tmp, idx_hi);
    b.mv(index, tmp);
    b.bind(idx_hi);
    // emit sample
    b.st(valpred, out, 0);
    b.addi(out, out, 8);
    b.addi(ptr, ptr, 8);
    b.blt(ptr, end, loop_top);
    b.halt();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mim_isa::Vm;

    #[test]
    fn encoder_emits_4bit_codes() {
        let p = build_encoder(WorkloadSize::Tiny);
        let n = num_samples(WorkloadSize::Tiny);
        let mut vm = Vm::new(&p);
        assert!(vm.run(Some(10_000_000)).unwrap().halted());
        // Output region is the last n words of data memory.
        let mem = vm.memory();
        let out = &mem[mem.len() - n..];
        assert!(out.iter().all(|&c| (0..16).contains(&c)));
        // Codes must vary (a constant stream would indicate a broken encoder).
        assert!(out.iter().any(|&c| c != out[0]));
    }

    #[test]
    fn decoder_reconstructs_bounded_samples() {
        let p = build_decoder(WorkloadSize::Tiny);
        let n = num_samples(WorkloadSize::Tiny);
        let mut vm = Vm::new(&p);
        assert!(vm.run(Some(10_000_000)).unwrap().halted());
        let mem = vm.memory();
        let out = &mem[mem.len() - n..];
        assert!(out.iter().all(|&s| (-32768..=32767).contains(&s)));
        assert!(out.iter().any(|&s| s != 0));
    }

    #[test]
    fn encode_then_decode_tracks_the_input() {
        // Feed the encoder's output into the decoder logic (in Rust) and
        // check reconstruction error is small relative to signal amplitude:
        // validates that the assembly implements real ADPCM, not noise.
        let p = build_encoder(WorkloadSize::Tiny);
        let n = num_samples(WorkloadSize::Tiny);
        let mut vm = Vm::new(&p);
        vm.run(Some(10_000_000)).unwrap();
        let mem = vm.memory().to_vec();
        let table_len = STEP_TABLE.len() + INDEX_TABLE.len();
        let input = &mem[table_len..table_len + n];
        let codes = &mem[mem.len() - n..];

        // Reference IMA decoder.
        let (mut valpred, mut index) = (0i64, 0i64);
        let mut err_sum = 0f64;
        for (&code, &sample) in codes.iter().zip(input) {
            let sign = code & 8;
            let mag = code & 7;
            let step = STEP_TABLE[index as usize];
            let mut vpdiff = step >> 3;
            if mag & 4 != 0 {
                vpdiff += step;
            }
            if mag & 2 != 0 {
                vpdiff += step >> 1;
            }
            if mag & 1 != 0 {
                vpdiff += step >> 2;
            }
            if sign != 0 {
                valpred -= vpdiff;
            } else {
                valpred += vpdiff;
            }
            valpred = valpred.clamp(-32768, 32767);
            index = (index + INDEX_TABLE[mag as usize]).clamp(0, 88);
            err_sum += (valpred - sample).abs() as f64;
        }
        let mean_err = err_sum / n as f64;
        assert!(
            mean_err < 2000.0,
            "ADPCM tracking error too large: {mean_err}"
        );
    }
}
