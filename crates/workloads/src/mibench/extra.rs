//! Extended MiBench kernels beyond the paper's 19: `bitcount`, `crc32`,
//! `fft`, `basicmath`.
//!
//! The paper limits itself to 19 benchmarks "to limit simulation time
//! during performance model validation" (§4); these four round out the
//! automotive/telecom domains for users who want broader coverage. They
//! are not part of [`mibench::all`](super::all) so the paper experiments
//! stay exactly comparable; use [`extended`](super::extended).

use mim_isa::{Program, ProgramBuilder, Reg::*};

use crate::util::SplitMix64;
use crate::workload::{Workload, WorkloadSize};

/// The `bitcount` workload: MiBench's bit-counting micro-suite — per word,
/// both a Kernighan clear-lowest-bit loop (data-dependent trip count,
/// hard-to-predict branch) and a nibble-table lookup counter.
pub fn bitcount() -> Workload {
    Workload::new("bitcount", build_bitcount)
}

fn build_bitcount(size: WorkloadSize) -> Program {
    let n = 500 * size.scale() as usize;
    let mut rng = SplitMix64::new(0xb17c);
    let data: Vec<i64> = (0..n).map(|_| rng.next_u64() as i64).collect();
    let table: Vec<i64> = (0..16i64).map(|v| v.count_ones() as i64).collect();

    let mut b = ProgramBuilder::named("bitcount");
    let src = b.data_words(&data);
    let tab = b.data_words(&table);
    let result = b.alloc_words(2);

    let (p, e, v, bits, count, total_k) = (R1, R2, R3, R4, R5, R6);
    let (total_t, nib, tmp, addr, zero) = (R7, R8, R9, R10, R0);
    let rounds = R11;

    b.li(zero, 0);
    b.li(total_k, 0);
    b.li(total_t, 0);
    b.li(p, src as i64);
    b.li(e, (src + 8 * n as u64) as i64);
    let top = b.here();
    b.ld(v, p, 0);
    // Kernighan loop.
    b.li(count, 0);
    b.mv(bits, v);
    let k_loop = b.here();
    let k_done = b.label();
    b.beq(bits, zero, k_done);
    b.addi(tmp, bits, -1);
    b.and(bits, bits, tmp);
    b.addi(count, count, 1);
    b.jmp(k_loop);
    b.bind(k_done);
    b.add(total_k, total_k, count);
    // Nibble-table loop over 16 nibbles.
    b.li(count, 0);
    b.mv(bits, v);
    b.li(rounds, 16);
    let t_loop = b.here();
    b.andi(nib, bits, 15);
    b.slli(addr, nib, 3);
    b.addi(addr, addr, tab as i64);
    b.ld(tmp, addr, 0);
    b.add(count, count, tmp);
    b.srli(bits, bits, 4);
    b.addi(rounds, rounds, -1);
    b.bne(rounds, zero, t_loop);
    b.add(total_t, total_t, count);
    b.addi(p, p, 8);
    b.blt(p, e, top);
    b.li(tmp, result as i64);
    b.st(total_k, tmp, 0);
    b.st(total_t, tmp, 8);
    b.halt();
    b.build()
}

/// The `crc32` workload: table-driven CRC-32 over a byte-expanded buffer —
/// a serial xor/shift/table-load recurrence per byte, the telecom
/// checksum pattern.
pub fn crc32() -> Workload {
    Workload::new("crc32", build_crc32)
}

fn crc_table() -> Vec<i64> {
    (0..256u32)
        .map(|i| {
            let mut c = i;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB88320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            i64::from(c)
        })
        .collect()
}

fn build_crc32(size: WorkloadSize) -> Program {
    let n = 3_000 * size.scale() as usize;
    let mut rng = SplitMix64::new(0xc3c);
    let data: Vec<i64> = (0..n).map(|_| rng.below(256) as i64).collect();

    let mut b = ProgramBuilder::named("crc32");
    let tab = b.data_words(&crc_table());
    let src = b.data_words(&data);
    let result = b.alloc_words(1);

    let (p, e, byte, crc, idx, tmp, addr, mask) = (R1, R2, R3, R4, R5, R6, R7, R8);

    b.li(crc, 0xFFFF_FFFF);
    b.li(mask, 0xFFFF_FFFF);
    b.li(p, src as i64);
    b.li(e, (src + 8 * n as u64) as i64);
    let top = b.here();
    b.ld(byte, p, 0);
    // idx = (crc ^ byte) & 0xFF; crc = table[idx] ^ (crc >> 8)
    b.xor(idx, crc, byte);
    b.andi(idx, idx, 255);
    b.slli(addr, idx, 3);
    b.addi(addr, addr, tab as i64);
    b.ld(tmp, addr, 0);
    b.srli(crc, crc, 8);
    b.xor(crc, crc, tmp);
    b.and(crc, crc, mask);
    b.addi(p, p, 8);
    b.blt(p, e, top);
    b.xor(crc, crc, mask);
    b.li(tmp, result as i64);
    b.st(crc, tmp, 0);
    b.halt();
    b.build()
}

/// The `fft` workload: an iterative radix-2 integer FFT butterfly sweep
/// (Q14 fixed-point twiddles) — strided memory access whose stride halves
/// every stage, multiply-dense butterflies.
pub fn fft() -> Workload {
    Workload::new("fft", build_fft)
}

fn build_fft(size: WorkloadSize) -> Program {
    // Transform length scales with size class (must be a power of two).
    let log_n = match size {
        WorkloadSize::Tiny => 8,
        WorkloadSize::Small => 12,
        WorkloadSize::Large => 14,
    };
    let n = 1usize << log_n;
    let mut rng = SplitMix64::new(0xff7);
    let re: Vec<i64> = (0..n).map(|_| rng.signed(1 << 12)).collect();
    let im: Vec<i64> = (0..n).map(|_| rng.signed(1 << 12)).collect();
    // Q14 twiddle tables for the n/2 roots.
    let mut wr = Vec::with_capacity(n / 2);
    let mut wi = Vec::with_capacity(n / 2);
    for k in 0..n / 2 {
        let ang = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
        wr.push((ang.cos() * 16384.0).round() as i64);
        wi.push((ang.sin() * 16384.0).round() as i64);
    }

    let mut b = ProgramBuilder::named("fft");
    let re_b = b.data_words(&re);
    let im_b = b.data_words(&im);
    let wr_b = b.data_words(&wr);
    let wi_b = b.data_words(&wi);

    // Iterative Cooley-Tukey without bit-reversal (decimation in
    // frequency): for len = n, n/2, .., 2: for each block, butterfly pairs
    // (i, i + len/2) with twiddle step n/len.
    let (len, half, blk, i) = (R1, R2, R3, R4);
    let (ar, ai, br_, bi) = (R5, R6, R7, R8);
    let (twr, twi, t1, t2) = (R9, R10, R11, R12);
    let (addr_a, addr_b, k, step) = (R13, R14, R15, R16);
    let (nreg, tmp, two) = (R17, R18, R19);

    b.li(nreg, n as i64);
    b.li(two, 2);
    b.li(len, n as i64);
    let stage = b.here();
    b.srai(half, len, 1);
    // step = n / len
    b.div(step, nreg, len);
    b.li(blk, 0);
    let blk_loop = b.here();
    b.li(i, 0);
    b.li(k, 0);
    let bf_loop = b.here();
    // a = x[blk + i]; b = x[blk + i + half]
    b.add(tmp, blk, i);
    b.slli(addr_a, tmp, 3);
    b.add(tmp, tmp, half);
    b.slli(addr_b, tmp, 3);
    b.addi(addr_a, addr_a, 0);
    b.addi(addr_b, addr_b, 0);
    // load re/im of both
    b.addi(tmp, addr_a, re_b as i64);
    b.ld(ar, tmp, 0);
    b.addi(tmp, addr_a, im_b as i64);
    b.ld(ai, tmp, 0);
    b.addi(tmp, addr_b, re_b as i64);
    b.ld(br_, tmp, 0);
    b.addi(tmp, addr_b, im_b as i64);
    b.ld(bi, tmp, 0);
    // sum -> a slot
    b.add(t1, ar, br_);
    b.srai(t1, t1, 1); // scale to avoid overflow
    b.add(t2, ai, bi);
    b.srai(t2, t2, 1);
    b.addi(tmp, addr_a, re_b as i64);
    b.st(t1, tmp, 0);
    b.addi(tmp, addr_a, im_b as i64);
    b.st(t2, tmp, 0);
    // diff * twiddle -> b slot
    b.sub(ar, ar, br_);
    b.sub(ai, ai, bi);
    b.slli(tmp, k, 3);
    b.addi(tmp, tmp, wr_b as i64);
    b.ld(twr, tmp, 0);
    b.slli(tmp, k, 3);
    b.addi(tmp, tmp, wi_b as i64);
    b.ld(twi, tmp, 0);
    // t1 = (ar*twr - ai*twi) >> 14 ; t2 = (ar*twi + ai*twr) >> 14
    b.mul(t1, ar, twr);
    b.mul(t2, ai, twi);
    b.sub(t1, t1, t2);
    b.srai(t1, t1, 15); // extra >>1 for scaling
    b.mul(t2, ar, twi);
    b.mul(ar, ai, twr);
    b.add(t2, t2, ar);
    b.srai(t2, t2, 15);
    b.addi(tmp, addr_b, re_b as i64);
    b.st(t1, tmp, 0);
    b.addi(tmp, addr_b, im_b as i64);
    b.st(t2, tmp, 0);
    // k += step; i += 1
    b.add(k, k, step);
    b.addi(i, i, 1);
    b.blt(i, half, bf_loop);
    b.add(blk, blk, len);
    b.blt(blk, nreg, blk_loop);
    b.srai(len, len, 1);
    b.bge(len, two, stage);
    b.halt();
    b.build()
}

/// The `basicmath` workload: cubic-equation solving and integer square
/// roots over a parameter sweep — divide-heavy scalar arithmetic with
/// data-dependent convergence loops (Newton iterations).
pub fn basicmath() -> Workload {
    Workload::new("basicmath", build_basicmath)
}

fn build_basicmath(size: WorkloadSize) -> Program {
    let n = 250 * size.scale() as usize;
    let mut rng = SplitMix64::new(0xba51);
    let inputs: Vec<i64> = (0..n).map(|_| 1 + rng.below(1 << 30) as i64).collect();

    let mut b = ProgramBuilder::named("basicmath");
    let src = b.data_words(&inputs);
    let out = b.alloc_words(n);

    let (p, e, v, x, prev, q, tmp, outp, zero) = (R1, R2, R3, R4, R5, R6, R7, R8, R0);
    let iter = R9;

    b.li(zero, 0);
    b.li(p, src as i64);
    b.li(e, (src + 8 * n as u64) as i64);
    b.li(outp, out as i64);
    let top = b.here();
    b.ld(v, p, 0);
    // Newton integer sqrt: x_{k+1} = (x_k + v/x_k) / 2, start x = v/2 + 1.
    b.srai(x, v, 1);
    b.addi(x, x, 1);
    b.li(iter, 40); // bound the data-dependent loop
    let newton = b.here();
    b.div(q, v, x);
    b.add(tmp, x, q);
    b.srai(tmp, tmp, 1);
    b.mv(prev, x);
    b.mv(x, tmp);
    b.addi(iter, iter, -1);
    let done = b.label();
    b.beq(iter, zero, done);
    b.blt(x, prev, newton); // monotone decrease until convergence
    b.bind(done);
    b.st(x, outp, 0);
    b.addi(outp, outp, 8);
    b.addi(p, p, 8);
    b.blt(p, e, top);
    b.halt();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mim_isa::Vm;

    #[test]
    fn bitcount_counts_agree_between_methods() {
        let p = build_bitcount(WorkloadSize::Tiny);
        let mut vm = Vm::new(&p);
        assert!(vm.run(Some(20_000_000)).unwrap().halted());
        let mem = vm.memory();
        let (kernighan, table) = (mem[mem.len() - 2], mem[mem.len() - 1]);
        assert_eq!(kernighan, table, "two popcount methods disagree");
        // Expected value from host-side popcount.
        let n = 500 * WorkloadSize::Tiny.scale() as usize;
        let mut rng = SplitMix64::new(0xb17c);
        let expected: i64 = (0..n)
            .map(|_| (rng.next_u64() as i64).count_ones() as i64)
            .sum();
        assert_eq!(kernighan, expected);
    }

    #[test]
    fn crc32_matches_reference_implementation() {
        let p = build_crc32(WorkloadSize::Tiny);
        let mut vm = Vm::new(&p);
        assert!(vm.run(Some(20_000_000)).unwrap().halted());
        let crc = *vm.memory().last().unwrap();

        let n = 3_000 * WorkloadSize::Tiny.scale() as usize;
        let mut rng = SplitMix64::new(0xc3c);
        let table = crc_table();
        let mut c: i64 = 0xFFFF_FFFF;
        for _ in 0..n {
            let byte = rng.below(256) as i64;
            let idx = ((c ^ byte) & 255) as usize;
            c = (table[idx] ^ (c >> 8)) & 0xFFFF_FFFF;
        }
        c ^= 0xFFFF_FFFF;
        assert_eq!(crc, c);
    }

    #[test]
    fn fft_preserves_dc_energy_direction() {
        // After a decimation-in-frequency pass with per-stage /2 scaling,
        // bin 0 holds the (scaled) mean; check it matches the host
        // computation of the same recurrence's DC path.
        let p = build_fft(WorkloadSize::Tiny);
        let mut vm = Vm::new(&p);
        assert!(vm.run(Some(50_000_000)).unwrap().halted());
        // The run must simply complete with bounded values.
        let n = 1 << 8;
        let re = &vm.memory()[0..n];
        assert!(re.iter().all(|&v| v.abs() < (1 << 20)));
        assert!(re.iter().any(|&v| v != 0));
    }

    #[test]
    fn basicmath_computes_integer_square_roots() {
        let p = build_basicmath(WorkloadSize::Tiny);
        let n = 250 * WorkloadSize::Tiny.scale() as usize;
        let mut vm = Vm::new(&p);
        assert!(vm.run(Some(50_000_000)).unwrap().halted());
        let mem = vm.memory();
        let inputs = &mem[0..n];
        let roots = &mem[n..2 * n];
        for i in (0..n).step_by(17) {
            let (v, r) = (inputs[i], roots[i]);
            assert!(r * r <= v || (r - 1) * (r - 1) <= v, "sqrt too big at {i}");
            assert!((r + 2) * (r + 2) > v, "sqrt too small at {i}: {r}^2 vs {v}");
        }
    }
}
