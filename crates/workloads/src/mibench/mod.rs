//! The 19 MiBench-like kernels (paper §4).
//!
//! Each function returns a [`Workload`] implementing the same algorithm
//! class as the corresponding MiBench program, hand-written in the MIM
//! virtual ISA. The kernels are deliberately *not* stylistically uniform:
//! codecs are arithmetic-dense, graph/trie code is load- and branch-bound,
//! image filters mix multiplies with 2-D locality, and `tiffdither`
//! carries a serial error-propagation chain — reproducing the workload
//! diversity the paper's evaluation depends on (e.g. `sha` scales with
//! width while `dijkstra` does not, Figure 4).

mod adpcm;
mod consumer;
mod extra;
mod network;
mod office;
mod susan;
mod telecom;
mod tiff;

pub use adpcm::{adpcm_c, adpcm_d};
pub use consumer::{jpeg_c, jpeg_d, lame};
pub use extra::{basicmath, bitcount, crc32, fft};
pub use network::{dijkstra, patricia};
pub use office::{qsort, stringsearch};
pub use susan::{susan_c, susan_e, susan_s};
pub use telecom::{gsm_c, rsynth, sha};
pub use tiff::{tiff2bw, tiff2rgba, tiffdither, tiffmedian};

use crate::workload::Workload;

/// The four extended kernels beyond the paper's suite (`basicmath`,
/// `bitcount`, `crc32`, `fft`). Kept out of [`all`] so the paper
/// experiments remain exactly comparable.
pub fn extended() -> Vec<Workload> {
    vec![basicmath(), bitcount(), crc32(), fft()]
}

/// All 19 MiBench-like workloads in the paper's (alphabetical) order.
pub fn all() -> Vec<Workload> {
    vec![
        adpcm_c(),
        adpcm_d(),
        dijkstra(),
        gsm_c(),
        jpeg_c(),
        jpeg_d(),
        lame(),
        patricia(),
        qsort(),
        rsynth(),
        sha(),
        stringsearch(),
        susan_c(),
        susan_e(),
        susan_s(),
        tiff2bw(),
        tiff2rgba(),
        tiffdither(),
        tiffmedian(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadSize;
    use mim_isa::Vm;

    #[test]
    fn there_are_19_benchmarks_with_unique_names() {
        let ws = all();
        assert_eq!(ws.len(), 19);
        let mut names: Vec<&str> = ws.iter().map(|w| w.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 19);
    }

    #[test]
    fn every_kernel_halts_at_tiny_size() {
        for w in all() {
            let p = w.program(WorkloadSize::Tiny);
            let mut vm = Vm::new(&p);
            let outcome = vm
                .run(Some(5_000_000))
                .unwrap_or_else(|e| panic!("{} faulted: {e}", w.name()));
            assert!(outcome.halted(), "{} did not halt", w.name());
            assert!(
                outcome.instructions() > 1_000,
                "{} too short: {}",
                w.name(),
                outcome.instructions()
            );
        }
    }

    #[test]
    fn sizes_scale_dynamic_instruction_counts() {
        for w in [sha(), dijkstra(), tiff2bw()] {
            let tiny = {
                let p = w.program(WorkloadSize::Tiny);
                Vm::new(&p).run(Some(50_000_000)).unwrap().instructions()
            };
            let small = {
                let p = w.program(WorkloadSize::Small);
                Vm::new(&p).run(Some(50_000_000)).unwrap().instructions()
            };
            assert!(
                small > 4 * tiny,
                "{}: small ({small}) should be much larger than tiny ({tiny})",
                w.name()
            );
        }
    }
}
