//! Telecom/security kernels: `gsm_c`, `rsynth`, `sha`.

use mim_isa::{Program, ProgramBuilder, Reg::*};

use crate::util::SplitMix64;
use crate::workload::{Workload, WorkloadSize};

/// The `gsm_c` workload: GSM full-rate encoder front end — short-term
/// autocorrelation analysis over 160-sample frames followed by reflection-
/// coefficient style divisions. Multiply-accumulate dense with genuine
/// serial accumulator chains plus a handful of divides per frame.
pub fn gsm_c() -> Workload {
    Workload::new("gsm_c", build_gsm)
}

fn build_gsm(size: WorkloadSize) -> Program {
    let frames = 2 * size.scale() as usize;
    let frame_len = 160usize;
    let n = frames * frame_len;
    let mut rng = SplitMix64::new(0x65736D);
    let mut v: i64 = 0;
    let samples: Vec<i64> = (0..n)
        .map(|_| {
            v = (v + rng.signed(300)).clamp(-8000, 8000);
            v
        })
        .collect();

    let mut b = ProgramBuilder::named("gsm_c");
    let input = b.data_words(&samples);
    let acfs = b.alloc_words(frames * 9);

    let (frame, nframes) = (R1, R2);
    let (base, lag, acc, i, ilim) = (R3, R4, R5, R6, R7);
    let (x, y, prod, tmp, out, zero) = (R8, R9, R10, R11, R12, R0);
    let (acf0, refl) = (R13, R14);

    b.li(zero, 0);
    b.li(frame, 0);
    b.li(nframes, frames as i64);
    b.li(out, acfs as i64);

    let frame_loop = b.here();
    // base = input + frame*160*8
    b.li(tmp, (frame_len * 8) as i64);
    b.mul(base, frame, tmp);
    b.addi(base, base, input as i64);

    // Autocorrelation: for lag in 0..9: acc = sum_{i=lag..160} s[i]*s[i-lag]
    b.li(lag, 0);
    let lag_loop = b.here();
    b.li(acc, 0);
    b.mv(i, lag);
    b.li(ilim, frame_len as i64);
    let inner = b.here();
    // x = s[i]; y = s[i-lag]
    b.slli(tmp, i, 3);
    b.add(tmp, tmp, base);
    b.ld(x, tmp, 0);
    b.slli(y, lag, 3);
    b.sub(tmp, tmp, y);
    b.ld(y, tmp, 0);
    b.mul(prod, x, y);
    b.srai(prod, prod, 10); // scale to avoid overflow
    b.add(acc, acc, prod);
    b.addi(i, i, 1);
    b.blt(i, ilim, inner);
    // store ACF[lag]
    b.slli(tmp, lag, 3);
    b.add(tmp, tmp, out);
    b.st(acc, tmp, 0);
    b.addi(lag, lag, 1);
    b.li(tmp, 9);
    b.blt(lag, tmp, lag_loop);

    // Reflection-coefficient flavor: refl[k] = acf[k] * 1024 / (acf[0]+1)
    b.ld(acf0, out, 0);
    b.addi(acf0, acf0, 1); // avoid divide by zero
    let ge1 = b.label();
    b.bge(acf0, zero, ge1);
    b.li(acf0, 1);
    b.bind(ge1);
    b.li(lag, 1);
    let refl_loop = b.here();
    b.slli(tmp, lag, 3);
    b.add(tmp, tmp, out);
    b.ld(refl, tmp, 0);
    b.slli(refl, refl, 10);
    b.div(refl, refl, acf0);
    b.st(refl, tmp, 0);
    b.addi(lag, lag, 1);
    b.li(tmp, 9);
    b.blt(lag, tmp, refl_loop);

    b.addi(out, out, 72); // 9 words per frame
    b.addi(frame, frame, 1);
    b.blt(frame, nframes, frame_loop);
    b.halt();
    b.build()
}

/// The `rsynth` workload: formant speech synthesis — a cascade of four
/// second-order IIR resonators applied per output sample. The recurrence
/// `y[n] = f(y[n-1], y[n-2])` is inherently serial: long multiply chains
/// that in-order pipelines cannot hide.
pub fn rsynth() -> Workload {
    Workload::new("rsynth", build_rsynth)
}

fn build_rsynth(size: WorkloadSize) -> Program {
    let n = 300 * size.scale() as usize;
    let mut rng = SplitMix64::new(0x525359);
    let excitation: Vec<i64> = (0..n).map(|_| rng.signed(1000)).collect();
    // Four resonators: (b0, a1, a2) in Q10 fixed point; |poles| < 1.
    let coeffs: [i64; 12] = [
        900, 1400, -700, // section 1
        850, 1200, -600, // section 2
        800, 1000, -520, // section 3
        760, 900, -480, // section 4
    ];

    let mut b = ProgramBuilder::named("rsynth");
    let input = b.data_words(&excitation);
    let coefb = b.data_words(&coeffs);
    let output = b.alloc_words(n);
    // state: y1,y2 per section
    let state = b.alloc_words(8);

    let (ptr, end, out) = (R1, R2, R3);
    let (x, sec, tmp, cbase, sbase) = (R4, R5, R6, R7, R8);
    let (b0, a1, a2, y1, y2, acc) = (R9, R10, R11, R12, R13, R14);
    let four = R15;

    b.li(ptr, input as i64);
    b.li(end, (input + 8 * n as u64) as i64);
    b.li(out, output as i64);
    b.li(four, 4);

    let sample_loop = b.here();
    b.ld(x, ptr, 0);
    b.li(sec, 0);
    b.li(cbase, coefb as i64);
    b.li(sbase, state as i64);
    let sec_loop = b.here();
    // load coefficients and state for this section
    b.ld(b0, cbase, 0);
    b.ld(a1, cbase, 8);
    b.ld(a2, cbase, 16);
    b.ld(y1, sbase, 0);
    b.ld(y2, sbase, 8);
    // acc = (b0*x + a1*y1 + a2*y2) >> 10   (serial MAC chain)
    b.mul(acc, b0, x);
    b.mul(tmp, a1, y1);
    b.add(acc, acc, tmp);
    b.mul(tmp, a2, y2);
    b.add(acc, acc, tmp);
    b.srai(acc, acc, 10);
    // clamp to keep fixed point stable
    b.li(tmp, 1 << 20);
    let no_hi = b.label();
    b.blt(acc, tmp, no_hi);
    b.mv(acc, tmp);
    b.bind(no_hi);
    b.li(tmp, -(1 << 20));
    let no_lo = b.label();
    b.bge(acc, tmp, no_lo);
    b.mv(acc, tmp);
    b.bind(no_lo);
    // rotate state, cascade: x = acc
    b.st(y1, sbase, 8);
    b.st(acc, sbase, 0);
    b.mv(x, acc);
    b.addi(cbase, cbase, 24);
    b.addi(sbase, sbase, 16);
    b.addi(sec, sec, 1);
    b.blt(sec, four, sec_loop);
    // emit
    b.st(x, out, 0);
    b.addi(out, out, 8);
    b.addi(ptr, ptr, 8);
    b.blt(ptr, end, sample_loop);
    b.halt();
    b.build()
}

/// The `sha` workload: SHA-1 style block digest — 80 rounds of rotate/xor/
/// add per 16-word block plus the message-schedule expansion. Wide bags of
/// independent ALU work per round give this kernel the highest ILP of the
/// suite (the paper's Figure 4 shows `sha` benefiting most from width).
pub fn sha() -> Workload {
    Workload::new("sha", build_sha)
}

fn build_sha(size: WorkloadSize) -> Program {
    let blocks = 10 * size.scale() as usize;
    let mut rng = SplitMix64::new(0x5ac1);
    let message: Vec<i64> = (0..blocks * 16)
        .map(|_| (rng.next_u64() & 0xFFFF_FFFF) as i64)
        .collect();

    let mut b = ProgramBuilder::named("sha");
    let msg = b.data_words(&message);
    let w_buf = b.alloc_words(80);
    let digest = b.alloc_words(5);

    let (blk, nblk, base) = (R1, R2, R3);
    let (h0, h1, h2, h3, h4) = (R4, R5, R6, R7, R8);
    let (a, c, e) = (R9, R10, R11);
    let (i, tmp, tmp2, f, wv) = (R12, R13, R14, R15, R16);
    let (wbase, mask32, k) = (R17, R18, R19);
    let (bb, d) = (R20, R21);
    let lim = R22;

    b.li(h0, 0x67452301);
    b.li(h1, 0x7BD1_5EAB); // variant IVs (exact SHA constants not required)
    b.li(h2, 0x98BADCFE);
    b.li(h3, 0x10325476);
    b.li(h4, 0x3C2D1E0F);
    b.li(mask32, 0xFFFF_FFFF);
    b.li(blk, 0);
    b.li(nblk, blocks as i64);
    b.li(wbase, w_buf as i64);

    let block_loop = b.here();
    // base = msg + blk*16*8
    b.slli(base, blk, 7);
    b.addi(base, base, msg as i64);

    // --- message schedule: w[0..16] = block; w[16..80] = rotl1(xors) ---
    b.li(i, 0);
    b.li(lim, 16);
    let copy_loop = b.here();
    b.slli(tmp, i, 3);
    b.add(tmp2, base, tmp);
    b.ld(wv, tmp2, 0);
    b.add(tmp2, wbase, tmp);
    b.st(wv, tmp2, 0);
    b.addi(i, i, 1);
    b.blt(i, lim, copy_loop);

    b.li(lim, 80);
    let expand_loop = b.here();
    b.slli(tmp, i, 3);
    b.add(tmp2, wbase, tmp);
    b.ld(wv, tmp2, -24); // w[i-3]
    b.ld(f, tmp2, -64); // w[i-8]
    b.xor(wv, wv, f);
    b.ld(f, tmp2, -112); // w[i-14]
    b.xor(wv, wv, f);
    b.ld(f, tmp2, -128); // w[i-16]
    b.xor(wv, wv, f);
    // rotl1 within 32 bits
    b.slli(f, wv, 1);
    b.srli(tmp, wv, 31);
    b.or(wv, f, tmp);
    b.and(wv, wv, mask32);
    b.st(wv, tmp2, 0);
    b.addi(i, i, 1);
    b.blt(i, lim, expand_loop);

    // --- 80 rounds ---
    b.mv(a, h0);
    b.mv(bb, h1);
    b.mv(c, h2);
    b.mv(d, h3);
    b.mv(e, h4);
    b.li(i, 0);
    let round_loop = b.here();
    // f,k per quarter
    b.li(tmp, 20);
    let q2 = b.label();
    let q3 = b.label();
    let q4 = b.label();
    let fdone = b.label();
    b.bge(i, tmp, q2);
    // f = (b & c) | (~b & d) = d ^ (b & (c ^ d))
    b.xor(f, c, d);
    b.and(f, f, bb);
    b.xor(f, f, d);
    b.li(k, 0x5A827999);
    b.jmp(fdone);
    b.bind(q2);
    b.li(tmp, 40);
    b.bge(i, tmp, q3);
    b.xor(f, bb, c);
    b.xor(f, f, d);
    b.li(k, 0x6ED9EBA1);
    b.jmp(fdone);
    b.bind(q3);
    b.li(tmp, 60);
    b.bge(i, tmp, q4);
    // f = (b & c) | (b & d) | (c & d)
    b.and(f, bb, c);
    b.and(tmp, bb, d);
    b.or(f, f, tmp);
    b.and(tmp, c, d);
    b.or(f, f, tmp);
    b.li(k, 0x70E44324); // 0x8F1BBCDC truncated-variant constant
    b.jmp(fdone);
    b.bind(q4);
    b.xor(f, bb, c);
    b.xor(f, f, d);
    b.li(k, 0x359D3E2A); // 0xCA62C1D6 variant
    b.bind(fdone);
    // tmp2 = rotl5(a) + f + e + k + w[i]  (mod 2^32)
    b.slli(tmp, a, 5);
    b.srli(tmp2, a, 27);
    b.or(tmp, tmp, tmp2);
    b.and(tmp, tmp, mask32);
    b.add(tmp, tmp, f);
    b.add(tmp, tmp, e);
    b.add(tmp, tmp, k);
    b.slli(tmp2, i, 3);
    b.add(tmp2, tmp2, wbase);
    b.ld(wv, tmp2, 0);
    b.add(tmp, tmp, wv);
    b.and(tmp, tmp, mask32);
    // e=d; d=c; c=rotl30(b); b=a; a=tmp
    b.mv(e, d);
    b.mv(d, c);
    b.slli(c, bb, 30);
    b.srli(tmp2, bb, 2);
    b.or(c, c, tmp2);
    b.and(c, c, mask32);
    b.mv(bb, a);
    b.mv(a, tmp);
    b.addi(i, i, 1);
    b.li(tmp2, 80);
    b.blt(i, tmp2, round_loop);

    // accumulate digest
    b.add(h0, h0, a);
    b.and(h0, h0, mask32);
    b.add(h1, h1, bb);
    b.and(h1, h1, mask32);
    b.add(h2, h2, c);
    b.and(h2, h2, mask32);
    b.add(h3, h3, d);
    b.and(h3, h3, mask32);
    b.add(h4, h4, e);
    b.and(h4, h4, mask32);

    b.addi(blk, blk, 1);
    b.blt(blk, nblk, block_loop);

    // store digest
    b.li(tmp, digest as i64);
    b.st(h0, tmp, 0);
    b.st(h1, tmp, 8);
    b.st(h2, tmp, 16);
    b.st(h3, tmp, 24);
    b.st(h4, tmp, 32);
    b.halt();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mim_isa::Vm;

    #[test]
    fn sha_digest_is_deterministic_and_32bit() {
        let p = build_sha(WorkloadSize::Tiny);
        let mut vm = Vm::new(&p);
        assert!(vm.run(Some(10_000_000)).unwrap().halted());
        let mem = vm.memory();
        let digest = &mem[mem.len() - 5..];
        assert!(digest.iter().all(|&d| (0..=0xFFFF_FFFF).contains(&d)));
        assert!(digest.iter().any(|&d| d != 0));
        // Re-run: identical digest.
        let mut vm2 = Vm::new(&p);
        vm2.run(Some(10_000_000)).unwrap();
        assert_eq!(&vm2.memory()[mem.len() - 5..], digest);
    }

    #[test]
    fn sha_digest_changes_with_input() {
        // Different sizes have different messages, so digests must differ.
        let d1 = {
            let p = build_sha(WorkloadSize::Tiny);
            let mut vm = Vm::new(&p);
            vm.run(Some(50_000_000)).unwrap();
            vm.memory()[vm.memory().len() - 5..].to_vec()
        };
        let d2 = {
            let p = build_sha(WorkloadSize::Small);
            let mut vm = Vm::new(&p);
            vm.run(Some(50_000_000)).unwrap();
            vm.memory()[vm.memory().len() - 5..].to_vec()
        };
        assert_ne!(d1, d2);
    }

    #[test]
    fn gsm_produces_acf_frames() {
        let p = build_gsm(WorkloadSize::Tiny);
        let mut vm = Vm::new(&p);
        assert!(vm.run(Some(20_000_000)).unwrap().halted());
        let frames = 2 * WorkloadSize::Tiny.scale() as usize;
        let mem = vm.memory();
        let acf = &mem[mem.len() - frames * 9..];
        // ACF[0] (energy) must be positive for a nonzero signal.
        assert!(
            acf[0] > 0,
            "frame energy should be positive, got {}",
            acf[0]
        );
    }

    #[test]
    fn rsynth_output_is_bounded_by_clamp() {
        let p = build_rsynth(WorkloadSize::Tiny);
        let n = 300 * WorkloadSize::Tiny.scale() as usize;
        let mut vm = Vm::new(&p);
        assert!(vm.run(Some(20_000_000)).unwrap().halted());
        let mem = vm.memory();
        // output precedes the 8-word state block at the end
        let out = &mem[mem.len() - 8 - n..mem.len() - 8];
        assert!(out.iter().all(|&y| y.abs() <= (1 << 20)));
        assert!(out.iter().any(|&y| y != 0));
    }
}
