//! Statistical workload synthesis (the §7.2 related-work technique).
//!
//! The paper's related work discusses statistical simulation (Eeckhout et
//! al., Oskin et al.): generate a *synthetic* program from a real
//! program's statistics — instruction mix and dependency-distance
//! distribution — and use it as a fast, shareable proxy. This module
//! implements that technique on the MIM substrate, which doubles as a
//! strong end-to-end test of the mechanistic model: a synthetic clone with
//! matched statistics must receive a matching model prediction.
//!
//! The generator reproduces:
//! * the dynamic instruction mix (ALU / mul / div / load / store /
//!   conditional branch),
//! * the dependency-distance histograms per producer class, by choosing
//!   each instruction's source register to point at the producer the
//!   sampled distance ago,
//! * branch behaviour, from perfectly predictable always-taken branches to
//!   data-dependent pseudo-random directions
//!   ([`branch_random_percent`](SyntheticRecipe::branch_random_percent)),
//! * memory behaviour, from a hot fixed working set through strided
//!   streams to uniform-random addressing over a configurable footprint
//!   (the stack-distance-shape knobs).
//!
//! Recipes are serializable and carry a human-readable
//! [`describe`](SyntheticRecipe::describe) line, so a validation report
//! can name the exact behaviour point that produced a disagreement and
//! anyone can regenerate the identical program from the JSON record.

use mim_isa::{Program, ProgramBuilder, Reg};
use serde::{Deserialize, Serialize};

use crate::util::SplitMix64;

/// Multiplier of the xorshift*-style generator the synthetic programs use
/// for data-dependent branch directions and random addressing.
const LCG_MUL: i64 = 0x2545_F491_4F6C_DD1Du64 as i64;

/// Statistical recipe for a synthetic workload.
///
/// All fields are rates/histograms that a profiler can measure on a real
/// workload; [`generate`](SyntheticRecipe::generate) emits a program
/// whose profile approximates them. The recipe is the coordinate system of
/// `mim-validate`'s behavior space: each axis of that grid varies one of
/// these fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticRecipe {
    /// Dynamic instructions to emit per loop iteration (body size).
    pub block_size: usize,
    /// Number of loop iterations (dynamic length = roughly
    /// `block_size x iterations`).
    pub iterations: u64,
    /// Instruction-mix weights `(alu, mul, div, load, store)`; branches
    /// are added by the loop structure and the branch knobs below.
    pub mix: (u32, u32, u32, u32, u32),
    /// Dependency-distance histogram: `dep_distances[d-1]` is the relative
    /// weight of distance `d`. Empty = no enforced dependencies.
    pub dep_distances: Vec<u32>,
    /// Number of data words the memory operations roam over (footprint).
    pub footprint_words: usize,
    /// Percent (0–50) of body slots that emit a conditional-branch site in
    /// addition to the loop back-edge. `0` reproduces the historical
    /// loop-branch-only behaviour.
    pub branch_percent: u32,
    /// Percent (0–100) of branch sites whose direction is data-dependent
    /// pseudo-random (hard to predict); the remaining sites are
    /// always-taken and perfectly predictable after warmup. This is the
    /// behavior space's branch-predictability axis.
    pub branch_random_percent: u32,
    /// When nonzero, memory operations stream through the footprint with
    /// this stride (in words) per iteration instead of reusing fixed
    /// slots — a long-stack-distance access shape.
    pub stride_words: usize,
    /// When true, each iteration addresses a pseudo-random line of the
    /// footprint (overrides `stride_words`) — the cache-hostile end of the
    /// stack-distance axis.
    pub random_addresses: bool,
    /// RNG seed.
    pub seed: u64,
}

/// Pre-validation-layer name for [`SyntheticRecipe`], kept as an alias for
/// code written against the original statistical-synthesis API.
pub type SyntheticWorkload = SyntheticRecipe;

// Register plan: r1 = loop counter, r2 = bound, r3 = base pointer,
// r4 = nonzero divisor, r5..r26 = rotating destinations so recent
// producers sit at predictable distances, r27 = branch-bit scratch,
// r28 = moving pointer, r29 = effective address base, r30 = LCG state,
// r31 = LCG multiplier.
const DEST_BASE: usize = 5;
const DEST_COUNT: usize = 22;
const SCRATCH: Reg = Reg::R27;
const PTR: Reg = Reg::R28;
const ADDR: Reg = Reg::R29;
const LCG: Reg = Reg::R30;
const LCG_MULR: Reg = Reg::R31;

impl SyntheticRecipe {
    /// A default recipe loosely resembling an integer-codec kernel.
    pub fn codec_like() -> SyntheticRecipe {
        SyntheticRecipe {
            block_size: 40,
            iterations: 2_000,
            mix: (60, 5, 1, 20, 10),
            dep_distances: vec![8, 6, 4, 3, 2, 1],
            footprint_words: 4_096,
            branch_percent: 0,
            branch_random_percent: 0,
            stride_words: 0,
            random_addresses: false,
            seed: 0x5eed,
        }
    }

    /// True when the generated program needs the pseudo-random state
    /// registers (data-dependent branches or random addressing).
    fn needs_lcg(&self) -> bool {
        (self.branch_percent > 0 && self.branch_random_percent > 0) || self.random_addresses
    }

    /// True when memory operations address through the moving pointer
    /// instead of fixed arena slots.
    fn moving_pointer(&self) -> bool {
        self.random_addresses || self.stride_words > 0
    }

    /// The footprint rounded up to a power of two (moving-pointer modes
    /// wrap the pointer with a bitmask).
    fn footprint_pow2(&self) -> usize {
        self.footprint_words.max(1).next_power_of_two()
    }

    /// Number of setup instructions executed once before the loop.
    fn setup_len(&self) -> u64 {
        let mut n = 4 + DEST_COUNT as u64;
        if self.needs_lcg() {
            n += 2; // li LCG state, li LCG multiplier
        }
        if self.moving_pointer() {
            n += 1; // li PTR, 0
        }
        n
    }

    /// Per-iteration bookkeeping slots consumed before the sampled body
    /// (LCG update, pointer advance/wrap, effective-address formation).
    fn overhead_slots(&self) -> usize {
        let mut n = 0;
        if self.needs_lcg() {
            n += 2; // mul + addi LCG update
        }
        if self.random_addresses {
            n += 2; // andi wrap + add base
        } else if self.stride_words > 0 {
            n += 3; // addi advance + andi wrap + add base
        }
        n
    }

    /// An upper bound on the dynamic instruction count of the generated
    /// program: the program always executes `halt` within this many
    /// retired instructions. The bound is exact up to the final `halt`.
    pub fn max_dynamic_length(&self) -> u64 {
        let body = self.block_size.max(self.overhead_slots()) as u64 + 2;
        self.setup_len() + self.iterations * body
    }

    /// One-line human-readable summary, used by validation reports to make
    /// worst-offender rows self-describing.
    pub fn describe(&self) -> String {
        let (alu, mul, div, load, store) = self.mix;
        let pattern = if self.random_addresses {
            "random".to_string()
        } else if self.stride_words > 0 {
            format!("stride {}w", self.stride_words)
        } else {
            "fixed".to_string()
        };
        format!(
            "block {}x{} iters, mix a{alu}/m{mul}/d{div}/l{load}/s{store}, deps {:?}, \
             footprint {}w ({pattern}), branches {}% ({}% random), seed {:#x}",
            self.block_size,
            self.iterations,
            self.dep_distances,
            self.footprint_words,
            self.branch_percent,
            self.branch_random_percent,
            self.seed,
        )
    }

    /// Generates the synthetic program.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero or the mix has no weight.
    pub fn generate(&self) -> Program {
        assert!(self.block_size > 0, "block size must be nonzero");
        let total_mix: u32 = self.mix.0 + self.mix.1 + self.mix.2 + self.mix.3 + self.mix.4;
        assert!(total_mix > 0, "instruction mix must have weight");

        let mut rng = SplitMix64::new(self.seed);
        let mut b = ProgramBuilder::named("synthetic");
        // Leave slack above the wrap mask so pointer-relative offsets stay
        // in bounds.
        let arena_words = if self.moving_pointer() {
            self.footprint_pow2() + 64
        } else {
            self.footprint_words.max(1)
        };
        let arena = b.alloc_words(arena_words);
        let fp_mask = (self.footprint_pow2() as i64) * 8 - 8;

        let (i, bound, base, divisor) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4);
        b.li(i, 0);
        b.li(bound, self.iterations as i64);
        b.li(base, arena as i64);
        b.li(divisor, 17);
        for k in 0..DEST_COUNT {
            b.li(Reg::from_index(DEST_BASE + k).unwrap(), k as i64 + 1);
        }
        if self.needs_lcg() {
            b.li(LCG, (self.seed | 1) as i64);
            b.li(LCG_MULR, LCG_MUL);
        }
        if self.moving_pointer() {
            b.li(PTR, 0);
        }

        let top = b.here();
        let mut pos = 0usize;
        // Per-iteration bookkeeping, counted against the block budget so
        // the dynamic length stays `~block_size + 2` per iteration.
        if self.needs_lcg() {
            b.mul(LCG, LCG, LCG_MULR);
            b.addi(LCG, LCG, 0x9e37);
            pos += 2;
        }
        if self.random_addresses {
            b.andi(PTR, LCG, fp_mask);
            b.add(ADDR, base, PTR);
            pos += 2;
        } else if self.stride_words > 0 {
            b.addi(PTR, PTR, self.stride_words as i64 * 8);
            b.andi(PTR, PTR, fp_mask);
            b.add(ADDR, base, PTR);
            pos += 3;
        }

        // `pos` counts instructions in this block so destination rotation
        // maps an instruction's position to its register.
        let mut branch_sites = 0usize;
        while pos < self.block_size {
            // Branch sites: predictable (always-taken) or data-dependent
            // pseudo-random, per the predictability knobs. Targets are the
            // next instruction, so direction never changes the retired
            // stream — only the predictor's success rate.
            if self.branch_percent > 0 && rng.below(100) < u64::from(self.branch_percent) {
                let random_site = self.branch_random_percent > 0
                    && rng.below(100) < u64::from(self.branch_random_percent);
                if random_site && pos + 2 <= self.block_size {
                    // Test a rotating bit of the LCG state: ~50% taken,
                    // uncorrelated with history.
                    let bit = 1 + (branch_sites * 13) % 48;
                    b.andi(SCRATCH, LCG, 1i64 << bit);
                    let next = b.label();
                    b.beq(SCRATCH, Reg::R0, next);
                    b.bind(next);
                    pos += 2;
                    branch_sites += 1;
                    continue;
                }
                let next = b.label();
                b.beq(Reg::R0, Reg::R0, next); // always taken, predictable
                b.bind(next);
                pos += 1;
                branch_sites += 1;
                continue;
            }

            let dst = Reg::from_index(DEST_BASE + pos % DEST_COUNT).unwrap();
            // Pick a source at a sampled dependency distance: the
            // instruction `d` slots ago wrote register (pos - d) mod 22.
            let src = if self.dep_distances.is_empty() {
                dst
            } else {
                let d = 1 + Self::sample(&mut rng, &self.dep_distances);
                let d = d.min(pos.max(1)).min(DEST_COUNT - 1);
                Reg::from_index(DEST_BASE + (pos + DEST_COUNT - d) % DEST_COUNT).unwrap()
            };
            let roll = rng.below(u64::from(total_mix)) as u32;
            let (alu, mul, div, load, _) = self.mix;
            if roll < alu {
                b.add(dst, src, i);
            } else if roll < alu + mul {
                b.mul(dst, src, divisor);
            } else if roll < alu + mul + div {
                b.div(dst, src, divisor);
            } else if roll < alu + mul + div + load {
                let (reg, slot) = self.mem_operand(&mut rng);
                b.ld(dst, if reg { ADDR } else { base }, slot * 8);
            } else {
                let (reg, slot) = self.mem_operand(&mut rng);
                b.st(src, if reg { ADDR } else { base }, slot * 8);
            }
            pos += 1;
        }
        b.addi(i, i, 1);
        b.blt(i, bound, top);
        b.halt();
        b.build()
    }

    /// Chooses a memory operand: `(pointer-relative?, word offset)`.
    /// Moving-pointer modes cluster offsets near the pointer (spatial
    /// locality within an iteration); fixed mode reuses arena slots.
    fn mem_operand(&self, rng: &mut SplitMix64) -> (bool, i64) {
        if self.moving_pointer() {
            (
                true,
                rng.below(64.min(self.footprint_words.max(1)) as u64) as i64,
            )
        } else {
            (false, rng.below(self.footprint_words.max(1) as u64) as i64)
        }
    }

    fn sample(rng: &mut SplitMix64, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        if total == 0 {
            return 0;
        }
        let mut roll = rng.below(total);
        for (idx, &w) in weights.iter().enumerate() {
            let w = u64::from(w);
            if roll < w {
                return idx;
            }
            roll -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mim_isa::{InstClass, Vm};

    #[test]
    fn synthetic_program_halts_and_has_requested_length() {
        let recipe = SyntheticRecipe {
            iterations: 100,
            ..SyntheticRecipe::codec_like()
        };
        let p = recipe.generate();
        let mut vm = Vm::new(&p);
        let outcome = vm.run(Some(10_000_000)).unwrap();
        assert!(outcome.halted());
        let expected = 100 * (recipe.block_size as u64 + 2); // + addi + blt
        let slack = expected / 10;
        assert!(
            outcome.instructions().abs_diff(expected + 27) < slack,
            "dynamic length {} vs expected ~{expected}",
            outcome.instructions()
        );
        assert!(
            outcome.instructions() <= recipe.max_dynamic_length(),
            "length bound violated: {} > {}",
            outcome.instructions(),
            recipe.max_dynamic_length()
        );
    }

    #[test]
    fn mix_fractions_are_respected() {
        let recipe = SyntheticRecipe {
            mix: (50, 10, 0, 30, 10),
            iterations: 200,
            ..SyntheticRecipe::codec_like()
        };
        let p = recipe.generate();
        let mut counts = std::collections::HashMap::new();
        Vm::new(&p)
            .run_with(Some(10_000_000), |ev| {
                *counts.entry(ev.class).or_insert(0u64) += 1;
            })
            .unwrap();
        let loads = counts[&InstClass::Load] as f64;
        let muls = counts[&InstClass::Mul] as f64;
        let total: u64 = counts.values().sum();
        // Loads ~30% of the body; allow generous sampling noise.
        let load_frac = loads / total as f64;
        assert!((0.2..0.4).contains(&load_frac), "load fraction {load_frac}");
        assert!(muls > 0.0);
        assert!(!counts.contains_key(&InstClass::Div));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SyntheticRecipe::codec_like().generate();
        let b = SyntheticRecipe::codec_like().generate();
        assert_eq!(a.text(), b.text());
        let c = SyntheticRecipe {
            seed: 999,
            ..SyntheticRecipe::codec_like()
        }
        .generate();
        assert_ne!(a.text(), c.text());
    }

    #[test]
    fn short_distance_recipe_produces_short_distance_profile() {
        // A recipe with all weight on distance 1 must yield many more
        // adjacent dependencies than one spread over long distances.
        let close = SyntheticRecipe {
            dep_distances: vec![100],
            iterations: 300,
            ..SyntheticRecipe::codec_like()
        };
        let far = SyntheticRecipe {
            dep_distances: vec![0, 0, 0, 0, 0, 0, 0, 100, 100, 100],
            iterations: 300,
            ..SyntheticRecipe::codec_like()
        };
        let count_adjacent = |p: &Program| {
            // Count static consumer-follows-producer pairs.
            let text = p.text();
            text.windows(2)
                .filter(|w| {
                    w[0].writes()
                        .is_some_and(|d| w[1].sources().iter().flatten().any(|&s| s == d))
                })
                .count()
        };
        let pc = close.generate();
        let pf = far.generate();
        assert!(
            count_adjacent(&pc) > 3 * count_adjacent(&pf),
            "close {} vs far {}",
            count_adjacent(&pc),
            count_adjacent(&pf)
        );
    }

    #[test]
    fn random_branches_raise_misprediction_pressure() {
        let predictable = SyntheticRecipe {
            branch_percent: 20,
            branch_random_percent: 0,
            iterations: 400,
            ..SyntheticRecipe::codec_like()
        };
        let random = SyntheticRecipe {
            branch_random_percent: 100,
            ..predictable.clone()
        };
        // Count conditional-branch direction changes as a predictor-free
        // proxy for predictability: the random recipe's branch outcomes
        // must be far less stable than the always-taken recipe's.
        let flips = |recipe: &SyntheticRecipe| {
            let p = recipe.generate();
            let mut last = std::collections::HashMap::new();
            let mut flips = 0u64;
            let mut branches = 0u64;
            Vm::new(&p)
                .run_with(Some(1_000_000), |ev| {
                    if ev.class == InstClass::CondBranch {
                        branches += 1;
                        let taken = ev.taken == Some(true);
                        if let Some(prev) = last.insert(ev.pc, taken) {
                            if prev != taken {
                                flips += 1;
                            }
                        }
                    }
                })
                .unwrap();
            assert!(branches > 500, "recipe must emit branches: {branches}");
            flips as f64 / branches as f64
        };
        let f_pred = flips(&predictable);
        let f_rand = flips(&random);
        assert!(
            f_rand > f_pred + 0.1,
            "random sites should flip more: {f_rand:.3} vs {f_pred:.3}"
        );
    }

    #[test]
    fn addressing_patterns_shape_the_touched_footprint() {
        let base = SyntheticRecipe {
            footprint_words: 1 << 14,
            iterations: 400,
            ..SyntheticRecipe::codec_like()
        };
        let strided = SyntheticRecipe {
            stride_words: 64,
            ..base.clone()
        };
        let random = SyntheticRecipe {
            random_addresses: true,
            ..base.clone()
        };
        let lines_touched = |recipe: &SyntheticRecipe| {
            let p = recipe.generate();
            let mut lines = std::collections::HashSet::new();
            Vm::new(&p)
                .run_with(Some(1_000_000), |ev| {
                    if let Some(addr) = ev.eff_addr {
                        lines.insert(addr / 64);
                    }
                })
                .unwrap();
            lines.len()
        };
        let fixed = lines_touched(&base);
        let streamed = lines_touched(&strided);
        let randomized = lines_touched(&random);
        // Fixed slots reuse a handful of lines; moving pointers roam.
        assert!(
            streamed > 10 * fixed,
            "stride should spread lines: {streamed} vs fixed {fixed}"
        );
        assert!(
            randomized > 10 * fixed,
            "random should spread lines: {randomized} vs fixed {fixed}"
        );
    }

    #[test]
    fn all_pattern_variants_halt_within_the_declared_bound() {
        for recipe in [
            SyntheticRecipe::codec_like(),
            SyntheticRecipe {
                branch_percent: 25,
                branch_random_percent: 50,
                iterations: 200,
                ..SyntheticRecipe::codec_like()
            },
            SyntheticRecipe {
                stride_words: 16,
                footprint_words: 5_000, // non-power-of-two: rounded up
                iterations: 200,
                ..SyntheticRecipe::codec_like()
            },
            SyntheticRecipe {
                random_addresses: true,
                iterations: 200,
                ..SyntheticRecipe::codec_like()
            },
        ] {
            let p = recipe.generate();
            let mut vm = Vm::new(&p);
            let outcome = vm.run(Some(recipe.max_dynamic_length() + 1)).unwrap();
            assert!(outcome.halted(), "{}", recipe.describe());
            assert!(outcome.instructions() <= recipe.max_dynamic_length());
        }
    }

    #[test]
    fn describe_round_trips_through_serde() {
        let recipe = SyntheticRecipe {
            branch_percent: 10,
            branch_random_percent: 75,
            random_addresses: true,
            ..SyntheticRecipe::codec_like()
        };
        let text = recipe.describe();
        assert!(text.contains("75% random"), "{text}");
        assert!(text.contains("random"), "{text}");
        let json = serde_json::to_string(&recipe).unwrap();
        let back: SyntheticRecipe = serde_json::from_str(&json).unwrap();
        assert_eq!(back, recipe);
    }
}
