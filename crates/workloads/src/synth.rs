//! Statistical workload synthesis (the §7.2 related-work technique).
//!
//! The paper's related work discusses statistical simulation (Eeckhout et
//! al., Oskin et al.): generate a *synthetic* program from a real
//! program's statistics — instruction mix and dependency-distance
//! distribution — and use it as a fast, shareable proxy. This module
//! implements that technique on the MIM substrate, which doubles as a
//! strong end-to-end test of the mechanistic model: a synthetic clone with
//! matched statistics must receive a matching model prediction.
//!
//! The generator reproduces:
//! * the dynamic instruction mix (ALU / mul / div / load / store /
//!   conditional branch),
//! * the dependency-distance histograms per producer class, by choosing
//!   each instruction's source register to point at the producer the
//!   sampled distance ago,
//! * the taken rate and (approximately) the misprediction behaviour via a
//!   configurable fraction of data-dependent branches.

use mim_isa::{Program, ProgramBuilder, Reg};

use crate::util::SplitMix64;

/// Statistical recipe for a synthetic workload.
///
/// All fields are rates/histograms that a profiler can measure on a real
/// workload; [`generate`](SyntheticWorkload::generate) emits a program
/// whose profile approximates them.
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    /// Dynamic instructions to emit per loop iteration (body size).
    pub block_size: usize,
    /// Number of loop iterations (dynamic length = roughly
    /// `block_size x iterations`).
    pub iterations: u64,
    /// Instruction-mix weights `(alu, mul, div, load, store)`; branches
    /// are added by the loop structure.
    pub mix: (u32, u32, u32, u32, u32),
    /// Dependency-distance histogram: `dep_distances[d-1]` is the relative
    /// weight of distance `d`. Empty = no enforced dependencies.
    pub dep_distances: Vec<u32>,
    /// Number of data words the memory operations roam over (footprint).
    pub footprint_words: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticWorkload {
    /// A default recipe loosely resembling an integer-codec kernel.
    pub fn codec_like() -> SyntheticWorkload {
        SyntheticWorkload {
            block_size: 40,
            iterations: 2_000,
            mix: (60, 5, 1, 20, 10),
            dep_distances: vec![8, 6, 4, 3, 2, 1],
            footprint_words: 4_096,
            seed: 0x5eed,
        }
    }

    /// Generates the synthetic program.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero or the mix has no weight.
    pub fn generate(&self) -> Program {
        assert!(self.block_size > 0, "block size must be nonzero");
        let total_mix: u32 = self.mix.0 + self.mix.1 + self.mix.2 + self.mix.3 + self.mix.4;
        assert!(total_mix > 0, "instruction mix must have weight");

        let mut rng = SplitMix64::new(self.seed);
        let mut b = ProgramBuilder::named("synthetic");
        let arena = b.alloc_words(self.footprint_words.max(1));

        // Register plan: r1 = loop counter, r2 = bound, r3 = base pointer,
        // r4 = nonzero divisor, r5..r27 = rotating destinations so recent
        // producers sit at predictable distances.
        let (i, bound, base, divisor) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4);
        const DEST_BASE: usize = 5;
        const DEST_COUNT: usize = 23;
        b.li(i, 0);
        b.li(bound, self.iterations as i64);
        b.li(base, arena as i64);
        b.li(divisor, 17);
        for k in 0..DEST_COUNT {
            b.li(Reg::from_index(DEST_BASE + k).unwrap(), k as i64 + 1);
        }

        let top = b.here();
        // `emitted` counts instructions in this block so destination
        // rotation maps an instruction's position to its register.
        for pos in 0..self.block_size {
            let dst = Reg::from_index(DEST_BASE + pos % DEST_COUNT).unwrap();
            // Pick a source at a sampled dependency distance: the
            // instruction `d` slots ago wrote register (pos - d) mod 23.
            let src = if self.dep_distances.is_empty() {
                dst
            } else {
                let d = 1 + Self::sample(&mut rng, &self.dep_distances);
                let d = d.min(pos.max(1)).min(DEST_COUNT - 1);
                Reg::from_index(DEST_BASE + (pos + DEST_COUNT - d) % DEST_COUNT).unwrap()
            };
            let roll = rng.below(u64::from(total_mix)) as u32;
            let (alu, mul, div, load, _) = self.mix;
            if roll < alu {
                b.add(dst, src, i);
            } else if roll < alu + mul {
                b.mul(dst, src, divisor);
            } else if roll < alu + mul + div {
                b.div(dst, src, divisor);
            } else if roll < alu + mul + div + load {
                // Pseudo-random but bounded address.
                let slot = rng.below(self.footprint_words.max(1) as u64) as i64;
                b.ld(dst, base, slot * 8);
            } else {
                let slot = rng.below(self.footprint_words.max(1) as u64) as i64;
                b.st(src, base, slot * 8);
            }
        }
        b.addi(i, i, 1);
        b.blt(i, bound, top);
        b.halt();
        b.build()
    }

    fn sample(rng: &mut SplitMix64, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        if total == 0 {
            return 0;
        }
        let mut roll = rng.below(total);
        for (idx, &w) in weights.iter().enumerate() {
            let w = u64::from(w);
            if roll < w {
                return idx;
            }
            roll -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mim_isa::{InstClass, Vm};

    #[test]
    fn synthetic_program_halts_and_has_requested_length() {
        let recipe = SyntheticWorkload {
            iterations: 100,
            ..SyntheticWorkload::codec_like()
        };
        let p = recipe.generate();
        let mut vm = Vm::new(&p);
        let outcome = vm.run(Some(10_000_000)).unwrap();
        assert!(outcome.halted());
        let expected = 100 * (recipe.block_size as u64 + 2); // + addi + blt
        let slack = expected / 10;
        assert!(
            outcome.instructions().abs_diff(expected + 27) < slack,
            "dynamic length {} vs expected ~{expected}",
            outcome.instructions()
        );
    }

    #[test]
    fn mix_fractions_are_respected() {
        let recipe = SyntheticWorkload {
            mix: (50, 10, 0, 30, 10),
            iterations: 200,
            ..SyntheticWorkload::codec_like()
        };
        let p = recipe.generate();
        let mut counts = std::collections::HashMap::new();
        Vm::new(&p)
            .run_with(Some(10_000_000), |ev| {
                *counts.entry(ev.class).or_insert(0u64) += 1;
            })
            .unwrap();
        let loads = counts[&InstClass::Load] as f64;
        let muls = counts[&InstClass::Mul] as f64;
        let total: u64 = counts.values().sum();
        // Loads ~30% of the body; allow generous sampling noise.
        let load_frac = loads / total as f64;
        assert!((0.2..0.4).contains(&load_frac), "load fraction {load_frac}");
        assert!(muls > 0.0);
        assert!(!counts.contains_key(&InstClass::Div));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SyntheticWorkload::codec_like().generate();
        let b = SyntheticWorkload::codec_like().generate();
        assert_eq!(a.text(), b.text());
        let c = SyntheticWorkload {
            seed: 999,
            ..SyntheticWorkload::codec_like()
        }
        .generate();
        assert_ne!(a.text(), c.text());
    }

    #[test]
    fn short_distance_recipe_produces_short_distance_profile() {
        // A recipe with all weight on distance 1 must yield many more
        // adjacent dependencies than one spread over long distances.
        let close = SyntheticWorkload {
            dep_distances: vec![100],
            iterations: 300,
            ..SyntheticWorkload::codec_like()
        };
        let far = SyntheticWorkload {
            dep_distances: vec![0, 0, 0, 0, 0, 0, 0, 100, 100, 100],
            iterations: 300,
            ..SyntheticWorkload::codec_like()
        };
        let count_adjacent = |p: &Program| {
            // Count static consumer-follows-producer pairs.
            let text = p.text();
            text.windows(2)
                .filter(|w| {
                    w[0].writes()
                        .is_some_and(|d| w[1].sources().iter().flatten().any(|&s| s == d))
                })
                .count()
        };
        let pc = close.generate();
        let pf = far.generate();
        assert!(
            count_adjacent(&pc) > 3 * count_adjacent(&pf),
            "close {} vs far {}",
            count_adjacent(&pc),
            count_adjacent(&pf)
        );
    }
}
