//! Deterministic data generation for kernel inputs.
//!
//! Kernels need reproducible input data (audio samples, images, graphs,
//! text). A tiny SplitMix64 generator keeps the crate dependency-free and
//! guarantees bit-identical programs across runs, which the modeling
//! framework relies on (profile once, evaluate everywhere).

/// SplitMix64 pseudo-random generator (public-domain algorithm).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Signed value in `[-amplitude, amplitude]`.
    pub fn signed(&mut self, amplitude: i64) -> i64 {
        (self.below(2 * amplitude as u64 + 1)) as i64 - amplitude
    }
}

/// Generates a smooth synthetic grayscale "image" of `w x h` pixels in
/// 0..256, as nested gradients plus deterministic noise — enough structure
/// for edge/corner detectors to find features.
pub fn synth_image(w: usize, h: usize, seed: u64) -> Vec<i64> {
    let mut rng = SplitMix64::new(seed);
    let mut img = Vec::with_capacity(w * h);
    for y in 0..h {
        for x in 0..w {
            let gx = (x * 255 / w.max(1)) as i64;
            let gy = (y * 255 / h.max(1)) as i64;
            let blob = if (x / 8 + y / 8) % 2 == 0 { 60 } else { 0 };
            let noise = rng.signed(10);
            img.push(((gx + gy) / 2 + blob + noise).clamp(0, 255));
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = SplitMix64::new(43).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn bounds_are_respected() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let s = r.signed(5);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn image_pixels_in_range() {
        let img = synth_image(32, 24, 3);
        assert_eq!(img.len(), 32 * 24);
        assert!(img.iter().all(|&p| (0..=255).contains(&p)));
        // has some variation
        assert!(img.iter().max() != img.iter().min());
    }
}
