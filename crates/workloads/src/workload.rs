//! The workload abstraction: named, size-parameterized program generators.

use std::fmt;

use mim_isa::Program;

/// Input-size class of a workload, mirroring MiBench's small/large inputs.
///
/// `Tiny` keeps unit tests fast (thousands of dynamic instructions);
/// `Small` is the default for experiments (hundreds of thousands);
/// `Large` approaches the paper's run lengths (millions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WorkloadSize {
    /// A few thousand dynamic instructions.
    Tiny,
    /// Hundreds of thousands of dynamic instructions (experiment default).
    #[default]
    Small,
    /// Millions of dynamic instructions.
    Large,
}

impl WorkloadSize {
    /// A coarse scale factor kernels use to size loops and data.
    pub fn scale(self) -> u64 {
        match self {
            WorkloadSize::Tiny => 1,
            WorkloadSize::Small => 16,
            WorkloadSize::Large => 96,
        }
    }
}

impl fmt::Display for WorkloadSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WorkloadSize::Tiny => "tiny",
            WorkloadSize::Small => "small",
            WorkloadSize::Large => "large",
        };
        f.write_str(s)
    }
}

/// A named benchmark kernel that can generate a [`Program`] at any size.
///
/// # Example
///
/// ```
/// use mim_workloads::{mibench, WorkloadSize};
///
/// let w = mibench::dijkstra();
/// assert_eq!(w.name(), "dijkstra");
/// let p = w.program(WorkloadSize::Tiny);
/// assert!(!p.text().is_empty());
/// ```
#[derive(Clone)]
pub struct Workload {
    name: &'static str,
    generator: fn(WorkloadSize) -> Program,
}

impl Workload {
    /// Creates a workload from a name and generator function.
    pub fn new(name: &'static str, generator: fn(WorkloadSize) -> Program) -> Workload {
        Workload { name, generator }
    }

    /// The benchmark's name (matches the paper's figures, e.g. `"sha"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Instantiates the kernel at the given size.
    pub fn program(&self, size: WorkloadSize) -> Program {
        (self.generator)(size)
    }

    /// Shorthand for `program(WorkloadSize::Tiny)`.
    pub fn tiny(&self) -> Program {
        self.program(WorkloadSize::Tiny)
    }
}

impl fmt::Debug for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_ordered() {
        assert!(WorkloadSize::Tiny.scale() < WorkloadSize::Small.scale());
        assert!(WorkloadSize::Small.scale() < WorkloadSize::Large.scale());
    }

    #[test]
    fn display_names() {
        assert_eq!(WorkloadSize::Tiny.to_string(), "tiny");
        assert_eq!(WorkloadSize::default(), WorkloadSize::Small);
    }
}
