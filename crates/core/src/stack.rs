//! CPI stacks: execution time split into mechanistic components.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One component of a [`CpiStack`].
///
/// The fine-grained components can be aggregated into the coarser legends
/// the paper's figures use (e.g. Figure 4's "l2 access" is
/// [`IL2Access`](StackComponent::IL2Access) +
/// [`DL2Access`](StackComponent::DL2Access)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StackComponent {
    /// Minimum execution time `N/W`.
    Base,
    /// Multiply execute latency beyond one cycle (§3.4).
    Mul,
    /// Divide execute latency beyond one cycle (§3.4).
    Div,
    /// L1 data hit latency beyond one cycle, if configured (§3.4).
    L1HitExtra,
    /// Instruction-side L1 misses that hit in L2.
    IL2Access,
    /// Instruction-side L2 misses (serviced by memory).
    IL2Miss,
    /// Data-side L1 misses that hit in L2.
    DL2Access,
    /// Data-side L2 misses (serviced by memory).
    DL2Miss,
    /// Instruction + data TLB miss walks.
    TlbMiss,
    /// Branch misprediction penalty (front-end flush, Eq. 4).
    BranchMiss,
    /// Taken-branch hit penalty: fetch bubble per correctly predicted
    /// taken branch or unconditional jump (§3.3).
    TakenBranch,
    /// Same-stage dependencies on unit-latency producers (Eq. 11).
    DepUnit,
    /// Dependencies on long-latency producers excluding loads (Eq. 12).
    DepLL,
    /// Dependencies on load producers (Eq. 16).
    DepLoad,
}

impl StackComponent {
    /// All components in canonical (display) order.
    pub const ALL: [StackComponent; 14] = [
        StackComponent::Base,
        StackComponent::Mul,
        StackComponent::Div,
        StackComponent::L1HitExtra,
        StackComponent::IL2Access,
        StackComponent::IL2Miss,
        StackComponent::DL2Access,
        StackComponent::DL2Miss,
        StackComponent::TlbMiss,
        StackComponent::BranchMiss,
        StackComponent::TakenBranch,
        StackComponent::DepUnit,
        StackComponent::DepLL,
        StackComponent::DepLoad,
    ];

    /// Number of components.
    pub const COUNT: usize = Self::ALL.len();

    /// Short display label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            StackComponent::Base => "base",
            StackComponent::Mul => "mul",
            StackComponent::Div => "div",
            StackComponent::L1HitExtra => "l1 hit extra",
            StackComponent::IL2Access => "il2 access",
            StackComponent::IL2Miss => "il2 miss",
            StackComponent::DL2Access => "dl2 access",
            StackComponent::DL2Miss => "dl2 miss",
            StackComponent::TlbMiss => "tlb miss",
            StackComponent::BranchMiss => "bpred miss",
            StackComponent::TakenBranch => "bpred hit (taken)",
            StackComponent::DepUnit => "dep (unit)",
            StackComponent::DepLL => "dep (long-lat)",
            StackComponent::DepLoad => "dep (load)",
        }
    }

    /// Position of this component in [`ALL`](StackComponent::ALL) — the
    /// row layout shared by [`CpiStack`] and [`CpiTimeline`].
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&c| c == self).expect("in ALL")
    }
}

/// A CPI stack: total execution cycles broken down by mechanistic cause.
///
/// Produced by [`MechanisticModel::predict`](crate::MechanisticModel::predict)
/// (and by the out-of-order comparator model). Component values are stored
/// as *cycles*; [`cpi_of`](CpiStack::cpi_of) normalizes by the instruction
/// count.
///
/// # Example
///
/// ```
/// use mim_core::{CpiStack, StackComponent};
///
/// let mut stack = CpiStack::new("demo", 1000);
/// stack.add(StackComponent::Base, 250.0);
/// stack.add(StackComponent::DepUnit, 50.0);
/// assert_eq!(stack.total_cycles(), 300.0);
/// assert!((stack.cpi() - 0.3).abs() < 1e-12);
/// assert!((stack.cpi_of(StackComponent::DepUnit) - 0.05).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpiStack {
    name: String,
    num_insts: u64,
    cycles: Vec<f64>,
}

impl CpiStack {
    /// Creates an all-zero stack for a run of `num_insts` instructions.
    pub fn new(name: impl Into<String>, num_insts: u64) -> CpiStack {
        CpiStack {
            name: name.into(),
            num_insts,
            cycles: vec![0.0; StackComponent::COUNT],
        }
    }

    /// Workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dynamic instruction count the stack is normalized by.
    pub fn num_insts(&self) -> u64 {
        self.num_insts
    }

    /// Adds `cycles` to `component`.
    pub fn add(&mut self, component: StackComponent, cycles: f64) {
        self.cycles[component.index()] += cycles;
    }

    /// Cycles attributed to `component`.
    pub fn cycles_of(&self, component: StackComponent) -> f64 {
        self.cycles[component.index()]
    }

    /// CPI contribution of `component`.
    pub fn cpi_of(&self, component: StackComponent) -> f64 {
        if self.num_insts == 0 {
            0.0
        } else {
            self.cycles_of(component) / self.num_insts as f64
        }
    }

    /// Total predicted execution cycles (the model's `T`, Eq. 1).
    pub fn total_cycles(&self) -> f64 {
        self.cycles.iter().sum()
    }

    /// Overall cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.num_insts == 0 {
            0.0
        } else {
            self.total_cycles() / self.num_insts as f64
        }
    }

    /// Execution time in seconds at the given clock frequency.
    pub fn time_seconds(&self, frequency_ghz: f64) -> f64 {
        crate::cycles_to_seconds(self.total_cycles(), frequency_ghz)
    }

    /// Iterates `(component, cycles)` pairs in canonical order.
    pub fn components(&self) -> impl Iterator<Item = (StackComponent, f64)> + '_ {
        StackComponent::ALL
            .iter()
            .map(move |&c| (c, self.cycles_of(c)))
    }

    // -- aggregations matching the paper's figure legends --------------------

    /// All dependency-induced cycles ("dependencies" in Figures 4, 7, 8).
    pub fn dependencies(&self) -> f64 {
        self.cycles_of(StackComponent::DepUnit)
            + self.cycles_of(StackComponent::DepLL)
            + self.cycles_of(StackComponent::DepLoad)
    }

    /// Multiply + divide latency cycles ("mul/div").
    pub fn mul_div(&self) -> f64 {
        self.cycles_of(StackComponent::Mul) + self.cycles_of(StackComponent::Div)
    }

    /// L1-miss-but-L2-hit cycles, instruction + data ("l2 access").
    pub fn l2_access(&self) -> f64 {
        self.cycles_of(StackComponent::IL2Access) + self.cycles_of(StackComponent::DL2Access)
    }

    /// L2-miss cycles, instruction + data ("l2 miss").
    pub fn l2_miss(&self) -> f64 {
        self.cycles_of(StackComponent::IL2Miss) + self.cycles_of(StackComponent::DL2Miss)
    }

    // -- aggregations matching mim-validate's attribution terms --------------

    /// Instruction-side cache-miss cycles (L1I misses serviced by L2 or
    /// memory). TLB-walk cycles are kept separate because the model lumps
    /// instruction and data walks into one component; use
    /// [`MechanisticModel::miss_penalty`](crate::MechanisticModel::miss_penalty)
    /// with the per-side walk counts to split them.
    pub fn icache_cycles(&self) -> f64 {
        self.cycles_of(StackComponent::IL2Access) + self.cycles_of(StackComponent::IL2Miss)
    }

    /// Data-side cache cycles: L1D misses serviced by L2 or memory, plus
    /// any extra L1-hit latency.
    pub fn dcache_cycles(&self) -> f64 {
        self.cycles_of(StackComponent::DL2Access)
            + self.cycles_of(StackComponent::DL2Miss)
            + self.cycles_of(StackComponent::L1HitExtra)
    }

    /// All branch-induced cycles: misprediction flushes plus taken-branch
    /// fetch bubbles.
    pub fn branch_cycles(&self) -> f64 {
        self.cycles_of(StackComponent::BranchMiss) + self.cycles_of(StackComponent::TakenBranch)
    }
}

/// A time-resolved CPI stack: cycle attribution per fixed-width
/// instruction interval, the simulated-time analogue of a profiler
/// timeline.
///
/// Intervals are `interval` instructions wide, measured over the *walked*
/// stream. Each interval carries a compact row of attributed cycles
/// aligned with [`StackComponent::ALL`] plus the number of instructions
/// actually *measured* inside it — for a full simulation that equals the
/// interval width (last interval excepted), for a sampled simulation only
/// the in-window instructions, so sampled and full timelines of the same
/// stream align interval-for-interval and can be compared per phase.
///
/// Values are integer cycles: a timeline built from the same stream is
/// byte-identical across runs, thread counts, and timing on/off.
///
/// # Example
///
/// ```
/// use mim_core::{CpiTimeline, StackComponent};
///
/// let mut tl = CpiTimeline::new(1000);
/// let mut row = [0u64; StackComponent::COUNT];
/// row[StackComponent::Base.index()] = 500;
/// row[StackComponent::DL2Miss.index()] = 250;
/// tl.push_row(1000, row);
/// assert_eq!(tl.len(), 1);
/// assert_eq!(tl.total_cycles(), 750);
/// assert!((tl.cpi_of_interval(0) - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpiTimeline {
    interval: u64,
    insts: Vec<u64>,
    rows: Vec<Vec<u64>>,
}

impl CpiTimeline {
    /// Creates an empty timeline with `interval`-instruction buckets
    /// (minimum 1).
    pub fn new(interval: u64) -> CpiTimeline {
        CpiTimeline {
            interval: interval.max(1),
            insts: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Interval width in walked instructions.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Number of intervals recorded.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no interval has been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends one interval: `insts` measured instructions and a cycle
    /// row aligned with [`StackComponent::ALL`].
    pub fn push_row(&mut self, insts: u64, row: [u64; StackComponent::COUNT]) {
        self.insts.push(insts);
        self.rows.push(row.to_vec());
    }

    /// Instructions measured inside interval `i`.
    pub fn insts_of(&self, i: usize) -> u64 {
        self.insts[i]
    }

    /// Total instructions measured across all intervals.
    pub fn num_insts(&self) -> u64 {
        self.insts.iter().sum()
    }

    /// Cycles attributed to `component` in interval `i`.
    pub fn cycles_of(&self, i: usize, component: StackComponent) -> u64 {
        self.rows[i][component.index()]
    }

    /// Total cycles charged to interval `i`.
    pub fn interval_cycles(&self, i: usize) -> u64 {
        self.rows[i].iter().sum()
    }

    /// Total cycles across all intervals.
    pub fn total_cycles(&self) -> u64 {
        self.rows.iter().flatten().sum()
    }

    /// CPI of interval `i` over its measured instructions (0 when the
    /// interval measured nothing — e.g. a fully skipped sampled
    /// interval).
    pub fn cpi_of_interval(&self, i: usize) -> f64 {
        if self.insts[i] == 0 {
            0.0
        } else {
            self.interval_cycles(i) as f64 / self.insts[i] as f64
        }
    }

    /// Per-interval CPIs (0 for unmeasured intervals), the per-phase view
    /// the validation bins compare.
    pub fn cpi_per_interval(&self) -> Vec<f64> {
        (0..self.len()).map(|i| self.cpi_of_interval(i)).collect()
    }

    /// Interval `i` as a named [`CpiStack`] (cycles widened to `f64`,
    /// normalized by the interval's measured instructions).
    pub fn sample(&self, i: usize) -> CpiStack {
        let mut stack = CpiStack::new(format!("interval-{i}"), self.insts[i]);
        for (c, &cycles) in StackComponent::ALL.iter().zip(&self.rows[i]) {
            stack.add(*c, cycles as f64);
        }
        stack
    }
}

impl fmt::Display for CpiStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "CPI stack for {} ({} insts): CPI = {:.4}",
            self.name,
            self.num_insts,
            self.cpi()
        )?;
        for (c, cycles) in self.components() {
            if cycles != 0.0 {
                writeln!(
                    f,
                    "  {:<18} {:>10.4}  ({:>5.1}%)",
                    c.label(),
                    cycles / self.num_insts.max(1) as f64,
                    100.0 * cycles / self.total_cycles().max(f64::MIN_POSITIVE)
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_and_totals_are_consistent() {
        let mut s = CpiStack::new("t", 100);
        s.add(StackComponent::Base, 25.0);
        s.add(StackComponent::Mul, 5.0);
        s.add(StackComponent::Div, 2.0);
        s.add(StackComponent::DepLoad, 8.0);
        let sum: f64 = s.components().map(|(_, c)| c).sum();
        assert!((sum - s.total_cycles()).abs() < 1e-12);
        assert!((s.mul_div() - 7.0).abs() < 1e-12);
        assert!((s.dependencies() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn time_scales_inverse_with_frequency() {
        let mut s = CpiStack::new("t", 10);
        s.add(StackComponent::Base, 1000.0);
        let t1 = s.time_seconds(1.0);
        let t2 = s.time_seconds(2.0);
        assert!((t1 / t2 - 2.0).abs() < 1e-12);
        assert!((t1 - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn zero_instruction_stack_is_safe() {
        let s = CpiStack::new("empty", 0);
        assert_eq!(s.cpi(), 0.0);
        assert_eq!(s.cpi_of(StackComponent::Base), 0.0);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = StackComponent::ALL.iter().map(|c| c.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), StackComponent::COUNT);
    }

    #[test]
    fn display_contains_nonzero_components_only() {
        let mut s = CpiStack::new("t", 100);
        s.add(StackComponent::Base, 25.0);
        let out = s.to_string();
        assert!(out.contains("base"));
        assert!(!out.contains("bpred miss"));
    }
}
