//! The mechanistic performance model for superscalar in-order processors
//! (paper §3, equations 1–16).

use crate::config::MachineConfig;
use crate::inputs::ModelInputs;
use crate::stack::{CpiStack, StackComponent};

/// The paper's analytical model.
///
/// Evaluating the model is a handful of closed-form sums over the profile
/// statistics — microseconds per design point — which is what makes
/// model-driven design-space exploration three orders of magnitude faster
/// than detailed simulation (§5).
///
/// # Model structure
///
/// ```text
/// T = N/W + P_misses + P_LL + P_deps                          (Eq. 1)
///
/// P_misses:  cache/TLB miss   = MissLatency - (W-1)/2W        (Eq. 3)
///            branch mispredict = D + (W-1)/2W                 (Eq. 4)
///            taken-branch hit  = 1 per predicted-taken hit    (§3.3)
/// P_LL:      per long-latency op = (lat - 1) - (W-1)/2W       (Eq. 6)
/// P_deps:    unit producers   Σ deps_unit(d)·((W-d)/W)²        (Eq. 11)
///            long-lat producers Σ deps_LL(d)·(W-d)/W          (Eq. 12)
///            load producers   Eq. 16 (two-stage producer)
/// ```
///
/// # Example
///
/// ```
/// use mim_core::{MachineConfig, MechanisticModel, ModelInputs};
///
/// let machine = MachineConfig::default_config();
/// let mut inputs = ModelInputs::synthetic("toy", 4000);
/// inputs.branch.branches = 100;
/// inputs.branch.mispredicts = 10;
/// let stack = MechanisticModel::new(&machine).predict(&inputs);
/// // base 1000 cycles + 10 * (6 + 3/8) cycles of branch penalty
/// assert!((stack.total_cycles() - (1000.0 + 10.0 * 6.375)).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct MechanisticModel {
    machine: MachineConfig,
}

impl MechanisticModel {
    /// Creates a model instance for one machine configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`MachineConfig::validate`]; build
    /// configurations through validated paths to avoid this.
    pub fn new(machine: &MachineConfig) -> MechanisticModel {
        machine
            .validate()
            .expect("machine configuration must be valid");
        MechanisticModel {
            machine: machine.clone(),
        }
    }

    /// The machine configuration this model instance evaluates.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// Average number of instructions hidden underneath a miss event,
    /// `(W-1)/2W` — instructions of the same fetch group that slip past the
    /// blocking event (§3.3).
    fn hidden_overlap(&self) -> f64 {
        let w = f64::from(self.machine.width);
        (w - 1.0) / (2.0 * w)
    }

    /// Penalty per cache/TLB miss event with the given latency (Eq. 3).
    fn miss_event_penalty(&self, miss_latency_cycles: u32) -> f64 {
        (f64::from(miss_latency_cycles) - self.hidden_overlap()).max(0.0)
    }

    /// Penalty per non-unit long-latency instruction (Eq. 6).
    fn long_latency_penalty(&self, latency_cycles: u32) -> f64 {
        (f64::from(latency_cycles) - 1.0 - self.hidden_overlap()).max(0.0)
    }

    /// Penalty per branch misprediction (Eq. 4).
    fn branch_miss_penalty(&self) -> f64 {
        f64::from(self.machine.frontend_depth) + self.hidden_overlap()
    }

    // -- public term-decomposition accessors ---------------------------------
    // Downstream error attribution (mim-validate) re-derives individual
    // penalty terms from raw event counts — e.g. splitting the model's
    // combined TLB component into its instruction and data shares — so the
    // per-event penalties are part of the model's public surface.

    /// Penalty the model charges per cache/TLB miss event of the given
    /// latency (Eq. 3): `latency - (W-1)/2W`, clamped at zero.
    pub fn miss_penalty(&self, miss_latency_cycles: u32) -> f64 {
        self.miss_event_penalty(miss_latency_cycles)
    }

    /// Penalty the model charges per branch misprediction (Eq. 4):
    /// `D + (W-1)/2W`.
    pub fn mispredict_penalty(&self) -> f64 {
        self.branch_miss_penalty()
    }

    /// Evaluates the model, returning the predicted [`CpiStack`].
    pub fn predict(&self, inputs: &ModelInputs) -> CpiStack {
        let m = &self.machine;
        let w = f64::from(m.width);
        let wi = m.width as usize;
        let mut stack = CpiStack::new(inputs.name.clone(), inputs.num_insts);

        // -- base: N/W (Eq. 1, first term) ---------------------------------
        stack.add(StackComponent::Base, inputs.num_insts as f64 / w);

        // -- P_LL: non-unit execute latencies (Eq. 5–6) ---------------------
        stack.add(
            StackComponent::Mul,
            inputs.mix.mul as f64 * self.long_latency_penalty(m.mul_latency),
        );
        stack.add(
            StackComponent::Div,
            inputs.mix.div as f64 * self.long_latency_penalty(m.div_latency),
        );
        // L1 hits count as long-latency instructions when the L1 access
        // time exceeds one cycle (§3.4). Only L1 *hits* — misses are
        // accounted below at their own latency.
        if m.l1_hit_cycles > 1 {
            let l1_hits = inputs.mix.load + inputs.mix.store - inputs.misses.l1d_misses;
            stack.add(
                StackComponent::L1HitExtra,
                l1_hits as f64 * self.long_latency_penalty(m.l1_hit_cycles),
            );
        }

        // -- P_misses: cache/TLB misses (Eq. 2–3) ----------------------------
        let l2_hit = self.miss_event_penalty(m.l2_hit_cycles());
        let mem = self.miss_event_penalty(m.mem_cycles());
        let c = &inputs.misses;
        stack.add(StackComponent::IL2Access, c.l1i_l2_hits() as f64 * l2_hit);
        stack.add(StackComponent::IL2Miss, c.l2i_misses as f64 * mem);
        stack.add(StackComponent::DL2Access, c.l1d_l2_hits() as f64 * l2_hit);
        stack.add(StackComponent::DL2Miss, c.l2d_misses as f64 * mem);
        stack.add(
            StackComponent::TlbMiss,
            (c.itlb_misses + c.dtlb_misses) as f64 * self.miss_event_penalty(m.tlb_walk_cycles),
        );

        // -- P_misses: branch mispredictions (Eq. 4) and taken-branch hits --
        stack.add(
            StackComponent::BranchMiss,
            inputs.branch.mispredicts as f64 * self.branch_miss_penalty(),
        );
        // One fetch bubble per correctly predicted taken branch and per
        // unconditional jump (always taken, always "predicted" correctly).
        stack.add(
            StackComponent::TakenBranch,
            (inputs.branch.taken_correct + inputs.mix.jump) as f64,
        );

        // -- P_deps: unit-latency producers (Eq. 11) -------------------------
        let mut dep_unit = 0.0;
        for d in 1..wi {
            let frac = (w - d as f64) / w;
            dep_unit += inputs.deps_unit.at(d) as f64 * frac * frac;
        }
        stack.add(StackComponent::DepUnit, dep_unit);

        // -- P_deps: long-latency producers (Eq. 12) -------------------------
        let mut dep_ll = 0.0;
        for d in 1..wi {
            dep_ll += inputs.deps_ll.at(d) as f64 * (w - d as f64) / w;
        }
        stack.add(StackComponent::DepLL, dep_ll);

        // -- P_deps: load producers (Eq. 16) -----------------------------------
        let mut dep_load = 0.0;
        for d in 1..wi {
            let df = d as f64;
            // Same-stage case (prob (W-d)/W, penalty (2W-d)/W) plus
            // consecutive-stage case with d < W (prob d/W, penalty 1).
            dep_load +=
                inputs.deps_load.at(d) as f64 * ((w - df) / w * (2.0 * w - df) / w + df / w);
        }
        for d in wi..(2 * wi) {
            let df = d as f64;
            // Consecutive-stage case with W <= d < 2W: probability and
            // penalty are both (2W-d)/W.
            let frac = (2.0 * w - df) / w;
            dep_load += inputs.deps_load.at(d) as f64 * frac * frac;
        }
        stack.add(StackComponent::DepLoad, dep_load);

        stack
    }

    /// Convenience: predicted total execution cycles (`T` of Eq. 1).
    pub fn predict_cycles(&self, inputs: &ModelInputs) -> f64 {
        self.predict(inputs).total_cycles()
    }

    /// Evaluates the model with the listed penalty terms removed.
    ///
    /// Because the model is purely additive (Eq. 1), dropping a term is
    /// equivalent to zeroing its stack component. This powers the ablation
    /// study (`mim-bench --bin ablation`), which quantifies how much each
    /// modeled mechanism contributes to prediction accuracy — the
    /// motivation the paper gives for modeling dependencies and non-unit
    /// latencies on in-order cores in the first place (§1).
    pub fn predict_ablated(
        &self,
        inputs: &ModelInputs,
        disabled: &[crate::stack::StackComponent],
    ) -> CpiStack {
        let full = self.predict(inputs);
        let mut ablated = CpiStack::new(inputs.name.clone(), inputs.num_insts);
        for (component, cycles) in full.components() {
            if !disabled.contains(&component) {
                ablated.add(component, cycles);
            }
        }
        ablated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs::{BranchStats, DepHistogram, InstMix};

    fn machine_w(width: u32) -> MachineConfig {
        MachineConfig {
            width,
            ..MachineConfig::default_config()
        }
    }

    fn base_inputs(n: u64) -> ModelInputs {
        ModelInputs::synthetic("t", n)
    }

    #[test]
    fn ideal_program_runs_at_full_width() {
        for w in 1..=4 {
            let model = MechanisticModel::new(&machine_w(w));
            let stack = model.predict(&base_inputs(1200));
            assert!((stack.total_cycles() - 1200.0 / f64::from(w)).abs() < 1e-9);
        }
    }

    #[test]
    fn mul_penalty_matches_eq6() {
        // Eq. 6: penalty = (lat - 1) - (W-1)/2W per multiply.
        let model = MechanisticModel::new(&machine_w(4));
        let mut inputs = base_inputs(1000);
        inputs.mix.mul = 100;
        let stack = model.predict(&inputs);
        let expected = 100.0 * ((4.0 - 1.0) - 3.0 / 8.0);
        assert!((stack.cycles_of(StackComponent::Mul) - expected).abs() < 1e-9);
    }

    #[test]
    fn unit_latency_mul_has_no_penalty() {
        let mut m = machine_w(4);
        m.mul_latency = 1;
        let model = MechanisticModel::new(&m);
        let mut inputs = base_inputs(1000);
        inputs.mix.mul = 100;
        assert_eq!(model.predict(&inputs).cycles_of(StackComponent::Mul), 0.0);
    }

    #[test]
    fn cache_miss_penalty_matches_eq3() {
        // Eq. 3: penalty = MissLatency - (W-1)/2W.
        let model = MechanisticModel::new(&machine_w(4)); // L2 10c, mem 60c
        let mut inputs = base_inputs(1000);
        inputs.misses.l1d_misses = 10; // all hit L2
        let stack = model.predict(&inputs);
        let expected = 10.0 * (10.0 - 3.0 / 8.0);
        assert!((stack.cycles_of(StackComponent::DL2Access) - expected).abs() < 1e-9);

        let mut inputs = base_inputs(1000);
        inputs.misses.l1i_misses = 5;
        inputs.misses.l2i_misses = 5; // all go to memory
        let stack = model.predict(&inputs);
        let expected = 5.0 * (60.0 - 3.0 / 8.0);
        assert!((stack.cycles_of(StackComponent::IL2Miss) - expected).abs() < 1e-9);
        assert_eq!(stack.cycles_of(StackComponent::IL2Access), 0.0);
    }

    #[test]
    fn branch_penalty_matches_eq4() {
        // Eq. 4: penalty = D + (W-1)/2W.
        for (w, d) in [(1u32, 2u32), (4, 6)] {
            let mut m = machine_w(w);
            m.frontend_depth = d;
            let model = MechanisticModel::new(&m);
            let mut inputs = base_inputs(1000);
            inputs.branch = BranchStats {
                branches: 50,
                mispredicts: 7,
                taken_correct: 20,
            };
            let stack = model.predict(&inputs);
            let wf = f64::from(w);
            let expected = 7.0 * (f64::from(d) + (wf - 1.0) / (2.0 * wf));
            assert!(
                (stack.cycles_of(StackComponent::BranchMiss) - expected).abs() < 1e-9,
                "W={w} D={d}"
            );
            // Taken-branch hit penalty: 1 cycle per correctly predicted
            // taken branch.
            assert!((stack.cycles_of(StackComponent::TakenBranch) - 20.0).abs() < 1e-9);
        }
    }

    #[test]
    fn jumps_cost_one_bubble_each() {
        let model = MechanisticModel::new(&machine_w(2));
        let mut inputs = base_inputs(1000);
        inputs.mix.jump = 30;
        let stack = model.predict(&inputs);
        assert!((stack.cycles_of(StackComponent::TakenBranch) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn unit_dep_penalty_matches_eq11() {
        // Eq. 11: Σ deps_unit(d) ((W-d)/W)².
        let model = MechanisticModel::new(&machine_w(4));
        let mut inputs = base_inputs(1000);
        let mut h = DepHistogram::new();
        for _ in 0..16 {
            h.record(1);
        }
        for _ in 0..8 {
            h.record(2);
        }
        for _ in 0..4 {
            h.record(3);
        }
        for _ in 0..100 {
            h.record(4); // d >= W contributes nothing
        }
        inputs.deps_unit = h;
        let stack = model.predict(&inputs);
        let expected = 16.0 * (3.0f64 / 4.0).powi(2)
            + 8.0 * (2.0f64 / 4.0).powi(2)
            + 4.0 * (1.0f64 / 4.0).powi(2);
        assert!((stack.cycles_of(StackComponent::DepUnit) - expected).abs() < 1e-9);
    }

    #[test]
    fn scalar_machine_has_no_unit_dep_penalty() {
        // W = 1: forwarding makes unit-latency chains free (sum is empty).
        let model = MechanisticModel::new(&machine_w(1));
        let mut inputs = base_inputs(1000);
        inputs.deps_unit.record(1);
        let stack = model.predict(&inputs);
        assert_eq!(stack.cycles_of(StackComponent::DepUnit), 0.0);
    }

    #[test]
    fn ll_dep_penalty_matches_eq12() {
        let model = MechanisticModel::new(&machine_w(4));
        let mut inputs = base_inputs(1000);
        inputs.deps_ll.record(1);
        inputs.deps_ll.record(2);
        inputs.deps_ll.record(3);
        let stack = model.predict(&inputs);
        let expected = 3.0 / 4.0 + 2.0 / 4.0 + 1.0 / 4.0;
        assert!((stack.cycles_of(StackComponent::DepLL) - expected).abs() < 1e-9);
    }

    #[test]
    fn load_dep_penalty_matches_eq16() {
        let w = 4.0f64;
        let model = MechanisticModel::new(&machine_w(4));
        let mut inputs = base_inputs(1000);
        // one dependency at each distance 1..=7
        for d in 1..=7 {
            inputs.deps_load.record(d);
        }
        let stack = model.predict(&inputs);
        let mut expected = 0.0;
        for d in 1..4 {
            let df = d as f64;
            expected += (w - df) / w * (2.0 * w - df) / w + df / w;
        }
        for d in 4..8 {
            let df = d as f64;
            expected += ((2.0 * w - df) / w).powi(2);
        }
        assert!((stack.cycles_of(StackComponent::DepLoad) - expected).abs() < 1e-9);
    }

    #[test]
    fn scalar_load_use_costs_one_cycle() {
        // Classic 5-stage load-use hazard: W=1, d=1 -> exactly 1 cycle.
        let model = MechanisticModel::new(&machine_w(1));
        let mut inputs = base_inputs(1000);
        inputs.deps_load.record(1);
        let stack = model.predict(&inputs);
        assert!((stack.cycles_of(StackComponent::DepLoad) - 1.0).abs() < 1e-9);
        // d = 2 >= 2W: no penalty on a scalar machine.
        let mut inputs = base_inputs(1000);
        inputs.deps_load.record(2);
        let stack = model.predict(&inputs);
        assert_eq!(stack.cycles_of(StackComponent::DepLoad), 0.0);
    }

    #[test]
    fn l1_hit_extra_counts_hits_only() {
        let mut m = machine_w(4);
        m.l1_hit_cycles = 2;
        let model = MechanisticModel::new(&m);
        let mut inputs = base_inputs(1000);
        inputs.mix = InstMix {
            alu: 900,
            load: 80,
            store: 20,
            ..InstMix::default()
        };
        inputs.misses.l1d_misses = 30;
        let stack = model.predict(&inputs);
        // 70 L1 hits * ((2-1) - 3/8)
        let expected = 70.0 * (1.0 - 3.0 / 8.0);
        assert!((stack.cycles_of(StackComponent::L1HitExtra) - expected).abs() < 1e-9);
    }

    #[test]
    fn all_penalties_are_nonnegative() {
        // Degenerate configurations must not produce negative components.
        let mut m = machine_w(8);
        m.mul_latency = 1;
        m.div_latency = 1;
        m.l2_hit_ns = 0.1; // rounds to >= 1 cycle
        let model = MechanisticModel::new(&m);
        let mut inputs = base_inputs(100);
        inputs.mix.mul = 10;
        inputs.mix.div = 10;
        inputs.misses.l1d_misses = 10;
        let stack = model.predict(&inputs);
        for (c, v) in stack.components() {
            assert!(v >= 0.0, "{} negative: {v}", c.label());
        }
    }

    #[test]
    fn frequency_scaling_increases_memory_cpi() {
        // Same profile, higher frequency -> more cycles per miss -> higher CPI.
        let mut inputs = base_inputs(10_000);
        inputs.misses.l1d_misses = 100;
        inputs.misses.l2d_misses = 100;
        let mut slow = machine_w(4);
        slow.frequency_ghz = 0.6;
        let mut fast = machine_w(4);
        fast.frequency_ghz = 1.0;
        let cpi_slow = MechanisticModel::new(&slow).predict(&inputs).cpi();
        let cpi_fast = MechanisticModel::new(&fast).predict(&inputs).cpi();
        assert!(cpi_fast > cpi_slow);
    }
}
