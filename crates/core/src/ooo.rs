//! First-order out-of-order interval model (comparator for §6.1).
//!
//! The paper's first case study contrasts in-order CPI stacks against
//! out-of-order CPI stacks "obtained using the model described in prior
//! work \[8\]" — the interval model of Eyerman, Eeckhout, Karkhanis & Smith
//! (ACM TOCS 2009). This module implements that first-order model:
//! a balanced out-of-order core sustains its dispatch width between miss
//! events, hides inter-instruction dependencies and non-unit execute
//! latencies inside the reorder buffer, overlaps long data misses via
//! memory-level parallelism (MLP), and pays a *larger* branch-misprediction
//! penalty than an in-order core because the branch-resolution time adds to
//! the front-end refill.

use crate::config::MachineConfig;
use crate::inputs::ModelInputs;
use crate::stack::{CpiStack, StackComponent};

/// Parameters of the out-of-order comparator core.
///
/// Width, front-end depth and memory latencies are shared with a
/// [`MachineConfig`]; the out-of-order-specific parameters are the reorder
/// buffer size and the achievable memory-level parallelism.
#[derive(Debug, Clone, PartialEq)]
pub struct OooConfig {
    /// The base machine (width, depth, latencies, caches, predictor).
    pub machine: MachineConfig,
    /// Reorder-buffer (instruction window) size.
    pub rob_size: u32,
    /// Average number of overlapping long data misses (MLP). 1.0 means no
    /// overlap; realistic pointer-light codes reach 1.5–3.
    pub mlp: f64,
}

impl OooConfig {
    /// A 4-wide out-of-order core matching the paper's §6.1 comparison:
    /// same front end, caches and predictor as the in-order default, with a
    /// 128-entry ROB and moderate MLP.
    pub fn default_config() -> OooConfig {
        OooConfig {
            machine: MachineConfig::default_config(),
            rob_size: 128,
            mlp: 1.8,
        }
    }

    /// Branch resolution time: the interval model charges, on top of the
    /// front-end refill `D`, the time for the mispredicted branch to reach
    /// execution — approximated as the time to drain half the window at
    /// dispatch width (Eyerman et al. model the window drain explicitly;
    /// the half-window average is the standard first-order surrogate).
    pub fn branch_resolution_cycles(&self) -> f64 {
        f64::from(self.rob_size) / (2.0 * f64::from(self.machine.width))
    }
}

/// First-order out-of-order interval model.
///
/// # Example
///
/// ```
/// use mim_core::{ModelInputs, OooConfig, OooModel};
///
/// let model = OooModel::new(OooConfig::default_config());
/// let inputs = ModelInputs::synthetic("toy", 4000);
/// let stack = model.predict(&inputs);
/// // An ideal program dispatches at full width.
/// assert!((stack.cpi() - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct OooModel {
    config: OooConfig,
}

impl OooModel {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if the embedded [`MachineConfig`] is invalid, the ROB is
    /// empty, or `mlp < 1`.
    pub fn new(config: OooConfig) -> OooModel {
        config.machine.validate().expect("valid machine");
        assert!(config.rob_size > 0, "ROB must be nonempty");
        assert!(config.mlp >= 1.0, "MLP cannot be below 1");
        OooModel { config }
    }

    /// The comparator configuration.
    pub fn config(&self) -> &OooConfig {
        &self.config
    }

    /// Evaluates the interval model.
    ///
    /// Interval accounting (one term per disruptive miss event):
    ///
    /// * base `N/W` — balanced dispatch between miss events;
    /// * I-cache misses — full miss latency (identical to in-order: the
    ///   penalty is front-end refill, independent of the back end, §6.1);
    /// * branch mispredictions — `D` + branch resolution time;
    /// * long (L2-miss) *load* misses — memory latency divided by MLP
    ///   (independent misses overlap in the window);
    /// * TLB walks — serializing, full latency;
    /// * dependencies, multiply/divide latencies, L1D misses and L2-hit
    ///   loads — **hidden** by out-of-order execution (charged zero); this
    ///   is precisely the contrast the paper draws in Figure 7.
    pub fn predict(&self, inputs: &ModelInputs) -> CpiStack {
        let m = &self.config.machine;
        let w = f64::from(m.width);
        let mut stack = CpiStack::new(inputs.name.clone(), inputs.num_insts);

        stack.add(StackComponent::Base, inputs.num_insts as f64 / w);

        // Front-end (instruction-side) misses behave as on in-order.
        let c = &inputs.misses;
        stack.add(
            StackComponent::IL2Access,
            c.l1i_l2_hits() as f64 * f64::from(m.l2_hit_cycles()),
        );
        stack.add(
            StackComponent::IL2Miss,
            c.l2i_misses as f64 * f64::from(m.mem_cycles()),
        );

        // Long back-end misses overlap up to the measured/assumed MLP.
        stack.add(
            StackComponent::DL2Miss,
            c.l2d_load_misses as f64 * f64::from(m.mem_cycles()) / self.config.mlp,
        );

        // TLB walks serialize execution on both core styles.
        stack.add(
            StackComponent::TlbMiss,
            (c.itlb_misses + c.dtlb_misses) as f64 * f64::from(m.tlb_walk_cycles),
        );

        // Branch mispredictions: refill + resolution.
        let penalty = f64::from(m.frontend_depth) + self.config.branch_resolution_cycles();
        stack.add(
            StackComponent::BranchMiss,
            inputs.branch.mispredicts as f64 * penalty,
        );

        // Dependencies, mul/div, L1D misses, L2-hit loads: hidden (0).
        stack
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs::BranchStats;
    use crate::model::MechanisticModel;

    fn inputs_with_everything() -> ModelInputs {
        let mut inputs = ModelInputs::synthetic("mixed", 100_000);
        inputs.mix.mul = 5_000;
        inputs.mix.div = 1_000;
        inputs.mix.load = 20_000;
        inputs.deps_unit.record(1);
        inputs.deps_load.record(1);
        inputs.misses.l1d_misses = 2_000;
        inputs.misses.l2d_misses = 500;
        inputs.misses.l1d_load_misses = 2_000;
        inputs.misses.l2d_load_misses = 500;
        inputs.misses.l1i_misses = 300;
        inputs.misses.l2i_misses = 100;
        inputs.branch = BranchStats {
            branches: 10_000,
            mispredicts: 400,
            taken_correct: 5_000,
        };
        inputs
    }

    #[test]
    fn ooo_hides_dependencies_and_lls() {
        let stack = OooModel::new(OooConfig::default_config()).predict(&inputs_with_everything());
        assert_eq!(stack.dependencies(), 0.0);
        assert_eq!(stack.mul_div(), 0.0);
        assert_eq!(stack.cycles_of(StackComponent::DL2Access), 0.0);
    }

    #[test]
    fn ooo_branch_penalty_exceeds_in_order() {
        let ooo = OooModel::new(OooConfig::default_config());
        let inord = MechanisticModel::new(&MachineConfig::default_config());
        let inputs = inputs_with_everything();
        let ooo_bm = ooo.predict(&inputs).cycles_of(StackComponent::BranchMiss);
        let ino_bm = inord.predict(&inputs).cycles_of(StackComponent::BranchMiss);
        assert!(
            ooo_bm > ino_bm,
            "OoO branch cost {ooo_bm} must exceed in-order {ino_bm} (resolution time)"
        );
    }

    #[test]
    fn ooo_l2_component_is_smaller_via_mlp() {
        let ooo = OooModel::new(OooConfig::default_config());
        let inord = MechanisticModel::new(&MachineConfig::default_config());
        let inputs = inputs_with_everything();
        let ooo_l2m = ooo.predict(&inputs).l2_miss();
        let ino_l2m = inord.predict(&inputs).l2_miss();
        assert!(ooo_l2m < ino_l2m);
    }

    #[test]
    fn ooo_overall_cpi_is_lower_on_dependency_heavy_code() {
        let mut inputs = ModelInputs::synthetic("deps", 10_000);
        for _ in 0..3_000 {
            inputs.deps_unit.record(1);
        }
        let ooo = OooModel::new(OooConfig::default_config())
            .predict(&inputs)
            .cpi();
        let ino = MechanisticModel::new(&MachineConfig::default_config())
            .predict(&inputs)
            .cpi();
        assert!(ooo < ino);
    }

    #[test]
    fn icache_penalty_identical_across_core_styles() {
        // §6.1: "the I-cache miss penalty is identical on in-order and
        // out-of-order processors" (up to the in-order overlap refinement).
        let mut inputs = ModelInputs::synthetic("icache", 10_000);
        inputs.misses.l1i_misses = 100;
        inputs.misses.l2i_misses = 100;
        let ooo = OooModel::new(OooConfig::default_config()).predict(&inputs);
        let ino = MechanisticModel::new(&MachineConfig::default_config()).predict(&inputs);
        let rel = (ooo.l2_miss() - ino.l2_miss()).abs() / ino.l2_miss();
        assert!(rel < 0.01, "relative gap {rel}");
    }

    #[test]
    #[should_panic(expected = "MLP cannot be below 1")]
    fn rejects_sub_unity_mlp() {
        let mut c = OooConfig::default_config();
        c.mlp = 0.5;
        let _ = OooModel::new(c);
    }
}
