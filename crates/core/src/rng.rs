//! The workspace's deterministic random stream.
//!
//! Every seeded component — explore's annealer and greedy restarts,
//! select's k-medoids initialization, synthetic-workload generation
//! helpers — wants the same property: the seed fully determines every
//! draw, so reports reproduce byte for byte. This is the single
//! authoritative implementation (SplitMix64: tiny, fast, and
//! well-distributed) rather than per-crate copies that could drift.

/// Deterministic SplitMix64 stream.
///
/// # Example
///
/// ```
/// use mim_core::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!(a.below(10) < 10);
/// assert!((0.0..1.0).contains(&a.unit()));
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the stream.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0) is meaningless");
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform value in `[0, 1)` with 53 bits of precision.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_seed_deterministic_and_roughly_uniform() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        let mut hits = [0usize; 4];
        for _ in 0..4000 {
            hits[c.below(4)] += 1;
        }
        assert!(hits.iter().all(|&h| h > 800), "roughly uniform: {hits:?}");
        for _ in 0..1000 {
            let u = c.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
