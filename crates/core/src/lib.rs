//! # mim-core — the mechanistic performance model
//!
//! This crate implements the primary contribution of *"A Mechanistic
//! Performance Model for Superscalar In-Order Processors"* (Breughe,
//! Eyerman & Eeckhout, ISPASS 2012): an analytical model that predicts the
//! execution time of a program on a W-wide superscalar in-order processor
//! from one-time profile statistics, with no simulation in the loop:
//!
//! ```text
//! T = N/W + P_misses + P_LL + P_deps          (paper Eq. 1)
//! ```
//!
//! * [`MachineConfig`] — machine parameters (width, front-end depth,
//!   latencies, cache hierarchy, branch predictor); [`DesignSpace`]
//!   enumerates the paper's 192-point space (Table 2).
//! * [`ModelInputs`] — the program and program–machine statistics of
//!   Table 1 (instruction mix, dependency-distance profiles, miss counts).
//! * [`MechanisticModel`] — evaluates Eq. 1–16 and returns a [`CpiStack`]
//!   that splits CPI into its mechanistic components (base, multiply/divide,
//!   cache and TLB misses, branch penalties, dependency stalls).
//! * [`OooModel`] — a first-order out-of-order interval model in the style
//!   of Eyerman et al. (reference \[8\]), used by the paper's first case
//!   study (§6.1) to contrast in-order and out-of-order CPI stacks.
//!
//! The model evaluates in microseconds per design point, which is what
//! enables the paper's design-space exploration speedup of three orders of
//! magnitude over detailed simulation (§5).
//!
//! ## Example
//!
//! ```
//! use mim_core::{MachineConfig, MechanisticModel, ModelInputs};
//!
//! let machine = MachineConfig::default_config();
//! let model = MechanisticModel::new(&machine);
//!
//! // A tiny synthetic profile: 1000 instructions, all unit-latency ALU,
//! // no misses, no dependencies.
//! let inputs = ModelInputs::synthetic("toy", 1000);
//! let stack = model.predict(&inputs);
//! assert!((stack.cpi() - 0.25).abs() < 1e-12); // N/W on a 4-wide machine
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod inputs;
mod model;
mod ooo;
mod rng;
mod stack;

pub use config::{ConfigError, DesignPoint, DesignSpace, MachineConfig};

/// Converts a cycle count at `frequency_ghz` into wall-clock seconds.
///
/// The single authoritative frequency→seconds conversion: every
/// `time_seconds`-style accessor across the workspace
/// ([`CpiStack::time_seconds`], `SimResult::time_seconds`,
/// `EvalResult::time_seconds`, [`MachineConfig::cycle_seconds`]) delegates
/// here rather than hand-rolling `cycles * 1e-9 / ghz`.
#[inline]
pub fn cycles_to_seconds(cycles: f64, frequency_ghz: f64) -> f64 {
    cycles * 1e-9 / frequency_ghz
}
pub use inputs::{BranchStats, DepHistogram, InstMix, ModelInputs, MAX_DEP_DISTANCE};
pub use model::MechanisticModel;
pub use ooo::{OooConfig, OooModel};
pub use rng::SplitMix64;
pub use stack::{CpiStack, CpiTimeline, StackComponent};
