//! Machine parameters and the Table 2 design space.

use std::error::Error;
use std::fmt;

use mim_bpred::PredictorConfig;
use mim_cache::{CacheConfig, HierarchyConfig};
use serde::{Deserialize, Serialize};

/// Error produced by [`MachineConfig::validate`] and the [`DesignSpace`]
/// builder.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// Pipeline width outside the supported range.
    BadWidth {
        /// Offending width.
        width: u32,
    },
    /// Front-end depth of zero.
    BadDepth,
    /// A latency parameter was zero or non-finite.
    BadLatency {
        /// Which latency was invalid.
        field: &'static str,
    },
    /// A design-space axis was replaced with an empty candidate list.
    EmptyAxis {
        /// Which axis was empty.
        axis: &'static str,
    },
    /// A design-space axis contains the same candidate twice (duplicates
    /// would silently alias design points and skew frontier statistics).
    DuplicateCandidate {
        /// Which axis holds the duplicate.
        axis: &'static str,
        /// Display label of the duplicated candidate.
        label: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadWidth { width } => {
                write!(f, "pipeline width must be in 1..=8, got {width}")
            }
            ConfigError::BadDepth => write!(f, "front-end depth must be at least 1"),
            ConfigError::BadLatency { field } => {
                write!(f, "latency parameter {field} must be positive and finite")
            }
            ConfigError::EmptyAxis { axis } => {
                write!(f, "design-space axis `{axis}` must be non-empty")
            }
            ConfigError::DuplicateCandidate { axis, label } => {
                write!(f, "design-space axis `{axis}` lists `{label}` twice")
            }
        }
    }
}

impl Error for ConfigError {}

/// Complete description of one superscalar in-order design point.
///
/// This bundles every machine parameter the model (and the detailed
/// pipeline simulator) needs: pipeline geometry, functional-unit and
/// memory latencies, the cache hierarchy, and the branch predictor.
/// Time-domain latencies (`l2_hit_ns`, `mem_ns`) are converted to cycles
/// with the configured clock frequency, so frequency points in the design
/// space change cycle-domain behaviour exactly as in the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Pipeline width `W` (instructions per stage), 1–8.
    pub width: u32,
    /// Depth `D` of the front-end pipeline (fetch..decode stages).
    /// The paper's 5/7/9-stage machines have `D` = 2/4/6 (the back end is
    /// always execute + memory + writeback).
    pub frontend_depth: u32,
    /// Clock frequency in GHz.
    pub frequency_ghz: f64,
    /// Execute latency of integer multiply, in cycles (non-pipelined).
    pub mul_latency: u32,
    /// Execute latency of integer divide/remainder, in cycles.
    pub div_latency: u32,
    /// L1 data-cache hit latency in cycles (1 = result forwards from MEM).
    pub l1_hit_cycles: u32,
    /// Unified L2 hit latency in nanoseconds (10 ns in Table 2).
    pub l2_hit_ns: f64,
    /// Main-memory access latency in nanoseconds.
    pub mem_ns: f64,
    /// TLB miss (page-walk) latency in cycles.
    pub tlb_walk_cycles: u32,
    /// Cache hierarchy geometry.
    pub hierarchy: HierarchyConfig,
    /// Branch predictor configuration.
    pub predictor: PredictorConfig,
}

impl MachineConfig {
    /// The paper's default configuration (Table 2, "Default" column):
    /// 4-wide, 9-stage (front-end depth 6), 1 GHz, 32 KB 4-way L1s,
    /// 512 KB 8-way L2 at 10 ns, and the 1 KB gshare predictor.
    pub fn default_config() -> MachineConfig {
        MachineConfig {
            width: 4,
            frontend_depth: 6,
            frequency_ghz: 1.0,
            mul_latency: 4,
            div_latency: 20,
            l1_hit_cycles: 1,
            l2_hit_ns: 10.0,
            mem_ns: 60.0,
            tlb_walk_cycles: 30,
            hierarchy: HierarchyConfig::default_hierarchy(),
            predictor: PredictorConfig::gshare_1k(),
        }
    }

    /// Checks all parameters, returning the first violation.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the width is outside 1–8, the front-end
    /// depth is zero, or any latency is non-positive/non-finite.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.width == 0 || self.width > 8 {
            return Err(ConfigError::BadWidth { width: self.width });
        }
        if self.frontend_depth == 0 {
            return Err(ConfigError::BadDepth);
        }
        for (field, ok) in [
            (
                "frequency_ghz",
                self.frequency_ghz > 0.0 && self.frequency_ghz.is_finite(),
            ),
            ("mul_latency", self.mul_latency >= 1),
            ("div_latency", self.div_latency >= 1),
            ("l1_hit_cycles", self.l1_hit_cycles >= 1),
            (
                "l2_hit_ns",
                self.l2_hit_ns > 0.0 && self.l2_hit_ns.is_finite(),
            ),
            ("mem_ns", self.mem_ns > 0.0 && self.mem_ns.is_finite()),
            ("tlb_walk_cycles", self.tlb_walk_cycles >= 1),
        ] {
            if !ok {
                return Err(ConfigError::BadLatency { field });
            }
        }
        Ok(())
    }

    /// Total pipeline depth (front end + execute + memory + writeback).
    pub fn pipeline_stages(&self) -> u32 {
        self.frontend_depth + 3
    }

    /// L2 hit latency in cycles at the configured frequency.
    pub fn l2_hit_cycles(&self) -> u32 {
        (self.l2_hit_ns * self.frequency_ghz).round().max(1.0) as u32
    }

    /// Main-memory latency in cycles at the configured frequency.
    pub fn mem_cycles(&self) -> u32 {
        (self.mem_ns * self.frequency_ghz).round().max(1.0) as u32
    }

    /// Clock period in seconds.
    pub fn cycle_seconds(&self) -> f64 {
        crate::cycles_to_seconds(1.0, self.frequency_ghz)
    }

    /// Short identifier, e.g. `"s9@1.0GHz-w4-L2-512K-8w-gshare-12b"`.
    pub fn id(&self) -> String {
        format!(
            "s{}@{:.1}GHz-w{}-{}-{}",
            self.pipeline_stages(),
            self.frequency_ghz,
            self.width,
            self.hierarchy.l2.name(),
            self.predictor.name(),
        )
    }
}

impl fmt::Display for MachineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (mul {}c, div {}c, L2 {}c, mem {}c, TLB walk {}c)",
            self.id(),
            self.mul_latency,
            self.div_latency,
            self.l2_hit_cycles(),
            self.mem_cycles(),
            self.tlb_walk_cycles,
        )
    }
}

/// One enumerated point of a [`DesignSpace`] with its position indices,
/// used to look up per-configuration profile statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// The full machine configuration.
    pub machine: MachineConfig,
    /// Index into [`DesignSpace::l2_configs`] for this point's L2.
    pub l2_index: usize,
    /// Index into [`DesignSpace::predictor_configs`] for this point's
    /// predictor.
    pub predictor_index: usize,
}

/// The paper's architecture design space (Table 2).
///
/// Three (depth, frequency) pairs x four widths x eight L2 geometries x two
/// branch predictors = 192 design points. The space is deliberately
/// factored so that the profiler can collect statistics for *all* L2 and
/// predictor candidates in a single pass ([`l2_configs`]/
/// [`predictor_configs`]), after which the model evaluates every point
/// instantly.
///
/// [`l2_configs`]: DesignSpace::l2_configs
/// [`predictor_configs`]: DesignSpace::predictor_configs
///
/// # Example
///
/// ```
/// use mim_core::DesignSpace;
///
/// let space = DesignSpace::paper_table2();
/// assert_eq!(space.points().count(), 192);
/// assert_eq!(space.l2_configs().len(), 8);
/// assert_eq!(space.predictor_configs().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpace {
    base: MachineConfig,
    depth_freq: Vec<(u32, f64)>,
    widths: Vec<u32>,
    l2s: Vec<CacheConfig>,
    predictors: Vec<PredictorConfig>,
}

impl DesignSpace {
    /// A degenerate one-point space containing exactly `base`.
    ///
    /// Grow it with the `with_*` builder methods to sweep individual axes,
    /// e.g. a width sweep at the default machine:
    ///
    /// ```
    /// use mim_core::{DesignSpace, MachineConfig};
    ///
    /// let space = DesignSpace::new(MachineConfig::default_config())
    ///     .with_widths(vec![1, 2, 3, 4])
    ///     .expect("distinct widths");
    /// assert_eq!(space.len(), 4);
    /// ```
    pub fn new(base: MachineConfig) -> DesignSpace {
        DesignSpace {
            depth_freq: vec![(base.frontend_depth, base.frequency_ghz)],
            widths: vec![base.width],
            l2s: vec![base.hierarchy.l2.clone()],
            predictors: vec![base.predictor.clone()],
            base,
        }
    }

    /// Rejects empty or duplicate-carrying candidate lists; duplicates
    /// would silently alias design points (and, for L2s/predictors, skew
    /// the single-pass profiler's candidate lists).
    fn validate_axis<T: PartialEq>(
        axis: &'static str,
        candidates: &[T],
        label: impl Fn(&T) -> String,
    ) -> Result<(), ConfigError> {
        if candidates.is_empty() {
            return Err(ConfigError::EmptyAxis { axis });
        }
        for (i, candidate) in candidates.iter().enumerate() {
            if candidates[..i].contains(candidate) {
                return Err(ConfigError::DuplicateCandidate {
                    axis,
                    label: label(candidate),
                });
            }
        }
        Ok(())
    }

    /// Replaces the pipeline-width axis.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the list is empty or repeats a width.
    pub fn with_widths(mut self, widths: Vec<u32>) -> Result<DesignSpace, ConfigError> {
        Self::validate_axis("widths", &widths, |w| w.to_string())?;
        self.widths = widths;
        Ok(self)
    }

    /// Replaces the paired (front-end depth, frequency GHz) axis.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the list is empty or repeats a pair.
    pub fn with_depth_freq(
        mut self,
        depth_freq: Vec<(u32, f64)>,
    ) -> Result<DesignSpace, ConfigError> {
        Self::validate_axis("depth/frequency", &depth_freq, |(d, f)| {
            format!("depth {d} @ {f} GHz")
        })?;
        self.depth_freq = depth_freq;
        Ok(self)
    }

    /// Replaces the L2 cache candidate axis.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the list is empty or repeats a
    /// geometry.
    pub fn with_l2s(mut self, l2s: Vec<CacheConfig>) -> Result<DesignSpace, ConfigError> {
        Self::validate_axis("L2", &l2s, |c| c.name().to_string())?;
        self.l2s = l2s;
        Ok(self)
    }

    /// Replaces the branch-predictor candidate axis.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the list is empty or repeats a
    /// predictor.
    pub fn with_predictors(
        mut self,
        predictors: Vec<PredictorConfig>,
    ) -> Result<DesignSpace, ConfigError> {
        Self::validate_axis("predictor", &predictors, |p| p.name())?;
        self.predictors = predictors;
        Ok(self)
    }

    /// The base machine the axes are applied to (fixes all parameters the
    /// space does not sweep, including the L1/TLB geometry profilers use).
    pub fn base(&self) -> &MachineConfig {
        &self.base
    }

    /// The exact space of Table 2: pipeline depth 5/7/9 stages paired with
    /// 600/800/1000 MHz, width 1–4, L2 in {128 KB, 256 KB, 512 KB, 1 MB} x
    /// {8, 16}-way, and the two branch predictors.
    pub fn paper_table2() -> DesignSpace {
        let l2s = [128u64, 256, 512, 1024]
            .iter()
            .flat_map(|&kb| {
                [8u32, 16].iter().map(move |&ways| {
                    CacheConfig::new(format!("L2-{kb}K-{ways}w"), kb * 1024, ways, 64)
                        .expect("valid L2 geometry")
                })
            })
            .collect();
        DesignSpace {
            base: MachineConfig::default_config(),
            depth_freq: vec![(2, 0.6), (4, 0.8), (6, 1.0)],
            widths: vec![1, 2, 3, 4],
            l2s,
            predictors: vec![PredictorConfig::gshare_1k(), PredictorConfig::hybrid_3_5k()],
        }
    }

    /// The L2 cache candidates (the axis the single-pass cache sweep
    /// covers).
    pub fn l2_configs(&self) -> &[CacheConfig] {
        &self.l2s
    }

    /// The branch-predictor candidates (the axis the multi-predictor
    /// profiler covers).
    pub fn predictor_configs(&self) -> &[PredictorConfig] {
        &self.predictors
    }

    /// Number of design points.
    pub fn len(&self) -> usize {
        self.depth_freq.len() * self.widths.len() * self.l2s.len() * self.predictors.len()
    }

    /// True if the space is degenerate (no points).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Candidate counts per axis, in enumeration order:
    /// `[depth_freq, widths, l2s, predictors]`.
    pub fn axis_lens(&self) -> [usize; 4] {
        [
            self.depth_freq.len(),
            self.widths.len(),
            self.l2s.len(),
            self.predictors.len(),
        ]
    }

    /// Decodes a flat point index into per-axis coordinates (the inverse
    /// of [`index_of`](DesignSpace::index_of)). Returns `None` when the
    /// index is out of range.
    pub fn coords_of(&self, index: usize) -> Option<[usize; 4]> {
        if index >= self.len() {
            return None;
        }
        let [_, nw, nl, np] = self.axis_lens();
        let pi = index % np;
        let li = (index / np) % nl;
        let wi = (index / (np * nl)) % nw;
        let di = index / (np * nl * nw);
        Some([di, wi, li, pi])
    }

    /// Encodes per-axis coordinates back into the flat point index.
    /// Returns `None` when any coordinate is out of range.
    pub fn index_of(&self, coords: [usize; 4]) -> Option<usize> {
        let lens = self.axis_lens();
        if coords.iter().zip(lens.iter()).any(|(c, l)| c >= l) {
            return None;
        }
        let [_, nw, nl, np] = lens;
        let [di, wi, li, pi] = coords;
        Some(((di * nw + wi) * nl + li) * np + pi)
    }

    /// Generates the design point at a flat index without materializing
    /// the whole space — `space.point_at(i)` equals `space.points().nth(i)`
    /// but costs O(1), which is what lets search strategies walk
    /// 10,000-point generated spaces lazily.
    ///
    /// Returns `None` when the index is out of range.
    pub fn point_at(&self, index: usize) -> Option<DesignPoint> {
        self.coords_of(index)
            .map(|coords| self.point_from_coords(coords))
    }

    /// Generates the design point at in-range per-axis coordinates
    /// (callers obtain valid coordinates from
    /// [`coords_of`](DesignSpace::coords_of) or by staying inside
    /// [`axis_lens`](DesignSpace::axis_lens)).
    fn point_from_coords(&self, [di, wi, li, pi]: [usize; 4]) -> DesignPoint {
        let (depth, freq) = self.depth_freq[di];
        let mut machine = self.base.clone();
        machine.frontend_depth = depth;
        machine.frequency_ghz = freq;
        machine.width = self.widths[wi];
        machine.hierarchy = machine.hierarchy.clone().with_l2(self.l2s[li].clone());
        machine.predictor = self.predictors[pi].clone();
        DesignPoint {
            machine,
            l2_index: li,
            predictor_index: pi,
        }
    }

    /// Enumerates every design point, in flat-index order (so
    /// `points().nth(i)` equals [`point_at(i)`](DesignSpace::point_at)).
    pub fn points(&self) -> impl Iterator<Item = DesignPoint> + '_ {
        (0..self.len())
            .map(|index| self.point_from_coords(self.coords_of(index).expect("index within len")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_matches_table2() {
        let c = MachineConfig::default_config();
        c.validate().unwrap();
        assert_eq!(c.width, 4);
        assert_eq!(c.pipeline_stages(), 9);
        assert_eq!(c.l2_hit_cycles(), 10); // 10ns @ 1GHz
        assert_eq!(c.mem_cycles(), 60);
        assert_eq!(c.hierarchy.l2.size_bytes(), 512 * 1024);
    }

    #[test]
    fn frequency_scales_cycle_latencies() {
        let mut c = MachineConfig::default_config();
        c.frequency_ghz = 0.6;
        assert_eq!(c.l2_hit_cycles(), 6);
        assert_eq!(c.mem_cycles(), 36);
        assert!((c.cycle_seconds() - 1.0 / 0.6e9).abs() < 1e-20);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let mut c = MachineConfig::default_config();
        c.width = 0;
        assert!(matches!(c.validate(), Err(ConfigError::BadWidth { .. })));
        c.width = 9;
        assert!(matches!(c.validate(), Err(ConfigError::BadWidth { .. })));
        let mut c = MachineConfig::default_config();
        c.frontend_depth = 0;
        assert_eq!(c.validate(), Err(ConfigError::BadDepth));
        let mut c = MachineConfig::default_config();
        c.mem_ns = f64::NAN;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::BadLatency { field: "mem_ns" })
        ));
    }

    #[test]
    fn table2_space_has_192_points() {
        let space = DesignSpace::paper_table2();
        assert_eq!(space.len(), 192);
        let points: Vec<DesignPoint> = space.points().collect();
        assert_eq!(points.len(), 192);
        for p in &points {
            p.machine.validate().unwrap();
        }
        // All ids unique.
        let mut ids: Vec<String> = points.iter().map(|p| p.machine.id()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 192);
    }

    #[test]
    fn depth_and_frequency_are_paired() {
        let space = DesignSpace::paper_table2();
        for p in space.points() {
            match p.machine.pipeline_stages() {
                5 => assert!((p.machine.frequency_ghz - 0.6).abs() < 1e-12),
                7 => assert!((p.machine.frequency_ghz - 0.8).abs() < 1e-12),
                9 => assert!((p.machine.frequency_ghz - 1.0).abs() < 1e-12),
                other => panic!("unexpected stage count {other}"),
            }
        }
    }

    #[test]
    fn indices_point_into_config_lists() {
        let space = DesignSpace::paper_table2();
        for p in space.points() {
            assert_eq!(space.l2_configs()[p.l2_index], p.machine.hierarchy.l2);
            assert_eq!(
                space.predictor_configs()[p.predictor_index],
                p.machine.predictor
            );
        }
    }

    #[test]
    fn error_display_nonempty() {
        assert!(!ConfigError::BadDepth.to_string().is_empty());
        assert!(!ConfigError::BadWidth { width: 0 }.to_string().is_empty());
        assert!(!ConfigError::EmptyAxis { axis: "widths" }
            .to_string()
            .is_empty());
        assert!(!ConfigError::DuplicateCandidate {
            axis: "L2",
            label: "L2-512K-8w".into()
        }
        .to_string()
        .is_empty());
    }

    #[test]
    fn empty_axes_are_rejected() {
        let base = MachineConfig::default_config();
        assert_eq!(
            DesignSpace::new(base.clone()).with_widths(vec![]),
            Err(ConfigError::EmptyAxis { axis: "widths" })
        );
        assert_eq!(
            DesignSpace::new(base.clone()).with_depth_freq(vec![]),
            Err(ConfigError::EmptyAxis {
                axis: "depth/frequency"
            })
        );
        assert_eq!(
            DesignSpace::new(base.clone()).with_l2s(vec![]),
            Err(ConfigError::EmptyAxis { axis: "L2" })
        );
        assert_eq!(
            DesignSpace::new(base).with_predictors(vec![]),
            Err(ConfigError::EmptyAxis { axis: "predictor" })
        );
    }

    #[test]
    fn duplicate_candidates_are_rejected() {
        use mim_bpred::PredictorConfig;
        use mim_cache::CacheConfig;
        let base = MachineConfig::default_config();

        let err = DesignSpace::new(base.clone())
            .with_widths(vec![1, 2, 2])
            .expect_err("duplicate width");
        assert_eq!(
            err,
            ConfigError::DuplicateCandidate {
                axis: "widths",
                label: "2".into()
            }
        );

        let l2 = CacheConfig::new("L2-512K-8w", 512 * 1024, 8, 64).expect("valid L2");
        let err = DesignSpace::new(base.clone())
            .with_l2s(vec![l2.clone(), l2])
            .expect_err("duplicate L2");
        assert!(matches!(
            err,
            ConfigError::DuplicateCandidate { axis: "L2", .. }
        ));

        let err = DesignSpace::new(base.clone())
            .with_predictors(vec![
                PredictorConfig::gshare_1k(),
                PredictorConfig::gshare_1k(),
            ])
            .expect_err("duplicate predictor");
        assert!(matches!(
            err,
            ConfigError::DuplicateCandidate {
                axis: "predictor",
                ..
            }
        ));

        let err = DesignSpace::new(base)
            .with_depth_freq(vec![(2, 0.6), (2, 0.6)])
            .expect_err("duplicate depth/frequency pair");
        assert!(matches!(
            err,
            ConfigError::DuplicateCandidate {
                axis: "depth/frequency",
                ..
            }
        ));
    }

    #[test]
    fn point_at_matches_enumeration_order() {
        let space = DesignSpace::paper_table2();
        assert_eq!(space.axis_lens(), [3, 4, 8, 2]);
        for (index, expected) in space.points().enumerate() {
            let point = space.point_at(index).expect("in range");
            assert_eq!(point, expected);
            let coords = space.coords_of(index).expect("in range");
            assert_eq!(space.index_of(coords), Some(index));
        }
        assert!(space.point_at(space.len()).is_none());
        assert!(space.coords_of(space.len()).is_none());
        assert!(space.index_of([3, 0, 0, 0]).is_none());
    }
}
