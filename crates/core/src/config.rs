//! Machine parameters and the Table 2 design space.

use std::error::Error;
use std::fmt;

use mim_bpred::PredictorConfig;
use mim_cache::{CacheConfig, HierarchyConfig};
use serde::{Deserialize, Serialize};

/// Error produced by [`MachineConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// Pipeline width outside the supported range.
    BadWidth {
        /// Offending width.
        width: u32,
    },
    /// Front-end depth of zero.
    BadDepth,
    /// A latency parameter was zero or non-finite.
    BadLatency {
        /// Which latency was invalid.
        field: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadWidth { width } => {
                write!(f, "pipeline width must be in 1..=8, got {width}")
            }
            ConfigError::BadDepth => write!(f, "front-end depth must be at least 1"),
            ConfigError::BadLatency { field } => {
                write!(f, "latency parameter {field} must be positive and finite")
            }
        }
    }
}

impl Error for ConfigError {}

/// Complete description of one superscalar in-order design point.
///
/// This bundles every machine parameter the model (and the detailed
/// pipeline simulator) needs: pipeline geometry, functional-unit and
/// memory latencies, the cache hierarchy, and the branch predictor.
/// Time-domain latencies (`l2_hit_ns`, `mem_ns`) are converted to cycles
/// with the configured clock frequency, so frequency points in the design
/// space change cycle-domain behaviour exactly as in the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Pipeline width `W` (instructions per stage), 1–8.
    pub width: u32,
    /// Depth `D` of the front-end pipeline (fetch..decode stages).
    /// The paper's 5/7/9-stage machines have `D` = 2/4/6 (the back end is
    /// always execute + memory + writeback).
    pub frontend_depth: u32,
    /// Clock frequency in GHz.
    pub frequency_ghz: f64,
    /// Execute latency of integer multiply, in cycles (non-pipelined).
    pub mul_latency: u32,
    /// Execute latency of integer divide/remainder, in cycles.
    pub div_latency: u32,
    /// L1 data-cache hit latency in cycles (1 = result forwards from MEM).
    pub l1_hit_cycles: u32,
    /// Unified L2 hit latency in nanoseconds (10 ns in Table 2).
    pub l2_hit_ns: f64,
    /// Main-memory access latency in nanoseconds.
    pub mem_ns: f64,
    /// TLB miss (page-walk) latency in cycles.
    pub tlb_walk_cycles: u32,
    /// Cache hierarchy geometry.
    pub hierarchy: HierarchyConfig,
    /// Branch predictor configuration.
    pub predictor: PredictorConfig,
}

impl MachineConfig {
    /// The paper's default configuration (Table 2, "Default" column):
    /// 4-wide, 9-stage (front-end depth 6), 1 GHz, 32 KB 4-way L1s,
    /// 512 KB 8-way L2 at 10 ns, and the 1 KB gshare predictor.
    pub fn default_config() -> MachineConfig {
        MachineConfig {
            width: 4,
            frontend_depth: 6,
            frequency_ghz: 1.0,
            mul_latency: 4,
            div_latency: 20,
            l1_hit_cycles: 1,
            l2_hit_ns: 10.0,
            mem_ns: 60.0,
            tlb_walk_cycles: 30,
            hierarchy: HierarchyConfig::default_hierarchy(),
            predictor: PredictorConfig::gshare_1k(),
        }
    }

    /// Checks all parameters, returning the first violation.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the width is outside 1–8, the front-end
    /// depth is zero, or any latency is non-positive/non-finite.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.width == 0 || self.width > 8 {
            return Err(ConfigError::BadWidth { width: self.width });
        }
        if self.frontend_depth == 0 {
            return Err(ConfigError::BadDepth);
        }
        for (field, ok) in [
            (
                "frequency_ghz",
                self.frequency_ghz > 0.0 && self.frequency_ghz.is_finite(),
            ),
            ("mul_latency", self.mul_latency >= 1),
            ("div_latency", self.div_latency >= 1),
            ("l1_hit_cycles", self.l1_hit_cycles >= 1),
            (
                "l2_hit_ns",
                self.l2_hit_ns > 0.0 && self.l2_hit_ns.is_finite(),
            ),
            ("mem_ns", self.mem_ns > 0.0 && self.mem_ns.is_finite()),
            ("tlb_walk_cycles", self.tlb_walk_cycles >= 1),
        ] {
            if !ok {
                return Err(ConfigError::BadLatency { field });
            }
        }
        Ok(())
    }

    /// Total pipeline depth (front end + execute + memory + writeback).
    pub fn pipeline_stages(&self) -> u32 {
        self.frontend_depth + 3
    }

    /// L2 hit latency in cycles at the configured frequency.
    pub fn l2_hit_cycles(&self) -> u32 {
        (self.l2_hit_ns * self.frequency_ghz).round().max(1.0) as u32
    }

    /// Main-memory latency in cycles at the configured frequency.
    pub fn mem_cycles(&self) -> u32 {
        (self.mem_ns * self.frequency_ghz).round().max(1.0) as u32
    }

    /// Clock period in seconds.
    pub fn cycle_seconds(&self) -> f64 {
        1e-9 / self.frequency_ghz
    }

    /// Short identifier, e.g. `"s9@1.0GHz-w4-L2-512K-8w-gshare-12b"`.
    pub fn id(&self) -> String {
        format!(
            "s{}@{:.1}GHz-w{}-{}-{}",
            self.pipeline_stages(),
            self.frequency_ghz,
            self.width,
            self.hierarchy.l2.name(),
            self.predictor.name(),
        )
    }
}

impl fmt::Display for MachineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (mul {}c, div {}c, L2 {}c, mem {}c, TLB walk {}c)",
            self.id(),
            self.mul_latency,
            self.div_latency,
            self.l2_hit_cycles(),
            self.mem_cycles(),
            self.tlb_walk_cycles,
        )
    }
}

/// One enumerated point of a [`DesignSpace`] with its position indices,
/// used to look up per-configuration profile statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// The full machine configuration.
    pub machine: MachineConfig,
    /// Index into [`DesignSpace::l2_configs`] for this point's L2.
    pub l2_index: usize,
    /// Index into [`DesignSpace::predictor_configs`] for this point's
    /// predictor.
    pub predictor_index: usize,
}

/// The paper's architecture design space (Table 2).
///
/// Three (depth, frequency) pairs x four widths x eight L2 geometries x two
/// branch predictors = 192 design points. The space is deliberately
/// factored so that the profiler can collect statistics for *all* L2 and
/// predictor candidates in a single pass ([`l2_configs`]/
/// [`predictor_configs`]), after which the model evaluates every point
/// instantly.
///
/// [`l2_configs`]: DesignSpace::l2_configs
/// [`predictor_configs`]: DesignSpace::predictor_configs
///
/// # Example
///
/// ```
/// use mim_core::DesignSpace;
///
/// let space = DesignSpace::paper_table2();
/// assert_eq!(space.points().count(), 192);
/// assert_eq!(space.l2_configs().len(), 8);
/// assert_eq!(space.predictor_configs().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DesignSpace {
    base: MachineConfig,
    depth_freq: Vec<(u32, f64)>,
    widths: Vec<u32>,
    l2s: Vec<CacheConfig>,
    predictors: Vec<PredictorConfig>,
}

impl DesignSpace {
    /// A degenerate one-point space containing exactly `base`.
    ///
    /// Grow it with the `with_*` builder methods to sweep individual axes,
    /// e.g. a width sweep at the default machine:
    ///
    /// ```
    /// use mim_core::{DesignSpace, MachineConfig};
    ///
    /// let space = DesignSpace::new(MachineConfig::default_config())
    ///     .with_widths(vec![1, 2, 3, 4]);
    /// assert_eq!(space.len(), 4);
    /// ```
    pub fn new(base: MachineConfig) -> DesignSpace {
        DesignSpace {
            depth_freq: vec![(base.frontend_depth, base.frequency_ghz)],
            widths: vec![base.width],
            l2s: vec![base.hierarchy.l2.clone()],
            predictors: vec![base.predictor.clone()],
            base,
        }
    }

    /// Replaces the pipeline-width axis.
    pub fn with_widths(mut self, widths: Vec<u32>) -> DesignSpace {
        assert!(!widths.is_empty(), "width axis must be non-empty");
        self.widths = widths;
        self
    }

    /// Replaces the paired (front-end depth, frequency GHz) axis.
    pub fn with_depth_freq(mut self, depth_freq: Vec<(u32, f64)>) -> DesignSpace {
        assert!(
            !depth_freq.is_empty(),
            "depth/frequency axis must be non-empty"
        );
        self.depth_freq = depth_freq;
        self
    }

    /// Replaces the L2 cache candidate axis.
    pub fn with_l2s(mut self, l2s: Vec<CacheConfig>) -> DesignSpace {
        assert!(!l2s.is_empty(), "L2 axis must be non-empty");
        self.l2s = l2s;
        self
    }

    /// Replaces the branch-predictor candidate axis.
    pub fn with_predictors(mut self, predictors: Vec<PredictorConfig>) -> DesignSpace {
        assert!(!predictors.is_empty(), "predictor axis must be non-empty");
        self.predictors = predictors;
        self
    }

    /// The base machine the axes are applied to (fixes all parameters the
    /// space does not sweep, including the L1/TLB geometry profilers use).
    pub fn base(&self) -> &MachineConfig {
        &self.base
    }

    /// The exact space of Table 2: pipeline depth 5/7/9 stages paired with
    /// 600/800/1000 MHz, width 1–4, L2 in {128 KB, 256 KB, 512 KB, 1 MB} x
    /// {8, 16}-way, and the two branch predictors.
    pub fn paper_table2() -> DesignSpace {
        let l2s = [128u64, 256, 512, 1024]
            .iter()
            .flat_map(|&kb| {
                [8u32, 16].iter().map(move |&ways| {
                    CacheConfig::new(format!("L2-{kb}K-{ways}w"), kb * 1024, ways, 64)
                        .expect("valid L2 geometry")
                })
            })
            .collect();
        DesignSpace {
            base: MachineConfig::default_config(),
            depth_freq: vec![(2, 0.6), (4, 0.8), (6, 1.0)],
            widths: vec![1, 2, 3, 4],
            l2s,
            predictors: vec![PredictorConfig::gshare_1k(), PredictorConfig::hybrid_3_5k()],
        }
    }

    /// The L2 cache candidates (the axis the single-pass cache sweep
    /// covers).
    pub fn l2_configs(&self) -> &[CacheConfig] {
        &self.l2s
    }

    /// The branch-predictor candidates (the axis the multi-predictor
    /// profiler covers).
    pub fn predictor_configs(&self) -> &[PredictorConfig] {
        &self.predictors
    }

    /// Number of design points.
    pub fn len(&self) -> usize {
        self.depth_freq.len() * self.widths.len() * self.l2s.len() * self.predictors.len()
    }

    /// True if the space is degenerate (no points).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerates every design point.
    pub fn points(&self) -> impl Iterator<Item = DesignPoint> + '_ {
        self.depth_freq.iter().flat_map(move |&(depth, freq)| {
            self.widths.iter().flat_map(move |&width| {
                self.l2s.iter().enumerate().flat_map(move |(l2_index, l2)| {
                    self.predictors
                        .iter()
                        .enumerate()
                        .map(move |(predictor_index, pred)| {
                            let mut machine = self.base.clone();
                            machine.frontend_depth = depth;
                            machine.frequency_ghz = freq;
                            machine.width = width;
                            machine.hierarchy = machine.hierarchy.clone().with_l2(l2.clone());
                            machine.predictor = pred.clone();
                            DesignPoint {
                                machine,
                                l2_index,
                                predictor_index,
                            }
                        })
                })
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_matches_table2() {
        let c = MachineConfig::default_config();
        c.validate().unwrap();
        assert_eq!(c.width, 4);
        assert_eq!(c.pipeline_stages(), 9);
        assert_eq!(c.l2_hit_cycles(), 10); // 10ns @ 1GHz
        assert_eq!(c.mem_cycles(), 60);
        assert_eq!(c.hierarchy.l2.size_bytes(), 512 * 1024);
    }

    #[test]
    fn frequency_scales_cycle_latencies() {
        let mut c = MachineConfig::default_config();
        c.frequency_ghz = 0.6;
        assert_eq!(c.l2_hit_cycles(), 6);
        assert_eq!(c.mem_cycles(), 36);
        assert!((c.cycle_seconds() - 1.0 / 0.6e9).abs() < 1e-20);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let mut c = MachineConfig::default_config();
        c.width = 0;
        assert!(matches!(c.validate(), Err(ConfigError::BadWidth { .. })));
        c.width = 9;
        assert!(matches!(c.validate(), Err(ConfigError::BadWidth { .. })));
        let mut c = MachineConfig::default_config();
        c.frontend_depth = 0;
        assert_eq!(c.validate(), Err(ConfigError::BadDepth));
        let mut c = MachineConfig::default_config();
        c.mem_ns = f64::NAN;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::BadLatency { field: "mem_ns" })
        ));
    }

    #[test]
    fn table2_space_has_192_points() {
        let space = DesignSpace::paper_table2();
        assert_eq!(space.len(), 192);
        let points: Vec<DesignPoint> = space.points().collect();
        assert_eq!(points.len(), 192);
        for p in &points {
            p.machine.validate().unwrap();
        }
        // All ids unique.
        let mut ids: Vec<String> = points.iter().map(|p| p.machine.id()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 192);
    }

    #[test]
    fn depth_and_frequency_are_paired() {
        let space = DesignSpace::paper_table2();
        for p in space.points() {
            match p.machine.pipeline_stages() {
                5 => assert!((p.machine.frequency_ghz - 0.6).abs() < 1e-12),
                7 => assert!((p.machine.frequency_ghz - 0.8).abs() < 1e-12),
                9 => assert!((p.machine.frequency_ghz - 1.0).abs() < 1e-12),
                other => panic!("unexpected stage count {other}"),
            }
        }
    }

    #[test]
    fn indices_point_into_config_lists() {
        let space = DesignSpace::paper_table2();
        for p in space.points() {
            assert_eq!(space.l2_configs()[p.l2_index], p.machine.hierarchy.l2);
            assert_eq!(
                space.predictor_configs()[p.predictor_index],
                p.machine.predictor
            );
        }
    }

    #[test]
    fn error_display_nonempty() {
        assert!(!ConfigError::BadDepth.to_string().is_empty());
        assert!(!ConfigError::BadWidth { width: 0 }.to_string().is_empty());
    }
}
