//! Model inputs: the program and program–machine statistics of Table 1.

use mim_cache::MissCounts;
use serde::{Deserialize, Serialize};

/// Maximum dependency distance tracked by profiles.
///
/// The model itself needs distances up to `2W - 1` (paper §3.5.3); profiles
/// record up to this bound so that one profile serves any width up to
/// `MAX_DEP_DISTANCE / 2`.
pub const MAX_DEP_DISTANCE: usize = 64;

/// Dynamic instruction mix: the `N_i` counts of Table 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstMix {
    /// Unit-latency integer ALU instructions (including `li`, `nop`).
    pub alu: u64,
    /// Multiply instructions.
    pub mul: u64,
    /// Divide/remainder instructions.
    pub div: u64,
    /// Loads.
    pub load: u64,
    /// Stores.
    pub store: u64,
    /// Conditional branches.
    pub cond_branch: u64,
    /// Unconditional direct jumps.
    pub jump: u64,
}

impl InstMix {
    /// Total dynamic instruction count `N`.
    pub fn total(&self) -> u64 {
        self.alu + self.mul + self.div + self.load + self.store + self.cond_branch + self.jump
    }

    /// Fraction of instructions that are loads or stores.
    pub fn memory_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.load + self.store) as f64 / self.total() as f64
        }
    }
}

/// Histogram of dependency distances: `at(d)` counts consumer instructions
/// whose *nearest* producer (of the histogram's class) is `d` dynamic
/// instructions earlier.
///
/// Distance 1 means back-to-back producer/consumer. Distances above
/// [`MAX_DEP_DISTANCE`] are not recorded — the model never reads them
/// (its sums stop at `2W - 1`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepHistogram {
    counts: Vec<u64>,
}

impl DepHistogram {
    /// Creates an empty histogram.
    pub fn new() -> DepHistogram {
        DepHistogram {
            counts: vec![0; MAX_DEP_DISTANCE],
        }
    }

    /// Records a dependency at `distance` (ignored if 0 or beyond
    /// [`MAX_DEP_DISTANCE`]).
    #[inline]
    pub fn record(&mut self, distance: usize) {
        if (1..=MAX_DEP_DISTANCE).contains(&distance) {
            if self.counts.len() < MAX_DEP_DISTANCE {
                self.counts.resize(MAX_DEP_DISTANCE, 0);
            }
            self.counts[distance - 1] += 1;
        }
    }

    /// Number of dependencies recorded at `distance` (0 if out of range).
    #[inline]
    pub fn at(&self, distance: usize) -> u64 {
        if distance >= 1 && distance <= self.counts.len() {
            self.counts[distance - 1]
        } else {
            0
        }
    }

    /// Total recorded dependencies.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean recorded dependency distance (0.0 for an empty histogram) —
    /// the scalar ILP proxy workload signatures use: short means tight
    /// serial chains, long means independent work in between.
    pub fn mean_distance(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as u64 + 1) * c)
            .sum();
        weighted as f64 / total as f64
    }
}

impl FromIterator<usize> for DepHistogram {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> DepHistogram {
        let mut h = DepHistogram::new();
        for d in iter {
            h.record(d);
        }
        h
    }
}

/// Branch-prediction statistics for the *selected* predictor configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchStats {
    /// Conditional branches executed.
    pub branches: u64,
    /// Mispredicted conditional branches.
    pub mispredicts: u64,
    /// Correctly predicted branches whose prediction was taken (each costs
    /// one fetch bubble — the taken-branch hit penalty, §3.3).
    pub taken_correct: u64,
}

/// Everything the mechanistic model needs to predict performance of one
/// program on one machine configuration (paper Table 1).
///
/// Program statistics (`mix`, `deps_*`) are machine-independent and
/// collected once per binary. Program–machine statistics (`misses`,
/// `branch`) are selected from the profiler's single-pass sweeps for the
/// design point under evaluation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ModelInputs {
    /// Workload name (for reports).
    pub name: String,
    /// Dynamic instruction count `N`.
    pub num_insts: u64,
    /// Instruction mix (`N_i`).
    pub mix: InstMix,
    /// Dependencies on unit-latency producers (`deps_unit(d)`).
    pub deps_unit: DepHistogram,
    /// Dependencies on long-latency producers excluding loads
    /// (`deps_LL(d)`).
    pub deps_ll: DepHistogram,
    /// Dependencies on load producers (`deps_ld(d)`).
    pub deps_load: DepHistogram,
    /// Cache/TLB miss counts for the selected hierarchy (`misses_i`).
    pub misses: MissCounts,
    /// Branch statistics for the selected predictor.
    pub branch: BranchStats,
}

impl ModelInputs {
    /// A minimal synthetic profile: `n` unit-latency ALU instructions with
    /// no dependencies, misses, or branches. Useful for tests and doc
    /// examples — the model must predict exactly `N/W` cycles for it.
    pub fn synthetic(name: impl Into<String>, n: u64) -> ModelInputs {
        ModelInputs {
            name: name.into(),
            num_insts: n,
            mix: InstMix {
                alu: n,
                ..InstMix::default()
            },
            ..ModelInputs::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_total_sums_all_classes() {
        let mix = InstMix {
            alu: 10,
            mul: 1,
            div: 2,
            load: 3,
            store: 4,
            cond_branch: 5,
            jump: 6,
        };
        assert_eq!(mix.total(), 31);
        assert!((mix.memory_fraction() - 7.0 / 31.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_records_in_range_only() {
        let mut h = DepHistogram::new();
        h.record(0); // ignored
        h.record(1);
        h.record(1);
        h.record(MAX_DEP_DISTANCE);
        h.record(MAX_DEP_DISTANCE + 1); // ignored
        assert_eq!(h.at(1), 2);
        assert_eq!(h.at(MAX_DEP_DISTANCE), 1);
        assert_eq!(h.at(0), 0);
        assert_eq!(h.at(MAX_DEP_DISTANCE + 5), 0);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn mean_distance_weights_by_count() {
        let h: DepHistogram = [1usize, 3, 3, 5].into_iter().collect();
        assert!((h.mean_distance() - 3.0).abs() < 1e-12);
        assert_eq!(DepHistogram::new().mean_distance(), 0.0);
    }

    #[test]
    fn histogram_from_iterator() {
        let h: DepHistogram = [1usize, 2, 2, 3].into_iter().collect();
        assert_eq!(h.at(2), 2);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn default_histogram_works_without_explicit_new() {
        // `Default` yields an empty counts vec; `record` must self-heal.
        let mut h = DepHistogram::default();
        h.record(5);
        assert_eq!(h.at(5), 1);
    }

    #[test]
    fn synthetic_profile_shape() {
        let p = ModelInputs::synthetic("s", 1000);
        assert_eq!(p.num_insts, 1000);
        assert_eq!(p.mix.alu, 1000);
        assert_eq!(p.deps_unit.total(), 0);
        assert_eq!(p.branch.mispredicts, 0);
    }
}
