//! Persistent, sharded, content-addressed storage for recorded traces and
//! sweep profiles.
//!
//! A [`DiskStore`] is the durable half of a [`WorkloadStore`]: every
//! artifact is keyed by the **content fingerprint of the program it was
//! computed from** (plus the recording limit, and — for profiles — a
//! fingerprint of the sweep's candidate lists), so a long-running server
//! that is restarted, or two servers pointed at the same directory, reuse
//! each other's functional executions instead of re-running anything.
//! Workload *names* never key anything on disk: renamed copies of the
//! same program hit the same entries.
//!
//! Layout: `<root>/<shard>/<key>.trace|.profile`, where `shard` is the low
//! byte of the key (256 subdirectories, so no directory grows large) and
//! `key` is the 16-hex-digit content key. Every file opens with a
//! [`MAGIC`]/version header followed by the program fingerprint and a
//! length-prefixed payload; decoding failures surface as typed
//! [`StoreError`]s, never panics. Writes go to a temporary file in the
//! shard directory and are renamed into place, so a crash mid-write can
//! leave garbage temporaries but never a truncated entry under a live key.
//!
//! [`WorkloadStore`]: crate::WorkloadStore

use std::error::Error;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use mim_bpred::PredictorConfig;
use mim_cache::{CacheConfig, HierarchyConfig};
use mim_isa::Program;
use mim_obs::{clock, Counter, Histogram, Registry};
use mim_profile::WorkloadProfile;
use mim_trace::{StreamingReplay, Trace};

/// Magic bytes opening every store file.
const MAGIC: &[u8; 8] = b"MIMSTORE";

/// On-disk format version. Bumping it invalidates (ignores) older files.
const VERSION: u32 = 1;

/// Artifact kind tag: a serialized [`Trace`].
const KIND_TRACE: u8 = 1;

/// Artifact kind tag: a JSON-serialized [`WorkloadProfile`].
const KIND_PROFILE: u8 = 2;

/// Typed error produced by [`DiskStore`] reads and writes.
///
/// Corrupt or mismatched entries are *errors*, not panics: callers like
/// [`WorkloadStore`](crate::WorkloadStore) treat them as cache misses and
/// recompute, so a damaged store directory degrades to cold-cache
/// behavior instead of taking the server down.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// An underlying file-system operation failed.
    Io {
        /// File being accessed.
        path: PathBuf,
        /// The I/O error text.
        message: String,
    },
    /// The file ended before the declared payload (e.g. a crash while
    /// writing with a non-atomic tool, or manual truncation).
    Truncated {
        /// Offending file.
        path: PathBuf,
    },
    /// The file's version header does not match [`DiskStore::VERSION`].
    Version {
        /// Offending file.
        path: PathBuf,
        /// Version found in the header.
        found: u32,
    },
    /// The entry was written for a different program than the one
    /// requested (a key collision or a tampered file).
    FingerprintMismatch {
        /// Offending file.
        path: PathBuf,
        /// Fingerprint of the program the caller asked about.
        expected: u64,
        /// Fingerprint recorded in the file.
        found: u64,
    },
    /// The header or payload failed structural validation.
    Corrupt {
        /// Offending file.
        path: PathBuf,
        /// What failed to decode.
        message: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, message } => {
                write!(f, "store I/O on {}: {message}", path.display())
            }
            StoreError::Truncated { path } => {
                write!(f, "store file {} is truncated", path.display())
            }
            StoreError::Version { path, found } => write!(
                f,
                "store file {} has version {found} (expected {VERSION})",
                path.display()
            ),
            StoreError::FingerprintMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "store file {} was written for program {found:#018x}, \
                 not {expected:#018x}",
                path.display()
            ),
            StoreError::Corrupt { path, message } => {
                write!(f, "store file {} is corrupt: {message}", path.display())
            }
        }
    }
}

impl Error for StoreError {}

impl StoreError {
    fn io(path: &Path, error: &io::Error) -> StoreError {
        StoreError::Io {
            path: path.to_path_buf(),
            message: error.to_string(),
        }
    }
}

/// Stable FNV-1a over little-endian words, matching the trace layer's
/// fingerprint arithmetic so keys are identical across builds and
/// platforms.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Stable FNV-1a of `bytes`, shared with the cell memo so every content
/// key in the runner uses the same arithmetic.
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.bytes(bytes);
    h.finish()
}

/// Content key of a trace: the program fingerprint plus the recording's
/// instruction limit (`u64::MAX` encodes "run to completion").
fn trace_key(program_fingerprint: u64, limit: Option<u64>) -> u64 {
    let mut h = Fnv::new();
    h.u64(program_fingerprint);
    h.u64(limit.unwrap_or(u64::MAX));
    h.finish()
}

/// Content key of a profile: the trace key extended with a fingerprint of
/// the sweep's candidate lists (base hierarchy, every L2, every
/// predictor), since profiles are only reusable for the exact sweep that
/// produced them.
fn profile_key(
    program_fingerprint: u64,
    limit: Option<u64>,
    hierarchy: &HierarchyConfig,
    l2s: &[CacheConfig],
    predictors: &[PredictorConfig],
) -> u64 {
    let sweep = serde_json::to_string(&(hierarchy, &l2s.to_vec(), &predictors.to_vec()))
        .expect("sweep config serialization is infallible");
    let mut h = Fnv::new();
    h.u64(trace_key(program_fingerprint, limit));
    h.bytes(sweep.as_bytes());
    h.finish()
}

/// A persistent, sharded, content-addressed store of recorded traces and
/// sweep profiles.
///
/// Thread-safe (all methods take `&self`); usually owned by a
/// [`WorkloadStore`](crate::WorkloadStore) via
/// [`WorkloadStore::persistent`](crate::WorkloadStore::persistent) rather
/// than used directly.
///
/// # Example
///
/// ```
/// use mim_runner::DiskStore;
/// use mim_trace::Trace;
/// use mim_workloads::{mibench, WorkloadSize};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dir = std::env::temp_dir().join("mim-disk-store-doc");
/// let store = DiskStore::open(&dir)?;
/// let program = mibench::sha().program(WorkloadSize::Tiny);
/// let trace = Trace::record(&program, None)?;
/// store.put_trace(&program, None, &trace)?;
/// let back = store.get_trace(&program, None)?.expect("just written");
/// assert_eq!(back, trace);
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
    /// Bytes written by `put_*` since this handle was opened
    /// (`store.disk.bytes_written` in the owning registry).
    bytes_written: Counter,
    /// `get_*` wall time in nanoseconds (`store.disk.get_ns`).
    get_ns: Histogram,
    /// `put_*` wall time in nanoseconds (`store.disk.put_ns`).
    put_ns: Histogram,
    /// Monotonic discriminator for temporary file names, so concurrent
    /// writers in one process never collide on the same temp path.
    tmp_seq: AtomicU64,
}

impl DiskStore {
    /// On-disk format version (exposed for tests and migration tooling).
    pub const VERSION: u32 = VERSION;

    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the root directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<DiskStore, StoreError> {
        DiskStore::open_instrumented(root, &Registry::new())
    }

    /// [`open`](DiskStore::open), with the handle's byte counter and
    /// read/write latency histograms created in `registry` (as
    /// `store.disk.bytes_written`, `store.disk.get_ns`,
    /// `store.disk.put_ns`) instead of a private throwaway registry —
    /// this is how a [`WorkloadStore`](crate::WorkloadStore) shares one
    /// registry across its memory and disk tiers.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the root directory cannot be created.
    pub fn open_instrumented(
        root: impl Into<PathBuf>,
        registry: &Registry,
    ) -> Result<DiskStore, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| StoreError::io(&root, &e))?;
        Ok(DiskStore {
            root,
            bytes_written: registry.counter("store.disk.bytes_written"),
            get_ns: registry.histogram("store.disk.get_ns"),
            put_ns: registry.histogram("store.disk.put_ns"),
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Bytes persisted through this handle (headers + payloads).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.get()
    }

    /// Path of the entry for `key`: `<root>/<low byte>/<key>.<ext>`.
    fn entry_path(&self, key: u64, ext: &str) -> PathBuf {
        self.root
            .join(format!("{:02x}", key & 0xff))
            .join(format!("{key:016x}.{ext}"))
    }

    /// Looks up the recorded trace for `program` (at `limit`), returning
    /// `Ok(None)` when absent.
    ///
    /// # Errors
    ///
    /// Returns a typed [`StoreError`] for unreadable, truncated,
    /// wrong-version, mismatched, or corrupt entries.
    pub fn get_trace(
        &self,
        program: &Program,
        limit: Option<u64>,
    ) -> Result<Option<Trace>, StoreError> {
        let started = clock();
        let fingerprint = Trace::fingerprint_of(program);
        let path = self.entry_path(trace_key(fingerprint, limit), "trace");
        let Some(payload) = read_entry(&path, KIND_TRACE, fingerprint)? else {
            self.get_ns.observe_since(started);
            return Ok(None);
        };
        let trace = Trace::from_bytes(&payload).map_err(|e| StoreError::Corrupt {
            path: path.clone(),
            message: e.to_string(),
        })?;
        if !trace.matches(program) {
            // The header fingerprint matched but the payload disagrees —
            // the file was assembled from mismatched parts.
            return Err(StoreError::Corrupt {
                path,
                message: "payload trace does not match the requested program".into(),
            });
        }
        self.get_ns.observe_since(started);
        Ok(Some(trace))
    }

    /// Persists the recorded trace for `program` (at `limit`).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the entry cannot be written.
    pub fn put_trace(
        &self,
        program: &Program,
        limit: Option<u64>,
        trace: &Trace,
    ) -> Result<(), StoreError> {
        let fingerprint = Trace::fingerprint_of(program);
        let path = self.entry_path(trace_key(fingerprint, limit), "trace");
        self.write_entry(&path, KIND_TRACE, fingerprint, &trace.to_bytes())
    }

    /// Opens the recorded trace for `program` (at `limit`) as an
    /// incremental [`StreamingReplay`] over the entry file, returning
    /// `Ok(None)` when absent.
    ///
    /// Unlike [`get_trace`](DiskStore::get_trace), the payload is never
    /// materialized: only the 29-byte entry header and the trace header
    /// are read eagerly, and replay memory stays bounded by the stream's
    /// fixed chunk buffers no matter how long the trace is — the read
    /// path sampled simulation wants for beyond-memory streams.
    ///
    /// # Errors
    ///
    /// Returns a typed [`StoreError`] for unreadable, truncated,
    /// wrong-version, mismatched, or corrupt entries.
    pub fn stream_trace<'p>(
        &self,
        program: &'p Program,
        limit: Option<u64>,
    ) -> Result<Option<StreamingReplay<'p, fs::File>>, StoreError> {
        let started = clock();
        let fingerprint = Trace::fingerprint_of(program);
        let path = self.entry_path(trace_key(fingerprint, limit), "trace");
        let mut file = match fs::File::open(&path) {
            Ok(file) => file,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::io(&path, &e)),
        };
        let payload_len = validate_entry_header(&mut file, &path, KIND_TRACE, fingerprint)?;
        let total = file
            .metadata()
            .map_err(|e| StoreError::io(&path, &e))?
            .len();
        if total < 29 + payload_len {
            return Err(StoreError::Truncated { path });
        }
        if total > 29 + payload_len {
            return Err(StoreError::Corrupt {
                path,
                message: "trailing bytes after payload".into(),
            });
        }
        // The streaming decoder works off absolute seek positions, so the
        // 29-byte entry header in front of the trace bytes is transparent.
        let replay = StreamingReplay::new(file, program).map_err(|e| StoreError::Corrupt {
            path,
            message: e.to_string(),
        })?;
        self.get_ns.observe_since(started);
        Ok(Some(replay))
    }

    /// Looks up the sweep profile for `program` under the given candidate
    /// lists, returning `Ok(None)` when absent.
    ///
    /// # Errors
    ///
    /// Returns a typed [`StoreError`] for unreadable, truncated,
    /// wrong-version, mismatched, or corrupt entries.
    pub fn get_profile(
        &self,
        program: &Program,
        limit: Option<u64>,
        hierarchy: &HierarchyConfig,
        l2s: &[CacheConfig],
        predictors: &[PredictorConfig],
    ) -> Result<Option<WorkloadProfile>, StoreError> {
        let started = clock();
        let fingerprint = Trace::fingerprint_of(program);
        let key = profile_key(fingerprint, limit, hierarchy, l2s, predictors);
        let path = self.entry_path(key, "profile");
        let Some(payload) = read_entry(&path, KIND_PROFILE, fingerprint)? else {
            self.get_ns.observe_since(started);
            return Ok(None);
        };
        let text = String::from_utf8(payload).map_err(|_| StoreError::Corrupt {
            path: path.clone(),
            message: "profile payload is not UTF-8".into(),
        })?;
        let profile = serde_json::from_str(&text).map_err(|e| StoreError::Corrupt {
            path,
            message: e.to_string(),
        })?;
        self.get_ns.observe_since(started);
        Ok(Some(profile))
    }

    /// Persists the sweep profile for `program` under the given candidate
    /// lists.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the entry cannot be written.
    pub fn put_profile(
        &self,
        program: &Program,
        limit: Option<u64>,
        hierarchy: &HierarchyConfig,
        l2s: &[CacheConfig],
        predictors: &[PredictorConfig],
        profile: &WorkloadProfile,
    ) -> Result<(), StoreError> {
        let fingerprint = Trace::fingerprint_of(program);
        let key = profile_key(fingerprint, limit, hierarchy, l2s, predictors);
        let path = self.entry_path(key, "profile");
        let json = serde_json::to_string(profile).expect("profile serialization is infallible");
        self.write_entry(&path, KIND_PROFILE, fingerprint, json.as_bytes())
    }

    /// Writes header + payload to a shard-local temporary file, then
    /// renames it over the final path — readers see either the old entry
    /// or the complete new one, never a partial write.
    fn write_entry(
        &self,
        path: &Path,
        kind: u8,
        fingerprint: u64,
        payload: &[u8],
    ) -> Result<(), StoreError> {
        let started = clock();
        let shard = path.parent().expect("entry paths have a shard directory");
        fs::create_dir_all(shard).map_err(|e| StoreError::io(shard, &e))?;
        let mut bytes = Vec::with_capacity(29 + payload.len());
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.push(kind);
        bytes.extend_from_slice(&fingerprint.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(payload);
        let tmp = shard.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed),
        ));
        fs::write(&tmp, &bytes).map_err(|e| StoreError::io(&tmp, &e))?;
        fs::rename(&tmp, path).map_err(|e| {
            fs::remove_file(&tmp).ok();
            StoreError::io(path, &e)
        })?;
        self.bytes_written.add(bytes.len() as u64);
        self.put_ns.observe_since(started);
        Ok(())
    }
}

/// Reads and validates the 29-byte entry header from an open reader,
/// leaving it positioned at the payload. Returns the payload length.
fn validate_entry_header(
    reader: &mut impl io::Read,
    path: &Path,
    kind: u8,
    fingerprint: u64,
) -> Result<u64, StoreError> {
    let mut header = [0u8; 29];
    reader
        .read_exact(&mut header)
        .map_err(|_| StoreError::Truncated {
            path: path.to_path_buf(),
        })?;
    let corrupt = |message: &str| StoreError::Corrupt {
        path: path.to_path_buf(),
        message: message.into(),
    };
    if &header[..8] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(StoreError::Version {
            path: path.to_path_buf(),
            found: version,
        });
    }
    if header[12] != kind {
        return Err(corrupt("wrong artifact kind"));
    }
    let found = u64::from_le_bytes(header[13..21].try_into().expect("8 bytes"));
    if found != fingerprint {
        return Err(StoreError::FingerprintMismatch {
            path: path.to_path_buf(),
            expected: fingerprint,
            found,
        });
    }
    Ok(u64::from_le_bytes(
        header[21..29].try_into().expect("8 bytes"),
    ))
}

/// Reads and validates one entry, returning its payload (or `None` if the
/// file does not exist).
fn read_entry(path: &Path, kind: u8, fingerprint: u64) -> Result<Option<Vec<u8>>, StoreError> {
    let bytes = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreError::io(path, &e)),
    };
    let corrupt = |message: &str| StoreError::Corrupt {
        path: path.to_path_buf(),
        message: message.into(),
    };
    if bytes.len() < 29 {
        return Err(StoreError::Truncated {
            path: path.to_path_buf(),
        });
    }
    if &bytes[..8] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(StoreError::Version {
            path: path.to_path_buf(),
            found: version,
        });
    }
    if bytes[12] != kind {
        return Err(corrupt("wrong artifact kind"));
    }
    let found = u64::from_le_bytes(bytes[13..21].try_into().expect("8 bytes"));
    if found != fingerprint {
        return Err(StoreError::FingerprintMismatch {
            path: path.to_path_buf(),
            expected: fingerprint,
            found,
        });
    }
    let len = u64::from_le_bytes(bytes[21..29].try_into().expect("8 bytes"));
    let payload = &bytes[29..];
    if (payload.len() as u64) < len {
        return Err(StoreError::Truncated {
            path: path.to_path_buf(),
        });
    }
    if (payload.len() as u64) > len {
        return Err(corrupt("trailing bytes after payload"));
    }
    Ok(Some(payload.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mim_core::MachineConfig;
    use mim_profile::SweepProfiler;
    use mim_workloads::{mibench, WorkloadSize};

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mim-disk-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    fn sweep_args(
        machine: &MachineConfig,
    ) -> (HierarchyConfig, Vec<CacheConfig>, Vec<PredictorConfig>) {
        (
            machine.hierarchy.clone(),
            vec![machine.hierarchy.l2.clone()],
            vec![machine.predictor.clone()],
        )
    }

    #[test]
    fn trace_round_trips_through_disk() {
        let root = temp_root("trace-rt");
        let store = DiskStore::open(&root).unwrap();
        let program = mibench::sha().program(WorkloadSize::Tiny);
        assert!(store.get_trace(&program, None).unwrap().is_none());
        let trace = Trace::record(&program, None).unwrap();
        store.put_trace(&program, None, &trace).unwrap();
        assert_eq!(store.get_trace(&program, None).unwrap().unwrap(), trace);
        // A different limit is a different entry.
        assert!(store.get_trace(&program, Some(100)).unwrap().is_none());
        assert!(store.bytes_written() > 0);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn profile_round_trips_through_disk() {
        let root = temp_root("profile-rt");
        let store = DiskStore::open(&root).unwrap();
        let machine = MachineConfig::default_config();
        let (hierarchy, l2s, predictors) = sweep_args(&machine);
        let program = mibench::qsort().program(WorkloadSize::Tiny);
        let profiler = SweepProfiler::new(hierarchy.clone(), l2s.clone(), predictors.clone());
        let profile = profiler.profile(&program, None).unwrap();
        assert!(store
            .get_profile(&program, None, &hierarchy, &l2s, &predictors)
            .unwrap()
            .is_none());
        store
            .put_profile(&program, None, &hierarchy, &l2s, &predictors, &profile)
            .unwrap();
        let back = store
            .get_profile(&program, None, &hierarchy, &l2s, &predictors)
            .unwrap()
            .unwrap();
        assert_eq!(back.num_insts, profile.num_insts);
        assert_eq!(back.mix, profile.mix);
        assert_eq!(back.misses, profile.misses);
        // A different sweep (two L2 candidates) is a different entry.
        let l2s2 = vec![
            l2s[0].clone(),
            CacheConfig::new("L2-128K", 128 * 1024, 8, 64).unwrap(),
        ];
        assert!(store
            .get_profile(&program, None, &hierarchy, &l2s2, &predictors)
            .unwrap()
            .is_none());
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn stream_trace_replays_identically_to_materialized() {
        use mim_trace::TraceSource;
        let root = temp_root("stream");
        let store = DiskStore::open(&root).unwrap();
        let program = mibench::sha().program(WorkloadSize::Tiny);
        assert!(store.stream_trace(&program, None).unwrap().is_none());
        let trace = Trace::record(&program, None).unwrap();
        store.put_trace(&program, None, &trace).unwrap();

        let mut materialized = Vec::new();
        trace
            .replay(&program)
            .unwrap()
            .drive(&mut |ev| materialized.push(*ev))
            .unwrap();
        let mut streamed = Vec::new();
        let mut stream = store.stream_trace(&program, None).unwrap().unwrap();
        let outcome = stream.drive(&mut |ev| streamed.push(*ev)).unwrap();
        assert_eq!(streamed, materialized);
        assert_eq!(outcome.instructions(), materialized.len() as u64);

        // Streaming a damaged entry is a typed error, not a panic.
        let path = store.entry_path(trace_key(Trace::fingerprint_of(&program), None), "trace");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..20]).unwrap();
        assert!(matches!(
            store.stream_trace(&program, None),
            Err(StoreError::Truncated { .. })
        ));
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(matches!(
            store.stream_trace(&program, None),
            Err(StoreError::Truncated { .. })
        ));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn truncated_file_is_a_typed_error() {
        let root = temp_root("truncated");
        let store = DiskStore::open(&root).unwrap();
        let program = mibench::sha().program(WorkloadSize::Tiny);
        let trace = Trace::record(&program, None).unwrap();
        store.put_trace(&program, None, &trace).unwrap();
        // Truncate the entry in place (header intact, payload cut short).
        let path = store.entry_path(trace_key(Trace::fingerprint_of(&program), None), "trace");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        assert!(matches!(
            store.get_trace(&program, None),
            Err(StoreError::Truncated { .. })
        ));
        // Cut into the header itself.
        fs::write(&path, &bytes[..10]).unwrap();
        assert!(matches!(
            store.get_trace(&program, None),
            Err(StoreError::Truncated { .. })
        ));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn wrong_version_is_a_typed_error() {
        let root = temp_root("version");
        let store = DiskStore::open(&root).unwrap();
        let program = mibench::sha().program(WorkloadSize::Tiny);
        let trace = Trace::record(&program, None).unwrap();
        store.put_trace(&program, None, &trace).unwrap();
        let path = store.entry_path(trace_key(Trace::fingerprint_of(&program), None), "trace");
        let mut bytes = fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        match store.get_trace(&program, None) {
            Err(StoreError::Version { found, .. }) => assert_eq!(found, 99),
            other => panic!("expected Version error, got {other:?}"),
        }
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn fingerprint_mismatch_is_a_typed_error() {
        let root = temp_root("fingerprint");
        let store = DiskStore::open(&root).unwrap();
        let program = mibench::sha().program(WorkloadSize::Tiny);
        let trace = Trace::record(&program, None).unwrap();
        store.put_trace(&program, None, &trace).unwrap();
        let path = store.entry_path(trace_key(Trace::fingerprint_of(&program), None), "trace");
        let mut bytes = fs::read(&path).unwrap();
        // Flip a bit of the header's program fingerprint.
        bytes[13] ^= 1;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.get_trace(&program, None),
            Err(StoreError::FingerprintMismatch { .. })
        ));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn garbage_and_bad_magic_are_typed_errors() {
        let root = temp_root("garbage");
        let store = DiskStore::open(&root).unwrap();
        let program = mibench::sha().program(WorkloadSize::Tiny);
        let path = store.entry_path(trace_key(Trace::fingerprint_of(&program), None), "trace");
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, vec![0u8; 64]).unwrap();
        assert!(matches!(
            store.get_trace(&program, None),
            Err(StoreError::Corrupt { .. })
        ));
        let errors = [
            StoreError::Truncated { path: path.clone() },
            StoreError::Version {
                path: path.clone(),
                found: 2,
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
        fs::remove_dir_all(&root).ok();
    }
}
