//! Cell-level memoization: one computation per (workload, size, machine,
//! evaluator) cell, shared by every concurrent job that touches it.
//!
//! The [`WorkloadStore`](crate::WorkloadStore) deduplicates the expensive
//! *machine-independent* work (functional executions, profiling passes); a
//! [`CellMemo`] deduplicates the *machine-dependent* remainder — the model
//! evaluation or cycle-accurate simulation of one grid cell. A server
//! whose concurrent jobs sweep overlapping design points hands every
//! [`Experiment`](crate::Experiment) the same memo
//! ([`Experiment::with_cells`](crate::Experiment::with_cells)): identical
//! cells coalesce onto one in-flight computation, and repeated cells are
//! answered from memory, so overlapping sweeps batch structurally instead
//! of racing.
//!
//! Keys are content-addressed: a stable FNV-1a fingerprint over the
//! workload name, size, instruction limit, the **full** serialized
//! [`MachineConfig`] (not [`MachineConfig::id`], which elides latencies),
//! the evaluator name, and the evaluator knobs that change results
//! (energy, ROB size, timeline interval). Two jobs that describe the same cell differently
//! (e.g. different design-space objects covering the same point) still
//! share one entry.

use std::sync::{Arc, Mutex};

use mim_core::MachineConfig;
use mim_obs::{clock, Counter, Histogram, Registry};
use mim_workloads::WorkloadSize;
use serde::{Deserialize, Serialize};

use crate::disk::fnv64;
use crate::result::{EvalError, EvalResult};
use crate::store::{Flight, Lru};

/// Hit/miss/eviction counters of a [`CellMemo`] — reported by the serve
/// layer's `stats` endpoint and asserted by the throughput bench's ≥80%
/// cell-hit criterion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellStats {
    /// Cell requests answered from memory (or by joining an in-flight
    /// computation).
    pub hits: u64,
    /// Cell requests that computed fresh.
    pub misses: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
}

impl CellStats {
    /// Fraction of requests served without recomputation (1.0 when no
    /// requests were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct MemoInner {
    cells: Mutex<Lru<u64, EvalResult>>,
    flight: Flight<u64>,
    registry: Registry,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    /// Wall time of requests answered from memory or by joining an
    /// in-flight computation (`cells.hit_ns`).
    hit_ns: Histogram,
    /// Wall time of requests that ran the cell's model evaluation or
    /// simulation fresh (`cells.eval_ns`) — the per-cell evaluate latency.
    eval_ns: Histogram,
}

/// A thread-safe, cheaply cloneable memo of evaluated grid cells, keyed by
/// content fingerprint (see the module docs). Concurrent requests for the
/// same missing cell coalesce onto one computation.
///
/// # Example
///
/// ```
/// use mim_core::MachineConfig;
/// use mim_runner::{CellMemo, EvalKind, Experiment};
/// use mim_workloads::{mibench, WorkloadSize};
///
/// let memo = CellMemo::new();
/// for _ in 0..2 {
///     Experiment::new()
///         .workloads([mibench::sha()])
///         .size(WorkloadSize::Tiny)
///         .evaluators([EvalKind::Model])
///         .with_cells(memo.clone())
///         .run()
///         .unwrap();
/// }
/// let stats = memo.stats();
/// assert_eq!((stats.misses, stats.hits), (1, 1));
/// ```
#[derive(Clone)]
pub struct CellMemo {
    inner: Arc<MemoInner>,
}

impl Default for CellMemo {
    fn default() -> CellMemo {
        CellMemo::new()
    }
}

impl CellMemo {
    /// Creates an empty, unbounded memo.
    pub fn new() -> CellMemo {
        CellMemo::bounded(None)
    }

    /// Creates a memo holding at most `capacity` cells, evicting
    /// least-recently-used entries beyond it (a capacity of 0 is treated
    /// as 1). Evicted cells recompute on the next request — bounded
    /// memory, unchanged results.
    pub fn with_capacity(capacity: usize) -> CellMemo {
        CellMemo::bounded(Some(capacity))
    }

    fn bounded(capacity: Option<usize>) -> CellMemo {
        let registry = Registry::new();
        CellMemo {
            inner: Arc::new(MemoInner {
                cells: Mutex::new(Lru::new(capacity)),
                flight: Flight::new(),
                hits: registry.counter("cells.hit"),
                misses: registry.counter("cells.miss"),
                evictions: registry.counter("cells.evictions"),
                hit_ns: registry.histogram("cells.hit_ns"),
                eval_ns: registry.histogram("cells.eval_ns"),
                registry,
            }),
        }
    }

    /// The memo's metrics registry: the [`CellStats`] counters plus the
    /// `cells.hit_ns` / `cells.eval_ns` latency histograms. Scoped to this
    /// memo — cloned handles share it, unrelated memos do not.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// Content fingerprint of one evaluation cell. Stable across
    /// processes and builds, so it can key protocol-level dedup too.
    ///
    /// `timeline` is the per-interval CPI-timeline width when the
    /// experiment requests one — part of the key because a cached result
    /// carries (or lacks) the timeline it was computed with.
    #[allow(clippy::too_many_arguments)]
    pub fn key(
        workload: &str,
        size: WorkloadSize,
        limit: Option<u64>,
        machine: &MachineConfig,
        evaluator: &str,
        energy: bool,
        rob_size: u32,
        timeline: Option<u64>,
    ) -> u64 {
        let config = serde_json::to_string(machine).expect("config serialization is infallible");
        let text = format!(
            "{workload}\u{1f}{size}\u{1f}{}\u{1f}{evaluator}\u{1f}{energy}\u{1f}{rob_size}\u{1f}{}\u{1f}{config}",
            limit.map_or(u64::MAX, |l| l),
            timeline.map_or(0, |t| t),
        );
        fnv64(text.as_bytes())
    }

    /// Returns the memoized result for `key`, or computes (and memoizes)
    /// it. Concurrent callers with the same missing key wait for the
    /// first caller's computation instead of duplicating it; a failed
    /// computation is not memoized, and one waiter retries it.
    ///
    /// # Errors
    ///
    /// Propagates the error of the computation this caller ran itself.
    pub fn get_or_compute(
        &self,
        key: u64,
        compute: impl FnOnce() -> Result<EvalResult, EvalError>,
    ) -> Result<EvalResult, EvalError> {
        let started = clock();
        if let Some(result) = self.cached(key) {
            self.inner.hits.inc();
            self.inner.hit_ns.observe_since(started);
            return Ok(result);
        }
        if let Some(result) = self.inner.flight.claim(&key, || self.cached(key)) {
            self.inner.hits.inc();
            self.inner.hit_ns.observe_since(started);
            return Ok(result);
        }
        self.inner.misses.inc();
        let outcome = compute();
        if let Ok(result) = &outcome {
            let evicted = self
                .inner
                .cells
                .lock()
                .expect("cell memo poisoned")
                .insert(key, result.clone());
            self.inner.evictions.add(evicted);
        }
        self.inner.flight.release(&key);
        self.inner.eval_ns.observe_since(started);
        outcome
    }

    fn cached(&self, key: u64) -> Option<EvalResult> {
        self.inner
            .cells
            .lock()
            .expect("cell memo poisoned")
            .get(&key)
    }

    /// Number of memoized cells currently held.
    pub fn len(&self) -> usize {
        self.inner.cells.lock().expect("cell memo poisoned").len()
    }

    /// Whether the memo holds no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A consistent snapshot of the memo's counters, read back from the
    /// same [`Registry`] instruments the hot path records into (see
    /// [`registry`](CellMemo::registry)).
    pub fn stats(&self) -> CellStats {
        CellStats {
            hits: self.inner.hits.get(),
            misses: self.inner.misses.get(),
            evictions: self.inner.evictions.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(cpi: f64) -> EvalResult {
        EvalResult {
            workload: "w".into(),
            evaluator: "model".into(),
            kind: crate::EvalKind::Model,
            machine_id: "m".into(),
            machine_index: 0,
            instructions: 100,
            cycles: 150.0,
            cpi,
            stack: None,
            misses: None,
            branch: None,
            energy: None,
            sampling: None,
            timeline: None,
            wall_seconds: 0.0,
        }
    }

    #[test]
    fn memoizes_and_counts() {
        let memo = CellMemo::new();
        let r1 = memo.get_or_compute(7, || Ok(dummy(1.5))).unwrap();
        let r2 = memo
            .get_or_compute(7, || panic!("must not recompute"))
            .unwrap();
        assert_eq!(r1.cpi, r2.cpi);
        assert_eq!(
            memo.stats(),
            CellStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn errors_are_not_memoized() {
        let memo = CellMemo::new();
        let err = memo.get_or_compute(1, || Err(EvalError::new("w", "model", "boom")));
        assert!(err.is_err());
        // Next caller recomputes and can succeed.
        let ok = memo.get_or_compute(1, || Ok(dummy(2.0))).unwrap();
        assert_eq!(ok.cpi, 2.0);
        assert_eq!(memo.stats().misses, 2);
    }

    #[test]
    fn capacity_bound_evicts_lru() {
        let memo = CellMemo::with_capacity(2);
        memo.get_or_compute(1, || Ok(dummy(1.0))).unwrap();
        memo.get_or_compute(2, || Ok(dummy(2.0))).unwrap();
        // Touch 1 so 2 becomes the LRU entry, then insert 3.
        memo.get_or_compute(1, || panic!("hit expected")).unwrap();
        memo.get_or_compute(3, || Ok(dummy(3.0))).unwrap();
        assert_eq!(memo.len(), 2);
        assert_eq!(memo.stats().evictions, 1);
        // 2 was evicted; it recomputes deterministically.
        let r = memo.get_or_compute(2, || Ok(dummy(2.0))).unwrap();
        assert_eq!(r.cpi, 2.0);
    }

    #[test]
    fn keys_are_content_addressed() {
        let tiny = WorkloadSize::Tiny;
        let base = MachineConfig::default_config();
        let k1 = CellMemo::key("sha", tiny, None, &base, "model", false, 128, None);
        let k2 = CellMemo::key("sha", tiny, None, &base, "model", false, 128, None);
        assert_eq!(k1, k2);
        // Any differing component changes the key.
        let mut wide = base.clone();
        wide.width += 1;
        for other in [
            CellMemo::key("crc", tiny, None, &base, "model", false, 128, None),
            CellMemo::key(
                "sha",
                WorkloadSize::Small,
                None,
                &base,
                "model",
                false,
                128,
                None,
            ),
            CellMemo::key("sha", tiny, Some(9), &base, "model", false, 128, None),
            CellMemo::key("sha", tiny, None, &wide, "model", false, 128, None),
            CellMemo::key("sha", tiny, None, &base, "sim", false, 128, None),
            CellMemo::key("sha", tiny, None, &base, "model", true, 128, None),
            CellMemo::key("sha", tiny, None, &base, "ooo", false, 64, None),
            CellMemo::key("sha", tiny, None, &base, "sim", false, 128, Some(10_000)),
        ] {
            assert_ne!(k1, other);
        }
    }
}
