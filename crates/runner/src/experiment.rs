//! The [`Experiment`] builder: declarative (workload × design-point ×
//! evaluator) sweeps with one profiling pass per workload, parallel
//! execution, deterministic ordering, and a serializable
//! [`ExperimentReport`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use mim_core::{DesignPoint, DesignSpace, MachineConfig};
use mim_obs::{clock, Span};
use mim_workloads::WorkloadSize;
use serde::{Deserialize, Serialize};

use crate::cells::CellMemo;
use crate::evaluator::{
    Evaluator, ModelEvaluator, OooEvaluator, SampledSimEvaluator, SimEvaluator,
};
use crate::result::{EvalError, EvalKind, EvalResult};
use crate::spec::WorkloadSpec;
use crate::store::WorkloadStore;

/// Runs `f(index, item)` over `items` on up to `threads` worker threads,
/// preserving input order in the returned vector — the per-cell iteration
/// primitive behind [`Experiment::run`], exposed so downstream drivers
/// (e.g. `mim-explore`'s hybrid sim-verification pass) can fan out over
/// arbitrary point sets with the same ordering guarantee.
pub fn parallel_map<T: Sync, R: Send, F: Fn(usize, &T) -> R + Sync>(
    threads: usize,
    items: &[T],
    f: F,
) -> Vec<R> {
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(i, &items[i]);
                slots.lock().expect("result slots poisoned")[i] = Some(result);
            });
        }
    });
    slots
        .into_inner()
        .expect("result slots poisoned")
        .into_iter()
        .map(|slot| slot.expect("every slot filled"))
        .collect()
}

/// Wall-clock breakdown of an experiment run. Not serialized (it varies
/// run to run, and reports must be byte-deterministic).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExperimentTiming {
    /// Worker threads used.
    pub threads: usize,
    /// Wall seconds spent in the profiling phase (once per workload).
    pub profile_seconds: f64,
    /// Wall seconds spent in the evaluation grid.
    pub eval_seconds: f64,
    /// End-to-end wall seconds.
    pub total_seconds: f64,
}

/// A generic two-evaluator diff for one (workload, machine) cell —
/// the shape every model-vs-simulation comparison reduces to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpiComparison {
    /// Workload name.
    pub workload: String,
    /// Machine id of the design point.
    pub machine_id: String,
    /// Index of the design point within the report's machine list.
    pub machine_index: usize,
    /// Subject evaluator name (e.g. `"model"`).
    pub subject: String,
    /// Baseline evaluator name (e.g. `"sim"`).
    pub baseline: String,
    /// Subject CPI.
    pub subject_cpi: f64,
    /// Baseline CPI.
    pub baseline_cpi: f64,
    /// Signed relative error of subject vs baseline, percent.
    pub error_percent: f64,
}

/// Prints a comparison table and returns `(average |error|, max |error|)`.
pub fn print_comparison(title: &str, rows: &[CpiComparison]) -> (f64, f64) {
    println!("\n=== {title} ===");
    if rows.is_empty() {
        println!("(no rows)");
        return (0.0, 0.0);
    }
    let subject = format!("{} CPI", rows[0].subject);
    let baseline = format!("{} CPI", rows[0].baseline);
    println!(
        "{:<18} {subject:>10} {baseline:>10} {:>9}",
        "benchmark", "error"
    );
    for r in rows {
        println!(
            "{:<18} {:>10.4} {:>10.4} {:>+8.2}%",
            r.workload, r.subject_cpi, r.baseline_cpi, r.error_percent
        );
    }
    let abs: Vec<f64> = rows.iter().map(|r| r.error_percent.abs()).collect();
    let avg = abs.iter().sum::<f64>() / abs.len() as f64;
    let max = abs.iter().cloned().fold(0.0, f64::max);
    println!("{:<18} avg |error| = {avg:.2}%   max = {max:.2}%", "");
    (avg, max)
}

/// The outcome of [`Experiment::run`]: every evaluation cell in
/// deterministic (workload-major, then design point, then evaluator)
/// order, plus the lookup/diff helpers that replace per-binary glue.
///
/// Serialization is deterministic: running the same experiment with any
/// thread count produces byte-identical JSON (timing lives outside the
/// serialized fields).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Experiment title.
    pub title: String,
    /// Workload size label (`tiny`/`small`/`large`).
    pub size: String,
    /// Instruction budget per evaluation, if truncated.
    pub limit: Option<u64>,
    /// Workload names, in evaluation order.
    pub workloads: Vec<String>,
    /// Machine ids, one per design point, in evaluation order.
    pub machines: Vec<String>,
    /// Evaluator names, in evaluation order.
    pub evaluators: Vec<String>,
    /// All evaluation cells.
    pub rows: Vec<EvalResult>,
    /// Wall-clock breakdown (not serialized).
    #[serde(skip)]
    pub timing: ExperimentTiming,
}

impl ExperimentReport {
    /// Looks up one cell.
    pub fn get(
        &self,
        workload: &str,
        machine_index: usize,
        evaluator: &str,
    ) -> Option<&EvalResult> {
        self.rows.iter().find(|r| {
            r.workload == workload && r.machine_index == machine_index && r.evaluator == evaluator
        })
    }

    /// All cells produced by the named evaluator, in order.
    pub fn rows_for<'a>(&'a self, evaluator: &'a str) -> impl Iterator<Item = &'a EvalResult> {
        self.rows.iter().filter(move |r| r.evaluator == evaluator)
    }

    /// Sum of per-cell wall seconds for the named evaluator — the serial
    /// cost of that evaluator's share of the grid.
    pub fn evaluator_seconds(&self, evaluator: &str) -> f64 {
        self.rows_for(evaluator).map(|r| r.wall_seconds).sum()
    }

    /// Diffs two evaluators cell-by-cell: the generic replacement for
    /// bespoke model-vs-simulation comparison code.
    ///
    /// Cells are paired by (workload, machine); rows come back in
    /// evaluation order. Pairing is index-backed, so the cost is linear
    /// in the number of rows even for full design-space grids.
    pub fn compare(&self, subject: &str, baseline: &str) -> Vec<CpiComparison> {
        let baselines: std::collections::HashMap<(&str, usize), &EvalResult> = self
            .rows_for(baseline)
            .map(|r| ((r.workload.as_str(), r.machine_index), r))
            .collect();
        self.rows_for(subject)
            .filter_map(|s| {
                let b = baselines.get(&(s.workload.as_str(), s.machine_index))?;
                Some(CpiComparison {
                    workload: s.workload.clone(),
                    machine_id: s.machine_id.clone(),
                    machine_index: s.machine_index,
                    subject: s.evaluator.clone(),
                    baseline: b.evaluator.clone(),
                    subject_cpi: s.cpi,
                    baseline_cpi: b.cpi,
                    error_percent: 100.0 * (s.cpi - b.cpi) / b.cpi,
                })
            })
            .collect()
    }

    /// Serializes the report as pretty JSON (deterministic bytes).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization is infallible")
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the parse error on malformed input.
    pub fn from_json(text: &str) -> Result<ExperimentReport, serde_json::Error> {
        serde_json::from_str(text)
    }
}

/// Declarative builder for a (workload × design-point × evaluator) sweep.
///
/// Owns the paper's §2.1 framework: each workload is profiled **once**
/// (a single [`SweepProfiler`](mim_profile::SweepProfiler) pass covering
/// every L2 and predictor candidate of the design space), after which
/// analytical evaluators score every design point from the cached profile.
/// The grid runs on `threads(n)` worker threads with deterministic result
/// ordering.
///
/// # Example
///
/// ```
/// use mim_runner::{EvalKind, Experiment};
/// use mim_workloads::{mibench, WorkloadSize};
///
/// let report = Experiment::new()
///     .title("quick validation")
///     .workloads(vec![mibench::sha()])
///     .size(WorkloadSize::Tiny)
///     .evaluators([EvalKind::Model, EvalKind::Sim])
///     .threads(2)
///     .run()
///     .unwrap();
/// let diff = report.compare("model", "sim");
/// assert_eq!(diff.len(), 1);
/// assert!(diff[0].error_percent.abs() < 25.0);
/// ```
pub struct Experiment {
    title: String,
    workloads: Vec<WorkloadSpec>,
    size: WorkloadSize,
    limit: Option<u64>,
    machine: MachineConfig,
    space: Option<DesignSpace>,
    stride: usize,
    kinds: Vec<EvalKind>,
    custom: Vec<Arc<dyn Evaluator>>,
    rob_size: u32,
    sampling: mim_trace::Sampling,
    energy: bool,
    timeline: Option<u64>,
    threads: usize,
    cache: WorkloadStore,
    cells: Option<CellMemo>,
    on_cell: Option<CellCallback>,
}

/// Progress callback fired once per evaluated cell.
type CellCallback = Arc<dyn Fn(&EvalResult) + Send + Sync>;

impl Default for Experiment {
    fn default() -> Experiment {
        Experiment::new()
    }
}

impl Experiment {
    /// Creates an empty experiment on the paper's default machine.
    pub fn new() -> Experiment {
        Experiment {
            title: String::new(),
            workloads: Vec::new(),
            size: WorkloadSize::Small,
            limit: None,
            machine: MachineConfig::default_config(),
            space: None,
            stride: 1,
            kinds: Vec::new(),
            custom: Vec::new(),
            rob_size: 128,
            sampling: mim_trace::Sampling::default_plan(),
            energy: false,
            timeline: None,
            threads: 0,
            cache: WorkloadStore::new(),
            cells: None,
            on_cell: None,
        }
    }

    /// Sets the report title.
    pub fn title(mut self, title: impl Into<String>) -> Experiment {
        self.title = title.into();
        self
    }

    /// Adds workloads (anything convertible to [`WorkloadSpec`], e.g.
    /// `mim_workloads::Workload` kernels).
    pub fn workloads<I, W>(mut self, workloads: I) -> Experiment
    where
        I: IntoIterator<Item = W>,
        W: Into<WorkloadSpec>,
    {
        self.workloads.extend(workloads.into_iter().map(Into::into));
        self
    }

    /// Adds one workload.
    pub fn workload(mut self, workload: impl Into<WorkloadSpec>) -> Experiment {
        self.workloads.push(workload.into());
        self
    }

    /// Sets the workload size (default [`WorkloadSize::Small`]).
    pub fn size(mut self, size: WorkloadSize) -> Experiment {
        self.size = size;
        self
    }

    /// Truncates every profile/simulation to `limit` retired instructions.
    pub fn limit(mut self, limit: u64) -> Experiment {
        self.limit = Some(limit);
        self
    }

    /// Sets the single machine configuration to evaluate (ignored once
    /// [`design_space`](Experiment::design_space) is set).
    pub fn machine(mut self, machine: MachineConfig) -> Experiment {
        self.machine = machine;
        self
    }

    /// Sweeps a whole design space instead of a single machine.
    pub fn design_space(mut self, space: DesignSpace) -> Experiment {
        self.space = Some(space);
        self
    }

    /// Evaluates only every `stride`-th design point (subsampling knob for
    /// quick runs).
    pub fn stride(mut self, stride: usize) -> Experiment {
        self.stride = stride.max(1);
        self
    }

    /// Selects the built-in evaluator families to run.
    pub fn evaluators(mut self, kinds: impl IntoIterator<Item = EvalKind>) -> Experiment {
        self.kinds.extend(kinds);
        self
    }

    /// Adds a custom evaluator (an [`Evaluator`] trait object). Custom
    /// evaluators carry their own machine configuration, so they are only
    /// accepted on single-machine experiments.
    pub fn evaluator(mut self, evaluator: impl Evaluator + 'static) -> Experiment {
        self.custom.push(Arc::new(evaluator));
        self
    }

    /// Reorder-buffer size for [`EvalKind::Ooo`] evaluators (default 128).
    pub fn rob_size(mut self, rob_size: u32) -> Experiment {
        self.rob_size = rob_size;
        self
    }

    /// Sampling plan for [`EvalKind::Sampled`] evaluators (default
    /// [`Sampling::default_plan`](mim_trace::Sampling::default_plan), the
    /// 1-in-10 plan with full functional warming).
    pub fn sampling(mut self, sampling: mim_trace::Sampling) -> Experiment {
        self.sampling = sampling;
        self
    }

    /// Also runs the energy model, populating [`EvalResult::energy`] (the
    /// §6.3 EDP studies).
    pub fn energy(mut self, energy: bool) -> Experiment {
        self.energy = energy;
        self
    }

    /// Captures a per-interval CPI-stack timeline on [`EvalKind::Sim`] and
    /// [`EvalKind::Sampled`] cells, sampled every `interval` retired
    /// instructions, populating [`EvalResult::timeline`]. Off by default;
    /// the timeline is strictly out-of-band, so serialized reports are
    /// byte-identical with or without it.
    pub fn timeline(mut self, interval: u64) -> Experiment {
        self.timeline = Some(interval.max(1));
        self
    }

    /// Number of worker threads; `0` (the default) uses all available
    /// cores, `1` runs serially. Any value produces byte-identical
    /// reports.
    pub fn threads(mut self, threads: usize) -> Experiment {
        self.threads = threads;
        self
    }

    /// Registers a progress callback fired once per successfully evaluated
    /// cell (no-op by default). Long sweeps report progress through it —
    /// e.g. bump an `AtomicUsize` and redraw a counter — and `mim-explore`
    /// charges search budgets with it.
    ///
    /// The callback runs on worker threads as cells complete, so arrival
    /// order varies run to run; the report's contents and serialization
    /// stay deterministic regardless.
    pub fn on_cell(mut self, callback: impl Fn(&EvalResult) + Send + Sync + 'static) -> Experiment {
        self.on_cell = Some(Arc::new(callback));
        self
    }

    /// The experiment's shared workload store. Hand this to custom
    /// evaluators (`with_cache`) so they reuse the experiment's one
    /// recording + profiling pass per workload.
    pub fn profile_cache(&self) -> WorkloadStore {
        self.cache.clone()
    }

    /// Replaces the experiment's workload store with a shared one, so
    /// several experiments (or an outer driver like `mim-explore`) reuse a
    /// single recording + profiling pass per workload across runs.
    pub fn with_cache(mut self, cache: WorkloadStore) -> Experiment {
        self.cache = cache;
        self
    }

    /// Attaches a shared [`CellMemo`]: every grid cell is answered from
    /// (or published to) the memo, so concurrent or repeated experiments
    /// with overlapping (workload, machine, evaluator) cells coalesce
    /// onto one evaluation each. Built-in evaluators only — custom
    /// evaluators carry state the memo key cannot see, so they bypass it.
    pub fn with_cells(mut self, cells: CellMemo) -> Experiment {
        self.cells = Some(cells);
        self
    }

    fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }

    /// Builds the per-point evaluator matrix.
    fn build_evaluators(&self, points: &[DesignPoint]) -> Vec<Vec<Arc<dyn Evaluator>>> {
        points
            .iter()
            .map(|point| {
                let mut evals: Vec<Arc<dyn Evaluator>> = Vec::new();
                for kind in &self.kinds {
                    let eval: Arc<dyn Evaluator> = match (kind, &self.space) {
                        (EvalKind::Model, Some(space)) => Arc::new(
                            ModelEvaluator::for_point(space, point)
                                .with_cache(self.cache.clone())
                                .with_limit(self.limit)
                                .with_energy(self.energy),
                        ),
                        (EvalKind::Model, None) => Arc::new(
                            ModelEvaluator::new(&point.machine)
                                .with_cache(self.cache.clone())
                                .with_limit(self.limit)
                                .with_energy(self.energy),
                        ),
                        (EvalKind::Sim, Some(space)) => Arc::new(
                            SimEvaluator::for_point(space, point)
                                .with_cache(self.cache.clone())
                                .with_limit(self.limit)
                                .with_energy(self.energy)
                                .with_timeline(self.timeline),
                        ),
                        (EvalKind::Sim, None) => Arc::new(
                            SimEvaluator::new(&point.machine)
                                .with_cache(self.cache.clone())
                                .with_limit(self.limit)
                                .with_energy(self.energy)
                                .with_timeline(self.timeline),
                        ),
                        (EvalKind::Ooo, Some(space)) => Arc::new(
                            OooEvaluator::for_point(space, point)
                                .with_cache(self.cache.clone())
                                .with_limit(self.limit)
                                .with_rob_size(self.rob_size)
                                .with_energy(self.energy),
                        ),
                        (EvalKind::Ooo, None) => Arc::new(
                            OooEvaluator::new(&point.machine)
                                .with_cache(self.cache.clone())
                                .with_limit(self.limit)
                                .with_rob_size(self.rob_size)
                                .with_energy(self.energy),
                        ),
                        (EvalKind::Sampled, Some(space)) => Arc::new(
                            SampledSimEvaluator::for_point(space, point)
                                .with_cache(self.cache.clone())
                                .with_limit(self.limit)
                                .with_sampling(self.sampling)
                                .with_energy(self.energy)
                                .with_timeline(self.timeline),
                        ),
                        (EvalKind::Sampled, None) => Arc::new(
                            SampledSimEvaluator::new(&point.machine)
                                .with_cache(self.cache.clone())
                                .with_limit(self.limit)
                                .with_sampling(self.sampling)
                                .with_energy(self.energy)
                                .with_timeline(self.timeline),
                        ),
                    };
                    evals.push(eval);
                }
                for custom in &self.custom {
                    evals.push(Arc::clone(custom));
                }
                evals
            })
            .collect()
    }

    /// Runs the full grid and returns the report.
    ///
    /// # Errors
    ///
    /// Returns the first [`EvalError`] (in deterministic grid order) if
    /// any cell fails, or a configuration error for an empty/inconsistent
    /// experiment.
    pub fn run(self) -> Result<ExperimentReport, EvalError> {
        let t_start = Instant::now();
        if self.workloads.is_empty() {
            return Err(EvalError::new("-", "experiment", "no workloads configured"));
        }
        if self.kinds.is_empty() && self.custom.is_empty() {
            return Err(EvalError::new(
                "-",
                "experiment",
                "no evaluators configured",
            ));
        }
        if self.space.is_some() && !self.custom.is_empty() {
            return Err(EvalError::new(
                "-",
                "experiment",
                "custom evaluators carry their own machine and cannot sweep a design space",
            ));
        }
        // Names are the report's lookup keys (and the program cache's):
        // duplicates would silently alias, so reject them up front.
        let mut seen_workloads = std::collections::HashSet::new();
        for spec in &self.workloads {
            if !seen_workloads.insert(spec.name()) {
                return Err(EvalError::new(
                    spec.name(),
                    "experiment",
                    "duplicate workload name (names key the report and profile cache)",
                ));
            }
        }
        let mut seen_evaluators = std::collections::HashSet::new();
        for kind in &self.kinds {
            if !seen_evaluators.insert(kind.label().to_string()) {
                return Err(EvalError::new(
                    "-",
                    "experiment",
                    format!("evaluator kind `{kind}` configured twice"),
                ));
            }
        }
        for custom in &self.custom {
            if !seen_evaluators.insert(custom.name().to_string()) {
                return Err(EvalError::new(
                    "-",
                    "experiment",
                    format!("duplicate evaluator name `{}`", custom.name()),
                ));
            }
        }
        let threads = self.resolved_threads();

        // Resolve the design points.
        let points: Vec<DesignPoint> = match &self.space {
            Some(space) => space.points().step_by(self.stride).collect(),
            None => vec![DesignPoint {
                machine: self.machine.clone(),
                l2_index: 0,
                predictor_index: 0,
            }],
        };

        // Phase 1 — one recording (and, where needed, one replayed
        // profiling pass) per workload (§2.1), parallel over workloads.
        // Simulation-only experiments without energy skip the profile but
        // still record the trace their simulations replay.
        let _span = Span::enter("experiment.run")
            .field("title", self.title.clone())
            .field_u64("workloads", self.workloads.len() as u64)
            .field_u64("points", points.len() as u64);
        let t_profile = Instant::now();
        let warm_span = Span::enter("experiment.warm");
        let needs_profile = self.energy
            || self
                .kinds
                .iter()
                .any(|k| matches!(k, EvalKind::Model | EvalKind::Ooo))
            || !self.custom.is_empty();
        let (hierarchy, l2s, predictors) = match &self.space {
            Some(space) => (
                space.base().hierarchy.clone(),
                space.l2_configs().to_vec(),
                space.predictor_configs().to_vec(),
            ),
            None => (
                self.machine.hierarchy.clone(),
                vec![self.machine.hierarchy.l2.clone()],
                vec![self.machine.predictor.clone()],
            ),
        };
        // Record a trace only when a grid cell will replay it repeatedly
        // (simulation per design point, MLP estimation). Model-only
        // experiments keep the O(1)-memory streaming profile pass — still
        // exactly one functional execution per workload either way.
        let needs_trace = self
            .kinds
            .iter()
            .any(|k| matches!(k, EvalKind::Sim | EvalKind::Ooo | EvalKind::Sampled));
        let warm: Vec<Result<(), EvalError>> = parallel_map(threads, &self.workloads, |_, spec| {
            self.cache.program(spec, self.size);
            if needs_trace {
                // The one functional execution per workload: every grid
                // cell below (profile, simulation, MLP) replays this
                // recording.
                self.cache.trace(spec, self.size, self.limit)?;
            }
            if needs_profile {
                self.cache
                    .profile(spec, self.size, self.limit, &hierarchy, &l2s, &predictors)?;
            }
            Ok(())
        });
        drop(warm_span);
        for outcome in warm {
            outcome?;
        }
        let profile_seconds = t_profile.elapsed().as_secs_f64();

        // Phase 2 — the evaluation grid, workload-major then point then
        // evaluator, executed in parallel with order-preserving slots.
        let evaluators = self.build_evaluators(&points);
        let mut cells: Vec<(usize, usize, usize)> = Vec::new();
        for wi in 0..self.workloads.len() {
            for (pi, evals) in evaluators.iter().enumerate() {
                for ei in 0..evals.len() {
                    cells.push((wi, pi, ei));
                }
            }
        }
        let t_eval = Instant::now();
        let grid_span = Span::enter("experiment.grid").field_u64("cells", cells.len() as u64);
        let n_builtin = self.kinds.len();
        // Per-cell evaluate latency lands in the shared store's registry,
        // so a server merging store metrics sees the grid's distribution.
        let cell_ns = self.cache.registry().histogram("experiment.cell_ns");
        let outcomes: Vec<Result<EvalResult, EvalError>> =
            parallel_map(threads, &cells, |_, &(wi, pi, ei)| {
                let cell_started = clock();
                let spec = &self.workloads[wi];
                let evaluator = &evaluators[pi][ei];
                let _cell_span = Span::enter("experiment.cell")
                    .field("workload", spec.name().to_string())
                    .field("evaluator", evaluator.name().to_string())
                    .field_u64("point", pi as u64);
                // The timeline knob only reaches (and only changes) the
                // two simulator evaluators, so model/OOO cells keep their
                // timeline-free keys.
                let cell_timeline = match self.kinds.get(ei) {
                    Some(EvalKind::Sim | EvalKind::Sampled) => self.timeline,
                    _ => None,
                };
                // Memoize built-in cells only: custom evaluators may close
                // over state the content key cannot capture.
                let mut result = match (&self.cells, ei < n_builtin) {
                    (Some(memo), true) => {
                        let key = CellMemo::key(
                            spec.name(),
                            self.size,
                            self.limit,
                            &points[pi].machine,
                            evaluator.name(),
                            self.energy,
                            self.rob_size,
                            cell_timeline,
                        );
                        memo.get_or_compute(key, || evaluator.evaluate(spec, self.size))?
                    }
                    _ => evaluator.evaluate(spec, self.size)?,
                };
                result.machine_index = pi;
                cell_ns.observe_since(cell_started);
                if let Some(on_cell) = &self.on_cell {
                    on_cell(&result);
                }
                Ok(result)
            });
        drop(grid_span);
        let eval_seconds = t_eval.elapsed().as_secs_f64();
        let mut rows = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            rows.push(outcome?);
        }

        Ok(ExperimentReport {
            title: self.title,
            size: self.size.to_string(),
            limit: self.limit,
            workloads: self
                .workloads
                .iter()
                .map(|w| w.name().to_string())
                .collect(),
            machines: points.iter().map(|p| p.machine.id()).collect(),
            evaluators: evaluators
                .first()
                .map(|evals| evals.iter().map(|e| e.name().to_string()).collect())
                .unwrap_or_default(),
            rows,
            timing: ExperimentTiming {
                threads,
                profile_seconds,
                eval_seconds,
                total_seconds: t_start.elapsed().as_secs_f64(),
            },
        })
    }
}
