//! Shared caches for programs and one-pass workload profiles.
//!
//! The paper's framework (§2.1) profiles each workload **once** and reuses
//! the profile for every design point; [`ProfileCache`] is that invariant
//! made concrete. It is cheaply cloneable (an `Arc` handle) and
//! thread-safe, so one cache can back every evaluator of an experiment.

use std::sync::{Arc, Mutex};

use mim_bpred::PredictorConfig;
use mim_cache::{CacheConfig, HierarchyConfig};
use mim_isa::Program;
use mim_profile::{SweepProfiler, WorkloadProfile};
use mim_workloads::WorkloadSize;

use crate::result::EvalError;
use crate::spec::WorkloadSpec;

/// Identifies one profiling pass: workload, size, truncation, and the
/// sweep's candidate lists.
#[derive(Clone, PartialEq)]
struct ProfileKey {
    workload: String,
    size: WorkloadSize,
    limit: Option<u64>,
    hierarchy: HierarchyConfig,
    l2s: Vec<CacheConfig>,
    predictors: Vec<PredictorConfig>,
}

type ProgramKey = (String, WorkloadSize);

#[derive(Default)]
struct Inner {
    programs: Mutex<Vec<(ProgramKey, Arc<Program>)>>,
    profiles: Mutex<Vec<(ProfileKey, Arc<WorkloadProfile>)>>,
}

/// Thread-safe cache of instantiated programs and sweep profiles.
///
/// Entry counts are small (one per workload × size × sweep), so lookups
/// are linear scans — no hashing requirements on the config types.
#[derive(Clone, Default)]
pub struct ProfileCache {
    inner: Arc<Inner>,
}

impl ProfileCache {
    /// Creates an empty cache.
    pub fn new() -> ProfileCache {
        ProfileCache::default()
    }

    /// Returns the workload's program at `size`, instantiating it on first
    /// use.
    pub fn program(&self, spec: &WorkloadSpec, size: WorkloadSize) -> Arc<Program> {
        let key = (spec.name().to_string(), size);
        if let Some((_, p)) = self
            .inner
            .programs
            .lock()
            .expect("program cache poisoned")
            .iter()
            .find(|(k, _)| *k == key)
        {
            return Arc::clone(p);
        }
        // Generate outside the lock; kernels are deterministic, so a racing
        // duplicate generation is wasted work but not an inconsistency.
        let program = spec.program_at(size);
        let mut programs = self.inner.programs.lock().expect("program cache poisoned");
        if let Some((_, p)) = programs.iter().find(|(k, _)| *k == key) {
            return Arc::clone(p);
        }
        programs.push((key, Arc::clone(&program)));
        program
    }

    /// Returns the workload's one-pass sweep profile for the given
    /// candidate lists, profiling on first use.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] if the program faults while profiling.
    pub fn profile(
        &self,
        spec: &WorkloadSpec,
        size: WorkloadSize,
        limit: Option<u64>,
        hierarchy: &HierarchyConfig,
        l2s: &[CacheConfig],
        predictors: &[PredictorConfig],
    ) -> Result<Arc<WorkloadProfile>, EvalError> {
        let key = ProfileKey {
            workload: spec.name().to_string(),
            size,
            limit,
            hierarchy: hierarchy.clone(),
            l2s: l2s.to_vec(),
            predictors: predictors.to_vec(),
        };
        if let Some((_, p)) = self
            .inner
            .profiles
            .lock()
            .expect("profile cache poisoned")
            .iter()
            .find(|(k, _)| *k == key)
        {
            return Ok(Arc::clone(p));
        }
        let program = self.program(spec, size);
        let profiler = SweepProfiler::new(hierarchy.clone(), l2s.to_vec(), predictors.to_vec());
        let profile = profiler
            .profile(&program, limit)
            .map_err(|e| EvalError::vm(spec.name(), "profiler", &e))?;
        let profile = Arc::new(profile);
        let mut profiles = self.inner.profiles.lock().expect("profile cache poisoned");
        if let Some((_, p)) = profiles.iter().find(|(k, _)| *k == key) {
            return Ok(Arc::clone(p));
        }
        profiles.push((key, Arc::clone(&profile)));
        Ok(profile)
    }

    /// Number of cached profiles (used by tests to assert the one-pass
    /// invariant).
    pub fn cached_profiles(&self) -> usize {
        self.inner
            .profiles
            .lock()
            .expect("profile cache poisoned")
            .len()
    }
}
