//! Shared memoization of programs, recorded traces, and one-pass profiles.
//!
//! The paper's framework (§2.1) separates machine-independent workload
//! behavior from machine-dependent timing; [`WorkloadStore`] is that
//! invariant made concrete for the whole stack. Per `(workload, size,
//! limit)` it memoizes the instantiated [`Program`], the **one** recorded
//! functional execution (a [`Trace`]), and the one-pass sweep
//! [`WorkloadProfile`] replayed from it — so every evaluator, every design
//! point, and every search strategy of an experiment shares a single
//! functional execution per workload. The store is cheaply cloneable (an
//! `Arc` handle) and thread-safe.
//!
//! Long-running servers add two more properties:
//!
//! * **persistence** — [`WorkloadStore::persistent`] attaches a
//!   content-addressed [`DiskStore`], so traces and profiles survive
//!   process restarts and are shared between processes pointed at the
//!   same directory;
//! * **boundedness** — [`WorkloadStore::with_capacity`] puts an LRU bound
//!   on the in-memory trace and profile maps, so memory stays O(capacity)
//!   no matter how many workloads stream through (evicted entries are
//!   transparently reloaded from disk or recomputed, preserving
//!   determinism).
//!
//! Concurrent requests for the same missing entry **coalesce**: one
//! caller records/profiles while the rest wait on the in-flight marker,
//! so a burst of identical requests costs one functional execution.

use std::sync::{Arc, Condvar, Mutex};

use mim_bpred::PredictorConfig;
use mim_cache::{CacheConfig, HierarchyConfig};
use mim_isa::Program;
use mim_obs::{clock, Counter, Histogram, Registry};
use mim_profile::{SweepProfiler, WorkloadProfile};
use mim_trace::Trace;
use mim_workloads::WorkloadSize;
use serde::{Deserialize, Serialize};

use crate::disk::{DiskStore, StoreError};
use crate::result::EvalError;
use crate::spec::WorkloadSpec;

/// Identifies one profiling pass: workload, size, truncation, and the
/// sweep's candidate lists.
#[derive(Clone, PartialEq)]
struct ProfileKey {
    workload: String,
    size: WorkloadSize,
    limit: Option<u64>,
    hierarchy: HierarchyConfig,
    l2s: Vec<CacheConfig>,
    predictors: Vec<PredictorConfig>,
}

type ProgramKey = (String, WorkloadSize);

/// Identifies one recording: workload, size, and instruction limit.
type TraceKey = (String, WorkloadSize, Option<u64>);

/// Cache hit/miss/persistence counters of a [`WorkloadStore`] — the
/// observability surface a long-running evaluation service reports
/// through its `stats` endpoint.
///
/// `*_hits` count requests served from memory, `*_disk_hits` requests
/// served by deserializing a persisted entry, and `*_misses` requests
/// that had to compute (record or profile) fresh.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Trace requests served from the in-memory map.
    pub trace_hits: u64,
    /// Trace requests served from the persistent store.
    pub trace_disk_hits: u64,
    /// Trace requests that recorded a fresh functional execution.
    pub trace_misses: u64,
    /// Profile requests served from the in-memory map.
    pub profile_hits: u64,
    /// Profile requests served from the persistent store.
    pub profile_disk_hits: u64,
    /// Profile requests that computed a fresh profiling pass.
    pub profile_misses: u64,
    /// In-memory entries evicted by the LRU capacity bound.
    pub evictions: u64,
    /// Bytes persisted to the attached [`DiskStore`] by this store.
    pub bytes_persisted: u64,
    /// Functional `Vm` executions this store has triggered.
    pub functional_executions: u64,
}

impl StoreStats {
    /// Total requests served without a functional execution or profiling
    /// pass (memory + disk, traces + profiles).
    pub fn total_hits(&self) -> u64 {
        self.trace_hits + self.trace_disk_hits + self.profile_hits + self.profile_disk_hits
    }

    /// Total requests that computed fresh.
    pub fn total_misses(&self) -> u64 {
        self.trace_misses + self.profile_misses
    }
}

/// An LRU-ordered association list: entries move to the back on every
/// hit, and inserts beyond `capacity` evict from the front. Entry counts
/// are small (one per workload × size × sweep), so linear scans beat
/// hashing — and impose no `Hash` bound on config types.
pub(crate) struct Lru<K, V> {
    entries: Vec<(K, V)>,
    capacity: Option<usize>,
}

impl<K: PartialEq, V: Clone> Lru<K, V> {
    pub(crate) fn new(capacity: Option<usize>) -> Lru<K, V> {
        Lru {
            entries: Vec::new(),
            capacity,
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub(crate) fn get(&mut self, key: &K) -> Option<V> {
        let i = self.entries.iter().position(|(k, _)| k == key)?;
        let entry = self.entries.remove(i);
        let value = entry.1.clone();
        self.entries.push(entry);
        Some(value)
    }

    /// Inserts (or refreshes) an entry, returning how many entries the
    /// capacity bound evicted.
    pub(crate) fn insert(&mut self, key: K, value: V) -> u64 {
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(i);
        }
        self.entries.push((key, value));
        let mut evicted = 0;
        if let Some(cap) = self.capacity {
            let cap = cap.max(1);
            while self.entries.len() > cap {
                self.entries.remove(0);
                evicted += 1;
            }
        }
        evicted
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }
}

/// In-flight markers for one cache: concurrent requests for the same
/// missing key coalesce onto the first caller's computation instead of
/// re-executing it in parallel.
pub(crate) struct Flight<K> {
    pending: Mutex<Vec<K>>,
    wakeup: Condvar,
}

impl<K: Clone + PartialEq> Flight<K> {
    pub(crate) fn new() -> Flight<K> {
        Flight {
            pending: Mutex::new(Vec::new()),
            wakeup: Condvar::new(),
        }
    }

    /// Claims the right to compute `key`. Returns the cached value if a
    /// concurrent computation finished while waiting; `None` means the
    /// caller owns the computation and must call [`release`](Flight::release).
    pub(crate) fn claim<V>(&self, key: &K, mut cached: impl FnMut() -> Option<V>) -> Option<V> {
        let mut pending = self.pending.lock().expect("flight markers poisoned");
        loop {
            if let Some(v) = cached() {
                return Some(v);
            }
            if !pending.iter().any(|k| k == key) {
                pending.push(key.clone());
                return None;
            }
            pending = self.wakeup.wait(pending).expect("flight markers poisoned");
        }
    }

    /// Releases the marker (after publishing the result, or on error) and
    /// wakes every waiter.
    pub(crate) fn release(&self, key: &K) {
        self.pending
            .lock()
            .expect("flight markers poisoned")
            .retain(|k| k != key);
        self.wakeup.notify_all();
    }
}

/// The store's instruments, resolved once against its [`Registry`] so the
/// hot paths touch pre-looked-up atomics, never the registry's name map.
///
/// The counters here **are** the [`StoreStats`] fields — `stats()` reads
/// them back out of the registry, so the `stats` endpoint of a server and
/// a `metrics` scrape of the same registry can never disagree.
struct StoreInstruments {
    /// Functional `Vm` executions this store has triggered (recordings and
    /// live profiling passes). Unlike `mim_isa::functional_executions`,
    /// this counter is scoped to the store, so record-once assertions are
    /// immune to unrelated VM activity elsewhere in the test process.
    executions: Counter,
    trace_hits: Counter,
    trace_disk_hits: Counter,
    trace_misses: Counter,
    profile_hits: Counter,
    profile_disk_hits: Counter,
    profile_misses: Counter,
    evictions: Counter,
    trace_hit_ns: Histogram,
    trace_miss_ns: Histogram,
    profile_hit_ns: Histogram,
    profile_miss_ns: Histogram,
}

impl StoreInstruments {
    fn new(registry: &Registry) -> StoreInstruments {
        StoreInstruments {
            executions: registry.counter("store.executions"),
            trace_hits: registry.counter("store.trace.hit"),
            trace_disk_hits: registry.counter("store.trace.disk_hit"),
            trace_misses: registry.counter("store.trace.miss"),
            profile_hits: registry.counter("store.profile.hit"),
            profile_disk_hits: registry.counter("store.profile.disk_hit"),
            profile_misses: registry.counter("store.profile.miss"),
            evictions: registry.counter("store.evictions"),
            trace_hit_ns: registry.histogram("store.trace.hit_ns"),
            trace_miss_ns: registry.histogram("store.trace.miss_ns"),
            profile_hit_ns: registry.histogram("store.profile.hit_ns"),
            profile_miss_ns: registry.histogram("store.profile.miss_ns"),
        }
    }
}

struct Inner {
    programs: Mutex<Vec<(ProgramKey, Arc<Program>)>>,
    traces: Mutex<Lru<TraceKey, Arc<Trace>>>,
    profiles: Mutex<Lru<ProfileKey, Arc<WorkloadProfile>>>,
    trace_flight: Flight<TraceKey>,
    profile_flight: Flight<ProfileKey>,
    disk: Option<DiskStore>,
    registry: Registry,
    m: StoreInstruments,
}

impl Inner {
    fn with(capacity: Option<usize>, disk: Option<DiskStore>, registry: Registry) -> Inner {
        Inner {
            programs: Mutex::new(Vec::new()),
            traces: Mutex::new(Lru::new(capacity)),
            profiles: Mutex::new(Lru::new(capacity)),
            trace_flight: Flight::new(),
            profile_flight: Flight::new(),
            disk,
            m: StoreInstruments::new(&registry),
            registry,
        }
    }
}

impl Default for Inner {
    fn default() -> Inner {
        Inner::with(None, None, Registry::new())
    }
}

/// Thread-safe store of instantiated programs, recorded execution traces,
/// and sweep profiles — one functional execution per `(workload, size,
/// limit)`, replayed by every consumer.
///
/// Optionally bounded ([`with_capacity`](WorkloadStore::with_capacity))
/// and persistent ([`persistent`](WorkloadStore::persistent)); see the
/// module docs for the long-running-server properties.
///
/// # Example
///
/// ```
/// use mim_runner::{WorkloadSpec, WorkloadStore};
/// use mim_workloads::{mibench, WorkloadSize};
///
/// let store = WorkloadStore::new();
/// let spec = WorkloadSpec::from(mibench::sha());
/// let trace = store.trace(&spec, WorkloadSize::Tiny, None).unwrap();
/// // Second request replays the memoized recording — no re-execution.
/// let again = store.trace(&spec, WorkloadSize::Tiny, None).unwrap();
/// assert!(std::sync::Arc::ptr_eq(&trace, &again));
/// assert_eq!(store.stats().trace_hits, 1);
/// ```
#[derive(Clone, Default)]
pub struct WorkloadStore {
    inner: Arc<Inner>,
}

/// Pre-trace-layer name for [`WorkloadStore`], kept as an alias for
/// downstream code written against the PR-1 API.
pub type ProfileCache = WorkloadStore;

impl WorkloadStore {
    /// Creates an empty, unbounded, memory-only store.
    pub fn new() -> WorkloadStore {
        WorkloadStore::default()
    }

    /// Creates a store whose in-memory trace and profile maps each hold at
    /// most `capacity` entries, evicting least-recently-used entries
    /// beyond it (a capacity of 0 is treated as 1).
    ///
    /// Evicted entries are recomputed (or reloaded from the persistent
    /// store, when one is attached) on the next request, so results are
    /// byte-identical to an unbounded store — eviction trades wall-clock
    /// for bounded memory, never determinism. Program entries are not
    /// bounded: they are small and shared by every size variant.
    pub fn with_capacity(capacity: usize) -> WorkloadStore {
        WorkloadStore {
            inner: Arc::new(Inner::with(Some(capacity), None, Registry::new())),
        }
    }

    /// Creates a store backed by a persistent content-addressed
    /// [`DiskStore`] rooted at `dir`: every recorded trace and computed
    /// profile is written through, and misses consult the directory
    /// before computing — so repeated runs (and restarts) never
    /// re-execute anything previously seen.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] if the directory cannot be created.
    pub fn persistent(dir: impl Into<std::path::PathBuf>) -> Result<WorkloadStore, StoreError> {
        let registry = Registry::new();
        let disk = DiskStore::open_instrumented(dir, &registry)?;
        Ok(WorkloadStore {
            inner: Arc::new(Inner::with(None, Some(disk), registry)),
        })
    }

    /// [`persistent`](WorkloadStore::persistent) with an in-memory LRU
    /// bound ([`with_capacity`](WorkloadStore::with_capacity)) — the
    /// configuration a long-running server wants: bounded memory, with
    /// the disk store absorbing the working set.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] if the directory cannot be created.
    pub fn persistent_with_capacity(
        dir: impl Into<std::path::PathBuf>,
        capacity: usize,
    ) -> Result<WorkloadStore, StoreError> {
        let registry = Registry::new();
        let disk = DiskStore::open_instrumented(dir, &registry)?;
        Ok(WorkloadStore {
            inner: Arc::new(Inner::with(Some(capacity), Some(disk), registry)),
        })
    }

    /// The attached persistent store, if any.
    pub fn disk(&self) -> Option<&DiskStore> {
        self.inner.disk.as_ref()
    }

    /// The store's metrics registry: the [`StoreStats`] counters plus
    /// `store.*_ns` latency histograms (trace/profile hit and miss paths,
    /// persistent-store reads and writes). The registry is scoped to this
    /// store — cloned handles share it, unrelated stores do not.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// Returns the workload's program at `size`, instantiating it on first
    /// use.
    pub fn program(&self, spec: &WorkloadSpec, size: WorkloadSize) -> Arc<Program> {
        let key = (spec.name().to_string(), size);
        if let Some((_, p)) = self
            .inner
            .programs
            .lock()
            .expect("program cache poisoned")
            .iter()
            .find(|(k, _)| *k == key)
        {
            return Arc::clone(p);
        }
        // Generate outside the lock; kernels are deterministic, so a racing
        // duplicate generation is wasted work but not an inconsistency.
        let program = spec.program_at(size);
        let mut programs = self.inner.programs.lock().expect("program cache poisoned");
        if let Some((_, p)) = programs.iter().find(|(k, _)| *k == key) {
            return Arc::clone(p);
        }
        programs.push((key, Arc::clone(&program)));
        program
    }

    /// Returns the workload's recorded execution trace (at most `limit`
    /// retired instructions), recording it on first use — the **single**
    /// functional execution every downstream timing pass replays.
    ///
    /// Misses consult the persistent store first (when attached), and
    /// concurrent requests for the same missing trace coalesce onto one
    /// recording.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] if the program faults while recording.
    pub fn trace(
        &self,
        spec: &WorkloadSpec,
        size: WorkloadSize,
        limit: Option<u64>,
    ) -> Result<Arc<Trace>, EvalError> {
        let started = clock();
        let key = (spec.name().to_string(), size, limit);
        if let Some(t) = self.cached_trace(&key) {
            self.inner.m.trace_hits.inc();
            self.inner.m.trace_hit_ns.observe_since(started);
            return Ok(t);
        }
        if let Some(t) = self
            .inner
            .trace_flight
            .claim(&key, || self.cached_trace(&key))
        {
            self.inner.m.trace_hits.inc();
            self.inner.m.trace_hit_ns.observe_since(started);
            return Ok(t);
        }
        // This thread owns the computation; every path must release the
        // in-flight marker.
        let outcome = self.load_or_record_trace(spec, size, limit);
        if let Ok(trace) = &outcome {
            self.insert_trace(key.clone(), Arc::clone(trace));
        }
        self.inner.trace_flight.release(&key);
        self.inner.m.trace_miss_ns.observe_since(started);
        outcome
    }

    /// Disk-then-record miss path for [`trace`](WorkloadStore::trace).
    fn load_or_record_trace(
        &self,
        spec: &WorkloadSpec,
        size: WorkloadSize,
        limit: Option<u64>,
    ) -> Result<Arc<Trace>, EvalError> {
        let program = self.program(spec, size);
        if let Some(disk) = &self.inner.disk {
            // Damaged entries degrade to a recompute (and get rewritten);
            // persistence must never take an evaluation down.
            if let Ok(Some(trace)) = disk.get_trace(&program, limit) {
                self.inner.m.trace_disk_hits.inc();
                return Ok(Arc::new(trace));
            }
        }
        self.inner.m.trace_misses.inc();
        self.inner.m.executions.inc();
        let trace = Trace::record(&program, limit)
            .map_err(|e| EvalError::vm(spec.name(), "recorder", &e))?;
        if let Some(disk) = &self.inner.disk {
            disk.put_trace(&program, limit, &trace).ok();
        }
        Ok(Arc::new(trace))
    }

    fn insert_trace(&self, key: TraceKey, trace: Arc<Trace>) {
        let evicted = self
            .inner
            .traces
            .lock()
            .expect("trace cache poisoned")
            .insert(key, trace);
        self.inner.m.evictions.add(evicted);
    }

    fn cached_trace(&self, key: &TraceKey) -> Option<Arc<Trace>> {
        self.inner
            .traces
            .lock()
            .expect("trace cache poisoned")
            .get(key)
    }

    /// Returns the workload's one-pass sweep profile for the given
    /// candidate lists, computing it on first use.
    ///
    /// When the store already holds the workload's recording (i.e. a
    /// repeat consumer like the simulator shares this store), the profile
    /// replays it; otherwise the profiler streams one live functional
    /// pass directly — same single execution, but no O(trace) memory for
    /// profile-only workloads. Misses consult the persistent store first
    /// (when attached), and concurrent requests for the same missing
    /// profile coalesce onto one pass.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] if the program faults while profiling.
    pub fn profile(
        &self,
        spec: &WorkloadSpec,
        size: WorkloadSize,
        limit: Option<u64>,
        hierarchy: &HierarchyConfig,
        l2s: &[CacheConfig],
        predictors: &[PredictorConfig],
    ) -> Result<Arc<WorkloadProfile>, EvalError> {
        let started = clock();
        let key = ProfileKey {
            workload: spec.name().to_string(),
            size,
            limit,
            hierarchy: hierarchy.clone(),
            l2s: l2s.to_vec(),
            predictors: predictors.to_vec(),
        };
        if let Some(p) = self.cached_profile(&key) {
            self.inner.m.profile_hits.inc();
            self.inner.m.profile_hit_ns.observe_since(started);
            return Ok(p);
        }
        if let Some(p) = self
            .inner
            .profile_flight
            .claim(&key, || self.cached_profile(&key))
        {
            self.inner.m.profile_hits.inc();
            self.inner.m.profile_hit_ns.observe_since(started);
            return Ok(p);
        }
        let outcome = self.load_or_compute_profile(spec, &key);
        if let Ok(profile) = &outcome {
            let evicted = self
                .inner
                .profiles
                .lock()
                .expect("profile cache poisoned")
                .insert(key.clone(), Arc::clone(profile));
            self.inner.m.evictions.add(evicted);
        }
        self.inner.profile_flight.release(&key);
        self.inner.m.profile_miss_ns.observe_since(started);
        outcome
    }

    /// Disk-then-compute miss path for [`profile`](WorkloadStore::profile).
    fn load_or_compute_profile(
        &self,
        spec: &WorkloadSpec,
        key: &ProfileKey,
    ) -> Result<Arc<WorkloadProfile>, EvalError> {
        let program = self.program(spec, key.size);
        if let Some(disk) = &self.inner.disk {
            if let Ok(Some(mut profile)) = disk.get_profile(
                &program,
                key.limit,
                &key.hierarchy,
                &key.l2s,
                &key.predictors,
            ) {
                // Entries are shared by program *content*; take this
                // program's name so loads are indistinguishable from
                // computes even across renamed copies.
                profile.name = program.name().to_string();
                self.inner.m.profile_disk_hits.inc();
                return Ok(Arc::new(profile));
            }
        }
        self.inner.m.profile_misses.inc();
        let profiler = SweepProfiler::new(
            key.hierarchy.clone(),
            key.l2s.clone(),
            key.predictors.clone(),
        );
        let trace_key = (spec.name().to_string(), key.size, key.limit);
        let profile = match self.cached_trace(&trace_key) {
            Some(trace) => {
                let mut replay = trace
                    .replay(&program)
                    .map_err(|e| EvalError::trace(spec.name(), "profiler", &e))?;
                profiler
                    .profile_source(&mut replay)
                    .map_err(|e| EvalError::trace(spec.name(), "profiler", &e))?
            }
            None => {
                self.inner.m.executions.inc();
                profiler
                    .profile(&program, key.limit)
                    .map_err(|e| EvalError::vm(spec.name(), "profiler", &e))?
            }
        };
        if let Some(disk) = &self.inner.disk {
            disk.put_profile(
                &program,
                key.limit,
                &key.hierarchy,
                &key.l2s,
                &key.predictors,
                &profile,
            )
            .ok();
        }
        Ok(Arc::new(profile))
    }

    fn cached_profile(&self, key: &ProfileKey) -> Option<Arc<WorkloadProfile>> {
        self.inner
            .profiles
            .lock()
            .expect("profile cache poisoned")
            .get(key)
    }

    /// Number of cached profiles (used by tests to assert the one-pass
    /// invariant).
    pub fn cached_profiles(&self) -> usize {
        self.inner
            .profiles
            .lock()
            .expect("profile cache poisoned")
            .len()
    }

    /// Number of functional `Vm` executions this store has triggered
    /// (trace recordings plus live streaming profile passes).
    ///
    /// This is the per-store, test-safe counterpart of the process-global
    /// [`mim_isa::functional_executions`] counter: because it only counts
    /// executions *this* store caused, record-once assertions hold no
    /// matter what other tests run concurrently in the same process.
    /// Replayed profiles, simulations, MLP estimates, and persistent-store
    /// loads never increment it.
    pub fn functional_executions(&self) -> u64 {
        self.inner.m.executions.get()
    }

    /// Number of recorded traces (used by tests to assert the record-once
    /// invariant).
    pub fn cached_traces(&self) -> usize {
        self.inner
            .traces
            .lock()
            .expect("trace cache poisoned")
            .len()
    }

    /// A consistent snapshot of the store's counters.
    ///
    /// The fields are read back from the same [`Registry`] instruments the
    /// hot paths record into (see [`registry`](WorkloadStore::registry)),
    /// so `stats()` and a metrics scrape are two views of one source of
    /// truth.
    pub fn stats(&self) -> StoreStats {
        let m = &self.inner.m;
        StoreStats {
            trace_hits: m.trace_hits.get(),
            trace_disk_hits: m.trace_disk_hits.get(),
            trace_misses: m.trace_misses.get(),
            profile_hits: m.profile_hits.get(),
            profile_disk_hits: m.profile_disk_hits.get(),
            profile_misses: m.profile_misses.get(),
            evictions: m.evictions.get(),
            bytes_persisted: self.inner.disk.as_ref().map_or(0, DiskStore::bytes_written),
            functional_executions: m.executions.get(),
        }
    }
}
