//! Shared memoization of programs, recorded traces, and one-pass profiles.
//!
//! The paper's framework (§2.1) separates machine-independent workload
//! behavior from machine-dependent timing; [`WorkloadStore`] is that
//! invariant made concrete for the whole stack. Per `(workload, size,
//! limit)` it memoizes the instantiated [`Program`], the **one** recorded
//! functional execution (a [`Trace`]), and the one-pass sweep
//! [`WorkloadProfile`] replayed from it — so every evaluator, every design
//! point, and every search strategy of an experiment shares a single
//! functional execution per workload. The store is cheaply cloneable (an
//! `Arc` handle) and thread-safe.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mim_bpred::PredictorConfig;
use mim_cache::{CacheConfig, HierarchyConfig};
use mim_isa::Program;
use mim_profile::{SweepProfiler, WorkloadProfile};
use mim_trace::Trace;
use mim_workloads::WorkloadSize;

use crate::result::EvalError;
use crate::spec::WorkloadSpec;

/// Identifies one profiling pass: workload, size, truncation, and the
/// sweep's candidate lists.
#[derive(Clone, PartialEq)]
struct ProfileKey {
    workload: String,
    size: WorkloadSize,
    limit: Option<u64>,
    hierarchy: HierarchyConfig,
    l2s: Vec<CacheConfig>,
    predictors: Vec<PredictorConfig>,
}

type ProgramKey = (String, WorkloadSize);

/// Identifies one recording: workload, size, and instruction limit.
type TraceKey = (String, WorkloadSize, Option<u64>);

#[derive(Default)]
struct Inner {
    programs: Mutex<Vec<(ProgramKey, Arc<Program>)>>,
    traces: Mutex<Vec<(TraceKey, Arc<Trace>)>>,
    profiles: Mutex<Vec<(ProfileKey, Arc<WorkloadProfile>)>>,
    /// Functional `Vm` executions this store has triggered (recordings and
    /// live profiling passes). Unlike `mim_isa::functional_executions`,
    /// this counter is scoped to the store, so record-once assertions are
    /// immune to unrelated VM activity elsewhere in the test process.
    executions: AtomicU64,
}

/// Thread-safe store of instantiated programs, recorded execution traces,
/// and sweep profiles — one functional execution per `(workload, size,
/// limit)`, replayed by every consumer.
///
/// Entry counts are small (one per workload × size × sweep), so lookups
/// are linear scans — no hashing requirements on the config types.
///
/// # Example
///
/// ```
/// use mim_runner::{WorkloadSpec, WorkloadStore};
/// use mim_workloads::{mibench, WorkloadSize};
///
/// let store = WorkloadStore::new();
/// let spec = WorkloadSpec::from(mibench::sha());
/// let trace = store.trace(&spec, WorkloadSize::Tiny, None).unwrap();
/// // Second request replays the memoized recording — no re-execution.
/// let again = store.trace(&spec, WorkloadSize::Tiny, None).unwrap();
/// assert!(std::sync::Arc::ptr_eq(&trace, &again));
/// ```
#[derive(Clone, Default)]
pub struct WorkloadStore {
    inner: Arc<Inner>,
}

/// Pre-trace-layer name for [`WorkloadStore`], kept as an alias for
/// downstream code written against the PR-1 API.
pub type ProfileCache = WorkloadStore;

impl WorkloadStore {
    /// Creates an empty store.
    pub fn new() -> WorkloadStore {
        WorkloadStore::default()
    }

    /// Returns the workload's program at `size`, instantiating it on first
    /// use.
    pub fn program(&self, spec: &WorkloadSpec, size: WorkloadSize) -> Arc<Program> {
        let key = (spec.name().to_string(), size);
        if let Some((_, p)) = self
            .inner
            .programs
            .lock()
            .expect("program cache poisoned")
            .iter()
            .find(|(k, _)| *k == key)
        {
            return Arc::clone(p);
        }
        // Generate outside the lock; kernels are deterministic, so a racing
        // duplicate generation is wasted work but not an inconsistency.
        let program = spec.program_at(size);
        let mut programs = self.inner.programs.lock().expect("program cache poisoned");
        if let Some((_, p)) = programs.iter().find(|(k, _)| *k == key) {
            return Arc::clone(p);
        }
        programs.push((key, Arc::clone(&program)));
        program
    }

    /// Returns the workload's recorded execution trace (at most `limit`
    /// retired instructions), recording it on first use — the **single**
    /// functional execution every downstream timing pass replays.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] if the program faults while recording.
    pub fn trace(
        &self,
        spec: &WorkloadSpec,
        size: WorkloadSize,
        limit: Option<u64>,
    ) -> Result<Arc<Trace>, EvalError> {
        let key = (spec.name().to_string(), size, limit);
        if let Some(t) = self.cached_trace(&key) {
            return Ok(t);
        }
        let program = self.program(spec, size);
        self.inner.executions.fetch_add(1, Ordering::Relaxed);
        let trace = Trace::record(&program, limit)
            .map_err(|e| EvalError::vm(spec.name(), "recorder", &e))?;
        let trace = Arc::new(trace);
        let mut traces = self.inner.traces.lock().expect("trace cache poisoned");
        if let Some((_, t)) = traces.iter().find(|(k, _)| *k == key) {
            return Ok(Arc::clone(t));
        }
        traces.push((key, Arc::clone(&trace)));
        Ok(trace)
    }

    fn cached_trace(&self, key: &TraceKey) -> Option<Arc<Trace>> {
        self.inner
            .traces
            .lock()
            .expect("trace cache poisoned")
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, t)| Arc::clone(t))
    }

    /// Returns the workload's one-pass sweep profile for the given
    /// candidate lists, computing it on first use.
    ///
    /// When the store already holds the workload's recording (i.e. a
    /// repeat consumer like the simulator shares this store), the profile
    /// replays it; otherwise the profiler streams one live functional
    /// pass directly — same single execution, but no O(trace) memory for
    /// profile-only workloads.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] if the program faults while profiling.
    pub fn profile(
        &self,
        spec: &WorkloadSpec,
        size: WorkloadSize,
        limit: Option<u64>,
        hierarchy: &HierarchyConfig,
        l2s: &[CacheConfig],
        predictors: &[PredictorConfig],
    ) -> Result<Arc<WorkloadProfile>, EvalError> {
        let key = ProfileKey {
            workload: spec.name().to_string(),
            size,
            limit,
            hierarchy: hierarchy.clone(),
            l2s: l2s.to_vec(),
            predictors: predictors.to_vec(),
        };
        if let Some((_, p)) = self
            .inner
            .profiles
            .lock()
            .expect("profile cache poisoned")
            .iter()
            .find(|(k, _)| *k == key)
        {
            return Ok(Arc::clone(p));
        }
        let program = self.program(spec, size);
        let profiler = SweepProfiler::new(hierarchy.clone(), l2s.to_vec(), predictors.to_vec());
        let trace_key = (spec.name().to_string(), size, limit);
        let profile = match self.cached_trace(&trace_key) {
            Some(trace) => {
                let mut replay = trace
                    .replay(&program)
                    .map_err(|e| EvalError::trace(spec.name(), "profiler", &e))?;
                profiler
                    .profile_source(&mut replay)
                    .map_err(|e| EvalError::trace(spec.name(), "profiler", &e))?
            }
            None => {
                self.inner.executions.fetch_add(1, Ordering::Relaxed);
                profiler
                    .profile(&program, limit)
                    .map_err(|e| EvalError::vm(spec.name(), "profiler", &e))?
            }
        };
        let profile = Arc::new(profile);
        let mut profiles = self.inner.profiles.lock().expect("profile cache poisoned");
        if let Some((_, p)) = profiles.iter().find(|(k, _)| *k == key) {
            return Ok(Arc::clone(p));
        }
        profiles.push((key, Arc::clone(&profile)));
        Ok(profile)
    }

    /// Number of cached profiles (used by tests to assert the one-pass
    /// invariant).
    pub fn cached_profiles(&self) -> usize {
        self.inner
            .profiles
            .lock()
            .expect("profile cache poisoned")
            .len()
    }

    /// Number of functional `Vm` executions this store has triggered
    /// (trace recordings plus live streaming profile passes).
    ///
    /// This is the per-store, test-safe counterpart of the process-global
    /// [`mim_isa::functional_executions`] counter: because it only counts
    /// executions *this* store caused, record-once assertions hold no
    /// matter what other tests run concurrently in the same process.
    /// Replayed profiles, simulations, and MLP estimates never increment
    /// it.
    pub fn functional_executions(&self) -> u64 {
        self.inner.executions.load(Ordering::Relaxed)
    }

    /// Number of recorded traces (used by tests to assert the record-once
    /// invariant).
    pub fn cached_traces(&self) -> usize {
        self.inner
            .traces
            .lock()
            .expect("trace cache poisoned")
            .len()
    }
}
