//! The object-safe [`Evaluator`] trait and its three implementations.
//!
//! Every evaluator maps `(workload, size)` to a unified [`EvalResult`];
//! model-vs-simulation comparison is a generic diff of two results rather
//! than bespoke per-binary wiring. All three implementations share a
//! [`WorkloadStore`], so a workload is functionally executed exactly once
//! per sweep — recorded into a trace that is replayed for profiling,
//! simulation, and MLP estimation alike, no matter how many evaluators
//! and design points consume it (the paper's §2.1 framework applied to
//! the whole stack).

use std::sync::Arc;
use std::time::Instant;

use mim_bpred::PredictorConfig;
use mim_cache::{CacheConfig, HierarchyConfig};
use mim_core::{
    CpiStack, DesignPoint, DesignSpace, MachineConfig, MechanisticModel, ModelInputs, OooConfig,
    OooModel, StackComponent,
};
use mim_pipeline::{PipelineSim, SimResult};
use mim_power::{Activity, EnergyModel};
use mim_workloads::WorkloadSize;

use mim_trace::Sampling;

use crate::result::{BranchSummary, EvalError, EvalKind, EvalResult, SamplingSummary};
use crate::spec::WorkloadSpec;
use crate::store::WorkloadStore;

/// An object-safe performance evaluator: anything that can score a
/// workload on its machine configuration.
///
/// Implementations are [`ModelEvaluator`] (the mechanistic model),
/// [`SimEvaluator`] (cycle-accurate simulation) and [`OooEvaluator`] (the
/// out-of-order interval model); downstream code can add its own.
///
/// # Example
///
/// ```
/// use mim_core::MachineConfig;
/// use mim_runner::{Evaluator, ModelEvaluator, SimEvaluator, WorkloadSpec};
/// use mim_workloads::{mibench, WorkloadSize};
///
/// let machine = MachineConfig::default_config();
/// let evaluators: Vec<Box<dyn Evaluator>> = vec![
///     Box::new(ModelEvaluator::new(&machine)),
///     Box::new(SimEvaluator::new(&machine)),
/// ];
/// let spec = WorkloadSpec::from(mibench::sha());
/// for e in &evaluators {
///     let r = e.evaluate(&spec, WorkloadSize::Tiny).unwrap();
///     assert!(r.cpi >= 0.25); // cannot beat N/W on a 4-wide machine
/// }
/// ```
pub trait Evaluator: Send + Sync {
    /// Display name (unique within an experiment).
    fn name(&self) -> &str;

    /// Which evaluator family this is.
    fn kind(&self) -> EvalKind;

    /// Evaluates one workload at one size.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] if the program faults while profiling or
    /// simulating.
    fn evaluate(
        &self,
        workload: &WorkloadSpec,
        size: WorkloadSize,
    ) -> Result<EvalResult, EvalError>;
}

/// The (hierarchy, candidate-lists, selected-indices) context that lets an
/// evaluator share one profiling pass across an entire design space.
#[derive(Clone)]
struct SweepContext {
    hierarchy: HierarchyConfig,
    l2s: Vec<CacheConfig>,
    predictors: Vec<PredictorConfig>,
    l2_index: usize,
    predictor_index: usize,
}

impl SweepContext {
    /// Degenerate context: profile exactly this machine's L2/predictor.
    fn single(machine: &MachineConfig) -> SweepContext {
        SweepContext {
            hierarchy: machine.hierarchy.clone(),
            l2s: vec![machine.hierarchy.l2.clone()],
            predictors: vec![machine.predictor.clone()],
            l2_index: 0,
            predictor_index: 0,
        }
    }

    /// Context for one point of a design space: profile all candidates
    /// once, select this point's.
    fn for_point(space: &DesignSpace, point: &DesignPoint) -> SweepContext {
        SweepContext {
            hierarchy: space.base().hierarchy.clone(),
            l2s: space.l2_configs().to_vec(),
            predictors: space.predictor_configs().to_vec(),
            l2_index: point.l2_index,
            predictor_index: point.predictor_index,
        }
    }

    fn inputs(
        &self,
        store: &WorkloadStore,
        spec: &WorkloadSpec,
        size: WorkloadSize,
        limit: Option<u64>,
    ) -> Result<ModelInputs, EvalError> {
        let profile = store.profile(
            spec,
            size,
            limit,
            &self.hierarchy,
            &self.l2s,
            &self.predictors,
        )?;
        Ok(profile.inputs_for(self.l2_index, self.predictor_index))
    }
}

#[allow(clippy::too_many_arguments)]
fn result_from_stack(
    spec: &WorkloadSpec,
    name: &str,
    kind: EvalKind,
    machine: &MachineConfig,
    machine_index: usize,
    inputs: &ModelInputs,
    stack: CpiStack,
    energy: bool,
    wall_seconds: f64,
) -> EvalResult {
    let energy = energy.then(|| {
        EnergyModel::new(machine).evaluate(&Activity::from_model(inputs, stack.total_cycles()))
    });
    EvalResult {
        workload: spec.name().to_string(),
        evaluator: name.to_string(),
        kind,
        machine_id: machine.id(),
        machine_index,
        instructions: inputs.num_insts,
        cycles: stack.total_cycles(),
        cpi: stack.cpi(),
        misses: Some(inputs.misses),
        branch: Some(BranchSummary {
            branches: inputs.branch.branches,
            mispredicts: inputs.branch.mispredicts,
            taken_correct: inputs.branch.taken_correct,
        }),
        stack: Some(stack),
        energy,
        sampling: None,
        timeline: None,
        wall_seconds,
    }
}

/// Transformation applied to the profiled [`ModelInputs`] before the model
/// evaluates them — the per-term *profile swap hook*.
///
/// Differential validation uses it to substitute externally measured
/// statistics (e.g. the simulator's miss counts) into the profile one term
/// at a time, isolating how much of a model-vs-simulation disagreement is
/// a *measurement* difference versus an *approximation* difference.
pub type InputsMap = Arc<dyn Fn(ModelInputs) -> ModelInputs + Send + Sync>;

/// Evaluates workloads with the paper's mechanistic in-order model: one
/// cached profiling pass, then closed-form prediction per design point.
#[derive(Clone)]
pub struct ModelEvaluator {
    machine: MachineConfig,
    sweep: SweepContext,
    store: WorkloadStore,
    limit: Option<u64>,
    name: String,
    ablated: Vec<StackComponent>,
    energy: bool,
    inputs_map: Option<InputsMap>,
}

impl ModelEvaluator {
    /// Model evaluator for a single machine configuration.
    pub fn new(machine: &MachineConfig) -> ModelEvaluator {
        ModelEvaluator {
            machine: machine.clone(),
            sweep: SweepContext::single(machine),
            store: WorkloadStore::new(),
            limit: None,
            name: EvalKind::Model.label().to_string(),
            ablated: Vec::new(),
            energy: false,
            inputs_map: None,
        }
    }

    /// Model evaluator for one point of a design space. All points of the
    /// same space share a single recording + profiling pass per workload
    /// (provided they share a [`WorkloadStore`], see [`with_cache`]).
    ///
    /// [`with_cache`]: ModelEvaluator::with_cache
    pub fn for_point(space: &DesignSpace, point: &DesignPoint) -> ModelEvaluator {
        ModelEvaluator {
            machine: point.machine.clone(),
            sweep: SweepContext::for_point(space, point),
            store: WorkloadStore::new(),
            limit: None,
            name: EvalKind::Model.label().to_string(),
            ablated: Vec::new(),
            energy: false,
            inputs_map: None,
        }
    }

    /// Shares a workload store (recordings + profiles) with other
    /// evaluators.
    pub fn with_cache(mut self, store: WorkloadStore) -> ModelEvaluator {
        self.store = store;
        self
    }

    /// Truncates profiling to `limit` retired instructions.
    pub fn with_limit(mut self, limit: Option<u64>) -> ModelEvaluator {
        self.limit = limit;
        self
    }

    /// Overrides the evaluator's display name.
    pub fn with_name(mut self, name: impl Into<String>) -> ModelEvaluator {
        self.name = name.into();
        self
    }

    /// Zeroes the given penalty terms before summing the stack (the
    /// ablation study's knob).
    pub fn with_ablation(mut self, ablated: Vec<StackComponent>) -> ModelEvaluator {
        self.ablated = ablated;
        self
    }

    /// Also evaluates the energy model, populating
    /// [`EvalResult::energy`].
    pub fn with_energy(mut self, energy: bool) -> ModelEvaluator {
        self.energy = energy;
        self
    }

    /// Installs a profile-swap hook: the profiled [`ModelInputs`] pass
    /// through `map` before the model evaluates them.
    ///
    /// This is the substitution point for differential validation — swap
    /// simulator-measured miss or branch statistics into the profile one
    /// term at a time and re-predict, attributing disagreement to the
    /// specific input term that moved the prediction.
    ///
    /// # Example
    ///
    /// ```
    /// use mim_core::MachineConfig;
    /// use mim_runner::{Evaluator, ModelEvaluator, WorkloadSpec};
    /// use mim_workloads::{mibench, WorkloadSize};
    ///
    /// let machine = MachineConfig::default_config();
    /// let pessimist = ModelEvaluator::new(&machine)
    ///     .with_name("model+10%misses")
    ///     .with_inputs_map(|mut inputs| {
    ///         inputs.misses.l1d_misses += inputs.misses.l1d_misses / 10;
    ///         inputs
    ///     });
    /// let spec = WorkloadSpec::from(mibench::sha());
    /// let base = ModelEvaluator::new(&machine)
    ///     .evaluate(&spec, WorkloadSize::Tiny)
    ///     .unwrap();
    /// let swapped = pessimist.evaluate(&spec, WorkloadSize::Tiny).unwrap();
    /// assert!(swapped.cpi >= base.cpi);
    /// ```
    pub fn with_inputs_map(
        mut self,
        map: impl Fn(ModelInputs) -> ModelInputs + Send + Sync + 'static,
    ) -> ModelEvaluator {
        self.inputs_map = Some(Arc::new(map));
        self
    }
}

impl Evaluator for ModelEvaluator {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> EvalKind {
        EvalKind::Model
    }

    fn evaluate(
        &self,
        workload: &WorkloadSpec,
        size: WorkloadSize,
    ) -> Result<EvalResult, EvalError> {
        let t0 = Instant::now();
        let mut inputs = self.sweep.inputs(&self.store, workload, size, self.limit)?;
        if let Some(map) = &self.inputs_map {
            inputs = map(inputs);
        }
        let model = MechanisticModel::new(&self.machine);
        let stack = if self.ablated.is_empty() {
            model.predict(&inputs)
        } else {
            model.predict_ablated(&inputs, &self.ablated)
        };
        Ok(result_from_stack(
            workload,
            &self.name,
            EvalKind::Model,
            &self.machine,
            0,
            &inputs,
            stack,
            self.energy,
            t0.elapsed().as_secs_f64(),
        ))
    }
}

/// Evaluates workloads with the cycle-accurate in-order pipeline
/// simulator — the "detailed simulation" reference the model is validated
/// against.
#[derive(Clone)]
pub struct SimEvaluator {
    machine: MachineConfig,
    sweep: SweepContext,
    store: WorkloadStore,
    limit: Option<u64>,
    name: String,
    energy: bool,
    timeline: Option<u64>,
}

impl SimEvaluator {
    /// Simulator evaluator for a single machine configuration.
    pub fn new(machine: &MachineConfig) -> SimEvaluator {
        SimEvaluator {
            machine: machine.clone(),
            sweep: SweepContext::single(machine),
            store: WorkloadStore::new(),
            limit: None,
            name: EvalKind::Sim.label().to_string(),
            energy: false,
            timeline: None,
        }
    }

    /// Simulator evaluator for one point of a design space.
    pub fn for_point(space: &DesignSpace, point: &DesignPoint) -> SimEvaluator {
        SimEvaluator {
            machine: point.machine.clone(),
            sweep: SweepContext::for_point(space, point),
            ..SimEvaluator::new(&point.machine)
        }
    }

    /// Shares a workload store: the simulator replays the store's one
    /// recorded execution per workload (and reads the profile from it when
    /// energy evaluation needs the instruction mix).
    pub fn with_cache(mut self, store: WorkloadStore) -> SimEvaluator {
        self.store = store;
        self
    }

    /// Truncates simulation to `limit` retired instructions.
    pub fn with_limit(mut self, limit: Option<u64>) -> SimEvaluator {
        self.limit = limit;
        self
    }

    /// Overrides the evaluator's display name.
    pub fn with_name(mut self, name: impl Into<String>) -> SimEvaluator {
        self.name = name.into();
        self
    }

    /// Also evaluates the energy model (profiles the workload for the
    /// instruction mix the energy model needs).
    pub fn with_energy(mut self, energy: bool) -> SimEvaluator {
        self.energy = energy;
        self
    }

    /// Also captures a per-interval [`mim_core::CpiTimeline`] at the given
    /// instruction-interval width, populating [`EvalResult::timeline`].
    /// `None` (the default) keeps the simulator timeline-free.
    pub fn with_timeline(mut self, interval: Option<u64>) -> SimEvaluator {
        self.timeline = interval;
        self
    }

    fn result_from_sim(
        &self,
        spec: &WorkloadSpec,
        sim: &SimResult,
        inputs: Option<&ModelInputs>,
        wall_seconds: f64,
    ) -> EvalResult {
        let energy = inputs.map(|inputs| {
            EnergyModel::new(&self.machine).evaluate(&Activity::from_sim(sim, inputs))
        });
        EvalResult {
            workload: spec.name().to_string(),
            evaluator: self.name.clone(),
            kind: EvalKind::Sim,
            machine_id: self.machine.id(),
            machine_index: 0,
            instructions: sim.instructions,
            cycles: sim.cycles as f64,
            cpi: sim.cpi(),
            stack: None,
            misses: Some(sim.misses),
            branch: Some(BranchSummary {
                branches: sim.branches,
                mispredicts: sim.mispredicts,
                taken_correct: sim.taken_correct,
            }),
            energy,
            sampling: None,
            timeline: sim.timeline.clone(),
            wall_seconds,
        }
    }
}

impl Evaluator for SimEvaluator {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> EvalKind {
        EvalKind::Sim
    }

    fn evaluate(
        &self,
        workload: &WorkloadSpec,
        size: WorkloadSize,
    ) -> Result<EvalResult, EvalError> {
        let t0 = Instant::now();
        // Pure timing pass: replay the store's one recorded functional
        // execution instead of re-interpreting the program per design
        // point.
        let program = self.store.program(workload, size);
        let trace = self.store.trace(workload, size, self.limit)?;
        let mut replay = trace
            .replay(&program)
            .map_err(|e| EvalError::trace(workload.name(), &self.name, &e))?;
        let mut pipeline = PipelineSim::new(&self.machine);
        if let Some(interval) = self.timeline {
            pipeline = pipeline.with_timeline(interval);
        }
        let sim = pipeline
            .simulate_source(&mut replay)
            .map_err(|e| EvalError::trace(workload.name(), &self.name, &e))?;
        let inputs = if self.energy {
            Some(self.sweep.inputs(&self.store, workload, size, self.limit)?)
        } else {
            None
        };
        Ok(self.result_from_sim(workload, &sim, inputs.as_ref(), t0.elapsed().as_secs_f64()))
    }
}

/// Evaluates workloads with the sampled pipeline simulator: detailed
/// timing on the sampling plan's periodic windows, functional warming of
/// caches and the branch predictor between them, and a CLT 95% confidence
/// interval over per-unit CPIs reported in [`EvalResult::sampling`].
///
/// When the shared [`WorkloadStore`] has a persistent [`DiskStore`]
/// attached, the trace is replayed **incrementally from disk**
/// ([`DiskStore::stream_trace`]) so evaluation memory stays bounded by
/// the stream's fixed chunk buffers — the path for streams too long to
/// materialize. Without one it replays the store's in-memory recording;
/// both paths walk byte-identical event streams.
///
/// The default display name encodes the sampling geometry
/// (`sampled-p1000-l100-w900-o100`), so results from different plans
/// never collide in memoized experiment cells.
///
/// [`DiskStore`]: crate::DiskStore
/// [`DiskStore::stream_trace`]: crate::DiskStore::stream_trace
#[derive(Clone)]
pub struct SampledSimEvaluator {
    machine: MachineConfig,
    sweep: SweepContext,
    store: WorkloadStore,
    limit: Option<u64>,
    name: String,
    sampling: Sampling,
    energy: bool,
    timeline: Option<u64>,
}

impl SampledSimEvaluator {
    /// Sampled evaluator for a single machine configuration with the
    /// default 1-in-10 plan ([`Sampling::default_plan`]).
    pub fn new(machine: &MachineConfig) -> SampledSimEvaluator {
        let sampling = Sampling::default_plan();
        SampledSimEvaluator {
            machine: machine.clone(),
            sweep: SweepContext::single(machine),
            store: WorkloadStore::new(),
            limit: None,
            name: SampledSimEvaluator::plan_name(sampling),
            sampling,
            energy: false,
            timeline: None,
        }
    }

    /// Sampled evaluator for one point of a design space.
    pub fn for_point(space: &DesignSpace, point: &DesignPoint) -> SampledSimEvaluator {
        SampledSimEvaluator {
            machine: point.machine.clone(),
            sweep: SweepContext::for_point(space, point),
            ..SampledSimEvaluator::new(&point.machine)
        }
    }

    fn plan_name(s: Sampling) -> String {
        format!(
            "sampled-p{}-l{}-w{}-o{}",
            s.period(),
            s.length(),
            s.warmup(),
            s.offset()
        )
    }

    /// Shares a workload store with other evaluators.
    pub fn with_cache(mut self, store: WorkloadStore) -> SampledSimEvaluator {
        self.store = store;
        self
    }

    /// Truncates the walked stream to `limit` retired instructions.
    pub fn with_limit(mut self, limit: Option<u64>) -> SampledSimEvaluator {
        self.limit = limit;
        self
    }

    /// Overrides the evaluator's display name.
    pub fn with_name(mut self, name: impl Into<String>) -> SampledSimEvaluator {
        self.name = name.into();
        self
    }

    /// Replaces the sampling plan (and, if the name is still the default
    /// geometry-encoded one, renames the evaluator to match).
    pub fn with_sampling(mut self, sampling: Sampling) -> SampledSimEvaluator {
        if self.name == SampledSimEvaluator::plan_name(self.sampling) {
            self.name = SampledSimEvaluator::plan_name(sampling);
        }
        self.sampling = sampling;
        self
    }

    /// Also evaluates the energy model (profiles the workload for the
    /// instruction mix the energy model needs).
    pub fn with_energy(mut self, energy: bool) -> SampledSimEvaluator {
        self.energy = energy;
        self
    }

    /// Also captures a per-interval [`mim_core::CpiTimeline`] over the
    /// measured windows, walked-position-aligned with a full run's
    /// timeline at the same interval width (see
    /// [`PipelineSim::with_timeline`]).
    pub fn with_timeline(mut self, interval: Option<u64>) -> SampledSimEvaluator {
        self.timeline = interval;
        self
    }

    fn simulate(
        &self,
        workload: &WorkloadSpec,
        size: WorkloadSize,
    ) -> Result<SimResult, EvalError> {
        let program = self.store.program(workload, size);
        let mut sim = PipelineSim::new(&self.machine);
        if let Some(interval) = self.timeline {
            sim = sim.with_timeline(interval);
        }
        // Prefer the persistent store's incremental read path: O(chunk)
        // memory instead of O(trace). A damaged entry degrades to the
        // materialized path, like every other DiskStore read.
        if let Some(stream) = self
            .store
            .disk()
            .and_then(|disk| disk.stream_trace(&program, self.limit).ok().flatten())
        {
            let mut stream = stream.with_sampling(self.sampling);
            return sim
                .simulate_sampled(&mut stream)
                .map_err(|e| EvalError::trace(workload.name(), &self.name, &e));
        }
        let trace = self.store.trace(workload, size, self.limit)?;
        let mut replay = trace
            .replay(&program)
            .map_err(|e| EvalError::trace(workload.name(), &self.name, &e))?
            .with_sampling(self.sampling);
        sim.simulate_sampled(&mut replay)
            .map_err(|e| EvalError::trace(workload.name(), &self.name, &e))
    }
}

impl Evaluator for SampledSimEvaluator {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> EvalKind {
        EvalKind::Sampled
    }

    fn evaluate(
        &self,
        workload: &WorkloadSpec,
        size: WorkloadSize,
    ) -> Result<EvalResult, EvalError> {
        let t0 = Instant::now();
        let sim = self.simulate(workload, size)?;
        let stats = sim
            .sampling
            .as_ref()
            .expect("simulate_sampled always attaches sampling stats");
        let inputs = if self.energy {
            Some(self.sweep.inputs(&self.store, workload, size, self.limit)?)
        } else {
            None
        };
        let energy = inputs.as_ref().map(|inputs| {
            EnergyModel::new(&self.machine).evaluate(&Activity::from_sim(&sim, inputs))
        });
        Ok(EvalResult {
            workload: workload.name().to_string(),
            evaluator: self.name.clone(),
            kind: EvalKind::Sampled,
            machine_id: self.machine.id(),
            machine_index: 0,
            instructions: sim.instructions,
            cycles: sim.cycles as f64,
            // The estimator's mean per-unit CPI, not the rounded
            // cycles/instructions quotient.
            cpi: stats.cpi,
            stack: None,
            misses: Some(sim.misses),
            branch: Some(BranchSummary {
                branches: sim.branches,
                mispredicts: sim.mispredicts,
                taken_correct: sim.taken_correct,
            }),
            energy,
            sampling: Some(SamplingSummary {
                units: stats.units,
                measured_instructions: stats.measured_instructions,
                fraction: stats.fraction,
                cpi_ci95: stats.ci_half_width,
            }),
            timeline: sim.timeline.clone(),
            wall_seconds: t0.elapsed().as_secs_f64(),
        })
    }
}

/// Evaluates workloads with the first-order out-of-order interval model
/// (Eyerman et al.), the paper's §6.1 comparator. Memory-level
/// parallelism is estimated per workload from the program itself unless
/// fixed with [`with_mlp`](OooEvaluator::with_mlp).
#[derive(Clone)]
pub struct OooEvaluator {
    machine: MachineConfig,
    sweep: SweepContext,
    store: WorkloadStore,
    limit: Option<u64>,
    name: String,
    rob_size: u32,
    fixed_mlp: Option<f64>,
    energy: bool,
}

impl OooEvaluator {
    /// Out-of-order evaluator sharing the machine's front end, caches and
    /// predictor, with the paper's 128-entry window.
    pub fn new(machine: &MachineConfig) -> OooEvaluator {
        OooEvaluator {
            machine: machine.clone(),
            sweep: SweepContext::single(machine),
            store: WorkloadStore::new(),
            limit: None,
            name: EvalKind::Ooo.label().to_string(),
            rob_size: 128,
            fixed_mlp: None,
            energy: false,
        }
    }

    /// Out-of-order evaluator for one point of a design space.
    pub fn for_point(space: &DesignSpace, point: &DesignPoint) -> OooEvaluator {
        OooEvaluator {
            machine: point.machine.clone(),
            sweep: SweepContext::for_point(space, point),
            ..OooEvaluator::new(&point.machine)
        }
    }

    /// Shares a workload store (recordings + profiles) with other
    /// evaluators.
    pub fn with_cache(mut self, store: WorkloadStore) -> OooEvaluator {
        self.store = store;
        self
    }

    /// Truncates profiling to `limit` retired instructions.
    pub fn with_limit(mut self, limit: Option<u64>) -> OooEvaluator {
        self.limit = limit;
        self
    }

    /// Overrides the evaluator's display name.
    pub fn with_name(mut self, name: impl Into<String>) -> OooEvaluator {
        self.name = name.into();
        self
    }

    /// Sets the reorder-buffer size (default 128).
    pub fn with_rob_size(mut self, rob_size: u32) -> OooEvaluator {
        self.rob_size = rob_size;
        self
    }

    /// Fixes the memory-level parallelism instead of estimating it per
    /// workload.
    pub fn with_mlp(mut self, mlp: f64) -> OooEvaluator {
        self.fixed_mlp = Some(mlp);
        self
    }

    /// Also evaluates the energy model.
    pub fn with_energy(mut self, energy: bool) -> OooEvaluator {
        self.energy = energy;
        self
    }
}

impl Evaluator for OooEvaluator {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> EvalKind {
        EvalKind::Ooo
    }

    fn evaluate(
        &self,
        workload: &WorkloadSpec,
        size: WorkloadSize,
    ) -> Result<EvalResult, EvalError> {
        let t0 = Instant::now();
        let inputs = self.sweep.inputs(&self.store, workload, size, self.limit)?;
        let mlp = match self.fixed_mlp {
            Some(mlp) => mlp,
            None => {
                let program = self.store.program(workload, size);
                let trace = self.store.trace(workload, size, self.limit)?;
                let mut replay = trace
                    .replay(&program)
                    .map_err(|e| EvalError::trace(workload.name(), &self.name, &e))?;
                mim_profile::estimate_mlp_source(
                    &mut replay,
                    &self.machine.hierarchy,
                    self.rob_size,
                )
                .map_err(|e| EvalError::trace(workload.name(), &self.name, &e))?
                .mlp
            }
        };
        let model = OooModel::new(OooConfig {
            machine: self.machine.clone(),
            rob_size: self.rob_size,
            mlp,
        });
        let stack = model.predict(&inputs);
        Ok(result_from_stack(
            workload,
            &self.name,
            EvalKind::Ooo,
            &self.machine,
            0,
            &inputs,
            stack,
            self.energy,
            t0.elapsed().as_secs_f64(),
        ))
    }
}
