//! The unified evaluation record every [`Evaluator`](crate::Evaluator)
//! produces.

use std::error::Error;
use std::fmt;

use mim_cache::MissCounts;
use mim_core::{CpiStack, CpiTimeline};
use mim_isa::VmError;
use mim_power::EnergyReport;
use serde::{Deserialize, Serialize};

/// Which family of evaluator produced a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvalKind {
    /// The paper's mechanistic in-order model (profile once, then
    /// closed-form evaluation per design point).
    Model,
    /// The cycle-accurate in-order pipeline simulator (the "detailed
    /// simulation" reference).
    Sim,
    /// The first-order out-of-order interval model (the §6.1 comparator).
    Ooo,
    /// The sampled pipeline simulator: detailed timing on periodic sample
    /// units with functional warming between them, reporting a CLT 95%
    /// confidence interval alongside the scaled estimate.
    Sampled,
}

impl EvalKind {
    /// Canonical lower-case label (also the default evaluator name).
    pub fn label(self) -> &'static str {
        match self {
            EvalKind::Model => "model",
            EvalKind::Sim => "sim",
            EvalKind::Ooo => "ooo",
            EvalKind::Sampled => "sampled",
        }
    }
}

impl fmt::Display for EvalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Branch outcome counters, uniform across evaluators.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchSummary {
    /// Conditional branches executed.
    pub branches: u64,
    /// Mispredicted conditional branches.
    pub mispredicts: u64,
    /// Correctly predicted branches whose prediction was taken.
    pub taken_correct: u64,
}

/// Sampling statistics attached to results from the sampled simulator.
///
/// Mirrors [`mim_pipeline::SampledStats`] in serializable form: how much
/// of the stream was measured in detail and how tight the CLT interval
/// around the reported CPI is.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplingSummary {
    /// Number of sample units the estimate aggregates.
    pub units: u64,
    /// Instructions simulated in detail (measured windows only).
    pub measured_instructions: u64,
    /// Fraction of the walked stream measured in detail.
    pub fraction: f64,
    /// CLT 95% confidence half-width (±ε) on the reported CPI.
    pub cpi_ci95: f64,
}

/// One evaluation outcome: a (workload, machine, evaluator) cell.
///
/// This is the unified record the whole harness traffics in — comparing a
/// model against detailed simulation is a generic diff of two
/// `EvalResult`s (see [`ExperimentReport::compare`]) instead of bespoke
/// per-binary glue.
///
/// Serialization is deterministic: `wall_seconds` (which varies run to
/// run) is `#[serde(skip)]`, so reports serialized from a parallel run are
/// byte-identical to a serial run's.
///
/// [`ExperimentReport::compare`]: crate::ExperimentReport::compare
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalResult {
    /// Workload name.
    pub workload: String,
    /// Evaluator name (defaults to the kind's label; ablation or custom
    /// evaluators override it).
    pub evaluator: String,
    /// Evaluator family.
    pub kind: EvalKind,
    /// Identifier of the machine configuration evaluated.
    pub machine_id: String,
    /// Index of the design point within the experiment's machine list.
    pub machine_index: usize,
    /// Dynamic instructions evaluated.
    pub instructions: u64,
    /// Predicted or simulated execution cycles.
    pub cycles: f64,
    /// Cycles per instruction.
    pub cpi: f64,
    /// CPI stack components (analytical evaluators only).
    pub stack: Option<CpiStack>,
    /// Cache/TLB miss counters, when the evaluator observes them.
    pub misses: Option<MissCounts>,
    /// Branch counters, when the evaluator observes them.
    pub branch: Option<BranchSummary>,
    /// Energy/EDP evaluation, when the experiment enables it.
    pub energy: Option<EnergyReport>,
    /// Sampling statistics (sampled simulator only).
    pub sampling: Option<SamplingSummary>,
    /// Per-interval CPI-stack timeline (simulator evaluators with
    /// [`Experiment::timeline`](crate::Experiment::timeline) enabled).
    /// Excluded from serialization — like `wall_seconds` it is
    /// out-of-band, so report payloads are byte-identical whether
    /// timelines are captured or not; export it explicitly via
    /// [`CpiTimeline`]'s own serialization when needed.
    #[serde(skip)]
    pub timeline: Option<CpiTimeline>,
    /// Wall-clock seconds this evaluation took. Excluded from
    /// serialization so reports stay deterministic.
    #[serde(skip)]
    pub wall_seconds: f64,
}

impl EvalResult {
    /// Execution time in seconds at `frequency_ghz`.
    pub fn time_seconds(&self, frequency_ghz: f64) -> f64 {
        mim_core::cycles_to_seconds(self.cycles, frequency_ghz)
    }

    /// The energy-delay product, if energy evaluation was enabled.
    pub fn edp(&self) -> Option<f64> {
        self.energy.as_ref().map(EnergyReport::edp)
    }

    /// The energy-delay-squared product, if energy evaluation was enabled.
    pub fn ed2p(&self) -> Option<f64> {
        self.energy.as_ref().map(EnergyReport::ed2p)
    }

    /// Total energy in joules, if energy evaluation was enabled.
    pub fn total_joules(&self) -> Option<f64> {
        self.energy.as_ref().map(EnergyReport::total_joules)
    }

    /// Execution time in seconds as the energy model accounted it (cycles
    /// at the design point's own frequency), if energy evaluation was
    /// enabled. Objectives read delay here instead of recomputing activity.
    pub fn delay_seconds(&self) -> Option<f64> {
        self.energy.as_ref().map(|e| e.time_seconds)
    }
}

/// Error produced by an evaluator (program fault during profiling or
/// simulation, or an invalid experiment configuration).
#[derive(Debug, Clone, PartialEq)]
pub struct EvalError {
    /// Workload being evaluated, if known.
    pub workload: String,
    /// Evaluator that failed.
    pub evaluator: String,
    /// Human-readable cause.
    pub message: String,
}

impl EvalError {
    /// Creates an error with full context.
    pub fn new(
        workload: impl Into<String>,
        evaluator: impl Into<String>,
        message: impl fmt::Display,
    ) -> EvalError {
        EvalError {
            workload: workload.into(),
            evaluator: evaluator.into(),
            message: message.to_string(),
        }
    }

    /// Wraps a VM fault.
    pub fn vm(workload: &str, evaluator: &str, error: &VmError) -> EvalError {
        EvalError::new(workload, evaluator, error)
    }

    /// Wraps a trace-layer error (recording fault or corrupt replay).
    pub fn trace(workload: &str, evaluator: &str, error: &mim_trace::TraceError) -> EvalError {
        EvalError::new(workload, evaluator, error)
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "evaluating `{}` with `{}`: {}",
            self.workload, self.evaluator, self.message
        )
    }
}

impl Error for EvalError {}
