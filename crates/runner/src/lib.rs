//! # mim-runner — the unified evaluation API
//!
//! The paper's headline claim (§5) is that the mechanistic model turns
//! design-space exploration into microseconds per point. This crate is
//! that claim's API surface: instead of hand-wiring
//! `Profiler` → `MechanisticModel` / `PipelineSim` / `OooModel` in every
//! experiment, callers compose two layers:
//!
//! * [`Evaluator`] — an object-safe trait mapping `(workload, size)` to a
//!   unified, serializable [`EvalResult`] (CPI, cycles, CPI-stack
//!   components, miss/branch counters, optional energy). Implementations:
//!   [`ModelEvaluator`] (mechanistic model over a cached
//!   [`WorkloadProfile`](mim_profile::WorkloadProfile)), [`SimEvaluator`]
//!   (cycle-accurate pipeline), [`OooEvaluator`] (out-of-order interval
//!   model), and [`SampledSimEvaluator`] (statistically sampled
//!   simulation with functional warming, reporting a CLT 95% confidence
//!   interval in [`SamplingSummary`]).
//! * [`Experiment`] — a builder running the (workload × design-point ×
//!   evaluator) grid: each workload is functionally executed **once**
//!   (recorded into a [`Trace`](mim_trace::Trace) held by the shared
//!   [`WorkloadStore`]) and every consumer — the
//!   [`SweepProfiler`](mim_profile::SweepProfiler) pass, every
//!   cycle-accurate simulation cell, the MLP estimator — replays that
//!   recording (the §2.1 framework applied to the whole stack). The grid
//!   runs across `threads(n)` workers with deterministic result ordering
//!   and a JSON-serializable [`ExperimentReport`] whose bytes are
//!   identical for any thread count.
//!
//! ## Example: model-vs-simulation validation in six lines
//!
//! ```
//! use mim_runner::{EvalKind, Experiment};
//! use mim_workloads::{mibench, WorkloadSize};
//!
//! let report = Experiment::new()
//!     .workloads([mibench::sha(), mibench::qsort()])
//!     .size(WorkloadSize::Tiny)
//!     .evaluators([EvalKind::Model, EvalKind::Sim])
//!     .run()
//!     .unwrap();
//! let rows = report.compare("model", "sim");
//! assert!(rows.iter().all(|r| r.error_percent.abs() < 25.0));
//! ```
//!
//! ## Example: a 192-point design-space sweep
//!
//! ```no_run
//! use mim_core::DesignSpace;
//! use mim_runner::{EvalKind, Experiment};
//! use mim_workloads::mibench;
//!
//! let report = Experiment::new()
//!     .workloads(mibench::all())
//!     .design_space(DesignSpace::paper_table2())
//!     .evaluators([EvalKind::Model])
//!     .energy(true)
//!     .threads(0) // all cores
//!     .run()
//!     .unwrap();
//! assert_eq!(report.machines.len(), 192);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cells;
mod disk;
mod evaluator;
mod experiment;
mod result;
mod spec;
mod store;

pub use cells::{CellMemo, CellStats};
pub use disk::{DiskStore, StoreError};
pub use evaluator::{
    Evaluator, InputsMap, ModelEvaluator, OooEvaluator, SampledSimEvaluator, SimEvaluator,
};
pub use experiment::{
    parallel_map, print_comparison, CpiComparison, Experiment, ExperimentReport, ExperimentTiming,
};
pub use result::{BranchSummary, EvalError, EvalKind, EvalResult, SamplingSummary};
pub use spec::WorkloadSpec;
pub use store::{ProfileCache, StoreStats, WorkloadStore};
