//! Workload specification: what an [`Evaluator`](crate::Evaluator) runs.

use std::fmt;
use std::sync::Arc;

use mim_isa::Program;
use mim_workloads::{Workload, WorkloadSize};

/// Where a workload's program comes from.
#[derive(Clone)]
enum ProgramSource {
    /// A named kernel generator, instantiated at the experiment's size.
    Kernel(Workload),
    /// A fixed, already-built program (e.g. a compiler-pass variant); the
    /// experiment's size parameter is ignored.
    Fixed(Arc<Program>),
}

/// A named workload an evaluator can be pointed at: either a size-
/// parameterized kernel from `mim-workloads`, or a fixed pre-built
/// [`Program`] (the escape hatch for compiler-pass variants and custom
/// kernels).
///
/// # Example
///
/// ```
/// use mim_runner::WorkloadSpec;
/// use mim_workloads::{mibench, WorkloadSize};
///
/// let spec = WorkloadSpec::from(mibench::sha());
/// assert_eq!(spec.name(), "sha");
/// assert!(!spec.program_at(WorkloadSize::Tiny).text().is_empty());
/// ```
#[derive(Clone)]
pub struct WorkloadSpec {
    name: String,
    source: ProgramSource,
}

impl WorkloadSpec {
    /// Wraps a kernel under its own name.
    pub fn kernel(workload: Workload) -> WorkloadSpec {
        WorkloadSpec {
            name: workload.name().to_string(),
            source: ProgramSource::Kernel(workload),
        }
    }

    /// Wraps a fixed program under an explicit name (sizes are ignored —
    /// the program is evaluated as given).
    ///
    /// Names key experiment reports and the shared [`ProfileCache`], so
    /// they must be unique within an experiment — give variants of one
    /// kernel distinct names (`"sha/O3"`, `"sha/nosched"`, ...).
    /// [`Experiment::run`](crate::Experiment::run) rejects duplicates.
    ///
    /// [`ProfileCache`]: crate::ProfileCache
    pub fn program(name: impl Into<String>, program: Program) -> WorkloadSpec {
        WorkloadSpec {
            name: name.into(),
            source: ProgramSource::Fixed(Arc::new(program)),
        }
    }

    /// The workload's display name (used as the report key).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Instantiates the program at `size` (fixed programs are returned
    /// as-is).
    pub fn program_at(&self, size: WorkloadSize) -> Arc<Program> {
        match &self.source {
            ProgramSource::Kernel(w) => Arc::new(w.program(size)),
            ProgramSource::Fixed(p) => Arc::clone(p),
        }
    }
}

impl From<Workload> for WorkloadSpec {
    fn from(workload: Workload) -> WorkloadSpec {
        WorkloadSpec::kernel(workload)
    }
}

impl fmt::Debug for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkloadSpec")
            .field("name", &self.name)
            .finish()
    }
}
