//! Integration tests for the unified evaluation API: trait-object
//! dispatch, parallel determinism, report JSON round-trips, and the
//! one-profiling-pass invariant.

use mim_core::{DesignSpace, MachineConfig};
use mim_runner::{
    EvalKind, Evaluator, Experiment, ExperimentReport, ModelEvaluator, OooEvaluator, ProfileCache,
    SimEvaluator, WorkloadSpec,
};
use mim_workloads::{mibench, WorkloadSize};

/// All three evaluators behind one `dyn Evaluator` interface on a Tiny
/// workload: uniform dispatch, coherent results.
#[test]
fn trait_object_dispatch_over_all_three_evaluators() {
    let machine = MachineConfig::default_config();
    let cache = ProfileCache::new();
    let evaluators: Vec<Box<dyn Evaluator>> = vec![
        Box::new(ModelEvaluator::new(&machine).with_cache(cache.clone())),
        Box::new(SimEvaluator::new(&machine).with_cache(cache.clone())),
        Box::new(OooEvaluator::new(&machine).with_cache(cache.clone())),
    ];
    let spec = WorkloadSpec::from(mibench::qsort());
    let mut results = Vec::new();
    for evaluator in &evaluators {
        let result = evaluator
            .evaluate(&spec, WorkloadSize::Tiny)
            .expect("evaluation succeeds");
        assert_eq!(result.workload, "qsort");
        assert_eq!(result.evaluator, evaluator.name());
        assert_eq!(result.kind, evaluator.kind());
        assert!(result.instructions > 1_000);
        assert!(result.cpi >= 0.25, "cannot beat N/W on a 4-wide machine");
        results.push(result);
    }
    // Model and OoO carry CPI stacks; the simulator does not.
    assert!(results[0].stack.is_some());
    assert!(results[1].stack.is_none());
    assert!(results[2].stack.is_some());
    // All three agree on the dynamic instruction count (shared profile
    // and truncation-free run).
    assert_eq!(results[0].instructions, results[1].instructions);
    assert_eq!(results[0].instructions, results[2].instructions);
    // The in-order model must be within the validated band of detailed
    // simulation, and the OoO comparator must hide dependency stalls
    // entirely (the §6.1 observation).
    let err = (results[0].cpi - results[1].cpi).abs() / results[1].cpi;
    assert!(err < 0.25, "model vs sim error {:.1}%", 100.0 * err);
    assert!(
        results[0]
            .stack
            .as_ref()
            .expect("in-order stack")
            .dependencies()
            > 0.0
    );
    assert_eq!(
        results[2].stack.as_ref().expect("ooo stack").dependencies(),
        0.0
    );
    // The three evaluators shared one profiling pass.
    assert_eq!(cache.cached_profiles(), 1);
}

fn width_sweep(threads: usize) -> ExperimentReport {
    Experiment::new()
        .title("determinism")
        .workloads([mibench::sha(), mibench::qsort()])
        .size(WorkloadSize::Tiny)
        .design_space(
            DesignSpace::new(MachineConfig::default_config())
                .with_widths(vec![1, 2, 3, 4])
                .expect("distinct widths"),
        )
        .evaluators([EvalKind::Model, EvalKind::Sim])
        .energy(true)
        .threads(threads)
        .run()
        .expect("experiment")
}

/// `threads(1)` and `threads(8)` must serialize to byte-identical JSON:
/// ordering is deterministic and wall-clock noise is excluded.
#[test]
fn parallel_and_serial_reports_are_byte_identical() {
    let serial = width_sweep(1);
    let parallel = width_sweep(8);
    assert_eq!(serial.timing.threads, 1);
    assert_eq!(parallel.timing.threads, 8);
    assert_eq!(serial.to_json(), parallel.to_json());
}

/// A report survives a JSON round trip exactly (modulo unserialized
/// timing).
#[test]
fn experiment_report_round_trips_through_json() {
    let report = Experiment::new()
        .workload(mibench::dijkstra())
        .size(WorkloadSize::Tiny)
        .evaluators([EvalKind::Model, EvalKind::Sim, EvalKind::Ooo])
        .run()
        .expect("experiment");
    let json = report.to_json();
    let round = ExperimentReport::from_json(&json).expect("parse back");
    assert_eq!(round.rows.len(), report.rows.len());
    assert_eq!(round.workloads, report.workloads);
    assert_eq!(round.machines, report.machines);
    assert_eq!(round.evaluators, report.evaluators);
    assert_eq!(round.to_json(), json, "re-serialization is stable");
    // Every typed field survives: spot-check one full row.
    assert_eq!(round.rows[0].workload, report.rows[0].workload);
    assert_eq!(round.rows[0].cpi, report.rows[0].cpi);
    assert_eq!(round.rows[0].stack, report.rows[0].stack);
    assert_eq!(round.rows[0].misses, report.rows[0].misses);
}

/// The §2.1 invariant: a design-space sweep profiles each workload once,
/// no matter how many points and evaluators consume the profile.
#[test]
fn design_space_sweep_profiles_each_workload_once() {
    let experiment = Experiment::new()
        .workloads([mibench::sha(), mibench::crc32()])
        .size(WorkloadSize::Tiny)
        .design_space(
            DesignSpace::new(MachineConfig::default_config())
                .with_widths(vec![1, 2, 3, 4])
                .expect("distinct widths"),
        )
        .evaluators([EvalKind::Model]);
    let cache = experiment.profile_cache();
    let report = experiment.run().expect("experiment");
    assert_eq!(report.rows.len(), 2 * 4);
    assert_eq!(
        cache.cached_profiles(),
        2,
        "one profiling pass per workload"
    );
    assert_eq!(
        cache.cached_traces(),
        0,
        "model-only sweeps stream their single profiling pass without \
         materializing a trace"
    );
    // Model CPI varies across widths from that single profile.
    let cpis: Vec<f64> = report
        .rows_for("model")
        .filter(|r| r.workload == "sha")
        .map(|r| r.cpi)
        .collect();
    assert_eq!(cpis.len(), 4);
    assert!(cpis[0] > cpis[3], "width 1 must be slower than width 4");
}

/// The record-once invariant: a simulation sweep records each workload's
/// functional execution exactly once and replays it per design point.
#[test]
fn sim_sweep_records_one_trace_per_workload() {
    let experiment = Experiment::new()
        .workloads([mibench::sha(), mibench::crc32()])
        .size(WorkloadSize::Tiny)
        .design_space(
            DesignSpace::new(MachineConfig::default_config())
                .with_widths(vec![1, 2, 3, 4])
                .expect("distinct widths"),
        )
        .evaluators([EvalKind::Sim]);
    let cache = experiment.profile_cache();
    let report = experiment.run().expect("experiment");
    assert_eq!(report.rows.len(), 2 * 4);
    assert_eq!(
        cache.cached_traces(),
        2,
        "one recording per workload, shared by all four widths"
    );
    assert_eq!(
        cache.cached_profiles(),
        0,
        "a sim-only sweep needs no profile at all"
    );
}

/// Comparison rows pair cells correctly across a design space.
#[test]
fn compare_pairs_cells_by_workload_and_machine() {
    let report = width_sweep(2);
    let rows = report.compare("model", "sim");
    assert_eq!(rows.len(), 2 * 4);
    for row in &rows {
        assert_eq!(row.subject, "model");
        assert_eq!(row.baseline, "sim");
        assert!(row.error_percent.abs() < 30.0);
        assert_eq!(
            report.machines[row.machine_index], row.machine_id,
            "machine index resolves through the report"
        );
    }
}

/// Fixed-program workloads (the compiler-variant escape hatch) evaluate
/// and serialize like kernels.
#[test]
fn fixed_program_workloads_run_through_experiments() {
    let program = mibench::sha().program(WorkloadSize::Tiny);
    let report = Experiment::new()
        .workload(WorkloadSpec::program("sha/fixed", program))
        .evaluators([EvalKind::Model])
        .run()
        .expect("experiment");
    assert_eq!(report.workloads, vec!["sha/fixed".to_string()]);
    assert!(report.rows[0].cpi > 0.0);
}

/// Misconfigured experiments fail with context instead of panicking.
#[test]
fn configuration_errors_are_reported() {
    let err = Experiment::new()
        .evaluators([EvalKind::Model])
        .run()
        .expect_err("no workloads");
    assert!(err.message.contains("no workloads"));

    let err = Experiment::new()
        .workload(mibench::sha())
        .run()
        .expect_err("no evaluators");
    assert!(err.message.contains("no evaluators"));

    let machine = MachineConfig::default_config();
    let err = Experiment::new()
        .workload(mibench::sha())
        .design_space(DesignSpace::paper_table2())
        .evaluator(ModelEvaluator::new(&machine))
        .run()
        .expect_err("custom evaluator + design space");
    assert!(err.message.contains("custom evaluators"));
}

/// The `on_cell` progress callback fires exactly once per evaluated cell,
/// and registering it does not perturb report determinism.
#[test]
fn on_cell_fires_once_per_cell() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    let count = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&count);
    let report = Experiment::new()
        .title("determinism")
        .workloads([mibench::sha(), mibench::qsort()])
        .size(WorkloadSize::Tiny)
        .design_space(
            DesignSpace::new(MachineConfig::default_config())
                .with_widths(vec![1, 2, 3, 4])
                .expect("distinct widths"),
        )
        .evaluators([EvalKind::Model, EvalKind::Sim])
        .energy(true)
        .threads(4)
        .on_cell(move |cell| {
            assert!(cell.cpi > 0.0, "callbacks observe finished cells");
            seen.fetch_add(1, Ordering::Relaxed);
        })
        .run()
        .expect("experiment");
    assert_eq!(report.rows.len(), 2 * 4 * 2);
    assert_eq!(
        count.load(Ordering::Relaxed),
        report.rows.len(),
        "one callback per cell"
    );
    // Identical JSON to the callback-free sweep of the same grid.
    assert_eq!(report.to_json(), width_sweep(1).to_json());
}

/// The timeline knob is strictly out-of-band — serialized reports are
/// byte-identical with it on or off — and the captured timelines are
/// deterministic across worker counts.
#[test]
fn timelines_are_out_of_band_and_deterministic() {
    let run = |threads: usize, timeline: bool| {
        let mut experiment = Experiment::new()
            .title("timeline")
            .workloads([mibench::sha(), mibench::qsort()])
            .size(WorkloadSize::Tiny)
            .evaluators([EvalKind::Model, EvalKind::Sim, EvalKind::Sampled])
            .threads(threads);
        if timeline {
            experiment = experiment.timeline(5_000);
        }
        experiment.run().expect("experiment")
    };
    let plain = run(1, false);
    let timed = run(1, true);
    assert_eq!(
        plain.to_json(),
        timed.to_json(),
        "timelines never touch the serialized payload"
    );
    assert!(plain.rows.iter().all(|r| r.timeline.is_none()));
    for row in &timed.rows {
        match row.kind {
            EvalKind::Sim => {
                let tl = row.timeline.as_ref().expect("sim rows carry timelines");
                assert_eq!(tl.interval(), 5_000);
                assert_eq!(tl.num_insts(), row.instructions);
                assert!(!tl.is_empty());
            }
            EvalKind::Sampled => {
                let tl = row.timeline.as_ref().expect("sampled rows carry timelines");
                let sampling = row.sampling.as_ref().expect("sampling stats");
                assert_eq!(tl.num_insts(), sampling.measured_instructions);
            }
            _ => assert!(row.timeline.is_none(), "analytical rows stay timeline-free"),
        }
    }
    // Integer cycle counts end to end: structural equality across worker
    // counts means byte equality of any timeline export.
    let timed_parallel = run(8, true);
    for (a, b) in timed.rows.iter().zip(&timed_parallel.rows) {
        assert_eq!(a.timeline, b.timeline);
    }
}

/// Names key the report and the program cache, so duplicates are
/// rejected instead of silently aliasing to the first entry.
#[test]
fn duplicate_names_are_rejected() {
    let machine = MachineConfig::default_config();

    let program_a = mibench::sha().program(WorkloadSize::Tiny);
    let program_b = mibench::qsort().program(WorkloadSize::Tiny);
    let err = Experiment::new()
        .workload(WorkloadSpec::program("same", program_a))
        .workload(WorkloadSpec::program("same", program_b))
        .evaluators([EvalKind::Model])
        .run()
        .expect_err("duplicate workload name");
    assert!(err.message.contains("duplicate workload name"));

    let err = Experiment::new()
        .workload(mibench::sha())
        .evaluators([EvalKind::Model, EvalKind::Model])
        .run()
        .expect_err("duplicate kind");
    assert!(err.message.contains("configured twice"));

    let err = Experiment::new()
        .workload(mibench::sha())
        .evaluators([EvalKind::Model])
        .evaluator(ModelEvaluator::new(&machine))
        .run()
        .expect_err("custom evaluator shadows the model kind's name");
    assert!(err.message.contains("duplicate evaluator name"));
}
