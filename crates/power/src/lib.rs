//! # mim-power — analytical power/energy model and EDP evaluation
//!
//! The paper's third case study (§6.3) explores the Table 2 design space
//! under the **energy-delay product** metric, using McPAT for power
//! estimates. McPAT is a large closed C++ tool; this crate substitutes an
//! analytical CMOS energy model with the same *structure sensitivities*
//! McPAT exposes at this granularity:
//!
//! * per-access energies that grow with structure size (caches and
//!   predictor tables scale like `sqrt(capacity)`, the standard
//!   CACTI-style wordline/bitline scaling),
//! * per-instruction core energy that grows with pipeline width
//!   (register-file ports and bypass network) and pipeline depth
//!   (latch count),
//! * leakage power proportional to total area,
//! * supply-voltage scaling with frequency (dynamic energy ∝ V², so the
//!   600 MHz point is cheaper per operation than the 1 GHz point).
//!
//! What Figure 9 needs from the power model is a monotone,
//! structure-sensitive E×T landscape over the design space such that the
//! model-predicted EDP ranking can be compared against the
//! detailed-simulation EDP ranking — absolute joules are irrelevant to the
//! reproduction (DESIGN.md records this substitution).
//!
//! ## Example
//!
//! ```
//! use mim_core::MachineConfig;
//! use mim_power::{Activity, EnergyModel};
//!
//! let machine = MachineConfig::default_config();
//! let model = EnergyModel::new(&machine);
//! let activity = Activity {
//!     instructions: 1_000_000,
//!     cycles: 1_250_000,
//!     l1i_accesses: 1_000_000,
//!     l1d_accesses: 300_000,
//!     l2_accesses: 20_000,
//!     mem_accesses: 2_000,
//!     mul_ops: 10_000,
//!     div_ops: 1_000,
//!     bpred_lookups: 150_000,
//! };
//! let report = model.evaluate(&activity);
//! assert!(report.total_joules() > 0.0);
//! assert!(report.edp() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mim_core::{MachineConfig, ModelInputs};
use mim_pipeline::SimResult;
use serde::{Deserialize, Serialize};

/// Event counts that drive dynamic energy.
///
/// Build one from a mechanistic-model prediction
/// ([`Activity::from_model`]) or from a detailed-simulation result
/// ([`Activity::from_sim`]); the paper compares EDP computed both ways
/// (Figure 9, "Estimated EDP" vs "Detailed EDP").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Activity {
    /// Dynamic instructions.
    pub instructions: u64,
    /// Execution cycles.
    pub cycles: u64,
    /// L1 instruction-cache accesses.
    pub l1i_accesses: u64,
    /// L1 data-cache accesses.
    pub l1d_accesses: u64,
    /// Unified L2 accesses (L1 misses).
    pub l2_accesses: u64,
    /// Main-memory accesses (L2 misses).
    pub mem_accesses: u64,
    /// Multiply operations.
    pub mul_ops: u64,
    /// Divide operations.
    pub div_ops: u64,
    /// Branch predictor lookups (conditional branches).
    pub bpred_lookups: u64,
}

impl Activity {
    /// Extracts activity counts from model inputs plus a predicted cycle
    /// count (from [`MechanisticModel::predict`]).
    ///
    /// [`MechanisticModel::predict`]: mim_core::MechanisticModel::predict
    pub fn from_model(inputs: &ModelInputs, predicted_cycles: f64) -> Activity {
        let c = &inputs.misses;
        Activity {
            instructions: inputs.num_insts,
            cycles: predicted_cycles.max(0.0).round() as u64,
            l1i_accesses: c.inst_accesses,
            l1d_accesses: c.data_accesses,
            l2_accesses: c.l1i_misses + c.l1d_misses,
            mem_accesses: c.l2i_misses + c.l2d_misses,
            mul_ops: inputs.mix.mul,
            div_ops: inputs.mix.div,
            bpred_lookups: inputs.mix.cond_branch,
        }
    }

    /// Extracts activity counts from a detailed-simulation result.
    pub fn from_sim(sim: &SimResult, inputs: &ModelInputs) -> Activity {
        let c = &sim.misses;
        Activity {
            instructions: sim.instructions,
            cycles: sim.cycles,
            l1i_accesses: c.inst_accesses,
            l1d_accesses: c.data_accesses,
            l2_accesses: c.l1i_misses + c.l1d_misses,
            mem_accesses: c.l2i_misses + c.l2d_misses,
            mul_ops: inputs.mix.mul,
            div_ops: inputs.mix.div,
            bpred_lookups: sim.branches,
        }
    }
}

/// Energy breakdown of one run at one design point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Dynamic (switching) energy in joules.
    pub dynamic_joules: f64,
    /// Leakage energy in joules (leakage power × execution time).
    pub leakage_joules: f64,
    /// Execution time in seconds.
    pub time_seconds: f64,
}

impl EnergyReport {
    /// Total energy in joules.
    pub fn total_joules(&self) -> f64 {
        self.dynamic_joules + self.leakage_joules
    }

    /// Energy-delay product in joule-seconds (the §6.3 metric).
    pub fn edp(&self) -> f64 {
        self.total_joules() * self.time_seconds
    }

    /// Energy-delay-squared product in joule-seconds² — the
    /// voltage-scaling-insensitive cousin of EDP, used as an exploration
    /// objective when delay matters more than energy.
    pub fn ed2p(&self) -> f64 {
        self.total_joules() * self.time_seconds * self.time_seconds
    }
}

/// McPAT-style analytical energy model for one machine configuration.
#[derive(Debug, Clone)]
pub struct EnergyModel {
    machine: MachineConfig,
    /// Supply-voltage scale relative to the 1 GHz nominal point.
    vdd_scale: f64,
}

/// Technology constants (loosely 32 nm, the paper's node). Absolute values
/// are representative, not calibrated — EDP *ranking* across the design
/// space is what the case study uses.
mod tech {
    /// Base per-instruction core energy (decode/regfile/ALU), picojoules.
    pub const CORE_PJ: f64 = 8.0;
    /// Extra per-instruction energy per unit of width beyond 1 (ports,
    /// bypass wiring).
    pub const WIDTH_PJ: f64 = 2.5;
    /// Per-instruction pipeline-latch energy per stage.
    pub const STAGE_PJ: f64 = 0.6;
    /// Cache access energy coefficient: `pJ = COEF * sqrt(bytes * assoc) / 32`.
    pub const CACHE_COEF: f64 = 1.2;
    /// Main-memory (off-chip) access energy, picojoules.
    pub const MEM_PJ: f64 = 2_000.0;
    /// Multiply energy, picojoules.
    pub const MUL_PJ: f64 = 12.0;
    /// Divide energy, picojoules.
    pub const DIV_PJ: f64 = 45.0;
    /// Predictor lookup energy coefficient per sqrt(bit).
    pub const BPRED_COEF: f64 = 0.02;
    /// Leakage power per square-millimeter-equivalent area unit, watts.
    pub const LEAK_W_PER_AREA: f64 = 0.015;
    /// Area units: core scales with W^1.5, caches with bytes.
    pub const CORE_AREA: f64 = 1.0;
    pub(super) const CACHE_AREA_PER_KB: f64 = 0.05;
}

impl EnergyModel {
    /// Creates the model for a design point.
    ///
    /// # Panics
    ///
    /// Panics if the machine configuration is invalid.
    pub fn new(machine: &MachineConfig) -> EnergyModel {
        machine.validate().expect("valid machine");
        // Voltage scales roughly linearly toward the frequency target:
        // V(f) = 0.7 + 0.3 * f / 1 GHz (relative to nominal).
        let vdd_scale = 0.7 + 0.3 * machine.frequency_ghz;
        EnergyModel {
            machine: machine.clone(),
            vdd_scale,
        }
    }

    fn cache_access_pj(size_bytes: u64, assoc: u32) -> f64 {
        tech::CACHE_COEF * ((size_bytes as f64) * f64::from(assoc)).sqrt() / 32.0
    }

    /// Total die-area proxy (arbitrary units) for leakage.
    pub fn area_units(&self) -> f64 {
        let m = &self.machine;
        let core =
            tech::CORE_AREA * f64::from(m.width).powf(1.5) + 0.05 * f64::from(m.pipeline_stages());
        let caches = (m.hierarchy.l1i.size_bytes()
            + m.hierarchy.l1d.size_bytes()
            + m.hierarchy.l2.size_bytes()) as f64
            / 1024.0
            * tech::CACHE_AREA_PER_KB;
        let bpred_bits = m.predictor.build().storage_bits() as f64;
        let bpred = bpred_bits / (8.0 * 1024.0) * tech::CACHE_AREA_PER_KB;
        core + caches + bpred
    }

    /// Leakage power in watts.
    pub fn leakage_watts(&self) -> f64 {
        tech::LEAK_W_PER_AREA * self.area_units() * self.vdd_scale
    }

    /// Evaluates energy and EDP for the given activity counts.
    pub fn evaluate(&self, activity: &Activity) -> EnergyReport {
        let m = &self.machine;
        let v2 = self.vdd_scale * self.vdd_scale;

        let per_inst = tech::CORE_PJ
            + tech::WIDTH_PJ * (f64::from(m.width) - 1.0)
            + tech::STAGE_PJ * f64::from(m.pipeline_stages());
        let l1i = Self::cache_access_pj(m.hierarchy.l1i.size_bytes(), m.hierarchy.l1i.assoc());
        let l1d = Self::cache_access_pj(m.hierarchy.l1d.size_bytes(), m.hierarchy.l1d.assoc());
        let l2 = Self::cache_access_pj(m.hierarchy.l2.size_bytes(), m.hierarchy.l2.assoc());
        let bpred_bits = m.predictor.build().storage_bits() as f64;
        let bpred = tech::BPRED_COEF * bpred_bits.sqrt();

        let dynamic_pj = activity.instructions as f64 * per_inst
            + activity.l1i_accesses as f64 * l1i
            + activity.l1d_accesses as f64 * l1d
            + activity.l2_accesses as f64 * l2
            + activity.mem_accesses as f64 * tech::MEM_PJ
            + activity.mul_ops as f64 * tech::MUL_PJ
            + activity.div_ops as f64 * tech::DIV_PJ
            + activity.bpred_lookups as f64 * bpred;

        let time_seconds = activity.cycles as f64 * m.cycle_seconds();
        EnergyReport {
            dynamic_joules: dynamic_pj * 1e-12 * v2,
            leakage_joules: self.leakage_watts() * time_seconds,
            time_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_activity() -> Activity {
        Activity {
            instructions: 1_000_000,
            cycles: 1_200_000,
            l1i_accesses: 1_000_000,
            l1d_accesses: 350_000,
            l2_accesses: 15_000,
            mem_accesses: 1_500,
            mul_ops: 20_000,
            div_ops: 2_000,
            bpred_lookups: 120_000,
        }
    }

    #[test]
    fn energy_is_positive_and_decomposes() {
        let m = MachineConfig::default_config();
        let r = EnergyModel::new(&m).evaluate(&base_activity());
        assert!(r.dynamic_joules > 0.0);
        assert!(r.leakage_joules > 0.0);
        assert!((r.total_joules() - r.dynamic_joules - r.leakage_joules).abs() < 1e-18);
        assert!(r.edp() > 0.0);
        assert!((r.ed2p() - r.edp() * r.time_seconds).abs() < 1e-24);
    }

    #[test]
    fn wider_cores_cost_more_energy_per_instruction() {
        let a = base_activity();
        let mut narrow = MachineConfig::default_config();
        narrow.width = 1;
        let mut wide = MachineConfig::default_config();
        wide.width = 4;
        let en = EnergyModel::new(&narrow).evaluate(&a);
        let ew = EnergyModel::new(&wide).evaluate(&a);
        assert!(ew.dynamic_joules > en.dynamic_joules);
    }

    #[test]
    fn bigger_l2_costs_more_per_access_and_leakage() {
        use mim_cache::CacheConfig;
        let a = base_activity();
        let mut small = MachineConfig::default_config();
        small.hierarchy = small.hierarchy.clone().with_l2(
            CacheConfig::new("L2", 128 * 1024, 8, 64).expect("128 KB 8-way is a valid L2 geometry"),
        );
        let big = MachineConfig::default_config(); // 512 KB
        let es = EnergyModel::new(&small).evaluate(&a);
        let eb = EnergyModel::new(&big).evaluate(&a);
        assert!(eb.total_joules() > es.total_joules());
    }

    #[test]
    fn lower_frequency_trades_time_for_energy() {
        let a = base_activity();
        let mut slow = MachineConfig::default_config();
        slow.frequency_ghz = 0.6;
        slow.frontend_depth = 2;
        let fast = MachineConfig::default_config();
        let es = EnergyModel::new(&slow).evaluate(&a);
        let ef = EnergyModel::new(&fast).evaluate(&a);
        // Same cycle count at lower frequency: more seconds, less dynamic
        // energy (V² scaling).
        assert!(es.time_seconds > ef.time_seconds);
        assert!(es.dynamic_joules < ef.dynamic_joules);
    }

    #[test]
    fn memory_accesses_dominate_when_abundant() {
        let m = MachineConfig::default_config();
        let model = EnergyModel::new(&m);
        let mut quiet = base_activity();
        quiet.mem_accesses = 0;
        let mut thrash = base_activity();
        thrash.mem_accesses = 500_000;
        let eq = model.evaluate(&quiet);
        let et = model.evaluate(&thrash);
        assert!(et.dynamic_joules > 2.0 * eq.dynamic_joules);
    }

    #[test]
    fn activity_from_model_and_sim_have_same_shape() {
        let inputs = ModelInputs::synthetic("t", 1000);
        let a = Activity::from_model(&inputs, 250.0);
        assert_eq!(a.instructions, 1000);
        assert_eq!(a.cycles, 250);
        assert_eq!(a.mul_ops, 0);
    }
}
