//! Bimodal (PC-indexed) predictor.

use crate::counter::SatCounter;
use crate::predictor::{check_bits, BranchPredictor};

/// The classic bimodal predictor: a table of 2-bit counters indexed by the
/// low bits of the branch PC.
///
/// Included as a baseline; the paper's design space uses [`Gshare`] and
/// [`Hybrid`], both of which degenerate to bimodal behaviour for
/// history-independent branches.
///
/// [`Gshare`]: crate::Gshare
/// [`Hybrid`]: crate::Hybrid
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<SatCounter>,
    mask: u32,
    name: String,
}

impl Bimodal {
    /// Creates a bimodal predictor with `2^index_bits` counters.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or exceeds 24.
    pub fn new(index_bits: u32) -> Bimodal {
        let entries = check_bits("index_bits", index_bits);
        Bimodal {
            table: vec![SatCounter::default(); entries],
            mask: (entries - 1) as u32,
            name: format!("bimodal-{index_bits}b"),
        }
    }

    #[inline]
    fn index(&self, pc: u32) -> usize {
        (pc & self.mask) as usize
    }
}

impl BranchPredictor for Bimodal {
    fn predict(&self, pc: u32) -> bool {
        self.table[self.index(pc)].taken()
    }

    fn update(&mut self, pc: u32, taken: bool) {
        let i = self.index(pc);
        self.table[i].train(taken);
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn storage_bits(&self) -> u64 {
        self.table.len() as u64 * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_biased_branch() {
        let mut p = Bimodal::new(10);
        for _ in 0..4 {
            p.update(100, true);
        }
        assert!(p.predict(100));
        for _ in 0..4 {
            p.update(100, false);
        }
        assert!(!p.predict(100));
    }

    #[test]
    fn distinct_pcs_do_not_interfere_within_table() {
        let mut p = Bimodal::new(10);
        p.update(1, true);
        p.update(1, true);
        assert!(p.predict(1));
        assert!(!p.predict(2)); // untouched entry stays weakly not-taken
    }

    #[test]
    fn aliasing_wraps_at_table_size() {
        let mut p = Bimodal::new(4); // 16 entries
        p.update(3, true);
        p.update(3, true);
        assert!(p.predict(3 + 16)); // same entry
    }

    #[test]
    fn cannot_learn_alternating_pattern() {
        // A strict T/N/T/N pattern defeats a 2-bit counter: from the weakly
        // states it mispredicts at least half the time. This motivates
        // history-based predictors.
        let mut p = Bimodal::new(8);
        let mut mispredicts = 0;
        let mut taken = true;
        for _ in 0..100 {
            if p.predict(7) != taken {
                mispredicts += 1;
            }
            p.update(7, taken);
            taken = !taken;
        }
        assert!(mispredicts >= 50, "got only {mispredicts} mispredicts");
    }
}
