//! Hybrid (tournament) predictor with a chooser.

use crate::counter::SatCounter;
use crate::gshare::Gshare;
use crate::local::LocalPredictor;
use crate::predictor::{check_bits, BranchPredictor};

/// A tournament predictor combining a local and a global (gshare)
/// component; a global-history-indexed table of 2-bit chooser counters
/// selects which component's prediction to use, and trains toward whichever
/// component was correct.
///
/// `Hybrid::new(10, 10, 12)` is the paper's "3.5 KB hybrid, 10b local and
/// 12b global history" design point.
#[derive(Debug, Clone)]
pub struct Hybrid {
    local: LocalPredictor,
    global: Gshare,
    /// Chooser: state >= 2 selects the global component.
    chooser: Vec<SatCounter>,
    chooser_mask: u32,
    name: String,
}

impl Hybrid {
    /// Creates a hybrid predictor.
    ///
    /// # Panics
    ///
    /// Panics if any bit-width is 0 or exceeds 24.
    pub fn new(local_index_bits: u32, local_history_bits: u32, global_history_bits: u32) -> Hybrid {
        let chooser_entries = check_bits("global_history_bits", global_history_bits);
        Hybrid {
            local: LocalPredictor::new(local_index_bits, local_history_bits),
            global: Gshare::new(global_history_bits),
            chooser: vec![SatCounter::weakly_taken(); chooser_entries],
            chooser_mask: (chooser_entries - 1) as u32,
            name: format!("hybrid-{local_history_bits}l-{global_history_bits}g"),
        }
    }

    #[inline]
    fn chooser_index(&self, pc: u32) -> usize {
        ((self.global.history() ^ pc) & self.chooser_mask) as usize
    }

    /// True if the chooser currently selects the global component for `pc`.
    pub fn selects_global(&self, pc: u32) -> bool {
        self.chooser[self.chooser_index(pc)].taken()
    }
}

impl BranchPredictor for Hybrid {
    fn predict(&self, pc: u32) -> bool {
        if self.selects_global(pc) {
            self.global.predict(pc)
        } else {
            self.local.predict(pc)
        }
    }

    fn update(&mut self, pc: u32, taken: bool) {
        let local_pred = self.local.predict(pc);
        let global_pred = self.global.predict(pc);
        // Train the chooser only when the components disagree.
        if local_pred != global_pred {
            let i = self.chooser_index(pc);
            self.chooser[i].train(global_pred == taken);
        }
        self.local.update(pc, taken);
        self.global.update(pc, taken);
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn storage_bits(&self) -> u64 {
        self.local.storage_bits() + self.global.storage_bits() + self.chooser.len() as u64 * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_matches_paper_hybrid() {
        // 1.5 KB local + 1 KB global + 1 KB chooser = 3.5 KB = 28672 bits.
        assert_eq!(Hybrid::new(10, 10, 12).storage_bits(), 28_672);
    }

    #[test]
    fn learns_local_periodic_pattern() {
        let mut p = Hybrid::new(10, 10, 12);
        let pat = [true, true, true, false];
        for i in 0..1024 {
            p.update(9, pat[i % 4]);
        }
        let mut misp = 0;
        for i in 0..200 {
            if p.predict(9) != pat[i % 4] {
                misp += 1;
            }
            p.update(9, pat[i % 4]);
        }
        assert!(
            misp <= 2,
            "hybrid should learn period-4 pattern, got {misp}"
        );
    }

    #[test]
    fn hybrid_not_worse_than_components_on_mixed_stream() {
        // Two interleaved branches: one purely local-periodic, one
        // correlated with global history. The hybrid should track the best
        // component within a small margin.
        fn run(p: &mut dyn BranchPredictor) -> u32 {
            let mut misp = 0;
            let mut x: u64 = 0xace1;
            let mut last_b1;
            for i in 0..20_000usize {
                // Branch 1: pseudo-random (PC 100).
                x = x.wrapping_mul(6364136223846793005).wrapping_add(13);
                let b1 = (x >> 40) & 1 == 1;
                if i >= 4000 && p.predict(100) != b1 {
                    misp += 1;
                }
                p.update(100, b1);
                last_b1 = b1;
                // Branch 2: equals branch 1's outcome (global correlation, PC 200).
                let b2 = last_b1;
                if i >= 4000 && p.predict(200) != b2 {
                    misp += 1;
                }
                p.update(200, b2);
            }
            misp
        }
        let mut hybrid = Hybrid::new(10, 10, 12);
        let mut local = LocalPredictor::new(10, 10);
        let misp_hybrid = run(&mut hybrid);
        let misp_local = run(&mut local);
        // The correlated branch is learnable only via global history, so the
        // hybrid must beat the pure local predictor.
        assert!(
            misp_hybrid < misp_local,
            "hybrid {misp_hybrid} vs local {misp_local}"
        );
    }

    #[test]
    fn chooser_moves_toward_correct_component() {
        let mut p = Hybrid::new(4, 4, 4);
        // Force repeated disagreement where global is right: an alternating
        // pattern is learnable by gshare history but not by a fresh local
        // history that aliases... simply verify chooser state changes.
        let before: Vec<bool> = (0..4).map(|pc| p.selects_global(pc)).collect();
        let mut taken = true;
        for _ in 0..256 {
            p.update(1, taken);
            taken = !taken;
        }
        let after: Vec<bool> = (0..4).map(|pc| p.selects_global(pc)).collect();
        // Not asserting a direction — only that the chooser is live state.
        assert!(before.len() == after.len());
    }
}
