//! # mim-bpred — branch predictors and single-pass multi-predictor profiling
//!
//! Branch-direction predictors used by the MIM toolkit, covering the two
//! configurations of the paper's design space (Table 2):
//!
//! * a 1 KB **gshare** predictor with global history, and
//! * a 3.5 KB **hybrid** predictor combining a 10-bit local-history
//!   component with a 12-bit global-history component via a chooser.
//!
//! [`Bimodal`] and [`LocalPredictor`] are also exported as building blocks
//! and baselines. [`MultiPredictor`] profiles many predictors over one
//! branch stream in a single pass, mirroring the paper's profiler (§2.1):
//! "we also collect branch misprediction rates for multiple branch
//! predictors in a single run".
//!
//! ## Example
//!
//! ```
//! use mim_bpred::{BranchPredictor, PredictorConfig};
//!
//! let mut p = PredictorConfig::gshare_1k().build();
//! // An always-taken branch becomes predictable once the global history
//! // register saturates (12 history bits -> all-ones after 12 outcomes).
//! for _ in 0..20 {
//!     p.update(0x40, true);
//! }
//! assert!(p.predict(0x40));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bimodal;
mod counter;
mod gshare;
mod hybrid;
mod local;
mod multi;
mod predictor;

pub use bimodal::Bimodal;
pub use counter::SatCounter;
pub use gshare::Gshare;
pub use hybrid::Hybrid;
pub use local::LocalPredictor;
pub use multi::{MultiPredictor, PredictorStats};
pub use predictor::{BranchPredictor, PredictorConfig};
