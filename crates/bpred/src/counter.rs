//! Saturating two-bit counters, the basic predictor storage element.

/// A 2-bit saturating counter with states 0 (strongly not-taken) through
/// 3 (strongly taken).
///
/// # Example
///
/// ```
/// use mim_bpred::SatCounter;
///
/// let mut c = SatCounter::weakly_not_taken();
/// assert!(!c.taken());
/// c.train(true);
/// assert!(c.taken()); // 1 -> 2 crosses the threshold
/// c.train(true);
/// c.train(true); // saturates at 3
/// c.train(false);
/// assert!(c.taken()); // hysteresis: one not-taken doesn't flip it
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SatCounter(u8);

impl SatCounter {
    /// State 1: predict not-taken, one `taken` away from flipping.
    pub fn weakly_not_taken() -> SatCounter {
        SatCounter(1)
    }

    /// State 2: predict taken, one `not-taken` away from flipping.
    pub fn weakly_taken() -> SatCounter {
        SatCounter(2)
    }

    /// Current raw state (0–3).
    pub fn state(self) -> u8 {
        self.0
    }

    /// Current prediction: taken if the state is 2 or 3.
    #[inline]
    pub fn taken(self) -> bool {
        self.0 >= 2
    }

    /// Trains the counter toward the actual outcome, saturating at 0 and 3.
    #[inline]
    pub fn train(&mut self, taken: bool) {
        if taken {
            if self.0 < 3 {
                self.0 += 1;
            }
        } else if self.0 > 0 {
            self.0 -= 1;
        }
    }
}

impl Default for SatCounter {
    /// Weakly not-taken, the conventional reset state.
    fn default() -> SatCounter {
        SatCounter::weakly_not_taken()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_at_both_ends() {
        let mut c = SatCounter::default();
        for _ in 0..10 {
            c.train(false);
        }
        assert_eq!(c.state(), 0);
        for _ in 0..10 {
            c.train(true);
        }
        assert_eq!(c.state(), 3);
    }

    #[test]
    fn threshold_is_at_two() {
        assert!(!SatCounter(1).taken());
        assert!(SatCounter(2).taken());
    }

    #[test]
    fn hysteresis_requires_two_flips() {
        let mut c = SatCounter(3);
        c.train(false);
        assert!(c.taken());
        c.train(false);
        assert!(!c.taken());
    }
}
