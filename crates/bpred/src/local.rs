//! Two-level local-history predictor.

use crate::counter::SatCounter;
use crate::predictor::{check_bits, BranchPredictor};

/// A two-level local predictor: per-branch history registers select entries
/// in a shared pattern-history table of 2-bit counters.
///
/// This is the local component of the paper's 3.5 KB hybrid predictor
/// (10-bit local histories).
#[derive(Debug, Clone)]
pub struct LocalPredictor {
    /// Per-branch local history registers, indexed by PC.
    histories: Vec<u32>,
    /// Pattern history table indexed by a local history value.
    pht: Vec<SatCounter>,
    index_mask: u32,
    history_mask: u32,
    history_bits: u32,
    name: String,
}

impl LocalPredictor {
    /// Creates a local predictor with `2^index_bits` history registers of
    /// `history_bits` bits each, and a `2^history_bits`-entry pattern table.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is 0 or exceeds 24.
    pub fn new(index_bits: u32, history_bits: u32) -> LocalPredictor {
        let entries = check_bits("index_bits", index_bits);
        let patterns = check_bits("history_bits", history_bits);
        LocalPredictor {
            histories: vec![0; entries],
            pht: vec![SatCounter::default(); patterns],
            index_mask: (entries - 1) as u32,
            history_mask: (patterns - 1) as u32,
            history_bits,
            name: format!("local-{index_bits}b-{history_bits}h"),
        }
    }

    #[inline]
    fn history_of(&self, pc: u32) -> u32 {
        self.histories[(pc & self.index_mask) as usize]
    }
}

impl BranchPredictor for LocalPredictor {
    fn predict(&self, pc: u32) -> bool {
        self.pht[(self.history_of(pc) & self.history_mask) as usize].taken()
    }

    fn update(&mut self, pc: u32, taken: bool) {
        let h = self.history_of(pc);
        self.pht[(h & self.history_mask) as usize].train(taken);
        let slot = (pc & self.index_mask) as usize;
        self.histories[slot] = ((h << 1) | u32::from(taken)) & self.history_mask;
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn storage_bits(&self) -> u64 {
        self.histories.len() as u64 * u64::from(self.history_bits) + self.pht.len() as u64 * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_per_branch_periodic_patterns() {
        // Branch A: always taken. Branch B: period-3 pattern T,T,N.
        // Local histories keep them separate even though they share the PHT.
        let mut p = LocalPredictor::new(10, 10);
        let pat_b = [true, true, false];
        for i in 0..512 {
            p.update(1, true);
            p.update(2, pat_b[i % 3]);
        }
        let mut misp = 0;
        // Keep the pattern phase continuous with the warmup loop.
        for i in 512..812 {
            if !p.predict(1) {
                misp += 1;
            }
            p.update(1, true);
            if p.predict(2) != pat_b[i % 3] {
                misp += 1;
            }
            p.update(2, pat_b[i % 3]);
        }
        assert_eq!(misp, 0);
    }

    #[test]
    fn storage_matches_paper_local_component() {
        // 1024 x 10-bit histories + 1024 x 2-bit counters = 12288 bits = 1.5 KB
        assert_eq!(LocalPredictor::new(10, 10).storage_bits(), 12_288);
    }

    #[test]
    fn history_register_is_bounded() {
        let mut p = LocalPredictor::new(4, 6);
        for _ in 0..1000 {
            p.update(5, true);
        }
        assert!(p.history_of(5) <= 0x3F);
    }
}
