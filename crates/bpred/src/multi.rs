//! Single-pass profiling of many predictors over one branch stream.

use serde::{Deserialize, Serialize};

use crate::predictor::{BranchPredictor, PredictorConfig};

/// Accuracy statistics for one predictor over a branch stream.
///
/// These are exactly the branch-related model inputs: `mispredicts` feeds
/// the branch-misprediction penalty (paper Eq. 4) and `taken_correct` feeds
/// the taken-branch hit penalty (§3.3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictorStats {
    /// Predictor name.
    pub name: String,
    /// Conditional branches observed.
    pub branches: u64,
    /// Mispredicted conditional branches.
    pub mispredicts: u64,
    /// Correctly predicted branches whose prediction was *taken* (each of
    /// these costs one fetch-redirect bubble even though it is a hit).
    pub taken_correct: u64,
}

impl PredictorStats {
    /// Misprediction rate (0 if no branches).
    pub fn misprediction_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

/// Profiles several predictors simultaneously over a single branch stream.
///
/// Mirrors the paper's profiler, which collects "branch misprediction rates
/// for multiple branch predictors in a single run" (§2.1); the resulting
/// per-predictor statistics let the model evaluate any predictor
/// configuration in the design space without re-profiling.
///
/// # Example
///
/// ```
/// use mim_bpred::{MultiPredictor, PredictorConfig};
///
/// let mut multi = MultiPredictor::new(&[
///     PredictorConfig::gshare_1k(),
///     PredictorConfig::hybrid_3_5k(),
/// ]);
/// for i in 0..1000u32 {
///     multi.observe(0x10, i % 5 != 0); // 80%-taken loop branch
/// }
/// let stats = multi.stats();
/// assert_eq!(stats.len(), 2);
/// assert!(stats[0].branches == 1000);
/// ```
pub struct MultiPredictor {
    predictors: Vec<Box<dyn BranchPredictor>>,
    stats: Vec<PredictorStats>,
}

impl std::fmt::Debug for MultiPredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiPredictor")
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl MultiPredictor {
    /// Instantiates one predictor per configuration.
    pub fn new(configs: &[PredictorConfig]) -> MultiPredictor {
        let predictors: Vec<Box<dyn BranchPredictor>> = configs.iter().map(|c| c.build()).collect();
        let stats = predictors
            .iter()
            .map(|p| PredictorStats {
                name: p.name().to_string(),
                branches: 0,
                mispredicts: 0,
                taken_correct: 0,
            })
            .collect();
        MultiPredictor { predictors, stats }
    }

    /// Number of predictors being profiled.
    pub fn len(&self) -> usize {
        self.predictors.len()
    }

    /// True if no predictors are configured.
    pub fn is_empty(&self) -> bool {
        self.predictors.is_empty()
    }

    /// Feeds one resolved conditional branch to every predictor.
    pub fn observe(&mut self, pc: u32, taken: bool) {
        for (p, s) in self.predictors.iter_mut().zip(&mut self.stats) {
            let pred = p.predict(pc);
            s.branches += 1;
            if pred != taken {
                s.mispredicts += 1;
            } else if taken {
                s.taken_correct += 1;
            }
            p.update(pc, taken);
        }
    }

    /// Per-predictor statistics, in configuration order.
    pub fn stats(&self) -> &[PredictorStats] {
        &self.stats
    }

    /// Consumes the profiler and returns the statistics.
    pub fn into_stats(self) -> Vec<PredictorStats> {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_consistent() {
        let mut m = MultiPredictor::new(&[
            PredictorConfig::Bimodal { index_bits: 8 },
            PredictorConfig::gshare_1k(),
        ]);
        let mut x: u64 = 1;
        for i in 0..5000u32 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
            m.observe(i % 13, (x >> 33) & 3 != 0); // 75% taken
        }
        for s in m.stats() {
            assert_eq!(s.branches, 5000);
            assert!(s.mispredicts <= s.branches);
            assert!(s.taken_correct <= s.branches - s.mispredicts);
            let r = s.misprediction_rate();
            assert!((0.0..=1.0).contains(&r));
        }
    }

    #[test]
    fn matches_single_predictor_run() {
        // Profiling predictor P alongside others must not change P's stats.
        let branches: Vec<(u32, bool)> = (0..2000u32).map(|i| (i % 7, i % 3 != 0)).collect();

        let mut solo = MultiPredictor::new(&[PredictorConfig::gshare_1k()]);
        let mut multi = MultiPredictor::new(&[
            PredictorConfig::Bimodal { index_bits: 4 },
            PredictorConfig::gshare_1k(),
            PredictorConfig::hybrid_3_5k(),
        ]);
        for &(pc, t) in &branches {
            solo.observe(pc, t);
            multi.observe(pc, t);
        }
        let solo_stats = &solo.stats()[0];
        let multi_stats = &multi.stats()[1];
        assert_eq!(solo_stats.mispredicts, multi_stats.mispredicts);
        assert_eq!(solo_stats.taken_correct, multi_stats.taken_correct);
    }

    #[test]
    fn better_predictor_wins_on_patterned_stream() {
        let mut m = MultiPredictor::new(&[
            PredictorConfig::Bimodal { index_bits: 10 },
            PredictorConfig::hybrid_3_5k(),
        ]);
        // Period-6 loop pattern: T T T T T N — trivially learnable with
        // history, half-defeating for bimodal at the exit.
        for i in 0..30_000usize {
            m.observe(77, i % 6 != 5);
        }
        let s = m.stats();
        assert!(
            s[1].mispredicts < s[0].mispredicts,
            "hybrid {} vs bimodal {}",
            s[1].mispredicts,
            s[0].mispredicts
        );
    }
}
