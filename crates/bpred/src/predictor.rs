//! The predictor trait and validated configurations.

use serde::{Deserialize, Serialize};

use crate::bimodal::Bimodal;
use crate::gshare::Gshare;
use crate::hybrid::Hybrid;
use crate::local::LocalPredictor;

/// A conditional-branch direction predictor.
///
/// Implementations are deterministic state machines; `predict` is
/// side-effect-free and `update` trains on the resolved outcome. The trait
/// is object-safe so heterogeneous predictor sets can be profiled together
/// (see [`MultiPredictor`](crate::MultiPredictor)).
pub trait BranchPredictor {
    /// Predicts the direction of the conditional branch at `pc`
    /// (an instruction index or byte address; implementations hash it).
    fn predict(&self, pc: u32) -> bool;

    /// Trains the predictor with the resolved direction of the branch at
    /// `pc`.
    fn update(&mut self, pc: u32, taken: bool);

    /// Functional warming: trains on a resolved branch without any
    /// prediction being observed — the cheap update path sampled
    /// simulation drives between detailed sample units so the predictor
    /// enters each unit with the state a full run would have.
    ///
    /// Defaults to [`update`](BranchPredictor::update); implementations
    /// whose training depends on the prior prediction may override.
    fn warm(&mut self, pc: u32, taken: bool) {
        self.update(pc, taken);
    }

    /// Short human-readable description (e.g. `"gshare-1KB"`).
    fn name(&self) -> &str;

    /// Total predictor storage budget in bits (for reporting and the power
    /// model).
    fn storage_bits(&self) -> u64;
}

/// Validated, serializable predictor configuration.
///
/// Use the provided constructors for the paper's two design-space points
/// ([`gshare_1k`](PredictorConfig::gshare_1k) and
/// [`hybrid_3_5k`](PredictorConfig::hybrid_3_5k)) or build custom
/// geometries; [`build`](PredictorConfig::build) instantiates the predictor.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredictorConfig {
    /// PC-indexed table of 2-bit counters.
    Bimodal {
        /// log2 of the number of counters.
        index_bits: u32,
    },
    /// Global-history XOR PC indexed table of 2-bit counters.
    Gshare {
        /// Number of global history bits (also log2 of the table size).
        history_bits: u32,
    },
    /// Two-level local-history predictor.
    Local {
        /// log2 of the number of per-branch history registers.
        index_bits: u32,
        /// Bits of local history per branch (log2 of the pattern table).
        history_bits: u32,
    },
    /// Hybrid (tournament) of a local and a global component with a
    /// global-history-indexed chooser.
    Hybrid {
        /// Local component: log2 of the history-register table.
        local_index_bits: u32,
        /// Local component: history length / pattern-table log2 size.
        local_history_bits: u32,
        /// Global component and chooser history length.
        global_history_bits: u32,
    },
}

impl PredictorConfig {
    /// The paper's "1KB global history" predictor: gshare with 12 bits of
    /// global history, i.e. 4096 two-bit counters = 1 KB of storage.
    pub fn gshare_1k() -> PredictorConfig {
        PredictorConfig::Gshare { history_bits: 12 }
    }

    /// The paper's "3.5KB hybrid, 10b local and 12b global history"
    /// predictor: 1024 x 10-bit local histories + 1024-entry local pattern
    /// table (1.5 KB) + 4096-counter global component (1 KB) + 4096-counter
    /// chooser (1 KB).
    pub fn hybrid_3_5k() -> PredictorConfig {
        PredictorConfig::Hybrid {
            local_index_bits: 10,
            local_history_bits: 10,
            global_history_bits: 12,
        }
    }

    /// Short name used in reports and config listings.
    pub fn name(&self) -> String {
        match self {
            PredictorConfig::Bimodal { index_bits } => format!("bimodal-{index_bits}b"),
            PredictorConfig::Gshare { history_bits } => format!("gshare-{history_bits}b"),
            PredictorConfig::Local {
                index_bits,
                history_bits,
            } => format!("local-{index_bits}b-{history_bits}h"),
            PredictorConfig::Hybrid {
                local_history_bits,
                global_history_bits,
                ..
            } => format!("hybrid-{local_history_bits}l-{global_history_bits}g"),
        }
    }

    /// Instantiates the predictor.
    ///
    /// # Panics
    ///
    /// Panics if any bit-width parameter exceeds 24 (tables would be
    /// unreasonably large); design-space configurations are far below this.
    pub fn build(&self) -> Box<dyn BranchPredictor> {
        match *self {
            PredictorConfig::Bimodal { index_bits } => Box::new(Bimodal::new(index_bits)),
            PredictorConfig::Gshare { history_bits } => Box::new(Gshare::new(history_bits)),
            PredictorConfig::Local {
                index_bits,
                history_bits,
            } => Box::new(LocalPredictor::new(index_bits, history_bits)),
            PredictorConfig::Hybrid {
                local_index_bits,
                local_history_bits,
                global_history_bits,
            } => Box::new(Hybrid::new(
                local_index_bits,
                local_history_bits,
                global_history_bits,
            )),
        }
    }
}

pub(crate) fn check_bits(field: &str, bits: u32) -> usize {
    assert!(
        bits > 0 && bits <= 24,
        "{field} must be in 1..=24, got {bits}"
    );
    1usize << bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_have_expected_storage() {
        let g = PredictorConfig::gshare_1k().build();
        assert_eq!(g.storage_bits(), 4096 * 2); // 1 KB
        let h = PredictorConfig::hybrid_3_5k().build();
        // 1024*10 (local histories) + 1024*2 (local PHT)
        // + 4096*2 (global) + 4096*2 (chooser) = 28672 bits = 3.5 KB
        assert_eq!(h.storage_bits(), 28_672);
    }

    #[test]
    fn names_are_distinct_and_nonempty() {
        let configs = [
            PredictorConfig::Bimodal { index_bits: 10 },
            PredictorConfig::gshare_1k(),
            PredictorConfig::Local {
                index_bits: 10,
                history_bits: 10,
            },
            PredictorConfig::hybrid_3_5k(),
        ];
        let names: Vec<String> = configs.iter().map(|c| c.name()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }

    #[test]
    #[should_panic(expected = "must be in 1..=24")]
    fn oversized_tables_are_rejected() {
        let _ = PredictorConfig::Gshare { history_bits: 30 }.build();
    }

    #[test]
    fn trait_is_object_safe_and_usable() {
        let mut p: Box<dyn BranchPredictor> = PredictorConfig::gshare_1k().build();
        let before = p.predict(12);
        p.update(12, !before);
        assert!(!p.name().is_empty());
    }

    #[test]
    fn warming_trains_identically_to_update() {
        // Interleaving warm and update calls must evolve the same state
        // as training with update alone: sampled simulation relies on
        // warm-path training being indistinguishable from measured-path
        // training.
        for config in [PredictorConfig::gshare_1k(), PredictorConfig::hybrid_3_5k()] {
            let mut warmed = config.build();
            let mut trained = config.build();
            for i in 0..500u32 {
                let pc = (i * 7) % 64;
                let taken = (i / 3) % 2 == 0;
                if i % 2 == 0 {
                    warmed.warm(pc, taken);
                } else {
                    warmed.update(pc, taken);
                }
                trained.update(pc, taken);
            }
            for pc in 0..64 {
                assert_eq!(
                    warmed.predict(pc),
                    trained.predict(pc),
                    "{} diverged at pc {pc}",
                    config.name()
                );
            }
        }
    }
}
