//! Gshare global-history predictor.

use crate::counter::SatCounter;
use crate::predictor::{check_bits, BranchPredictor};

/// The gshare predictor: a table of 2-bit counters indexed by the XOR of
/// the global branch-history register and the branch PC.
///
/// `Gshare::new(12)` is the paper's "1 KB global history" configuration:
/// 2^12 = 4096 two-bit counters.
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<SatCounter>,
    history: u32,
    mask: u32,
    name: String,
}

impl Gshare {
    /// Creates a gshare predictor with `history_bits` of global history and
    /// a `2^history_bits`-entry counter table.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is 0 or exceeds 24.
    pub fn new(history_bits: u32) -> Gshare {
        let entries = check_bits("history_bits", history_bits);
        Gshare {
            table: vec![SatCounter::default(); entries],
            history: 0,
            mask: (entries - 1) as u32,
            name: format!("gshare-{history_bits}b"),
        }
    }

    /// Current global history register (low bits are the most recent
    /// outcomes).
    pub fn history(&self) -> u32 {
        self.history
    }

    #[inline]
    fn index(&self, pc: u32) -> usize {
        ((pc ^ self.history) & self.mask) as usize
    }
}

impl BranchPredictor for Gshare {
    fn predict(&self, pc: u32) -> bool {
        self.table[self.index(pc)].taken()
    }

    fn update(&mut self, pc: u32, taken: bool) {
        let i = self.index(pc);
        self.table[i].train(taken);
        self.history = ((self.history << 1) | u32::from(taken)) & self.mask;
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn storage_bits(&self) -> u64 {
        self.table.len() as u64 * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_an_alternating_pattern_via_history() {
        // T/N/T/N has distinct history contexts, so gshare learns it while
        // bimodal cannot.
        let mut p = Gshare::new(10);
        let mut taken = true;
        // warmup
        for _ in 0..32 {
            p.update(7, taken);
            taken = !taken;
        }
        let mut mispredicts = 0;
        for _ in 0..100 {
            if p.predict(7) != taken {
                mispredicts += 1;
            }
            p.update(7, taken);
            taken = !taken;
        }
        assert_eq!(mispredicts, 0);
    }

    #[test]
    fn learns_a_short_loop_exit_pattern() {
        // A loop of 4 iterations: T,T,T,N repeating.
        let mut p = Gshare::new(12);
        let pattern = [true, true, true, false];
        for i in 0..64 {
            p.update(42, pattern[i % 4]);
        }
        let mut mispredicts = 0;
        for i in 0..200 {
            if p.predict(42) != pattern[i % 4] {
                mispredicts += 1;
            }
            p.update(42, pattern[i % 4]);
        }
        assert_eq!(mispredicts, 0, "period-4 loop should be fully learned");
    }

    #[test]
    fn history_register_is_masked() {
        let mut p = Gshare::new(4);
        for _ in 0..100 {
            p.update(0, true);
        }
        assert!(p.history() <= 0xF);
    }

    #[test]
    fn storage_matches_geometry() {
        assert_eq!(Gshare::new(12).storage_bits(), 8192); // 1 KB
    }
}
